//! Shape tests comparing event models (§5.2, Figs. 11–14): phhttpd's
//! knee moves earlier with inactive load and its latency explodes past
//! the knee, while the hybrid of §4 combines the strengths of both
//! constituents.

use scalable_net_io::httperf::{run_one, RunParams, ServerKind};

const CONNS: u64 = 3_000;

fn point(kind: ServerKind, rate: f64, inactive: usize) -> scalable_net_io::httperf::RunReport {
    run_one(RunParams::paper(kind, rate, inactive).with_conns(CONNS))
}

#[test]
fn phhttpd_clean_at_light_load() {
    // Fig. 11 low end: "Performance at lower request rates compares with
    // the best performance of other servers."
    let r = point(ServerKind::Phhttpd, 600.0, 1);
    assert!(r.rate.avg > 0.97 * 600.0, "avg {}", r.rate.avg);
    assert!(r.error_percent() < 1.0);
}

#[test]
fn phhttpd_latency_jumps_past_the_knee() {
    // Fig. 14: below ~900 req/s at load 251 phhttpd responds quickly;
    // past the knee its median leaps by an order of magnitude.
    let mut before = point(ServerKind::Phhttpd, 700.0, 251);
    let mut after = point(ServerKind::Phhttpd, 1100.0, 251);
    let (b, a) = (before.median_latency_ms(), after.median_latency_ms());
    assert!(b < 10.0, "pre-knee median should be small: {b} ms");
    assert!(
        a > 5.0 * b,
        "post-knee median must jump (paper: >120 ms): {b} -> {a} ms"
    );
}

#[test]
fn phhttpd_degrades_more_with_inactive_load_than_devpoll() {
    // Figs. 12/13: inactive connections hurt phhttpd (per-event linear
    // costs) but not devpoll.
    let mut ph = point(ServerKind::Phhttpd, 900.0, 501);
    let mut dev = point(ServerKind::ThttpdDevPoll, 900.0, 501);
    let (p, d) = (ph.median_latency_ms(), dev.median_latency_ms());
    assert!(
        p > 2.0 * d,
        "phhttpd at 501 should respond slower than devpoll: {p} vs {d} ms"
    );
    assert!(
        ph.rate.stddev > dev.rate.stddev,
        "phhttpd rate should be noisier: {} vs {}",
        ph.rate.stddev,
        dev.rate.stddev
    );
}

#[test]
fn phhttpd_overflow_melts_down_to_polling_mode() {
    // §2/§6: queue overflow hands everything to the poll sibling and the
    // server never switches back.
    let r = point(ServerKind::Phhttpd, 1100.0, 501);
    assert!(
        r.server_metrics.overflows >= 1,
        "high load must overflow the RT queue: {:?}",
        r.server_metrics
    );
}

#[test]
fn sigtimedwait4_batching_reduces_syscall_pressure() {
    // §6: dequeuing signals in groups cuts per-event syscall overhead.
    // At a rate past the one-at-a-time knee, batching must not do worse.
    let mut single = point(ServerKind::Phhttpd, 1000.0, 251);
    let mut batch = point(ServerKind::PhhttpdBatch(16), 1000.0, 251);
    assert!(
        batch.rate.avg >= single.rate.avg * 0.98,
        "batching should not lose throughput: {} vs {}",
        batch.rate.avg,
        single.rate.avg
    );
    let (s, b) = (single.median_latency_ms(), batch.median_latency_ms());
    assert!(
        b <= s * 1.05,
        "batching should not increase latency: {b} vs {s} ms"
    );
}

#[test]
fn hybrid_matches_devpoll_throughput_under_load() {
    // §4's conjecture: the hybrid keeps devpoll-class throughput.
    let hybrid = point(ServerKind::Hybrid, 1000.0, 251);
    let dev = point(ServerKind::ThttpdDevPoll, 1000.0, 251);
    assert!(
        hybrid.rate.avg > 0.97 * dev.rate.avg,
        "hybrid {} vs devpoll {}",
        hybrid.rate.avg,
        dev.rate.avg
    );
    assert!(hybrid.error_percent() < 1.0);
}

#[test]
fn hybrid_avoids_phhttpd_meltdown() {
    // Where phhttpd's latency explodes, the hybrid switches to batching
    // and stays composed.
    let mut hybrid = point(ServerKind::Hybrid, 1100.0, 501);
    let mut ph = point(ServerKind::Phhttpd, 1100.0, 501);
    let (h, p) = (hybrid.median_latency_ms(), ph.median_latency_ms());
    assert!(
        h < p / 2.0,
        "hybrid should dodge the meltdown: {h} vs {p} ms"
    );
    assert!(hybrid.rate.avg > ph.rate.avg * 0.98);
}
