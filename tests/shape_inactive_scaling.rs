//! Shape tests for the paper's central result (§5.1, Figs. 4–10): with
//! many inactive connections, `/dev/poll` keeps serving while stock
//! `poll()` collapses. These assert *orderings and knees*, not absolute
//! numbers — the calibration contract recorded in DESIGN.md §6.

use scalable_net_io::httperf::{run_one, RunParams, ServerKind};

const CONNS: u64 = 3_000;

fn point(kind: ServerKind, rate: f64, inactive: usize) -> scalable_net_io::httperf::RunReport {
    run_one(RunParams::paper(kind, rate, inactive).with_conns(CONNS))
}

#[test]
fn both_servers_clean_at_light_load() {
    // Fig. 4/5 low end: everyone tracks the target at 500 req/s, load 1.
    for kind in [ServerKind::ThttpdPoll, ServerKind::ThttpdDevPoll] {
        let r = point(kind, 500.0, 1);
        assert!(
            r.rate.avg > 0.97 * 500.0,
            "{kind:?} avg {} at light load",
            r.rate.avg
        );
        assert!(
            r.error_percent() < 1.0,
            "{kind:?} errors {}",
            r.error_percent()
        );
    }
}

#[test]
fn stock_poll_collapses_under_inactive_load() {
    // Fig. 8: 501 inactive connections break stock poll() at moderate
    // rates.
    let r = point(ServerKind::ThttpdPoll, 900.0, 501);
    assert!(
        r.rate.avg < 0.75 * 900.0,
        "stock poll should collapse: avg {}",
        r.rate.avg
    );
    assert!(
        r.error_percent() > 15.0,
        "collapse must produce errors: {}%",
        r.error_percent()
    );
}

#[test]
fn devpoll_unaffected_by_inactive_load() {
    // Fig. 9: the same workload leaves /dev/poll untouched.
    let r = point(ServerKind::ThttpdDevPoll, 900.0, 501);
    assert!(
        r.rate.avg > 0.97 * 900.0,
        "devpoll should keep up: avg {}",
        r.rate.avg
    );
    assert!(r.error_percent() < 1.0, "errors {}%", r.error_percent());
}

#[test]
fn error_rates_match_figure_10_shape() {
    // Fig. 10: stock errors grow toward ~60 % with rate at load 501;
    // devpoll shows none at 251.
    let stock_mid = point(ServerKind::ThttpdPoll, 800.0, 501);
    let stock_high = point(ServerKind::ThttpdPoll, 1100.0, 501);
    assert!(
        stock_high.error_percent() > stock_mid.error_percent(),
        "errors must grow with rate: {} vs {}",
        stock_mid.error_percent(),
        stock_high.error_percent()
    );
    assert!(
        stock_high.error_percent() > 40.0,
        "errors should approach the paper's 60%: {}",
        stock_high.error_percent()
    );
    let dev = point(ServerKind::ThttpdDevPoll, 1100.0, 251);
    assert!(
        dev.error_percent() < 1.0,
        "devpoll at 251: no errors whatsoever (paper), got {}%",
        dev.error_percent()
    );
}

#[test]
fn latency_ordering_devpoll_beats_stock_poll() {
    // Fig. 14 at a pre-knee rate: normal poll sits well above devpoll.
    let mut stock = point(ServerKind::ThttpdPoll, 700.0, 251);
    let mut dev = point(ServerKind::ThttpdDevPoll, 700.0, 251);
    let (s, d) = (stock.median_latency_ms(), dev.median_latency_ms());
    assert!(
        s > 2.0 * d,
        "stock median {s} ms should be well above devpoll {d} ms"
    );
}

#[test]
fn stock_latency_grows_with_inactive_load() {
    // The per-scan O(N) cost shows up directly in response latency even
    // below the knee.
    let mut lo = point(ServerKind::ThttpdPoll, 500.0, 1);
    let mut mid = point(ServerKind::ThttpdPoll, 500.0, 251);
    let mut hi = point(ServerKind::ThttpdPoll, 500.0, 501);
    let (a, b, c) = (
        lo.median_latency_ms(),
        mid.median_latency_ms(),
        hi.median_latency_ms(),
    );
    assert!(a < b && b < c, "medians must grow with load: {a}, {b}, {c}");
}
