//! Shape tests for the `select()` baseline extension: one interface
//! generation before the paper's `poll()` baseline, it must do at least
//! as badly under inactive load — and fail outright past `FD_SETSIZE`.

use scalable_net_io::devpoll::FD_SETSIZE;
use scalable_net_io::httperf::{run_one, RunParams, ServerKind};

const CONNS: u64 = 3_000;

fn point(kind: ServerKind, rate: f64, inactive: usize) -> scalable_net_io::httperf::RunReport {
    run_one(RunParams::paper(kind, rate, inactive).with_conns(CONNS))
}

#[test]
fn select_serves_light_load() {
    let r = point(ServerKind::ThttpdSelect, 500.0, 1);
    assert!(r.rate.avg > 0.97 * 500.0, "avg {}", r.rate.avg);
    assert!(r.error_percent() < 1.0);
}

#[test]
fn select_is_no_better_than_poll_under_inactive_load() {
    let mut sel = point(ServerKind::ThttpdSelect, 500.0, 501);
    let mut poll = point(ServerKind::ThttpdPoll, 500.0, 501);
    let (s, p) = (sel.median_latency_ms(), poll.median_latency_ms());
    assert!(
        s >= p,
        "select median {s} ms must be at least poll's {p} ms (extra bitmap walk)"
    );
}

#[test]
fn select_collapses_under_inactive_load_like_poll() {
    let r = point(ServerKind::ThttpdSelect, 900.0, 501);
    assert!(
        r.rate.avg < 0.75 * 900.0,
        "select should collapse: avg {}",
        r.rate.avg
    );
    assert!(r.error_percent() > 15.0, "err {}", r.error_percent());
}

#[test]
fn devpoll_beats_select_everywhere_it_matters() {
    let dev = point(ServerKind::ThttpdDevPoll, 900.0, 501);
    let sel = point(ServerKind::ThttpdSelect, 900.0, 501);
    assert!(dev.rate.avg > 1.2 * sel.rate.avg);
    assert!(dev.error_percent() < 1.0);
}

#[test]
fn fd_setsize_is_a_hard_wall() {
    // A descriptor at FD_SETSIZE cannot be watched; the backend reports
    // EINVAL rather than corrupting a bitmap.
    use scalable_net_io::devpoll::{DevPollRegistry, EventBackend, SelectBackend};
    use scalable_net_io::simcore::time::SimTime;
    use scalable_net_io::simkernel::{CostModel, Kernel, PollBits};
    use scalable_net_io::simnet::HostId;

    let mut kernel = Kernel::new(HostId(1), CostModel::k6_2_400mhz());
    let mut registry = DevPollRegistry::new();
    let pid = kernel.spawn(FD_SETSIZE + 10, 64);
    let mut backend = SelectBackend::new();
    assert!(backend
        .set_interest(
            &mut kernel,
            &mut registry,
            SimTime::ZERO,
            pid,
            (FD_SETSIZE - 1) as i32,
            PollBits::POLLIN,
        )
        .is_ok());
    assert!(backend
        .set_interest(
            &mut kernel,
            &mut registry,
            SimTime::ZERO,
            pid,
            FD_SETSIZE as i32,
            PollBits::POLLIN,
        )
        .is_err());
}
