//! Cross-crate API integration: the facade exposes a working end-to-end
//! path from raw kernel calls up to full benchmark runs.

use scalable_net_io::devpoll::{DevPollConfig, DevPollRegistry, DvPoll, PollFd, PollOutcome};
use scalable_net_io::httperf::{run_one, RunParams, ServerKind};
use scalable_net_io::simcore::time::{SimDuration, SimTime};
use scalable_net_io::simkernel::{CostModel, Kernel, PollBits};
use scalable_net_io::simnet::{EndpointId, HostId, LinkConfig, Network, Side, SockAddr, TcpConfig};

#[test]
fn raw_devpoll_roundtrip_through_the_facade() {
    let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
    let mut kernel = Kernel::new(HostId(1), CostModel::k6_2_400mhz());
    let mut registry = DevPollRegistry::new();
    let pid = kernel.spawn_default();

    kernel.begin_batch(SimTime::ZERO, pid);
    let lfd = kernel
        .sys_listen(&mut net, SimTime::ZERO, pid, 80, 16)
        .unwrap();
    let dpfd = registry
        .open(&mut kernel, SimTime::ZERO, pid, DevPollConfig::default())
        .unwrap();
    registry
        .write(
            &mut kernel,
            SimTime::ZERO,
            pid,
            dpfd,
            &[PollFd::new(lfd, PollBits::POLLIN)],
        )
        .unwrap();
    kernel.end_batch(SimTime::ZERO, pid);

    let conn = net
        .connect(
            SimTime::ZERO,
            HostId(0),
            SockAddr::new(HostId(1), 80),
            SimDuration::ZERO,
        )
        .unwrap();
    while let Some(t) = net.next_deadline() {
        if t > SimTime::from_millis(10) {
            break;
        }
        for n in net.advance(t) {
            kernel.on_net(t, &n);
        }
        for e in kernel.advance(t) {
            if let scalable_net_io::simkernel::KernelEvent::FdEvent { pid, fd, .. } = e {
                registry.on_fd_event(&mut kernel, t, pid, fd);
            }
        }
    }

    let t = SimTime::from_millis(10);
    kernel.begin_batch(t, pid);
    let (out, res) = registry
        .dp_poll(&mut kernel, t, pid, dpfd, DvPoll::into_user_buffer(8, 0))
        .unwrap();
    assert_eq!(out, PollOutcome::Ready(1));
    assert_eq!(res[0].fd, lfd);
    let fd = kernel.sys_accept(&mut net, t, pid, lfd).unwrap();
    kernel.end_batch(t, pid);
    assert!(fd >= 0);
    let _ = EndpointId::new(conn, Side::Client);
}

#[test]
fn all_server_kinds_run_through_the_facade() {
    for kind in [
        ServerKind::ThttpdPoll,
        ServerKind::ThttpdDevPoll,
        ServerKind::Phhttpd,
        ServerKind::PhhttpdBatch(8),
        ServerKind::Hybrid,
        ServerKind::ThttpdDevPollWith {
            config: DevPollConfig {
                hints: false,
                or_semantics: true,
                per_socket_locks: true,
            },
            mmap: false,
            combined: true,
        },
    ] {
        let r = run_one(RunParams::paper(kind, 300.0, 10).with_conns(200));
        assert!(
            r.replies >= 195,
            "{kind:?}: {} replies, errors {:?}",
            r.replies,
            r.errors
        );
    }
}

#[test]
fn reports_are_deterministic_per_seed_and_vary_across_seeds() {
    let mk = |seed| {
        run_one(
            RunParams::paper(ServerKind::ThttpdDevPoll, 400.0, 25)
                .with_conns(300)
                .with_seed(seed),
        )
    };
    let a = mk(7);
    let b = mk(7);
    assert_eq!(a.replies, b.replies);
    assert_eq!(a.rate, b.rate);
    assert_eq!(a.errors, b.errors);
    let c = mk(8);
    // Different arrival jitter shifts the arrival schedule, so the runs
    // end at different simulated times. (Per-request service at light
    // load is deterministic, so medians may legitimately coincide.)
    assert_ne!(
        a.sim_secs, c.sim_secs,
        "different seeds should perturb the arrival schedule"
    );
}

#[test]
fn time_wait_is_visible_after_a_run() {
    use scalable_net_io::httperf::{default_testbed, LoadConfig, CLIENT_HOST};
    use scalable_net_io::servers::{ServerConfig, ServerCtx, Thttpd};

    let load = LoadConfig {
        rate: 300.0,
        total_conns: 200,
        ..LoadConfig::default()
    };
    let mut bed = default_testbed(load);
    let mut server = {
        let mut ctx = ServerCtx {
            kernel: &mut bed.kernel,
            net: &mut bed.net,
            registry: &mut bed.registry,
            now: SimTime::ZERO,
        };
        Thttpd::new(
            &mut ctx,
            scalable_net_io::devpoll::DevPollBackend::new(),
            ServerConfig::default(),
        )
    };
    bed.start(&mut server);
    bed.run(&mut server, SimTime::from_secs(120));
    // Closed connections parked their client ports in TIME_WAIT — the
    // resource the paper's methodology §5 tiptoes around.
    assert!(
        bed.net.time_wait_count(CLIENT_HOST) > 150,
        "TIME_WAIT population {}",
        bed.net.time_wait_count(CLIENT_HOST)
    );
}
