//! Integration tests for the span-tracing layer (latency anatomy):
//! disabled tracing must not perturb the simulation by a single byte,
//! the Chrome-trace export must be identical no matter how many worker
//! threads ran the sweep, and the exported trace must be well-formed
//! JSON whose attributed time reconciles with end-to-end latency.

use scalable_net_io::bench::run_jobs;
use scalable_net_io::httperf::{run_one, RunParams, RunReport, ServerKind};
use scalable_net_io::simcore::span::Phase;

const CONNS: u64 = 2_000;

fn point(kind: ServerKind, rate: f64, inactive: usize) -> RunParams {
    RunParams::paper(kind, rate, inactive).with_conns(CONNS)
}

/// Strips the `span_ns.*` metric lines a span-enabled run adds to the
/// probe snapshot, leaving everything the disabled run would emit.
fn without_span_lines(json_lines: &str) -> String {
    json_lines
        .lines()
        .filter(|l| !l.contains("span_ns."))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn disabled_tracing_is_byte_identical() {
    // The zero-cost claim, tested from the outside: a span-enabled run
    // must produce *exactly* the baseline snapshot plus span_ns.*
    // histograms — same counters, same latency buckets, same reply
    // totals. Any charge added or moved by instrumentation would shift
    // a bucket somewhere and fail the byte comparison.
    for kind in [
        ServerKind::ThttpdSelect,
        ServerKind::ThttpdPoll,
        ServerKind::ThttpdDevPoll,
        ServerKind::Phhttpd,
        ServerKind::Hybrid,
    ] {
        let plain = run_one(point(kind, 700.0, 251));
        let spanned = run_one(point(kind, 700.0, 251).with_span_retain(0));
        assert_eq!(
            plain.probe.to_json_lines(),
            without_span_lines(&spanned.probe.to_json_lines()),
            "span tracing perturbed the {} simulation",
            plain.server,
        );
        assert_eq!(plain.replies, spanned.replies);
        assert_eq!(plain.attempted, spanned.attempted);
        assert!(
            spanned.probe.to_json_lines().contains("span_ns."),
            "span-enabled run must actually record spans"
        );
        assert!(
            plain.span_chrome.is_empty() && plain.span_folded.is_empty(),
            "disabled run must not render trace exports"
        );
    }
}

#[test]
fn chrome_trace_is_stable_across_jobs() {
    // Each run is an isolated deterministic world, so the exported
    // traces must not depend on how many executor threads carried the
    // sweep. This is the `--jobs 1` vs `--jobs 4` guarantee the figures
    // pipeline relies on.
    let grid: Vec<(ServerKind, f64)> = vec![
        (ServerKind::ThttpdDevPoll, 600.0),
        (ServerKind::Phhttpd, 600.0),
        (ServerKind::Hybrid, 600.0),
        (ServerKind::ThttpdDevPoll, 800.0),
    ];
    let run = |&(kind, rate): &(ServerKind, f64)| -> RunReport {
        run_one(
            RunParams::paper(kind, rate, 251)
                .with_conns(1_000)
                .with_spans(),
        )
    };
    let serial = run_jobs(1, &grid, run);
    let threaded = run_jobs(4, &grid, run);
    for (s, t) in serial.iter().zip(&threaded) {
        assert!(!s.span_chrome.is_empty(), "{}: no spans retained", s.server);
        assert_eq!(
            s.span_chrome, t.span_chrome,
            "{} chrome trace drifted",
            s.server
        );
        assert_eq!(
            s.span_folded, t.span_folded,
            "{} folded stacks drifted",
            s.server
        );
        assert_eq!(s.probe.to_json_lines(), t.probe.to_json_lines());
    }
}

/// A minimal JSON well-formedness checker (objects, arrays, strings,
/// numbers, literals) — enough to prove the export "loads as JSON"
/// without pulling in a parser dependency.
mod json {
    pub fn validate(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let mut i = 0;
        value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at {i}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    skip_ws(b, i);
                    string(b, i)?;
                    skip_ws(b, i);
                    expect(b, i, b':')?;
                    value(b, i)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected , or }} at {i}")),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    value(b, i)?;
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected , or ] at {i}")),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                while *i < b.len()
                    && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *i += 1;
                }
                Ok(())
            }
            Some(_) => {
                for lit in ["true", "false", "null"] {
                    if b[*i..].starts_with(lit.as_bytes()) {
                        *i += lit.len();
                        return Ok(());
                    }
                }
                Err(format!("unexpected byte at {i}"))
            }
            None => Err("unexpected end".into()),
        }
    }

    fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
        expect(b, i, b'"')?;
        while let Some(&c) = b.get(*i) {
            *i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => *i += 1,
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
        if b.get(*i) == Some(&c) {
            *i += 1;
            Ok(())
        } else {
            Err(format!("expected {} at {i}", c as char))
        }
    }
}

/// Pulls `"key":<number>` out of one chrome-trace event line. `dur` and
/// `ts` are printed as microseconds with exactly three decimals, so the
/// nanosecond value is recovered exactly.
fn field_ns(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat).expect("field present") + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.')
        .unwrap_or(rest.len());
    let num = &rest[..end];
    match num.split_once('.') {
        Some((whole, frac)) => {
            assert_eq!(frac.len(), 3, "expected exactly 3 decimals: {num}");
            whole.parse::<u64>().unwrap() * 1_000 + frac.parse::<u64>().unwrap()
        }
        None => num.parse::<u64>().unwrap(),
    }
}

#[test]
fn chrome_trace_is_valid_json_and_reconciles_with_latency() {
    let mut r = run_one(point(ServerKind::ThttpdDevPoll, 700.0, 251).with_spans());
    assert!(r.replies > 0);

    // Well-formed JSON, every event a complete ("ph":"X") event.
    json::validate(&r.span_chrome).expect("chrome trace must be valid JSON");
    let events: Vec<&str> = r
        .span_chrome
        .lines()
        .filter(|l| l.contains("\"ph\":"))
        .collect();
    assert!(
        events.len() > 1_000,
        "expected many events, got {}",
        events.len()
    );
    for e in &events {
        assert!(e.contains("\"ph\":\"X\""), "non-complete event: {e}");
    }

    // Internal reconciliation: exclusive time partitions inclusive
    // time, so summing excl_ns over every event must equal summing
    // dur over the depth-0 (root) events.
    let total_excl: u64 = events.iter().map(|e| field_ns(e, "excl_ns")).sum();
    let total_root: u64 = events
        .iter()
        .filter(|e| e.contains("\"depth\":0"))
        .map(|e| field_ns(e, "dur"))
        .sum();
    assert_eq!(
        total_excl, total_root,
        "exclusive spans must partition the root spans exactly"
    );

    // External reconciliation: per-reply attributed request-path time
    // is positive and bounded by the end-to-end connection time — the
    // spans explain a server-side *subset* of what the client measures
    // (which additionally includes network flight time and queueing).
    let attributed_ns: f64 = Phase::REQUEST_PATH
        .iter()
        .filter_map(|p| r.probe.histogram(p.metric()))
        .map(|h| h.sum() as f64)
        .sum();
    let per_reply_ns = attributed_ns / r.replies as f64;
    let median_e2e_ns = r.median_latency_ms() * 1e6;
    assert!(per_reply_ns > 0.0, "no request-path time attributed");
    assert!(
        per_reply_ns < median_e2e_ns,
        "attributed {per_reply_ns} ns/reply exceeds median end-to-end {median_e2e_ns} ns"
    );

    // Folded stacks: sorted unique paths, nanosecond totals, and the
    // dispatch children the anatomy figure stacks.
    let folded: Vec<&str> = r.span_folded.lines().collect();
    assert!(folded.iter().any(|l| l.starts_with("dispatch;")));
    let mut sorted = folded.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(folded, sorted, "folded paths must be sorted and unique");
    for line in &folded {
        let (path, ns) = line.rsplit_once(' ').expect("`path ns` shape");
        assert!(!path.is_empty());
        ns.parse::<u64>().expect("nanosecond total");
    }
}

#[test]
fn nested_spans_partition_dispatch_time() {
    // The timeline table's core claim: dispatch exclusive time excludes
    // its syscall children, so dispatch + read + write + interest_reg
    // never double-counts. Verified here at the whole-run level: every
    // request-path phase histogram is populated for a devpoll run and
    // the exclusive sums are each strictly below the total attributed
    // time (i.e. no single phase swallowed the others' share).
    let r = run_one(point(ServerKind::ThttpdDevPoll, 700.0, 251).with_span_retain(0));
    let sums: Vec<(u128, &str)> = Phase::REQUEST_PATH
        .iter()
        .map(|p| {
            let h = r
                .probe
                .histogram(p.metric())
                .unwrap_or_else(|| panic!("{} histogram missing", p.name()));
            assert!(h.count() > 0, "{} never recorded", p.name());
            (h.sum(), p.name())
        })
        .collect();
    let total: u128 = sums.iter().map(|&(s, _)| s).sum();
    for &(s, name) in &sums {
        assert!(s < total, "{name} is the only phase with time");
    }
    // Lock-hold phases record too, but overlap the request path and are
    // excluded from the stacked figure.
    for p in [
        Phase::LockBackmap,
        Phase::LockInterestTable,
        Phase::LockSocket,
    ] {
        let h = r.probe.histogram(p.metric());
        assert!(
            h.is_some_and(|h| h.count() > 0),
            "{} never recorded",
            p.name()
        );
    }
}
