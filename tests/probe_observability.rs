//! Integration tests for the probe layer (PR 1, observability): the
//! metric registry must be deterministic, the counters must expose the
//! paper's *mechanisms* (hinted skips, result-cache revalidation), and
//! the trace must be drivable per category.

use scalable_net_io::httperf::{run_one, RunParams, ServerKind};
use scalable_net_io::simcore::probe::MetricRegistry;

const CONNS: u64 = 2_000;

fn point(kind: ServerKind, rate: f64, inactive: usize) -> scalable_net_io::httperf::RunReport {
    run_one(RunParams::paper(kind, rate, inactive).with_conns(CONNS))
}

#[test]
fn identical_runs_produce_identical_snapshots() {
    // Determinism is the simulation's core promise; the probe layer must
    // not break it. Two identical seeded runs must agree byte-for-byte
    // in both renderings.
    let a = point(ServerKind::ThttpdDevPoll, 700.0, 251);
    let b = point(ServerKind::ThttpdDevPoll, 700.0, 251);
    assert_eq!(a.probe.to_text(), b.probe.to_text());
    assert_eq!(a.probe.to_json_lines(), b.probe.to_json_lines());
    assert!(!a.probe.to_text().is_empty());
}

#[test]
fn devpoll_polls_far_fewer_drivers_than_stock_poll() {
    // §3.2 mechanism check: under the same workload, stock poll() asks
    // every registered descriptor's driver on every call, while
    // /dev/poll's hinting layer skips unhinted descriptors. The counters
    // must show the asymmetry directly, not just via throughput.
    let dev = point(ServerKind::ThttpdDevPoll, 700.0, 251);
    let stock = point(ServerKind::ThttpdPoll, 700.0, 251);
    let dev_polls = dev.probe.counter("devpoll.driver_polls");
    let dev_avoided = dev.probe.counter("devpoll.driver_polls_avoided");
    let stock_polls = stock.probe.counter("poll.driver_polls");
    assert!(dev_polls > 0, "devpoll must poll some drivers");
    assert!(
        stock_polls > 10 * dev_polls,
        "stock poll() should do vastly more driver polls: {stock_polls} vs {dev_polls}"
    );
    assert!(
        dev_avoided > 10 * dev_polls,
        "hints should skip most of the interest set per scan: \
         avoided {dev_avoided} vs polled {dev_polls}"
    );
}

#[test]
fn devpoll_result_cache_revalidates_ready_entries() {
    // §3.3: entries that reported ready last scan are revalidated from
    // the result cache even without a fresh hint.
    let dev = point(ServerKind::ThttpdDevPoll, 700.0, 251);
    assert!(
        dev.probe.counter("devpoll.cache_revalidations") > 0,
        "result-cache revalidations must occur under steady load"
    );
    assert!(dev.probe.counter("devpoll.scans") > 0);
    assert!(dev.probe.counter("devpoll.mmap_result_bytes") > 0);
}

#[test]
fn rtsig_counters_cover_the_queue_lifecycle() {
    let ph = point(ServerKind::Phhttpd, 700.0, 251);
    assert!(ph.probe.counter("rtsig.enqueued") > 0);
    assert!(ph.probe.counter("rtsig.dequeued") > 0);
    let g = ph.probe.gauge("rtsig.queue_depth");
    assert!(g.high_water >= 1, "high water {}", g.high_water);
}

#[test]
fn trace_categories_gate_output() {
    let traced = run_one(
        RunParams::paper(ServerKind::ThttpdDevPoll, 600.0, 51)
            .with_conns(200)
            .with_trace(["devpoll"]),
    );
    assert!(
        traced.trace.contains("devpoll: DP_POLL"),
        "trace must carry DP_POLL lines: {:?}",
        &traced.trace[..traced.trace.len().min(200)]
    );
    assert!(
        !traced.trace.contains("tcp:"),
        "disabled categories must stay silent"
    );
    let silent = run_one(RunParams::paper(ServerKind::ThttpdDevPoll, 600.0, 51).with_conns(200));
    assert!(silent.trace.is_empty(), "no categories -> empty trace");
}

#[test]
fn registry_is_cheap_and_deterministic_in_isolation() {
    // Unit-level sanity at the integration boundary: bucket edges and
    // high-water semantics (satellite 3).
    let mut p = MetricRegistry::new();
    p.observe("h", 0);
    p.observe("h", 1);
    p.observe("h", u64::MAX);
    let s = p.snapshot();
    let h = s.histogram("h").expect("histogram present");
    assert_eq!(h.count(), 3);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), u64::MAX);
    p.gauge_set("g", 7);
    p.gauge_set("g", 3);
    let s = p.snapshot();
    assert_eq!(s.gauge("g").value, 3);
    assert_eq!(s.gauge("g").high_water, 7);
}
