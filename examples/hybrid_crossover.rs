//! The hybrid server the paper could only imagine (§4): RT signals for
//! latency at light load, `/dev/poll` for throughput at heavy load,
//! crossing over at an RT-queue-length threshold. This example ramps the
//! request rate and reports where the mode switches happen.
//!
//! ```text
//! cargo run --release --example hybrid_crossover [inactive] [conns]
//! ```

use scalable_net_io::httperf::{run_one, RunParams, ServerKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let inactive: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(251);
    let conns: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6_000);

    println!("Hybrid server under a rate ramp, {inactive} inactive connections");
    println!();
    println!(
        "{:<8} {:>9} {:>7} {:>11} {:>14} {:>10}",
        "rate", "avg r/s", "err %", "median ms", "mode switches", "overflows"
    );
    for rate in [400.0, 600.0, 800.0, 1000.0, 1100.0] {
        let params = RunParams::paper(ServerKind::Hybrid, rate, inactive).with_conns(conns);
        let mut r = run_one(params);
        let err = r.error_percent();
        let med = r.median_latency_ms();
        println!(
            "{:<8} {:>9.1} {:>7.1} {:>11.2} {:>14} {:>10}",
            rate, r.rate.avg, err, med, r.server_metrics.mode_switches, r.server_metrics.overflows,
        );
    }

    println!();
    println!("At light load the server stays in signal mode (few switches).");
    println!("As the RT queue pressure grows the server flips to /dev/poll");
    println!("batching and back — the crossover the paper wanted to study,");
    println!("made cheap by maintaining the kernel interest set concurrently");
    println!("with RT signal activity (§6).");
}
