//! The RT-signal overflow protocol at API level (§2 of the paper):
//! queue events until the bounded RT queue overflows, observe SIGIO,
//! flush, and recover with `poll()`.
//!
//! ```text
//! cargo run --example rt_overflow_recovery
//! ```

use scalable_net_io::devpoll::{sys_poll, PollFd, PollOutcome, RtEvent, RtSignalApi};
use scalable_net_io::simcore::time::{SimDuration, SimTime};
use scalable_net_io::simkernel::{CostModel, Kernel, PollBits};
use scalable_net_io::simnet::{EndpointId, HostId, LinkConfig, Network, Side, SockAddr, TcpConfig};

const CLIENT: HostId = HostId(0);
const SERVER: HostId = HostId(1);

fn pump(net: &mut Network, kernel: &mut Kernel, until: SimTime) {
    while let Some(t) = net.next_deadline() {
        if t > until {
            break;
        }
        for n in net.advance(t) {
            kernel.on_net(t, &n);
        }
        let _ = kernel.advance(t);
    }
}

fn main() {
    let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
    let mut kernel = Kernel::new(SERVER, CostModel::k6_2_400mhz());
    // A deliberately tiny RT queue so the overflow is easy to trigger.
    let pid = kernel.spawn(1024, 8);
    let rtapi = RtSignalApi::default();

    let t0 = SimTime::ZERO;
    kernel.begin_batch(t0, pid);
    let lfd = kernel
        .sys_listen(&mut net, t0, pid, 80, 128)
        .expect("listen");
    kernel.end_batch(t0, pid);

    // Connect a client and register the accepted socket for
    // signal-driven I/O.
    let conn = net
        .connect(t0, CLIENT, SockAddr::new(SERVER, 80), SimDuration::ZERO)
        .expect("connect");
    let client_ep = EndpointId::new(conn, Side::Client);
    pump(&mut net, &mut kernel, SimTime::from_millis(5));
    let t = SimTime::from_millis(5);
    kernel.begin_batch(t, pid);
    let fd = kernel.sys_accept(&mut net, t, pid, lfd).expect("accept");
    rtapi.register(&mut kernel, pid, fd).expect("F_SETSIG");
    kernel.end_batch(t, pid);
    println!("registered fd {fd} for RT signal delivery (queue max = 8)");

    // Twelve separate data arrivals -> twelve readiness events -> the
    // queue (8 slots) overflows.
    for i in 0..12u64 {
        let at = SimTime::from_millis(10 + i * 5);
        net.send(at, client_ep, b"x").expect("client send");
        pump(&mut net, &mut kernel, at + SimDuration::from_millis(4));
    }
    let sig = &kernel.process(pid).signals;
    println!(
        "after the burst: queue depth {}, lost to overflow {}, SIGIO pending: {}",
        sig.queue_len(),
        sig.overflow_count(),
        sig.sigio_pending()
    );
    assert!(sig.sigio_pending(), "overflow must raise SIGIO");

    // Pick events up one at a time; SIGIO (the overflow notice)
    // delivers ahead of the queued RT signals.
    let t = SimTime::from_millis(100);
    kernel.begin_batch(t, pid);
    let first = rtapi.next_event(&mut kernel, pid).expect("first event");
    println!("first pickup: {first:?}");
    assert_eq!(first, RtEvent::Overflow);

    // Recovery step 1: flush the stale queue contents.
    let flushed = rtapi.flush(&mut kernel, pid);
    println!("flushed {flushed} stale signals");

    // Recovery step 2: a poll() over the connection set discovers what
    // is actually pending (§2: "to recover, it uses poll() to discover
    // any remaining pending activity").
    let mut fds = [PollFd::new(fd, PollBits::POLLIN)];
    let out = sys_poll(&mut kernel, t, pid, &mut fds, 0);
    println!("recovery poll(): {out:?}, revents {}", fds[0].revents);
    assert_eq!(out, PollOutcome::Ready(1));
    assert!(fds[0].revents.contains(PollBits::POLLIN));

    // Drain the socket; twelve writes of one byte arrived.
    let data = kernel.sys_read(&mut net, t, pid, fd, 4096).expect("read");
    println!("drained {} bytes after recovery", data.len());
    assert_eq!(data.len(), 12);
    kernel.end_batch(t, pid);
    println!("overflow recovery OK");
}
