//! Quickstart: drive the `/dev/poll` interface by hand against the
//! simulated kernel — open, declare interest with `write()`, wait with
//! `ioctl(DP_POLL)`, and serve one HTTP request.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use scalable_net_io::devpoll::{DevPollConfig, DevPollRegistry, DvPoll, PollFd, PollOutcome};
use scalable_net_io::simcore::time::{SimDuration, SimTime};
use scalable_net_io::simkernel::{CostModel, Kernel, KernelEvent, PollBits};
use scalable_net_io::simnet::{EndpointId, HostId, LinkConfig, Network, Side, SockAddr, TcpConfig};

const CLIENT: HostId = HostId(0);
const SERVER: HostId = HostId(1);

/// Pumps network + kernel until quiet, routing hint events.
fn pump(net: &mut Network, kernel: &mut Kernel, registry: &mut DevPollRegistry, until: SimTime) {
    while let Some(t) = net.next_deadline() {
        if t > until {
            break;
        }
        for n in net.advance(t) {
            kernel.on_net(t, &n);
        }
        for e in kernel.advance(t) {
            if let KernelEvent::FdEvent { pid, fd, .. } = e {
                registry.on_fd_event(kernel, t, pid, fd);
            }
        }
    }
}

fn main() {
    // A two-host world: a client and the paper's K6-2 server.
    let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
    let mut kernel = Kernel::new(SERVER, CostModel::k6_2_400mhz());
    let mut registry = DevPollRegistry::new();
    let pid = kernel.spawn_default();

    // listen(80) and open /dev/poll.
    let t0 = SimTime::ZERO;
    kernel.begin_batch(t0, pid);
    let lfd = kernel
        .sys_listen(&mut net, t0, pid, 80, 128)
        .expect("listen");
    let dpfd = registry
        .open(&mut kernel, t0, pid, DevPollConfig::default())
        .expect("open /dev/poll");
    // Declare interest in the listener.
    registry
        .write(
            &mut kernel,
            t0,
            pid,
            dpfd,
            &[PollFd::new(lfd, PollBits::POLLIN)],
        )
        .expect("write interest");
    kernel.end_batch(t0, pid);
    println!("server: listening on port 80, /dev/poll fd {dpfd}");

    // A client connects and sends a request.
    let conn = net
        .connect(t0, CLIENT, SockAddr::new(SERVER, 80), SimDuration::ZERO)
        .expect("connect");
    let client_ep = EndpointId::new(conn, Side::Client);
    pump(
        &mut net,
        &mut kernel,
        &mut registry,
        SimTime::from_millis(5),
    );
    net.send(
        SimTime::from_millis(5),
        client_ep,
        b"GET / HTTP/1.0\r\n\r\n",
    )
    .expect("send request");
    pump(
        &mut net,
        &mut kernel,
        &mut registry,
        SimTime::from_millis(10),
    );

    // DP_POLL reports the listener ready; accept and add the new socket
    // to the interest set.
    let t = SimTime::from_millis(10);
    kernel.begin_batch(t, pid);
    let (outcome, results) = registry
        .dp_poll(&mut kernel, t, pid, dpfd, DvPoll::into_user_buffer(16, 0))
        .expect("DP_POLL");
    println!("DP_POLL -> {outcome:?}, results {results:?}");
    assert!(matches!(outcome, PollOutcome::Ready(n) if n >= 1));
    let fd = kernel.sys_accept(&mut net, t, pid, lfd).expect("accept");
    kernel.sys_set_nonblock(pid, fd).expect("nonblock");
    registry
        .write(
            &mut kernel,
            t,
            pid,
            dpfd,
            &[PollFd::new(fd, PollBits::POLLIN)],
        )
        .expect("add interest");
    kernel.end_batch(t, pid);
    println!("server: accepted connection as fd {fd}");

    // Wait for the request, read it, answer it, remove the interest.
    pump(
        &mut net,
        &mut kernel,
        &mut registry,
        SimTime::from_millis(15),
    );
    let t = SimTime::from_millis(15);
    kernel.begin_batch(t, pid);
    let (_, results) = registry
        .dp_poll(&mut kernel, t, pid, dpfd, DvPoll::into_user_buffer(16, 0))
        .expect("DP_POLL");
    println!("DP_POLL results: {results:?}");
    let request = kernel.sys_read(&mut net, t, pid, fd, 4096).expect("read");
    println!("server: got {:?}", String::from_utf8_lossy(&request));
    let body = b"<html>hello from the simulated K6-2</html>";
    let response = format!("HTTP/1.0 200 OK\r\nContent-Length: {}\r\n\r\n", body.len());
    kernel
        .sys_write(&mut net, t, pid, fd, response.as_bytes())
        .expect("write headers");
    kernel
        .sys_write(&mut net, t, pid, fd, body)
        .expect("write body");
    registry
        .write(&mut kernel, t, pid, dpfd, &[PollFd::remove(fd)])
        .expect("remove interest");
    kernel.sys_close(&mut net, t, pid, fd).expect("close");
    kernel.end_batch(t, pid);

    // The client reads the reply.
    pump(
        &mut net,
        &mut kernel,
        &mut registry,
        SimTime::from_millis(120),
    );
    let reply = net
        .recv(SimTime::from_millis(120), client_ep, usize::MAX)
        .expect("recv");
    println!("client: received {} bytes:", reply.len());
    println!("{}", String::from_utf8_lossy(&reply));
    assert!(reply.starts_with(b"HTTP/1.0 200 OK"));
    println!("quickstart OK");
}
