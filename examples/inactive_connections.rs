//! The paper's central experiment in miniature: hold the request rate
//! fixed and grow the population of inactive, high-latency connections.
//! Stock `poll()` pays for every idle descriptor on every scan;
//! `/dev/poll` with driver hints does not.
//!
//! ```text
//! cargo run --release --example inactive_connections [rate] [conns]
//! ```

use scalable_net_io::httperf::{run_one, RunParams, ServerKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rate: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(700.0);
    let conns: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6_000);

    println!("Fixed request rate {rate} req/s; sweeping inactive connections.");
    println!();
    println!(
        "{:<10} | {:>9} {:>7} {:>11} | {:>9} {:>7} {:>11}",
        "", "poll()", "", "", "/dev/poll", "", ""
    );
    println!(
        "{:<10} | {:>9} {:>7} {:>11} | {:>9} {:>7} {:>11}",
        "inactive", "avg r/s", "err %", "median ms", "avg r/s", "err %", "median ms"
    );

    for inactive in [1usize, 101, 251, 501, 751] {
        let mut row = format!("{inactive:<10} |");
        for kind in [ServerKind::ThttpdPoll, ServerKind::ThttpdDevPoll] {
            let params = RunParams::paper(kind, rate, inactive).with_conns(conns);
            let mut r = run_one(params);
            let err = r.error_percent();
            let med = r.median_latency_ms();
            row.push_str(&format!(
                " {:>9.1} {:>7.1} {:>11.2} |",
                r.rate.avg, err, med
            ));
        }
        println!("{row}");
    }

    println!();
    println!("Shape check (paper §5.1): the poll() column degrades as inactive");
    println!("connections grow — latency climbs, then replies collapse and");
    println!("errors appear — while the /dev/poll column stays flat.");
}
