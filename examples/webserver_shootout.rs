//! The paper's headline comparison in one sitting: stock `poll()`,
//! `/dev/poll`, RT signals, and the proposed hybrid serve the same
//! workload — a fixed request rate with a population of inactive,
//! high-latency connections — and print their scorecards.
//!
//! ```text
//! cargo run --release --example webserver_shootout [rate] [inactive] [conns]
//! ```

use scalable_net_io::httperf::{run_one, RunParams, ServerKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rate: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(900.0);
    let inactive: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(251);
    let conns: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8_000);

    println!(
        "Workload: {rate} req/s, {inactive} inactive connections, {conns} total connections, 6 KB document"
    );
    println!();
    println!(
        "{:<24} {:>9} {:>9} {:>9} {:>7} {:>12}",
        "server", "avg r/s", "min r/s", "max r/s", "err %", "median ms"
    );

    for kind in [
        ServerKind::ThttpdPoll,
        ServerKind::ThttpdDevPoll,
        ServerKind::Phhttpd,
        ServerKind::Hybrid,
    ] {
        let params = RunParams::paper(kind, rate, inactive).with_conns(conns);
        let mut r = run_one(params);
        let err = r.error_percent();
        let med = r.median_latency_ms();
        println!(
            "{:<24} {:>9.1} {:>9.1} {:>9.1} {:>7.1} {:>12.2}",
            r.server, r.rate.avg, r.rate.min, r.rate.max, err, med,
        );
    }

    println!();
    println!("Expected ordering (the paper's conclusion): thttpd + /dev/poll");
    println!("scales best; stock poll() collapses under inactive load; phhttpd");
    println!("sits in between and melts down past its RT-queue knee.");
}
