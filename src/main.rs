//! `scalable-net-io` — command-line front end for the benchmark testbed.
//!
//! ```text
//! scalable-net-io run     --server devpoll --rate 900 --inactive 251
//! scalable-net-io compare --rate 900 --inactive 251
//! scalable-net-io sweep   --server poll --inactive 501
//! ```
//!
//! Figures and ablations live in the bench crate:
//! `cargo run --release -p bench --bin figures -- all`.

use scalable_net_io::bench::{effective_jobs, run_jobs};
use scalable_net_io::httperf::{run_one, LoadShape, RunParams, ServerKind};
use scalable_net_io::simcore::span::Phase;
use scalable_net_io::simcore::time::SimDuration;
use scalable_net_io::simcore::trace::CATEGORIES;
use scalable_net_io::simkernel::AcceptWake;

struct Opts {
    server: String,
    rate: f64,
    inactive: usize,
    conns: u64,
    seed: u64,
    loss: f64,
    doc_bytes: Option<usize>,
    bursty: bool,
    mem: bool,
    trace: Vec<String>,
    json: bool,
    jobs: Option<usize>,
    trace_export: Option<String>,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            server: "devpoll".to_string(),
            rate: 700.0,
            inactive: 251,
            conns: 8_000,
            seed: 42,
            loss: 0.0,
            doc_bytes: None,
            bursty: false,
            mem: false,
            trace: Vec::new(),
            json: false,
            jobs: None,
            trace_export: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: scalable-net-io <run|compare|sweep|stats|timeline> [options]\n\
         \n\
         commands:\n\
           run               one run, summary row\n\
           compare           one row per server architecture\n\
           sweep             rate sweep for one server\n\
           stats             one run, then the kernel probe snapshot\n\
                             (counters, gauges, latency histograms with\n\
                             p50/p90/p99)\n\
           timeline          one span-traced run, then the per-phase\n\
                             latency anatomy table (where each\n\
                             microsecond of request time went)\n\
         \n\
         options:\n\
           --server KIND     select|poll|devpoll|devpoll-sendfile|phhttpd|\n\
                             phhttpd-batch|hybrid|prefork-herd|prefork-excl\n\
           --rate R          targeted requests per second (default 700)\n\
           --inactive N      inactive connection population (default 251)\n\
           --conns N         connections per run (default 8000)\n\
           --seed S          RNG seed (default 42)\n\
           --loss P          random segment loss probability (default 0)\n\
           --doc-bytes N     served document size (default 6144)\n\
           --bursty          on/off burst arrivals instead of constant\n\
           --trace CATS      comma-separated event-trace categories:\n\
                             devpoll,rtsig,tcp,sched or all (printed after\n\
                             the run)\n\
           --mem             stats: include the mem.* gauge family\n\
                             (server/client footprint bytes, peak\n\
                             concurrent connections, EMFILE rejections)\n\
           --json            stats: emit JSON lines instead of the table\n\
           --trace-export D  timeline: write trace.json (Chrome trace)\n\
                             and trace.folded (flamegraph input) into\n\
                             directory D\n\
           --jobs N          compare/sweep: worker threads (default:\n\
                             BENCH_JOBS, then available parallelism);\n\
                             rows always print in grid order\n\
         \n\
         figures: cargo run --release -p bench --bin figures -- all\n\
         checks:  cargo run --release -p bench --bin verify_repro"
    );
    std::process::exit(2);
}

fn parse_kind(name: &str) -> Option<ServerKind> {
    Some(match name {
        "select" => ServerKind::ThttpdSelect,
        "poll" => ServerKind::ThttpdPoll,
        "devpoll" => ServerKind::ThttpdDevPoll,
        "devpoll-sendfile" => ServerKind::ThttpdDevPollSendfile,
        "phhttpd" => ServerKind::Phhttpd,
        "phhttpd-batch" => ServerKind::PhhttpdBatch(16),
        "hybrid" => ServerKind::Hybrid,
        "prefork-herd" => ServerKind::PreforkDevPoll {
            workers: 4,
            wake: AcceptWake::Herd,
        },
        "prefork-excl" => ServerKind::PreforkDevPoll {
            workers: 4,
            wake: AcceptWake::Exclusive,
        },
        _ => return None,
    })
}

fn params(kind: ServerKind, opts: &Opts, rate: f64) -> RunParams {
    let mut p = RunParams::paper(kind, rate, opts.inactive)
        .with_conns(opts.conns)
        .with_seed(opts.seed)
        .with_trace(opts.trace.iter().cloned());
    if opts.loss > 0.0 {
        p = p.with_loss(opts.loss);
    }
    if let Some(n) = opts.doc_bytes {
        p = p.with_doc_bytes(n);
    }
    if opts.bursty {
        p.load.shape = LoadShape::Bursty {
            period: SimDuration::from_millis(500),
            duty: 0.25,
        };
    }
    if opts.mem {
        p = p.with_mem_probes();
    }
    p
}

fn header() {
    println!(
        "{:<24} {:>7} {:>9} {:>9} {:>9} {:>7} {:>10} {:>10}",
        "server", "rate", "avg r/s", "min r/s", "max r/s", "err %", "median ms", "p90 ms"
    );
}

fn row(report: &mut scalable_net_io::httperf::RunReport) {
    let err = report.error_percent();
    let med = report.median_latency_ms();
    let p90 = report.latency_quantile_ms(0.9);
    println!(
        "{:<24} {:>7.0} {:>9.1} {:>9.1} {:>9.1} {:>7.1} {:>10.2} {:>10.2}",
        report.server,
        report.target_rate,
        report.rate.avg,
        report.rate.min,
        report.rate.max,
        err,
        med,
        p90,
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    let mut opts = Opts::default();
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--server" => opts.server = val(),
            "--rate" => opts.rate = val().parse().unwrap_or_else(|_| usage()),
            "--inactive" => opts.inactive = val().parse().unwrap_or_else(|_| usage()),
            "--conns" => opts.conns = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = val().parse().unwrap_or_else(|_| usage()),
            "--loss" => opts.loss = val().parse().unwrap_or_else(|_| usage()),
            "--doc-bytes" => opts.doc_bytes = Some(val().parse().unwrap_or_else(|_| usage())),
            "--bursty" => opts.bursty = true,
            "--mem" => opts.mem = true,
            "--trace" => {
                let cats = val();
                opts.trace.extend(cats.split(',').map(str::to_string));
            }
            "--json" => opts.json = true,
            "--jobs" => opts.jobs = Some(val().parse().unwrap_or_else(|_| usage())),
            "--trace-export" => opts.trace_export = Some(val()),
            other => {
                if let Some(cats) = other.strip_prefix("--trace=") {
                    opts.trace.extend(cats.split(',').map(str::to_string));
                } else {
                    usage()
                }
            }
        }
    }
    for cat in &opts.trace {
        if cat != "all" && !CATEGORIES.contains(&cat.as_str()) {
            eprintln!(
                "unknown trace category {cat:?} (expected one of: {}, all)",
                CATEGORIES.join(", ")
            );
            std::process::exit(2);
        }
    }

    match cmd.as_str() {
        "run" => {
            let Some(kind) = parse_kind(&opts.server) else {
                usage()
            };
            header();
            let mut r = run_one(params(kind, &opts, opts.rate));
            row(&mut r);
            if !r.trace.is_empty() {
                println!("\n{}", r.trace);
            }
        }
        "stats" => {
            let Some(kind) = parse_kind(&opts.server) else {
                usage()
            };
            let mut r = run_one(params(kind, &opts, opts.rate));
            if opts.json {
                let rate = format!("{}", r.target_rate);
                let load = format!("{}", r.inactive);
                print!(
                    "{}",
                    r.probe.to_json_lines_with(&[
                        ("server", r.server.as_str()),
                        ("rate", rate.as_str()),
                        ("inactive", load.as_str()),
                    ])
                );
            } else {
                header();
                row(&mut r);
                println!("\n{}", r.probe.to_text());
                let quantiles = r.probe.quantiles_text();
                if !quantiles.is_empty() {
                    println!("\n{quantiles}");
                }
            }
            if !r.trace.is_empty() {
                println!("\n{}", r.trace);
            }
        }
        "timeline" => {
            let Some(kind) = parse_kind(&opts.server) else {
                usage()
            };
            let mut r = run_one(params(kind, &opts, opts.rate).with_spans());
            header();
            row(&mut r);
            println!();
            println!(
                "{:<20} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10}",
                "phase", "spans", "total_us", "p50_ns", "p90_ns", "p99_ns", "ns/reply"
            );
            for phase in Phase::ALL {
                let Some(h) = r.probe.histogram(phase.metric()) else {
                    continue;
                };
                let per_reply = if r.replies > 0 {
                    h.sum() as f64 / r.replies as f64
                } else {
                    0.0
                };
                println!(
                    "{:<20} {:>10} {:>12.1} {:>10} {:>10} {:>10} {:>10.0}",
                    phase.name(),
                    h.count(),
                    h.sum() as f64 / 1e3,
                    h.quantile_est(0.5),
                    h.quantile_est(0.9),
                    h.quantile_est(0.99),
                    per_reply,
                );
            }
            if let Some(dir) = &opts.trace_export {
                std::fs::create_dir_all(dir).expect("create trace export dir");
                let json = std::path::Path::new(dir).join("trace.json");
                let folded = std::path::Path::new(dir).join("trace.folded");
                std::fs::write(&json, &r.span_chrome).expect("write chrome trace");
                std::fs::write(&folded, &r.span_folded).expect("write folded stacks");
                println!("\n[written {}]", json.display());
                println!("[written {}]", folded.display());
            }
        }
        "compare" => {
            let kinds: Vec<ServerKind> = ["select", "poll", "devpoll", "phhttpd", "hybrid"]
                .iter()
                .map(|name| parse_kind(name).expect("built-in kind"))
                .collect();
            let mut reports = run_jobs(effective_jobs(opts.jobs), &kinds, |&kind| {
                run_one(params(kind, &opts, opts.rate))
            });
            header();
            for r in &mut reports {
                row(r);
            }
        }
        "sweep" => {
            let Some(kind) = parse_kind(&opts.server) else {
                usage()
            };
            let rates: Vec<f64> = (0..=6).map(|step| 500.0 + 100.0 * step as f64).collect();
            let mut reports = run_jobs(effective_jobs(opts.jobs), &rates, |&rate| {
                run_one(params(kind, &opts, rate))
            });
            header();
            for r in &mut reports {
                row(r);
            }
        }
        _ => usage(),
    }
}
