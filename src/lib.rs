//! # scalable-net-io
//!
//! A complete reproduction of **“Scalable Network I/O in Linux”**
//! (Niels Provos & Chuck Lever, CITI TR 00-4, USENIX 2000 FREENIX
//! track) as a deterministic discrete-event simulation in Rust.
//!
//! The paper introduced a Linux implementation of the Solaris-style
//! `/dev/poll` interface — kernel-resident interest sets, device-driver
//! hints, and a shared `mmap` result area — and compared it against
//! stock `poll()` and the POSIX RT-signal event API using `thttpd` and
//! `phhttpd` under workloads with hundreds of inactive connections.
//!
//! This crate is a facade over the workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`simcore`] | discrete-event engine, deterministic RNG, statistics |
//! | [`simnet`] | hosts, 100 Mbit/s links, simplified TCP, TIME_WAIT, ports |
//! | [`simkernel`] | fd tables, sockets, wait queues, signals, the calibrated K6-2 CPU |
//! | [`devpoll`] | **the paper's contribution**: stock `poll()`, `/dev/poll`, RT-signal API |
//! | [`servers`] | `thttpd` (poll / devpoll), `phhttpd` (RT signals), the hybrid |
//! | [`httperf`] | the load generator, inactive connections, testbed, run controller |
//!
//! ## Quickstart
//!
//! Run one benchmark point:
//!
//! ```
//! use scalable_net_io::httperf::{run_one, RunParams, ServerKind};
//!
//! let params = RunParams::paper(ServerKind::ThttpdDevPoll, 300.0, 50).with_conns(200);
//! let report = run_one(params);
//! assert!(report.replies > 190);
//! ```
//!
//! Regenerate the paper's figures:
//!
//! ```text
//! cargo run --release -p bench --bin figures -- all
//! ```

// `pub use bench;` would resolve to the built-in (unstable) `bench`
// test-framework name instead of the crate; the explicit extern-crate
// form is unambiguous.
pub extern crate bench;
pub use devpoll;
pub use httperf;
pub use servers;
pub use simcore;
pub use simkernel;
pub use simnet;
