//! Incremental FNV-1a state fingerprinting.
//!
//! `simcheck explore` deduplicates world states by hashing a canonical
//! serialization of every semantic component (kernel mirrors, network
//! queues, interest tables, backend bookkeeping) into one 64-bit
//! fingerprint. The hasher is deliberately tiny and dependency-free:
//! the one-shot [`crate::probe::fnv1a`] with streaming `write_*`
//! helpers layered on top, so each subsystem can fold itself in
//! without materializing an intermediate byte buffer.
//!
//! Determinism note: callers must feed fields in a fixed, documented
//! order and length-prefix variable-size collections (see
//! [`Fnv::write_len`]) so that distinct states never collide by
//! concatenation ambiguity.

/// Streaming FNV-1a (64-bit) hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv(u64);

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x100_0000_01b3;

impl Fnv {
    /// A hasher at the standard FNV offset basis.
    pub fn new() -> Fnv {
        Fnv(OFFSET)
    }

    /// Folds one byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(PRIME);
    }

    /// Folds a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Folds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `usize` widened to `u64` (platform-independent digest).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Length prefix for a variable-size collection. Always call this
    /// before folding the elements so `[a] ++ [b]` and `[a, b]` hash
    /// differently.
    pub fn write_len(&mut self, len: usize) {
        self.write_u64(len as u64);
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_one_shot_fnv1a() {
        let mut h = Fnv::new();
        h.write_bytes(b"hello");
        assert_eq!(h.finish(), crate::probe::fnv1a(b"hello"));
    }

    #[test]
    fn empty_is_offset_basis() {
        assert_eq!(Fnv::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn length_prefix_disambiguates_concatenation() {
        let mut a = Fnv::new();
        a.write_len(1);
        a.write_u64(7);
        a.write_len(1);
        a.write_u64(9);
        let mut b = Fnv::new();
        b.write_len(2);
        b.write_u64(7);
        b.write_u64(9);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn streaming_order_matters() {
        let mut a = Fnv::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }
}
