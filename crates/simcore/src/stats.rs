//! Measurement primitives: online moments, exact quantiles, histograms,
//! and the per-interval rate sampler used for the paper's reply-rate
//! figures (average, minimum and maximum rate over one-second windows).

use crate::time::{SimDuration, SimTime};

/// Running mean / variance / extrema without storing samples
/// (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use simcore::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.add(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.stddev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Returns the number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Returns the sample mean, or `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Returns the population standard deviation, or `0.0` for fewer than
    /// two samples.
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Returns the smallest sample, or `0.0` if empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Returns the largest sample, or `0.0` if empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Exact quantiles over a stored sample set.
///
/// Stores every sample (the benchmark collects at most tens of thousands
/// of latencies per run, which is cheap) and sorts lazily on query.
///
/// # Examples
///
/// ```
/// use simcore::stats::Quantiles;
///
/// let mut q = Quantiles::new();
/// for x in 1..=100 {
///     q.add(x as f64);
/// }
/// assert_eq!(q.median(), Some(50.5));
/// assert_eq!(q.quantile(0.0), Some(1.0));
/// assert_eq!(q.quantile(1.0), Some(100.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Quantiles {
    xs: Vec<f64>,
    sorted: bool,
}

impl Quantiles {
    /// Creates an empty collector.
    pub fn new() -> Quantiles {
        Quantiles {
            xs: Vec::new(),
            sorted: true,
        }
    }

    /// Adds a sample. NaN samples are ignored.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.xs.push(x);
        self.sorted = false;
    }

    /// Returns the number of samples.
    pub fn count(&self) -> usize {
        self.xs.len()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.xs
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("invariant: NaN filtered on add"));
            self.sorted = true;
        }
    }

    /// Returns the `q`-quantile (linear interpolation between order
    /// statistics), or `None` if empty. `q` is clamped to `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.xs.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.xs.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.xs[lo] * (1.0 - frac) + self.xs[hi] * frac)
    }

    /// Returns the median, or `None` if empty.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Returns the mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.xs.is_empty() {
            None
        } else {
            Some(self.xs.iter().sum::<f64>() / self.xs.len() as f64)
        }
    }
}

/// A fixed-width histogram over `[0, width * buckets)` with an overflow
/// bucket, used by benches to sanity-check latency distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `width` each.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive or `buckets` is zero.
    pub fn new(width: f64, buckets: usize) -> Histogram {
        assert!(width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Records a sample. Negative samples land in bucket zero.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x.is_nan() {
            self.overflow += 1;
            return;
        }
        let idx = (x.max(0.0) / self.width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Returns the total number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns the count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Returns the overflow count.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Returns the smallest `x` such that at least `q` of all samples are
    /// `< x` (bucket upper-bound approximation), or `None` if empty.
    pub fn approx_quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i + 1) as f64 * self.width);
            }
        }
        Some(self.counts.len() as f64 * self.width)
    }
}

/// Counts events into fixed-length time windows and reports the
/// per-window rate statistics the paper plots: average reply rate with
/// standard deviation, plus per-run minimum and maximum window rates.
///
/// A window with zero events still counts (that is precisely the
/// "minimum response rate approaches zero" starvation signal in Figs. 6
/// and 8), so [`RateSampler::finish`] closes out all windows up to the
/// provided end time.
#[derive(Debug, Clone)]
pub struct RateSampler {
    window: SimDuration,
    start: SimTime,
    current_window: u64,
    current_count: u64,
    rates: Vec<f64>,
}

impl RateSampler {
    /// Creates a sampler with the given window length, starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(start: SimTime, window: SimDuration) -> RateSampler {
        assert!(!window.is_zero(), "window must be non-zero");
        RateSampler {
            window,
            start,
            current_window: 0,
            current_count: 0,
            rates: Vec::new(),
        }
    }

    fn window_of(&self, t: SimTime) -> u64 {
        t.saturating_duration_since(self.start).as_nanos() / self.window.as_nanos()
    }

    fn close_until(&mut self, w: u64) {
        let per_sec = 1e9 / self.window.as_nanos() as f64;
        while self.current_window < w {
            self.rates.push(self.current_count as f64 * per_sec);
            self.current_count = 0;
            self.current_window += 1;
        }
    }

    /// Records one event at time `t`.
    ///
    /// Events must be recorded in non-decreasing time order; an event
    /// earlier than the current window is counted in the current window.
    pub fn record(&mut self, t: SimTime) {
        let w = self.window_of(t);
        if w > self.current_window {
            self.close_until(w);
        }
        self.current_count += 1;
    }

    /// Closes all windows up to `end` and returns per-window rates in
    /// events per second.
    pub fn finish(mut self, end: SimTime) -> Vec<f64> {
        let w = self.window_of(end);
        self.close_until(w);
        // The final (partial) window is dropped: partial windows would
        // understate the rate and pollute the min statistic.
        self.rates
    }
}

/// Summary of per-window rates: the numbers plotted in Figs. 4–9/11–13.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSummary {
    /// Mean of the window rates.
    pub avg: f64,
    /// Standard deviation of the window rates.
    pub stddev: f64,
    /// Smallest window rate.
    pub min: f64,
    /// Largest window rate.
    pub max: f64,
}

impl RateSummary {
    /// Summarizes a slice of per-window rates.
    ///
    /// Returns an all-zero summary for an empty slice.
    pub fn of(rates: &[f64]) -> RateSummary {
        let mut s = OnlineStats::new();
        for &r in rates {
            s.add(r);
        }
        RateSummary {
            avg: s.mean(),
            stddev: s.stddev(),
            min: s.min(),
            max: s.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        s.add(1.0);
        s.add(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.stddev(), 1.0);
    }

    #[test]
    fn quantiles_median_even_odd() {
        let mut q = Quantiles::new();
        for x in [5.0, 1.0, 3.0] {
            q.add(x);
        }
        assert_eq!(q.median(), Some(3.0));
        q.add(7.0);
        assert_eq!(q.median(), Some(4.0));
    }

    #[test]
    fn quantiles_empty_and_nan() {
        let mut q = Quantiles::new();
        assert_eq!(q.median(), None);
        q.add(f64::NAN);
        assert_eq!(q.count(), 0);
        assert_eq!(q.mean(), None);
    }

    #[test]
    fn quantiles_interpolates() {
        let mut q = Quantiles::new();
        for x in [0.0, 10.0] {
            q.add(x);
        }
        assert_eq!(q.quantile(0.25), Some(2.5));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10.0, 3);
        h.add(0.0);
        h.add(9.99);
        h.add(10.0);
        h.add(25.0);
        h.add(31.0);
        h.add(-5.0);
        assert_eq!(h.bucket(0), 3); // 0.0, 9.99, -5.0
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_quantile_approx() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.add(i as f64);
        }
        let med = h.approx_quantile(0.5).unwrap();
        assert!((49.0..=51.0).contains(&med), "median approx {med}");
    }

    #[test]
    fn rate_sampler_counts_windows() {
        let w = SimDuration::from_secs(1);
        let mut r = RateSampler::new(SimTime::ZERO, w);
        // 3 events in second 0, none in second 1, 2 in second 2.
        r.record(SimTime::from_millis(100));
        r.record(SimTime::from_millis(200));
        r.record(SimTime::from_millis(900));
        r.record(SimTime::from_millis(2_100));
        r.record(SimTime::from_millis(2_200));
        let rates = r.finish(SimTime::from_secs(3));
        assert_eq!(rates, vec![3.0, 0.0, 2.0]);
        let s = RateSummary::of(&rates);
        assert!((s.avg - 5.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn rate_sampler_drops_partial_final_window() {
        let w = SimDuration::from_secs(1);
        let mut r = RateSampler::new(SimTime::ZERO, w);
        r.record(SimTime::from_millis(500));
        let rates = r.finish(SimTime::from_millis(1_500));
        assert_eq!(rates, vec![1.0]);
    }

    #[test]
    fn rate_sampler_sub_second_window_scales_to_per_sec() {
        let w = SimDuration::from_millis(500);
        let mut r = RateSampler::new(SimTime::ZERO, w);
        r.record(SimTime::from_millis(100)); // window 0
        r.record(SimTime::from_millis(400)); // window 0
        let rates = r.finish(SimTime::from_millis(1_000));
        assert_eq!(rates, vec![4.0, 0.0]);
    }

    #[test]
    fn rate_summary_empty() {
        let s = RateSummary::of(&[]);
        assert_eq!(s.avg, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }
}
