#![warn(missing_docs)]

//! `simcore` — deterministic discrete-event simulation engine.
//!
//! This crate is the foundation of the reproduction of *Scalable Network
//! I/O in Linux* (Provos & Lever, USENIX 2000). It provides:
//!
//! * [`time`] — the simulated clock ([`time::SimTime`],
//!   [`time::SimDuration`]);
//! * [`engine`] — the event queue and scheduler ([`engine::Engine`]);
//! * [`rng`] — seeded, fork-able randomness ([`rng::SimRng`]);
//! * [`stats`] — measurement primitives (online moments, exact quantiles,
//!   the per-window [`stats::RateSampler`] behind the paper's reply-rate
//!   plots);
//! * [`series`] — figure/series containers with CSV and ASCII rendering;
//! * [`probe`] — the cross-crate metric registry (counters, gauges,
//!   log2 histograms) behind every run's observability snapshot;
//! * [`span`] — deterministic scoped span tracing, the latency-anatomy
//!   layer ([`span::SpanTracer`]).
//!
//! Everything is single-threaded and deterministic: a run is exactly
//! reproducible from its RNG seed.

pub mod engine;
pub mod fingerprint;
pub mod paged;
pub mod probe;
pub mod rng;
pub mod series;
pub mod span;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{BoxedEvent, Engine, Event, EventFn, EventId};
pub use paged::{PagedBits, PagedSlots, PAGE_SLOTS};
pub use probe::{Gauge, Histogram, MetricRegistry, Snapshot};
pub use rng::SimRng;
pub use span::{Phase, SpanGuard, SpanRecord, SpanTracer};
pub use stats::{OnlineStats, Quantiles, RateSampler, RateSummary};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEntry};
