//! Deterministic randomness for simulations.
//!
//! All stochastic choices in a run flow through a single seeded [`SimRng`]
//! (or children forked from it), so a run is exactly reproducible from its
//! seed. The implementation is a small, self-contained SplitMix64 /
//! xoshiro256++ pair rather than a trait-object tangle: benchmark inner
//! loops draw from it heavily.

/// A seedable, fork-able pseudo-random number generator.
///
/// The generator is xoshiro256++ seeded via SplitMix64, which has good
/// statistical quality for simulation purposes and is trivially portable.
///
/// # Examples
///
/// ```
/// use simcore::rng::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a seed.
    ///
    /// Any seed (including zero) is valid; the internal state is expanded
    /// with SplitMix64 so similar seeds do not produce correlated streams.
    pub fn new(seed: u64) -> SimRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent child generator.
    ///
    /// Forking lets subsystems (e.g. each client process) own a stream that
    /// is unaffected by how often other subsystems draw.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a float uniformly distributed in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a value uniformly distributed in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        // Lemire-style rejection-free-enough mapping; bias is negligible
        // for the range sizes used in the simulator.
        let span = hi - lo;
        lo + (self.next_u64() % span)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Draws from an exponential distribution with the given mean.
    ///
    /// Used for Poisson inter-arrival times in open-loop load generation.
    /// A non-positive or NaN mean yields `0.0`.
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean.is_nan() || mean <= 0.0 {
            return 0.0;
        }
        // Inverse-CDF; `1 - u` avoids ln(0).
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        let n = xs.len();
        for i in (1..n).rev() {
            let j = self.gen_range(0, (i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose: empty slice");
        &xs[self.gen_range(0, xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_independent_of_parent_draw_count() {
        let mut a = SimRng::new(9);
        let mut child = a.fork();
        let expected: Vec<u64> = (0..5).map(|_| child.next_u64()).collect();
        // Re-derive: fork consumes exactly one parent draw.
        let mut a2 = SimRng::new(9);
        let mut child2 = a2.fork();
        let got: Vec<u64> = (0..5).map(|_| child2.next_u64()).collect();
        assert_eq!(expected, got);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SimRng::new(4);
        for _ in 0..10_000 {
            let x = r.gen_range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_empty_panics() {
        SimRng::new(0).gen_range(5, 5);
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::new(5);
        let n = 100_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let got = sum / n as f64;
        assert!(
            (got - mean).abs() < 0.1,
            "sample mean {got} far from {mean}"
        );
    }

    #[test]
    fn exp_degenerate_means() {
        let mut r = SimRng::new(5);
        assert_eq!(r.exp(0.0), 0.0);
        assert_eq!(r.exp(-1.0), 0.0);
        assert_eq!(r.exp(f64::NAN), 0.0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::new(6);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(8);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut r = SimRng::new(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "got {frac}");
    }
}
