//! Simulated time.
//!
//! The simulation clock is a monotonically non-decreasing count of
//! nanoseconds since the start of the run. Nanosecond granularity is fine
//! enough to express every cost in the calibrated cost model (the smallest
//! constants are on the order of tens of nanoseconds) while a `u64` still
//! covers ~584 years of simulated time, far beyond any benchmark run.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since time zero.
///
/// `SimTime` is ordered, hashable and cheap to copy. Arithmetic with
/// [`SimDuration`] is checked in debug builds (overflow panics) and
/// saturating semantics are available via [`SimTime::saturating_add`].
///
/// # Examples
///
/// ```
/// use simcore::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use simcore::time::SimDuration;
///
/// let d = SimDuration::from_micros(2) * 3;
/// assert_eq!(d.as_nanos(), 6_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after time zero.
    pub const fn from_nanos(nanos: u64) -> SimTime {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after time zero.
    pub const fn from_micros(micros: u64) -> SimTime {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after time zero.
    pub const fn from_millis(millis: u64) -> SimTime {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after time zero.
    pub const fn from_secs(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000_000)
    }

    /// Returns the instant as nanoseconds since time zero.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as (truncated) microseconds since time zero.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the instant as (truncated) milliseconds since time zero.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the instant as seconds since time zero, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("invariant: duration_since needs `earlier` <= `self`"),
        )
    }

    /// Returns the duration elapsed since `earlier`, or zero if `earlier`
    /// is in the future.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, clamping at [`SimTime::MAX`] instead of
    /// overflowing.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> SimDuration {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> SimDuration {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> SimDuration {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> SimDuration {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from a floating-point number of seconds.
    ///
    /// Negative and NaN inputs are clamped to zero; values beyond the
    /// representable range are clamped to [`SimDuration::MAX`].
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos as u64)
        }
    }

    /// Returns the span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span in (truncated) microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the span in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Adds two spans, clamping at [`SimDuration::MAX`].
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Subtracts `other`, clamping at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a float factor, clamping to the
    /// representable range. Useful for cost-model scaling.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn time_duration_arithmetic() {
        let t0 = SimTime::from_micros(10);
        let d = SimDuration::from_micros(5);
        let t1 = t0 + d;
        assert_eq!(t1.as_micros(), 15);
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.duration_since(t0), d);
        assert_eq!(t0.saturating_duration_since(t1), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_reversed_order() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_nanos(1));
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::ZERO.saturating_sub(SimDuration::from_nanos(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e300), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.mul_f64(0.5).as_micros(), 50);
        assert_eq!(d.mul_f64(3.0).as_micros(), 300);
    }
}
