//! A bounded in-memory event trace for debugging simulations.
//!
//! Subsystems record one-line entries under a category; the trace keeps
//! the most recent `capacity` entries and per-category counts. Tracing
//! is off by default and costs one branch per call site when disabled.
//!
//! # Examples
//!
//! ```
//! use simcore::trace::Trace;
//! use simcore::time::SimTime;
//!
//! let mut trace = Trace::new(128);
//! trace.enable("tcp");
//! if trace.wants("tcp") {
//!     trace.record(SimTime::from_micros(3), "tcp", "SYN host0 -> host1");
//! }
//! assert_eq!(trace.count("tcp"), 1);
//! assert!(trace.dump().contains("SYN"));
//! ```

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::collections::VecDeque;

use crate::time::SimTime;

/// The trace categories the simulation stack records under. CLI flags
/// map user strings onto these statics via [`Trace::enable_by_name`].
pub const CATEGORIES: &[&str] = &["devpoll", "rtsig", "tcp", "sched"];

/// One trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When it happened.
    pub at: SimTime,
    /// The subsystem category (`"tcp"`, `"sched"`, …).
    pub category: &'static str,
    /// The message.
    pub message: String,
}

/// A bounded, category-filtered event trace.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    capacity: usize,
    entries: VecDeque<TraceEntry>,
    // Ordered sets/maps so any iteration over categories — and thus
    // every rendered dump — is deterministic (simcheck hash-iter rule).
    enabled: BTreeSet<&'static str>,
    all: bool,
    counts: BTreeMap<&'static str, u64>,
    dropped: u64,
}

impl Trace {
    /// Creates a trace keeping at most `capacity` entries.
    pub fn new(capacity: usize) -> Trace {
        Trace {
            capacity: capacity.max(1),
            ..Trace::default()
        }
    }

    /// Enables one category.
    pub fn enable(&mut self, category: &'static str) {
        self.enabled.insert(category);
    }

    /// Enables every category.
    pub fn enable_all(&mut self) {
        self.all = true;
    }

    /// Enables a category named by a runtime string (CLI input).
    ///
    /// `"all"` enables everything. Returns `false` for names outside
    /// [`CATEGORIES`], leaving the trace unchanged.
    pub fn enable_by_name(&mut self, name: &str) -> bool {
        if name == "all" {
            self.enable_all();
            return true;
        }
        match CATEGORIES.iter().find(|&&c| c == name) {
            Some(&c) => {
                self.enable(c);
                true
            }
            None => false,
        }
    }

    /// Disables one category.
    pub fn disable(&mut self, category: &'static str) {
        self.enabled.remove(category);
        self.all = false;
    }

    /// Whether call sites should bother formatting a message.
    pub fn wants(&self, category: &'static str) -> bool {
        self.all || self.enabled.contains(category)
    }

    /// Records an entry (call sites should guard with [`Trace::wants`]
    /// to avoid formatting costs when disabled).
    pub fn record(&mut self, at: SimTime, category: &'static str, message: impl Into<String>) {
        if !self.wants(category) {
            return;
        }
        *self.counts.entry(category).or_insert(0) += 1;
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            at,
            category,
            message: message.into(),
        });
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total recordings in `category` (including evicted ones).
    pub fn count(&self, category: &'static str) -> u64 {
        self.counts.get(category).copied().unwrap_or(0)
    }

    /// Iterates retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Retained entries of one category.
    pub fn of(&self, category: &'static str) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.category == category)
    }

    /// Renders the retained entries as text, one line each.
    pub fn dump(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(out, "[{}] {:>8}: {}", e.at, e.category, e.message);
        }
        out
    }

    /// Clears retained entries and counts.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.counts.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_records_nothing() {
        let mut t = Trace::new(8);
        t.record(SimTime::ZERO, "tcp", "dropped");
        assert!(t.is_empty());
        assert_eq!(t.count("tcp"), 0);
    }

    #[test]
    fn enable_filters_by_category() {
        let mut t = Trace::new(8);
        t.enable("tcp");
        t.record(SimTime::ZERO, "tcp", "kept");
        t.record(SimTime::ZERO, "sched", "dropped");
        assert_eq!(t.len(), 1);
        assert_eq!(t.count("tcp"), 1);
        assert_eq!(t.count("sched"), 0);
        assert!(t.wants("tcp"));
        assert!(!t.wants("sched"));
    }

    #[test]
    fn enable_all_keeps_everything() {
        let mut t = Trace::new(8);
        t.enable_all();
        t.record(SimTime::ZERO, "a", "1");
        t.record(SimTime::ZERO, "b", "2");
        assert_eq!(t.len(), 2);
        t.disable("a");
        assert!(!t.wants("a"), "disable clears enable_all");
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t = Trace::new(3);
        t.enable("x");
        for i in 0..5 {
            t.record(SimTime::from_nanos(i), "x", format!("e{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let first = t.iter().next().unwrap();
        assert_eq!(first.message, "e2");
        assert_eq!(t.count("x"), 5, "counts include evicted entries");
    }

    #[test]
    fn enable_by_name_maps_cli_strings() {
        let mut t = Trace::new(8);
        assert!(t.enable_by_name("devpoll"));
        assert!(t.wants("devpoll"));
        assert!(!t.enable_by_name("bogus"));
        assert!(!t.wants("tcp"));
        assert!(t.enable_by_name("all"));
        assert!(t.wants("tcp"));
    }

    #[test]
    fn of_and_dump() {
        let mut t = Trace::new(8);
        t.enable_all();
        t.record(SimTime::from_micros(1), "tcp", "syn");
        t.record(SimTime::from_micros(2), "sched", "wake");
        assert_eq!(t.of("tcp").count(), 1);
        let dump = t.dump();
        assert!(dump.contains("syn"));
        assert!(dump.contains("sched"));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.count("tcp"), 0);
    }
}
