//! The cross-crate probe layer: a metric registry every subsystem
//! records into, plus snapshot rendering for reports.
//!
//! Three metric kinds cover the paper's internal quantities:
//!
//! * **counters** — monotonic event counts (driver polls, RT-signal
//!   overflows);
//! * **gauges** — instantaneous levels with a high-water mark (RT queue
//!   depth, interest-table size);
//! * **histograms** — log2-bucketed value distributions (per-syscall
//!   simulated latency, event batch sizes).
//!
//! Metrics are keyed by `&'static str` so a record is one branch-free
//! map update, and stored in `BTreeMap`s so iteration — and therefore
//! every rendered snapshot — is deterministic. Two identical seeded runs
//! produce byte-identical snapshots.
//!
//! # Examples
//!
//! ```
//! use simcore::probe::MetricRegistry;
//!
//! let mut probe = MetricRegistry::new();
//! probe.inc("devpoll.scans");
//! probe.gauge_set("rtsig.queue_depth", 7);
//! probe.observe("syscall_ns.read", 2_300);
//! let snap = probe.snapshot();
//! assert_eq!(snap.counter("devpoll.scans"), 1);
//! assert!(snap.to_text().contains("rtsig.queue_depth"));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Highest log2 bucket index: values up to `u64::MAX` land in bucket 64.
pub const HIST_MAX_BUCKET: usize = 64;

/// A level with a high-water mark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    /// Current value.
    pub value: u64,
    /// Largest value ever set.
    pub high_water: u64,
}

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds exactly the value 0; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`, so `u64::MAX` lands in bucket [`HIST_MAX_BUCKET`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    buckets: [u64; HIST_MAX_BUCKET + 1],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_MAX_BUCKET + 1],
        }
    }
}

/// The log2 bucket index of a value.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (u64::BITS - value.leading_zeros()) as usize
    }
}

/// Inclusive lower bound of a bucket.
pub fn bucket_lo(index: usize) -> u64 {
    if index <= 1 {
        index as u64
    } else {
        1u64 << (index - 1)
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in the bucket with the given index.
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the log2 buckets
    /// by upper-bound interpolation: the target rank is located in its
    /// bucket, then the estimate interpolates linearly from the bucket's
    /// lower bound toward its upper bound (clamped to the observed
    /// min/max). Exact values are lost to bucketing, so this is an
    /// estimate with at most one-bucket (2×) error — plenty for p50/p90/
    /// p99 tables.
    pub fn quantile_est(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let lo = bucket_lo(i).max(self.min);
                let hi = if i >= HIST_MAX_BUCKET {
                    u64::MAX
                } else {
                    bucket_lo(i + 1).saturating_sub(1)
                }
                .min(self.max);
                let frac = (target - cum) as f64 / c as f64;
                let est = lo as f64 + frac * hi.saturating_sub(lo) as f64;
                return (est as u64).clamp(lo, hi);
            }
            cum += c;
        }
        self.max
    }

    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), c))
            .collect()
    }
}

/// The registry all subsystems record into.
///
/// Owned by the simulated kernel and reachable from every syscall and
/// device path; end-of-run folding merges counters kept elsewhere (the
/// network stack, server metrics) before a snapshot is taken.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, Gauge>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricRegistry {
        MetricRegistry::default()
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge, updating its high-water mark.
    pub fn gauge_set(&mut self, name: &'static str, value: u64) {
        let g = self.gauges.entry(name).or_default();
        g.value = value;
        g.high_water = g.high_water.max(value);
    }

    /// Current gauge state.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges.get(name).copied().unwrap_or_default()
    }

    /// Records a histogram sample.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.hists.entry(name).or_default().observe(value);
    }

    /// Histogram access (None if never touched).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Clears every metric.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.hists.clear();
    }

    /// Takes an immutable, ordered snapshot for rendering and reports.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(&k, &g)| (k.to_string(), g))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(&k, h)| (k.to_string(), h.clone()))
                .collect(),
        }
    }
}

/// An ordered, owned copy of the registry at one instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, Gauge)>,
    hists: Vec<(String, Histogram)>,
}

impl Snapshot {
    /// Counter value by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Gauge by name (zeros if absent).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .iter()
            .find(|(k, _)| k == name)
            .map_or(Gauge::default(), |&(_, g)| g)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Renders an aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(k, _)| k.len())
            .chain(self.gauges.iter().map(|(k, _)| k.len()))
            .chain(self.hists.iter().map(|(k, _)| k.len()))
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<width$}  {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (k, g) in &self.gauges {
                let _ = writeln!(out, "  {k:<width$}  {} (high {})", g.value, g.high_water);
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (k, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {k:<width$}  n={} mean={:.1} min={} max={}",
                    h.count(),
                    h.mean(),
                    h.min(),
                    h.max()
                );
                let buckets = h.nonzero_buckets();
                if !buckets.is_empty() {
                    let mut line = String::from("  ");
                    line.push_str(&" ".repeat(width));
                    line.push_str("  ");
                    for (lo, c) in buckets {
                        let _ = write!(line, "[{lo}+]:{c} ");
                    }
                    let _ = writeln!(out, "{}", line.trim_end());
                }
            }
        }
        out
    }

    /// Renders a per-histogram quantile table (p50/p90/p99 by
    /// [`Histogram::quantile_est`] upper-bound interpolation), so phase
    /// and syscall latency histograms are readable without the JSON
    /// export. Kept separate from [`Snapshot::to_text`] so existing
    /// rendered output — and every digest derived from it — stays
    /// byte-identical.
    pub fn quantiles_text(&self) -> String {
        let mut out = String::new();
        if self.hists.is_empty() {
            return out;
        }
        let width = self
            .hists
            .iter()
            .map(|(k, _)| k.len())
            .max()
            .unwrap_or(0)
            .max("histogram".len());
        let _ = writeln!(
            out,
            "  {:<width$}  {:>12} {:>12} {:>12} {:>12}",
            "histogram", "n", "p50", "p90", "p99"
        );
        for (k, h) in &self.hists {
            let _ = writeln!(
                out,
                "  {k:<width$}  {:>12} {:>12} {:>12} {:>12}",
                h.count(),
                h.quantile_est(0.50),
                h.quantile_est(0.90),
                h.quantile_est(0.99),
            );
        }
        out
    }

    /// Renders one JSON object per line (JSON-lines), no tags.
    pub fn to_json_lines(&self) -> String {
        self.to_json_lines_with(&[])
    }

    /// A stable 64-bit digest of the snapshot (FNV-1a over the rendered
    /// JSON lines). Two identical seeded runs produce equal digests on
    /// every platform, so baselines can compare whole probe snapshots as
    /// one number without shipping them.
    pub fn digest(&self) -> u64 {
        fnv1a(self.to_json_lines().as_bytes())
    }

    /// [`Snapshot::digest`] rendered as fixed-width hex, the form stored
    /// in `BENCH.json`.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }

    /// Renders JSON-lines with extra leading string fields on each line
    /// (e.g. `[("server", "devpoll"), ("rate", "700")]`).
    pub fn to_json_lines_with(&self, tags: &[(&str, &str)]) -> String {
        let mut out = String::new();
        let prefix = {
            let mut p = String::new();
            for (k, v) in tags {
                let _ = write!(p, "\"{}\":\"{}\",", escape(k), escape(v));
            }
            p
        };
        for (k, v) in &self.counters {
            let _ = writeln!(
                out,
                "{{{prefix}\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
                escape(k)
            );
        }
        for (k, g) in &self.gauges {
            let _ = writeln!(
                out,
                "{{{prefix}\"type\":\"gauge\",\"name\":\"{}\",\"value\":{},\"high_water\":{}}}",
                escape(k),
                g.value,
                g.high_water
            );
        }
        for (k, h) in &self.hists {
            let mut buckets = String::new();
            for (i, (lo, c)) in h.nonzero_buckets().iter().enumerate() {
                if i > 0 {
                    buckets.push(',');
                }
                let _ = write!(buckets, "[{lo},{c}]");
            }
            let _ = writeln!(
                out,
                "{{{prefix}\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{buckets}]}}",
                escape(k),
                h.count(),
                h.sum(),
                h.min(),
                h.max()
            );
        }
        out
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms —
/// exactly what a checked-in baseline digest needs. Not cryptographic.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Minimal JSON string escaping (metric names and tags are plain ASCII,
/// but be safe).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        // The three edge cases: 0 has its own bucket, 1 starts the log2
        // ladder, u64::MAX lands in the last bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HIST_MAX_BUCKET);
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_lo(1), 1);
        assert_eq!(bucket_lo(2), 2);
        assert_eq!(bucket_lo(3), 4);
    }

    #[test]
    fn histogram_observes_edge_values() {
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(HIST_MAX_BUCKET), 1);
        let nz = h.nonzero_buckets();
        assert_eq!(nz.len(), 3);
        assert_eq!(nz[0], (0, 1));
        assert_eq!(nz[1], (1, 1));
        assert_eq!(nz[2], (1u64 << 63, 1));
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::default();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantile_est_interpolates_toward_upper_bound() {
        let mut h = Histogram::default();
        // 100 samples of 1000: every quantile is inside bucket [512,1023],
        // clamped to the observed min==max.
        for _ in 0..100 {
            h.observe(1000);
        }
        assert_eq!(h.quantile_est(0.50), 1000);
        assert_eq!(h.quantile_est(0.99), 1000);
        // Bimodal: 90 low (value 8) + 10 high (value 5000).
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.observe(8);
        }
        for _ in 0..10 {
            h.observe(5000);
        }
        let p50 = h.quantile_est(0.50);
        assert!((8..=15).contains(&p50), "p50={p50}");
        let p90 = h.quantile_est(0.90);
        assert!((8..=15).contains(&p90), "p90={p90}");
        let p99 = h.quantile_est(0.99);
        assert!((4096..=5000).contains(&p99), "p99={p99}");
        // Degenerate inputs.
        assert_eq!(Histogram::default().quantile_est(0.5), 0);
        assert_eq!(h.quantile_est(0.0), 8);
        assert_eq!(h.quantile_est(1.0), 5000);
    }

    #[test]
    fn quantiles_text_lists_histograms_only() {
        let mut p = MetricRegistry::new();
        p.inc("counter.only");
        assert!(p.snapshot().quantiles_text().is_empty());
        for v in 1..=100u64 {
            p.observe("span_ns.read", v);
        }
        let text = p.snapshot().quantiles_text();
        assert!(text.contains("span_ns.read"));
        assert!(text.contains("p99"));
        assert!(!text.contains("counter.only"));
    }

    #[test]
    fn gauge_tracks_high_water() {
        let mut p = MetricRegistry::new();
        p.gauge_set("q", 3);
        p.gauge_set("q", 9);
        p.gauge_set("q", 2);
        let g = p.gauge("q");
        assert_eq!(g.value, 2);
        assert_eq!(g.high_water, 9);
    }

    #[test]
    fn counters_accumulate() {
        let mut p = MetricRegistry::new();
        p.inc("a");
        p.add("a", 4);
        assert_eq!(p.counter("a"), 5);
        assert_eq!(p.counter("missing"), 0);
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        // Insertion order differs; rendered order must not.
        let mut a = MetricRegistry::new();
        a.inc("z.last");
        a.inc("a.first");
        a.gauge_set("m.mid", 1);
        let mut b = MetricRegistry::new();
        b.gauge_set("m.mid", 1);
        b.inc("a.first");
        b.inc("z.last");
        assert_eq!(a.snapshot().to_text(), b.snapshot().to_text());
        assert_eq!(a.snapshot().to_json_lines(), b.snapshot().to_json_lines());
        let text = a.snapshot().to_text();
        let first = text.find("a.first").unwrap();
        let last = text.find("z.last").unwrap();
        assert!(first < last);
    }

    #[test]
    fn json_lines_schema() {
        let mut p = MetricRegistry::new();
        p.inc("c");
        p.gauge_set("g", 2);
        p.observe("h", 5);
        let json = p.snapshot().to_json_lines_with(&[("server", "devpoll")]);
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"server\":\"devpoll\",\"type\":\"counter\""));
        assert!(lines[1].contains("\"high_water\":2"));
        assert!(lines[2].contains("\"buckets\":[[4,1]]"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\ny");
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        // Known FNV-1a vectors pin cross-platform stability.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        let mut a = MetricRegistry::new();
        a.inc("x");
        a.observe("h", 9);
        let mut b = a.clone();
        assert_eq!(a.snapshot().digest(), b.snapshot().digest());
        assert_eq!(a.snapshot().digest_hex().len(), 16);
        b.inc("x");
        assert_ne!(a.snapshot().digest(), b.snapshot().digest());
    }
}
