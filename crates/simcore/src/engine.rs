//! The discrete-event simulation engine.
//!
//! The engine owns a priority queue of scheduled events. Each event is a
//! boxed `FnOnce` over a user-supplied state type `S`; when an event fires
//! it receives `&mut S` and `&mut Engine<S>` so it can both mutate the
//! world and schedule follow-up events. Events at equal timestamps fire in
//! scheduling order (FIFO), which makes runs fully deterministic.

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::{SimDuration, SimTime};

/// A callback fired when a scheduled event comes due.
pub type EventFn<S> = Box<dyn FnOnce(&mut S, &mut Engine<S>)>;

/// Identifies a scheduled event so it can be cancelled.
///
/// Ids are unique across the lifetime of an [`Engine`]; they are never
/// reused, so a stale id held after the event fired is harmless (cancelling
/// it is a no-op).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Scheduled<S> {
    at: SimTime,
    id: EventId,
    f: EventFn<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}

impl<S> Eq for Scheduled<S> {}

impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Ties on `at` break by id, i.e. FIFO in scheduling order.
        (self.at, self.id).cmp(&(other.at, other.id))
    }
}

/// A deterministic discrete-event simulator over a state type `S`.
///
/// # Examples
///
/// ```
/// use simcore::engine::Engine;
/// use simcore::time::{SimDuration, SimTime};
///
/// let mut engine: Engine<Vec<u32>> = Engine::new();
/// let mut state = Vec::new();
/// engine.schedule_in(SimDuration::from_micros(3), Box::new(|s: &mut Vec<u32>, _e| s.push(3)));
/// engine.schedule_in(SimDuration::from_micros(1), Box::new(|s: &mut Vec<u32>, _e| s.push(1)));
/// engine.run(&mut state);
/// assert_eq!(state, vec![1, 3]);
/// assert_eq!(engine.now(), SimTime::from_micros(3));
/// ```
pub struct Engine<S> {
    now: SimTime,
    queue: BinaryHeap<Reverse<Scheduled<S>>>,
    /// Ids scheduled but neither fired nor cancelled yet.
    live: HashSet<EventId>,
    /// Ids cancelled but not yet reaped from the queue.
    cancelled: HashSet<EventId>,
    next_id: u64,
    fired: u64,
}

impl<S> Default for Engine<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> Engine<S> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Engine<S> {
        Engine {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_id: 0,
            fired: 0,
        }
    }

    /// Returns the current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Returns the number of events still pending (including any that were
    /// cancelled but not yet reaped from the queue).
    pub fn pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// Schedules `f` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; the event is clamped to
    /// fire at the current time (i.e. "immediately") rather than rewinding
    /// the clock, and this is considered well-defined behaviour so that
    /// zero-cost actions can be scheduled at `now`.
    pub fn schedule_at(&mut self, at: SimTime, f: EventFn<S>) -> EventId {
        let at = at.max(self.now);
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.live.insert(id);
        self.queue.push(Reverse(Scheduled { at, id, f }));
        id
    }

    /// Schedules `f` to fire `after` from now.
    pub fn schedule_in(&mut self, after: SimDuration, f: EventFn<S>) -> EventId {
        let at = self.now.saturating_add(after);
        self.schedule_at(at, f)
    }

    /// Cancels a pending event.
    ///
    /// Returns `true` if the event was still pending. Cancelling an event
    /// that already fired (or was already cancelled) returns `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// Fires the next pending event, if any.
    ///
    /// Returns `false` when the queue is empty.
    pub fn step(&mut self, state: &mut S) -> bool {
        while let Some(Reverse(ev)) = self.queue.pop() {
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            self.live.remove(&ev.id);
            debug_assert!(ev.at >= self.now, "event queue went backwards");
            self.now = ev.at;
            self.fired += 1;
            (ev.f)(state, self);
            return true;
        }
        false
    }

    /// Runs until the queue is empty.
    ///
    /// Returns the number of events fired.
    pub fn run(&mut self, state: &mut S) -> u64 {
        let start = self.fired;
        while self.step(state) {}
        self.fired - start
    }

    /// Runs events until the clock would pass `deadline`.
    ///
    /// Events scheduled exactly at `deadline` do fire. On return the clock
    /// is at `deadline` (even if the queue drained earlier), so repeated
    /// `run_until` calls advance the clock monotonically.
    pub fn run_until(&mut self, state: &mut S, deadline: SimTime) -> u64 {
        let start = self.fired;
        loop {
            let due = match self.next_due() {
                Some(t) if t <= deadline => t,
                _ => break,
            };
            let _ = due;
            if !self.step(state) {
                break;
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.fired - start
    }

    /// Runs while `keep_going` returns `true` and events remain.
    pub fn run_while(&mut self, state: &mut S, mut keep_going: impl FnMut(&S) -> bool) -> u64 {
        let start = self.fired;
        while keep_going(state) && self.step(state) {}
        self.fired - start
    }

    /// Returns the timestamp of the next pending event, skipping cancelled
    /// entries.
    pub fn next_due(&mut self) -> Option<SimTime> {
        while let Some(Reverse(ev)) = self.queue.peek() {
            if self.cancelled.contains(&ev.id) {
                let Reverse(ev) = self
                    .queue
                    .pop()
                    .expect("invariant: peeked entry still queued");
                self.cancelled.remove(&ev.id);
                continue;
            }
            return Some(ev.at);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type E = Engine<Vec<u64>>;

    fn push(v: u64) -> EventFn<Vec<u64>> {
        Box::new(move |s: &mut Vec<u64>, _e: &mut E| s.push(v))
    }

    #[test]
    fn fires_in_time_order() {
        let mut e = E::new();
        let mut s = Vec::new();
        e.schedule_at(SimTime::from_nanos(30), push(30));
        e.schedule_at(SimTime::from_nanos(10), push(10));
        e.schedule_at(SimTime::from_nanos(20), push(20));
        assert_eq!(e.run(&mut s), 3);
        assert_eq!(s, vec![10, 20, 30]);
    }

    #[test]
    fn equal_timestamps_fire_fifo() {
        let mut e = E::new();
        let mut s = Vec::new();
        for v in 0..100 {
            e.schedule_at(SimTime::from_nanos(5), push(v));
        }
        e.run(&mut s);
        assert_eq!(s, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut e = E::new();
        let mut s = Vec::new();
        e.schedule_at(
            SimTime::from_nanos(1),
            Box::new(|st: &mut Vec<u64>, en: &mut E| {
                st.push(1);
                en.schedule_in(SimDuration::from_nanos(1), push(2));
            }),
        );
        e.run(&mut s);
        assert_eq!(s, vec![1, 2]);
        assert_eq!(e.now(), SimTime::from_nanos(2));
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut e = E::new();
        let mut s = Vec::new();
        let id = e.schedule_at(SimTime::from_nanos(5), push(5));
        e.schedule_at(SimTime::from_nanos(6), push(6));
        assert!(e.cancel(id));
        assert!(!e.cancel(id), "double cancel reports false");
        e.run(&mut s);
        assert_eq!(s, vec![6]);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut e = E::new();
        let mut s = Vec::new();
        let id = e.schedule_at(SimTime::from_nanos(5), push(5));
        e.run(&mut s);
        assert!(!e.cancel(id));
        assert_eq!(s, vec![5]);
    }

    #[test]
    fn run_until_stops_at_deadline_inclusive() {
        let mut e = E::new();
        let mut s = Vec::new();
        e.schedule_at(SimTime::from_nanos(10), push(10));
        e.schedule_at(SimTime::from_nanos(20), push(20));
        e.schedule_at(SimTime::from_nanos(30), push(30));
        e.run_until(&mut s, SimTime::from_nanos(20));
        assert_eq!(s, vec![10, 20]);
        assert_eq!(e.now(), SimTime::from_nanos(20));
        e.run_until(&mut s, SimTime::from_nanos(25));
        assert_eq!(e.now(), SimTime::from_nanos(25));
        e.run(&mut s);
        assert_eq!(s, vec![10, 20, 30]);
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut e = E::new();
        let mut s = Vec::new();
        e.schedule_at(
            SimTime::from_nanos(10),
            Box::new(|st: &mut Vec<u64>, en: &mut E| {
                st.push(1);
                // Try to schedule "yesterday"; must fire at now instead.
                en.schedule_at(SimTime::ZERO, push(2));
            }),
        );
        e.run(&mut s);
        assert_eq!(s, vec![1, 2]);
        assert_eq!(e.now(), SimTime::from_nanos(10));
    }

    #[test]
    fn pending_accounts_for_cancellations() {
        let mut e = E::new();
        let a = e.schedule_at(SimTime::from_nanos(1), push(1));
        e.schedule_at(SimTime::from_nanos(2), push(2));
        assert_eq!(e.pending(), 2);
        e.cancel(a);
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn next_due_skips_cancelled() {
        let mut e = E::new();
        let a = e.schedule_at(SimTime::from_nanos(1), push(1));
        e.schedule_at(SimTime::from_nanos(2), push(2));
        e.cancel(a);
        assert_eq!(e.next_due(), Some(SimTime::from_nanos(2)));
    }

    #[test]
    fn run_while_respects_predicate() {
        let mut e = E::new();
        let mut s = Vec::new();
        for v in 0..10 {
            e.schedule_at(SimTime::from_nanos(v), push(v));
        }
        e.run_while(&mut s, |st| st.len() < 4);
        assert_eq!(s.len(), 4);
    }
}
