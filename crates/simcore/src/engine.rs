//! The discrete-event simulation engine.
//!
//! The engine owns a priority queue of scheduled events. Event payloads
//! are any type implementing [`Event`] — typically a small enum, so
//! dispatch is a jump table over values held in a slab arena rather than
//! a virtual call through a per-event heap allocation. Freed slots are
//! recycled through a free list, so steady-state scheduling allocates
//! nothing. When an event fires it receives `&mut S` and `&mut Engine` so
//! it can both mutate the world and schedule follow-up events. Events at
//! equal timestamps fire in scheduling order (FIFO), which makes runs
//! fully deterministic.
//!
//! Closures still work: [`BoxedEvent`] wraps a `FnOnce` and is the
//! default payload type, so `Engine<S>` reads as "engine over boxed
//! callbacks" exactly as before the arena rework.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A scheduled event payload: fired at its due time with the world state
/// and the engine (to schedule follow-ups).
pub trait Event<S>: Sized {
    /// Consumes the event at its due time.
    fn fire(self, state: &mut S, engine: &mut Engine<S, Self>);
}

/// The closure type a [`BoxedEvent`] wraps.
type BoxedFire<S> = Box<dyn FnOnce(&mut S, &mut Engine<S, BoxedEvent<S>>)>;

/// A boxed-closure event — the pre-arena API, kept for tests and ad-hoc
/// scripting. Hot paths should define an enum implementing [`Event`]
/// instead and avoid the per-event allocation.
pub struct BoxedEvent<S>(BoxedFire<S>);

impl<S> BoxedEvent<S> {
    /// Wraps a closure as an event.
    pub fn new(f: impl FnOnce(&mut S, &mut Engine<S, BoxedEvent<S>>) + 'static) -> BoxedEvent<S> {
        BoxedEvent(Box::new(f))
    }
}

impl<S> Event<S> for BoxedEvent<S> {
    fn fire(self, state: &mut S, engine: &mut Engine<S, Self>) {
        (self.0)(state, engine)
    }
}

/// Alias for the closure payload type (source compatibility with the
/// pre-arena engine).
pub type EventFn<S> = BoxedEvent<S>;

/// Identifies a scheduled event so it can be cancelled.
///
/// An id is a slot index plus a generation stamp. Slots are recycled
/// after an event fires or is cancelled, but each recycle bumps the
/// generation, so a stale id held after the event fired is harmless
/// (cancelling it is a no-op) — the same contract the never-reused u64
/// ids provided, without growing a live-id set per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

enum SlotBody<E> {
    /// Next free slot index ([`FREE_END`] terminates the list).
    Free(u32),
    Full(E),
}

struct Slot<E> {
    gen: u32,
    body: SlotBody<E>,
}

const FREE_END: u32 = u32::MAX;

/// A deterministic discrete-event simulator over a state type `S`.
///
/// # Examples
///
/// ```
/// use simcore::engine::{BoxedEvent, Engine};
/// use simcore::time::{SimDuration, SimTime};
///
/// let mut engine: Engine<Vec<u32>> = Engine::new();
/// let mut state = Vec::new();
/// engine.schedule_in(SimDuration::from_micros(3), BoxedEvent::new(|s: &mut Vec<u32>, _e| s.push(3)));
/// engine.schedule_in(SimDuration::from_micros(1), BoxedEvent::new(|s: &mut Vec<u32>, _e| s.push(1)));
/// engine.run(&mut state);
/// assert_eq!(state, vec![1, 3]);
/// assert_eq!(engine.now(), SimTime::from_micros(3));
/// ```
///
/// Typed payloads dispatch without any per-event allocation:
///
/// ```
/// use simcore::engine::{Engine, Event};
/// use simcore::time::SimTime;
///
/// enum Tick { Add(u32) }
/// impl Event<u32> for Tick {
///     fn fire(self, state: &mut u32, _engine: &mut Engine<u32, Self>) {
///         match self { Tick::Add(n) => *state += n }
///     }
/// }
///
/// let mut engine: Engine<u32, Tick> = Engine::new();
/// let mut total = 0;
/// engine.schedule_at(SimTime::from_nanos(1), Tick::Add(2));
/// engine.schedule_at(SimTime::from_nanos(2), Tick::Add(3));
/// engine.run(&mut total);
/// assert_eq!(total, 5);
/// ```
pub struct Engine<S, E: Event<S> = BoxedEvent<S>> {
    now: SimTime,
    /// `(at, seq, slot, gen)`: `seq` is the monotonic scheduling order, so
    /// ties on `at` fire FIFO; `gen` detects entries whose slot was
    /// cancelled (and possibly recycled) after this entry was pushed.
    queue: BinaryHeap<Reverse<(SimTime, u64, u32, u32)>>,
    slots: Vec<Slot<E>>,
    free_head: u32,
    live: usize,
    next_seq: u64,
    fired: u64,
    /// Reusable buffer for the same-timestamp run [`Engine::step_run`] is
    /// dispatching, as `(slot, gen)` pairs.
    run_scratch: Vec<(u32, u32)>,
    /// Follow-up events scheduled at exactly `now` while a run is
    /// dispatching. They bypass the heap (no `O(log n)` push + pop for
    /// work that fires immediately) and drain at the tail of the current
    /// run, preserving FIFO order among equal timestamps.
    due_now: Vec<(u32, u32)>,
    due_now_head: usize,
    in_run: bool,
    _state: std::marker::PhantomData<fn(&mut S)>,
}

impl<S, E: Event<S>> Default for Engine<S, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S, E: Event<S>> Engine<S, E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Engine<S, E> {
        Engine {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            slots: Vec::new(),
            free_head: FREE_END,
            live: 0,
            next_seq: 0,
            fired: 0,
            run_scratch: Vec::new(),
            due_now: Vec::new(),
            due_now_head: 0,
            in_run: false,
            _state: std::marker::PhantomData,
        }
    }

    /// Returns the current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Returns the number of events still pending.
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Number of arena slots allocated (capacity diagnostic: the
    /// high-water mark of simultaneously pending events).
    pub fn arena_slots(&self) -> usize {
        self.slots.len()
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; the event is clamped to
    /// fire at the current time (i.e. "immediately") rather than rewinding
    /// the clock, and this is considered well-defined behaviour so that
    /// zero-cost actions can be scheduled at `now`.
    // #[hot_path] — simcheck bans per-call allocation in this function
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        let at = at.max(self.now);
        let slot = if self.free_head != FREE_END {
            let slot = self.free_head;
            let s = &mut self.slots[slot as usize];
            match s.body {
                SlotBody::Free(next) => self.free_head = next,
                SlotBody::Full(_) => unreachable!("free list points at a full slot"),
            }
            s.body = SlotBody::Full(event);
            slot
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                body: SlotBody::Full(event),
            });
            slot
        };
        let gen = self.slots[slot as usize].gen;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live += 1;
        if self.in_run && at == self.now {
            // Mid-run follow-up due immediately: every pending event at
            // `now` has already been drained off the heap, so appending
            // here keeps FIFO order and skips the heap round-trip.
            self.due_now.push((slot, gen));
        } else {
            self.queue.push(Reverse((at, seq, slot, gen)));
        }
        EventId { slot, gen }
    }

    /// Schedules `event` to fire `after` from now.
    pub fn schedule_in(&mut self, after: SimDuration, event: E) -> EventId {
        let at = self.now.saturating_add(after);
        self.schedule_at(at, event)
    }

    /// Cancels a pending event by key in O(1); the queue entry is reaped
    /// lazily when it surfaces.
    ///
    /// Returns `true` if the event was still pending. Cancelling an event
    /// that already fired (or was already cancelled) returns `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slots.get_mut(id.slot as usize) {
            Some(s) if s.gen == id.gen && matches!(s.body, SlotBody::Full(_)) => {
                self.release(id.slot);
                true
            }
            _ => false,
        }
    }

    /// Frees `slot` onto the free list and bumps its generation so stale
    /// ids and queue entries no longer match.
    // #[hot_path] — simcheck bans per-call allocation in this function
    fn release(&mut self, slot: u32) -> E {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        let body = std::mem::replace(&mut s.body, SlotBody::Free(self.free_head));
        self.free_head = slot;
        self.live -= 1;
        match body {
            SlotBody::Full(e) => e,
            SlotBody::Free(_) => unreachable!("released slot was already free"),
        }
    }

    /// Fires the next pending event, if any.
    ///
    /// Returns `false` when the queue is empty.
    // #[hot_path] — simcheck bans per-call allocation in this function
    pub fn step(&mut self, state: &mut S) -> bool {
        while let Some(Reverse((at, _, slot, gen))) = self.queue.pop() {
            if self.slots[slot as usize].gen != gen {
                continue; // Cancelled (and possibly recycled): stale entry.
            }
            debug_assert!(at >= self.now, "event queue went backwards");
            self.now = at;
            let event = self.release(slot);
            self.fired += 1;
            event.fire(state, self);
            return true;
        }
        false
    }

    /// Fires the entire run of events due at the next pending timestamp:
    /// the batch dispatch path. The whole run is drained off the heap in
    /// one pass and fired from a dense buffer, and follow-up events the
    /// run schedules at the same instant bypass the heap entirely (see
    /// `due_now` on the struct). Firing order is identical to repeated
    /// [`Engine::step`] calls — FIFO among equal timestamps — and events
    /// cancelled by an earlier event in the same run do not fire.
    ///
    /// Returns `false` when the queue is empty.
    // #[hot_path] — simcheck bans per-call allocation in this function
    pub fn step_run(&mut self, state: &mut S) -> bool {
        // Locate the run's timestamp, reaping stale entries.
        let at = loop {
            match self.queue.peek() {
                Some(&Reverse((at, _, slot, gen))) => {
                    if self.slots[slot as usize].gen != gen {
                        self.queue.pop();
                        continue;
                    }
                    break at;
                }
                None => return false,
            }
        };
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        // Drain the whole same-timestamp run before firing anything, so
        // mid-run follow-ups at `now` can take the due_now fast path
        // without racing heap entries for FIFO position.
        let mut run = std::mem::take(&mut self.run_scratch);
        run.clear();
        while let Some(&Reverse((t, _, slot, gen))) = self.queue.peek() {
            if t != at {
                break;
            }
            self.queue.pop();
            if self.slots[slot as usize].gen == gen {
                run.push((slot, gen));
            }
        }
        let was_in_run = self.in_run;
        self.in_run = true;
        for &(slot, gen) in &run {
            if self.slots[slot as usize].gen != gen {
                continue; // Cancelled by an earlier event in this run.
            }
            let event = self.release(slot);
            self.fired += 1;
            event.fire(state, self);
        }
        // Tail of the run: follow-ups scheduled at `now`, in FIFO order,
        // including any that they schedule themselves.
        while self.due_now_head < self.due_now.len() {
            let (slot, gen) = self.due_now[self.due_now_head];
            self.due_now_head += 1;
            if self.slots[slot as usize].gen != gen {
                continue;
            }
            let event = self.release(slot);
            self.fired += 1;
            event.fire(state, self);
        }
        self.due_now.clear();
        self.due_now_head = 0;
        self.in_run = was_in_run;
        run.clear();
        self.run_scratch = run;
        true
    }

    /// Runs until the queue is empty.
    ///
    /// Returns the number of events fired.
    pub fn run(&mut self, state: &mut S) -> u64 {
        let start = self.fired;
        while self.step_run(state) {}
        self.fired - start
    }

    /// Runs events until the clock would pass `deadline`.
    ///
    /// Events scheduled exactly at `deadline` do fire. On return the clock
    /// is at `deadline` (even if the queue drained earlier), so repeated
    /// `run_until` calls advance the clock monotonically.
    pub fn run_until(&mut self, state: &mut S, deadline: SimTime) -> u64 {
        let start = self.fired;
        loop {
            match self.next_due() {
                Some(t) if t <= deadline => {}
                _ => break,
            }
            // The whole run shares that timestamp, so batch dispatch
            // cannot overshoot the deadline.
            if !self.step_run(state) {
                break;
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.fired - start
    }

    /// Runs while `keep_going` returns `true` and events remain.
    ///
    /// The predicate is consulted before *every* event (not every run),
    /// so this deliberately stays on the single-step path.
    pub fn run_while(&mut self, state: &mut S, mut keep_going: impl FnMut(&S) -> bool) -> u64 {
        let start = self.fired;
        while keep_going(state) && self.step(state) {}
        self.fired - start
    }

    /// Returns the timestamp of the next pending event, skipping cancelled
    /// entries.
    pub fn next_due(&mut self) -> Option<SimTime> {
        // Mid-run follow-ups (only present while step_run is dispatching)
        // are due at the current instant.
        while self.due_now_head < self.due_now.len() {
            let (slot, gen) = self.due_now[self.due_now_head];
            if self.slots[slot as usize].gen == gen {
                return Some(self.now);
            }
            self.due_now_head += 1;
        }
        while let Some(&Reverse((at, _, slot, gen))) = self.queue.peek() {
            if self.slots[slot as usize].gen != gen {
                self.queue.pop();
                continue;
            }
            return Some(at);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type E = Engine<Vec<u64>>;

    fn push(v: u64) -> BoxedEvent<Vec<u64>> {
        BoxedEvent::new(move |s: &mut Vec<u64>, _e: &mut E| s.push(v))
    }

    #[test]
    fn fires_in_time_order() {
        let mut e = E::new();
        let mut s = Vec::new();
        e.schedule_at(SimTime::from_nanos(30), push(30));
        e.schedule_at(SimTime::from_nanos(10), push(10));
        e.schedule_at(SimTime::from_nanos(20), push(20));
        assert_eq!(e.run(&mut s), 3);
        assert_eq!(s, vec![10, 20, 30]);
    }

    #[test]
    fn equal_timestamps_fire_fifo() {
        let mut e = E::new();
        let mut s = Vec::new();
        for v in 0..100 {
            e.schedule_at(SimTime::from_nanos(5), push(v));
        }
        e.run(&mut s);
        assert_eq!(s, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut e = E::new();
        let mut s = Vec::new();
        e.schedule_at(
            SimTime::from_nanos(1),
            BoxedEvent::new(|st: &mut Vec<u64>, en: &mut E| {
                st.push(1);
                en.schedule_in(SimDuration::from_nanos(1), push(2));
            }),
        );
        e.run(&mut s);
        assert_eq!(s, vec![1, 2]);
        assert_eq!(e.now(), SimTime::from_nanos(2));
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut e = E::new();
        let mut s = Vec::new();
        let id = e.schedule_at(SimTime::from_nanos(5), push(5));
        e.schedule_at(SimTime::from_nanos(6), push(6));
        assert!(e.cancel(id));
        assert!(!e.cancel(id), "double cancel reports false");
        e.run(&mut s);
        assert_eq!(s, vec![6]);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut e = E::new();
        let mut s = Vec::new();
        let id = e.schedule_at(SimTime::from_nanos(5), push(5));
        e.run(&mut s);
        assert!(!e.cancel(id));
        assert_eq!(s, vec![5]);
    }

    #[test]
    fn run_until_stops_at_deadline_inclusive() {
        let mut e = E::new();
        let mut s = Vec::new();
        e.schedule_at(SimTime::from_nanos(10), push(10));
        e.schedule_at(SimTime::from_nanos(20), push(20));
        e.schedule_at(SimTime::from_nanos(30), push(30));
        e.run_until(&mut s, SimTime::from_nanos(20));
        assert_eq!(s, vec![10, 20]);
        assert_eq!(e.now(), SimTime::from_nanos(20));
        e.run_until(&mut s, SimTime::from_nanos(25));
        assert_eq!(e.now(), SimTime::from_nanos(25));
        e.run(&mut s);
        assert_eq!(s, vec![10, 20, 30]);
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut e = E::new();
        let mut s = Vec::new();
        e.schedule_at(
            SimTime::from_nanos(10),
            BoxedEvent::new(|st: &mut Vec<u64>, en: &mut E| {
                st.push(1);
                // Try to schedule "yesterday"; must fire at now instead.
                en.schedule_at(SimTime::ZERO, push(2));
            }),
        );
        e.run(&mut s);
        assert_eq!(s, vec![1, 2]);
        assert_eq!(e.now(), SimTime::from_nanos(10));
    }

    #[test]
    fn pending_accounts_for_cancellations() {
        let mut e = E::new();
        let a = e.schedule_at(SimTime::from_nanos(1), push(1));
        e.schedule_at(SimTime::from_nanos(2), push(2));
        assert_eq!(e.pending(), 2);
        e.cancel(a);
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn next_due_skips_cancelled() {
        let mut e = E::new();
        let a = e.schedule_at(SimTime::from_nanos(1), push(1));
        e.schedule_at(SimTime::from_nanos(2), push(2));
        e.cancel(a);
        assert_eq!(e.next_due(), Some(SimTime::from_nanos(2)));
    }

    #[test]
    fn run_while_respects_predicate() {
        let mut e = E::new();
        let mut s = Vec::new();
        for v in 0..10 {
            e.schedule_at(SimTime::from_nanos(v), push(v));
        }
        e.run_while(&mut s, |st| st.len() < 4);
        assert_eq!(s.len(), 4);
    }

    /// Typed (non-boxed) payload used by the arena tests below.
    enum Tick {
        Add(u64),
        Fork,
    }

    impl Event<Vec<u64>> for Tick {
        fn fire(self, state: &mut Vec<u64>, engine: &mut Engine<Vec<u64>, Self>) {
            match self {
                Tick::Add(v) => state.push(v),
                Tick::Fork => {
                    state.push(0);
                    engine.schedule_in(SimDuration::from_nanos(1), Tick::Add(99));
                }
            }
        }
    }

    #[test]
    fn typed_events_dispatch_in_order() {
        let mut e: Engine<Vec<u64>, Tick> = Engine::new();
        let mut s = Vec::new();
        e.schedule_at(SimTime::from_nanos(2), Tick::Fork);
        e.schedule_at(SimTime::from_nanos(1), Tick::Add(1));
        e.run(&mut s);
        assert_eq!(s, vec![1, 0, 99]);
        assert_eq!(e.events_fired(), 3);
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let mut e: Engine<Vec<u64>, Tick> = Engine::new();
        let mut s = Vec::new();
        // Fill three slots, drain them, then schedule again: the arena
        // must not grow past its high-water mark.
        for v in 0..3 {
            e.schedule_at(SimTime::from_nanos(v), Tick::Add(v));
        }
        assert_eq!(e.arena_slots(), 3);
        e.run(&mut s);
        for v in 10..13 {
            e.schedule_at(SimTime::from_nanos(v), Tick::Add(v));
        }
        assert_eq!(e.arena_slots(), 3, "freed slots are recycled");
        e.run(&mut s);
        assert_eq!(s, vec![0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn stale_id_does_not_cancel_recycled_slot() {
        let mut e: Engine<Vec<u64>, Tick> = Engine::new();
        let mut s = Vec::new();
        let old = e.schedule_at(SimTime::from_nanos(1), Tick::Add(1));
        e.run(&mut s);
        // The slot is recycled for a new event; the stale id must not
        // cancel it (generation mismatch).
        let fresh = e.schedule_at(SimTime::from_nanos(2), Tick::Add(2));
        assert_eq!(old.slot, fresh.slot, "slot recycled");
        assert_ne!(old.gen, fresh.gen, "generation bumped");
        assert!(!e.cancel(old));
        assert_eq!(e.pending(), 1);
        e.run(&mut s);
        assert_eq!(s, vec![1, 2]);
    }

    #[test]
    fn step_run_fires_whole_timestamp_batch() {
        let mut e = E::new();
        let mut s = Vec::new();
        for v in 0..5 {
            e.schedule_at(SimTime::from_nanos(7), push(v));
        }
        e.schedule_at(SimTime::from_nanos(9), push(99));
        assert!(e.step_run(&mut s));
        assert_eq!(s, vec![0, 1, 2, 3, 4], "one run = one timestamp");
        assert_eq!(e.pending(), 1);
        assert!(e.step_run(&mut s));
        assert!(!e.step_run(&mut s), "queue drained");
        assert_eq!(s, vec![0, 1, 2, 3, 4, 99]);
    }

    #[test]
    fn same_instant_followups_fire_in_the_same_run() {
        // An event scheduling work at its own timestamp exercises the
        // due_now fast path; the follow-up (and the follow-up's
        // follow-up) must fire within the same step_run call, after all
        // originally-pending events, in FIFO order.
        let mut e = E::new();
        let mut s = Vec::new();
        e.schedule_at(
            SimTime::from_nanos(5),
            BoxedEvent::new(|st: &mut Vec<u64>, en: &mut E| {
                st.push(1);
                en.schedule_at(
                    SimTime::from_nanos(5),
                    BoxedEvent::new(|st: &mut Vec<u64>, en: &mut E| {
                        st.push(3);
                        en.schedule_at(SimTime::from_nanos(5), push(4));
                    }),
                );
            }),
        );
        e.schedule_at(SimTime::from_nanos(5), push(2));
        assert!(e.step_run(&mut s));
        assert_eq!(s, vec![1, 2, 3, 4]);
        assert_eq!(e.pending(), 0);
        assert_eq!(e.now(), SimTime::from_nanos(5));
    }

    #[test]
    fn cancel_within_a_run_prevents_firing() {
        // Event A cancels B, scheduled at the same timestamp and already
        // drained into the run buffer: B must not fire.
        use std::cell::Cell;
        use std::rc::Rc;
        let mut e = E::new();
        let mut s = Vec::new();
        let b_id: Rc<Cell<Option<EventId>>> = Rc::new(Cell::new(None));
        let b_ref = Rc::clone(&b_id);
        e.schedule_at(
            SimTime::from_nanos(5),
            BoxedEvent::new(move |st: &mut Vec<u64>, en: &mut E| {
                st.push(1);
                assert!(en.cancel(b_ref.get().expect("b scheduled")));
            }),
        );
        let b = e.schedule_at(SimTime::from_nanos(5), push(2));
        b_id.set(Some(b));
        e.schedule_at(SimTime::from_nanos(5), push(3));
        assert!(e.step_run(&mut s));
        assert_eq!(s, vec![1, 3]);
        assert_eq!(e.events_fired(), 2);
    }

    #[test]
    fn batch_dispatch_matches_single_step_order() {
        // Differential check: the same interleaved workload driven by
        // step_run and by repeated step() must fire in the same order.
        fn workload(e: &mut E) {
            for v in 0..20 {
                let at = SimTime::from_nanos(v % 4);
                if v % 5 == 0 {
                    e.schedule_at(
                        at,
                        BoxedEvent::new(move |st: &mut Vec<u64>, en: &mut E| {
                            st.push(100 + v);
                            // Same-instant follow-up plus a later one.
                            en.schedule_in(SimDuration::ZERO, push(200 + v));
                            en.schedule_in(SimDuration::from_nanos(2), push(300 + v));
                        }),
                    );
                } else {
                    e.schedule_at(at, push(v));
                }
            }
        }
        let mut batched = E::new();
        let mut got_batched = Vec::new();
        workload(&mut batched);
        while batched.step_run(&mut got_batched) {}
        let mut single = E::new();
        let mut got_single = Vec::new();
        workload(&mut single);
        while single.step(&mut got_single) {}
        assert_eq!(got_batched, got_single);
        assert_eq!(batched.events_fired(), single.events_fired());
    }

    #[test]
    fn cancelled_slot_recycles_before_queue_reap() {
        let mut e: Engine<Vec<u64>, Tick> = Engine::new();
        let mut s = Vec::new();
        // Cancel leaves a stale heap entry; recycling the slot for a new
        // event must not let the stale entry fire or reap the new one.
        let a = e.schedule_at(SimTime::from_nanos(5), Tick::Add(5));
        assert!(e.cancel(a));
        let b = e.schedule_at(SimTime::from_nanos(7), Tick::Add(7));
        assert_eq!(a.slot, b.slot);
        assert_eq!(e.pending(), 1);
        assert_eq!(e.next_due(), Some(SimTime::from_nanos(7)));
        e.run(&mut s);
        assert_eq!(s, vec![7]);
    }
}
