//! Data series and plain-text rendering for the figure-reproduction
//! harness.
//!
//! Each paper figure is regenerated as one or more [`Series`] (x = targeted
//! request rate, y = measured quantity). The harness renders them as CSV
//! for downstream plotting and as a quick ASCII chart for eyeballing the
//! shape in a terminal.

use core::fmt::Write as _;

/// One plotted point: x (e.g. targeted request rate) and y (e.g. measured
/// reply rate), plus an optional error bar (stddev).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
    /// Symmetric error bar; zero when not applicable.
    pub err: f64,
}

/// A named data series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `"Average"` or `"using devpoll"`.
    pub label: String,
    /// Points in x order.
    pub points: Vec<Point>,
}

impl Series {
    /// Creates an empty series with the given label.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point without an error bar.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(Point { x, y, err: 0.0 });
    }

    /// Appends a point with an error bar.
    pub fn push_err(&mut self, x: f64, y: f64, err: f64) {
        self.points.push(Point { x, y, err });
    }

    /// Returns the y value at the given x, if present (exact match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.x == x).map(|p| p.y)
    }
}

/// A figure: a title, axis labels, and a set of series sharing axes.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Figure title, e.g. `"FIGURE 4. Normal thttpd using normal poll()"`.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series plotted in this figure.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Figure {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Renders the figure as CSV: header row
    /// `x,<label1>,<label1>_err,<label2>,...`, one row per distinct x.
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("invariant: x must not be NaN"));
        xs.dedup();

        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for s in &self.series {
            let label = s.label.replace(',', ";");
            let _ = write!(out, ",{label},{label}_err");
        }
        out.push('\n');
        for x in xs {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.points.iter().find(|p| p.x == x) {
                    Some(p) => {
                        let _ = write!(out, ",{},{}", p.y, p.err);
                    }
                    None => out.push_str(",,"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders a rough ASCII chart, `width` columns by `height` rows.
    ///
    /// Each series gets a marker character (`*`, `+`, `o`, `x`, …). The
    /// chart is meant for eyeballing curve shapes, not for precision.
    pub fn to_ascii(&self, width: usize, height: usize) -> String {
        const MARKS: &[u8] = b"*+ox#@%&";
        let width = width.max(16);
        let height = height.max(4);

        let all: Vec<Point> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        if all.is_empty() {
            return format!("{}\n(empty figure)\n", self.title);
        }
        let x_min = all.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
        let x_max = all.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
        let y_min = 0.0_f64.min(all.iter().map(|p| p.y).fold(f64::INFINITY, f64::min));
        let y_max = all.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max);
        let x_span = (x_max - x_min).max(1e-12);
        let y_span = (y_max - y_min).max(1e-12);

        let mut grid = vec![vec![b' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let mark = MARKS[si % MARKS.len()];
            for p in &s.points {
                let col = (((p.x - x_min) / x_span) * (width - 1) as f64).round() as usize;
                let row = (((p.y - y_min) / y_span) * (height - 1) as f64).round() as usize;
                let row = height - 1 - row.min(height - 1);
                grid[row][col.min(width - 1)] = mark;
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "y: {} (max {:.1})", self.y_label, y_max);
        for row in &grid {
            out.push('|');
            out.push_str(core::str::from_utf8(row).expect("invariant: grid rows are ASCII"));
            out.push('\n');
        }
        out.push('+');
        out.push_str(&"-".repeat(width));
        out.push('\n');
        let _ = writeln!(out, "x: {} [{:.0}..{:.0}]", self.x_label, x_min, x_max);
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "  {} = {}", MARKS[si % MARKS.len()] as char, s.label);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> Figure {
        let mut f = Figure::new("t", "rate", "reply");
        let mut a = Series::new("avg");
        a.push_err(500.0, 490.0, 5.0);
        a.push_err(600.0, 580.0, 10.0);
        let mut m = Series::new("min");
        m.push(500.0, 400.0);
        f.add(a);
        f.add(m);
        f
    }

    #[test]
    fn series_push_and_lookup() {
        let mut s = Series::new("x");
        s.push(1.0, 2.0);
        assert_eq!(s.y_at(1.0), Some(2.0));
        assert_eq!(s.y_at(9.0), None);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample_figure().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("rate,avg,avg_err,min,min_err"));
        assert_eq!(lines.next(), Some("500,490,5,400,0"));
        assert_eq!(lines.next(), Some("600,580,10,,"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn csv_escapes_commas_in_labels() {
        let mut f = Figure::new("t", "a,b", "y");
        f.add(Series::new("l,1"));
        assert!(f.to_csv().starts_with("a;b,l;1,l;1_err"));
    }

    #[test]
    fn ascii_renders_without_panic() {
        let art = sample_figure().to_ascii(40, 10);
        assert!(art.contains('*'));
        assert!(art.contains("avg"));
    }

    #[test]
    fn ascii_empty_figure() {
        let f = Figure::new("empty", "x", "y");
        assert!(f.to_ascii(40, 10).contains("empty figure"));
    }
}
