//! Deterministic scoped span tracing: the latency-anatomy layer.
//!
//! The paper's argument is about *where event-delivery time goes* —
//! interest registration, the kernel readiness scan, dequeue, dispatch —
//! not just end-to-end reply rates. This module attributes every
//! nanosecond of simulated request latency to a [`Phase`] so figures can
//! show *why* `/dev/poll` beats `poll()` at 6 000 connections.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Spans are charged in *sim-time* (the same clock
//!    the cost model charges), never wall time, so two seeded runs
//!    produce byte-identical exports at any `--jobs` count.
//! 2. **Zero cost when disabled.** Every instrumentation site is one
//!    branch ([`SpanTracer::open`] returns `None`); no histogram is ever
//!    created, so probe snapshots — and their digests in `BENCH.json` —
//!    are byte-identical to an uninstrumented build.
//! 3. **Scoped, nestable spans.** The only way to open a span is the
//!    guard API; the private `span_enter`/`span_exit` stack operations
//!    never escape this file (enforced by the simcheck `span-pairing`
//!    lint, budget 0). Close pops strictly LIFO, so exclusive-time
//!    attribution is always well-formed.
//!
//! A closed span charges its **exclusive** time (inclusive minus time
//! spent in child spans) to a per-phase log2 histogram
//! (`span_ns.<phase>`) in the [`MetricRegistry`]; completed spans are
//! additionally retained (up to a bounded capacity) for the
//! Chrome-trace and folded-stack exporters.
//!
//! # Examples
//!
//! ```
//! use simcore::probe::MetricRegistry;
//! use simcore::span::{Phase, SpanTracer};
//! use simcore::time::SimTime;
//!
//! let mut spans = SpanTracer::new();
//! let mut probe = MetricRegistry::new();
//! spans.set_enabled(true);
//! let g = spans.open(Phase::Dispatch, 1, SimTime::from_nanos(100));
//! let h = spans.open(Phase::Read, 1, SimTime::from_nanos(140));
//! if let Some(h) = h {
//!     spans.close(h, SimTime::from_nanos(190), &mut probe);
//! }
//! if let Some(g) = g {
//!     spans.close(g, SimTime::from_nanos(300), &mut probe);
//! }
//! // Read charged 50 ns; Dispatch charged 200 - 50 = 150 ns exclusive.
//! let h = probe.histogram("span_ns.dispatch").unwrap();
//! assert_eq!(h.sum(), 150);
//! ```

use std::fmt::Write as _;

use crate::probe::MetricRegistry;
use crate::time::SimTime;

/// Default number of completed spans retained for the exporters.
///
/// Histogram accounting is unaffected by this bound; only the raw
/// per-span records for `--trace-export` stop accumulating (and
/// [`SpanTracer::dropped`] counts the overflow).
pub const DEFAULT_RETAIN: usize = 200_000;

/// A request-path phase, the unit of latency attribution.
///
/// The first seven phases tile the life of one request; the three lock
/// phases measure hold time on the devpoll lock classes (the contention
/// instrument the SMP roadmap item builds on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Connection sat in the listener's accept queue (SYN-ACK completion
    /// to `accept()` pop).
    AcceptWait,
    /// Interest-set registration: `/dev/poll` `write()` (`dpsetup` /
    /// `POLLREMOVE`) or `F_SETSIG`/`F_SETOWN` fcntls.
    InterestReg,
    /// Kernel readiness scan: the `f_op->poll` walk in `poll()`,
    /// `select()` or `DP_POLL` (hinted or full).
    ReadyScan,
    /// Event delivery to user space: pollfd/bitmap copyout, `DP_POLL`
    /// result write, or RT-signal dequeue.
    Delivery,
    /// Server event dispatch: demultiplexing one ready fd to its
    /// connection handler.
    Dispatch,
    /// `read()` — request bytes into the server.
    Read,
    /// `write()`/`sendfile()` — response bytes out of the server.
    Write,
    /// Hold time on the devpoll backmap lock.
    LockBackmap,
    /// Hold time on the devpoll interest-table lock.
    LockInterestTable,
    /// Hold time on a per-socket lock taken under devpoll.
    LockSocket,
}

impl Phase {
    /// Every phase, in canonical (enum) order.
    pub const ALL: [Phase; 10] = [
        Phase::AcceptWait,
        Phase::InterestReg,
        Phase::ReadyScan,
        Phase::Delivery,
        Phase::Dispatch,
        Phase::Read,
        Phase::Write,
        Phase::LockBackmap,
        Phase::LockInterestTable,
        Phase::LockSocket,
    ];

    /// The request-path phases (everything except the lock classes),
    /// the stack of the latency-anatomy figure.
    pub const REQUEST_PATH: [Phase; 7] = [
        Phase::AcceptWait,
        Phase::InterestReg,
        Phase::ReadyScan,
        Phase::Delivery,
        Phase::Dispatch,
        Phase::Read,
        Phase::Write,
    ];

    /// Short snake_case name, used in exports and figure series.
    pub fn name(self) -> &'static str {
        match self {
            Phase::AcceptWait => "accept_wait",
            Phase::InterestReg => "interest_reg",
            Phase::ReadyScan => "ready_scan",
            Phase::Delivery => "delivery",
            Phase::Dispatch => "dispatch",
            Phase::Read => "read",
            Phase::Write => "write",
            Phase::LockBackmap => "lock_backmap",
            Phase::LockInterestTable => "lock_interest_table",
            Phase::LockSocket => "lock_socket",
        }
    }

    /// The `MetricRegistry` histogram key this phase charges
    /// (exclusive nanoseconds per span).
    pub fn metric(self) -> &'static str {
        match self {
            Phase::AcceptWait => "span_ns.accept_wait",
            Phase::InterestReg => "span_ns.interest_reg",
            Phase::ReadyScan => "span_ns.ready_scan",
            Phase::Delivery => "span_ns.delivery",
            Phase::Dispatch => "span_ns.dispatch",
            Phase::Read => "span_ns.read",
            Phase::Write => "span_ns.write",
            Phase::LockBackmap => "span_ns.lock_backmap",
            Phase::LockInterestTable => "span_ns.lock_interest_table",
            Phase::LockSocket => "span_ns.lock_socket",
        }
    }
}

/// A token proving a span is open; returned by [`SpanTracer::open`] and
/// consumed by [`SpanTracer::close`].
///
/// The field is private so call sites cannot forge one or close a span
/// they did not open; dropping a guard without closing it leaks the
/// span (its time is never charged), which the `#[must_use]` lint
/// surfaces at the call site.
#[derive(Debug)]
#[must_use = "an unclosed span charges nothing; pass the guard back to SpanTracer::close"]
pub struct SpanGuard {
    id: u64,
}

/// One completed span, retained for the exporters.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// The phase this span measured.
    pub phase: Phase,
    /// Simulated process id the span ran under (0 for softirq context).
    pub tid: u64,
    /// Span start, sim-time.
    pub start: SimTime,
    /// Span end, sim-time.
    pub end: SimTime,
    /// Nanoseconds attributed to child spans.
    pub child_ns: u64,
    /// Nesting depth at open (0 = top level).
    pub depth: u16,
    /// Enclosing phases root-first, ending with this span's own phase.
    pub path: Vec<Phase>,
}

impl SpanRecord {
    /// Wall-to-wall span duration in nanoseconds.
    pub fn inclusive_ns(&self) -> u64 {
        self.end.saturating_duration_since(self.start).as_nanos()
    }

    /// Duration minus time spent in child spans — what the per-phase
    /// histogram was charged.
    pub fn exclusive_ns(&self) -> u64 {
        self.inclusive_ns().saturating_sub(self.child_ns)
    }
}

#[derive(Debug, Clone)]
struct OpenSpan {
    phase: Phase,
    tid: u64,
    start: SimTime,
    child_ns: u64,
    id: u64,
}

/// The span tracker: a strict LIFO stack of open spans plus a bounded
/// log of completed ones.
///
/// Owned by the simulated kernel next to the [`MetricRegistry`] and the
/// event [`Trace`](crate::trace::Trace); disabled by default.
#[derive(Debug, Clone)]
pub struct SpanTracer {
    enabled: bool,
    stack: Vec<OpenSpan>,
    done: Vec<SpanRecord>,
    retain: usize,
    dropped: u64,
    next_id: u64,
}

impl Default for SpanTracer {
    fn default() -> Self {
        SpanTracer::new()
    }
}

impl SpanTracer {
    /// Creates a disabled tracer with the default retention bound.
    pub fn new() -> SpanTracer {
        SpanTracer {
            enabled: false,
            stack: Vec::new(),
            done: Vec::new(),
            retain: DEFAULT_RETAIN,
            dropped: 0,
            next_id: 0,
        }
    }

    /// Whether spans are being collected.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns collection on or off. Off is the zero-cost state: `open`
    /// returns `None` and nothing touches the registry.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Caps how many completed spans are retained for the exporters
    /// (0 = histograms only). Does not drop already-retained spans.
    pub fn set_retain(&mut self, retain: usize) {
        self.retain = retain;
    }

    /// Opens a span at sim-time `at` under process `tid`.
    ///
    /// Returns `None` when tracing is disabled — the single branch every
    /// instrumentation site pays.
    pub fn open(&mut self, phase: Phase, tid: u64, at: SimTime) -> Option<SpanGuard> {
        if !self.enabled {
            return None;
        }
        Some(self.span_enter(phase, tid, at))
    }

    /// Closes the span `guard` refers to at sim-time `at`, charging its
    /// exclusive time to `probe` as `span_ns.<phase>`.
    ///
    /// # Panics
    ///
    /// Panics if `guard` is not the innermost open span: spans are
    /// strictly scoped, and an out-of-order close is an instrumentation
    /// bug.
    pub fn close(&mut self, guard: SpanGuard, at: SimTime, probe: &mut MetricRegistry) {
        self.span_exit(guard, at, probe);
    }

    /// Records a span whose endpoints are both already known, without
    /// touching the nesting stack.
    ///
    /// This is how cross-batch waits (the accept-queue wait runs from a
    /// softirq enqueue to a later `accept()` syscall) and softirq-side
    /// lock holds are charged; the full duration is exclusive.
    pub fn record_complete(
        &mut self,
        phase: Phase,
        tid: u64,
        start: SimTime,
        end: SimTime,
        probe: &mut MetricRegistry,
    ) {
        if !self.enabled {
            return;
        }
        let ns = end.saturating_duration_since(start).as_nanos();
        probe.observe(phase.metric(), ns);
        self.keep(SpanRecord {
            phase,
            tid,
            start,
            end,
            child_ns: 0,
            depth: 0,
            path: vec![phase],
        });
    }

    /// Records an already-measured span as a **leaf child** of the
    /// innermost open span (or at top level if none is open): the
    /// duration is charged to the phase histogram and attributed as
    /// child time of the current stack top, so the enclosing span's
    /// exclusive time stays correct.
    ///
    /// This is the shape syscall-style sites use — the interval is known
    /// from cost-accounting deltas, so nothing is ever left open across
    /// an early error return.
    pub fn leaf(
        &mut self,
        phase: Phase,
        tid: u64,
        start: SimTime,
        end: SimTime,
        probe: &mut MetricRegistry,
    ) {
        if !self.enabled {
            return;
        }
        let ns = end.saturating_duration_since(start).as_nanos();
        if let Some(top) = self.stack.last_mut() {
            top.child_ns += ns;
        }
        probe.observe(phase.metric(), ns);
        let mut path: Vec<Phase> = Vec::with_capacity(self.stack.len() + 1);
        path.extend(self.stack.iter().map(|s| s.phase));
        path.push(phase);
        let depth = self.stack.len() as u16;
        self.keep(SpanRecord {
            phase,
            tid,
            start,
            end,
            child_ns: 0,
            depth,
            path,
        });
    }

    /// Number of retained completed spans.
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// Whether no completed spans are retained.
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// Completed spans that overflowed the retention bound (their
    /// histogram charges still happened).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Spans currently open (non-zero at a report boundary means an
    /// instrumentation site leaked a guard).
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// The retained completed spans, in completion order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.done
    }

    /// Discards all retained spans and the dropped counter; the enabled
    /// flag and retention bound survive.
    pub fn clear(&mut self) {
        self.stack.clear();
        self.done.clear();
        self.dropped = 0;
        self.next_id = 0;
    }

    /// Renders retained spans as a Chrome-trace JSON document (an array
    /// of `"ph":"X"` complete events, loadable in `chrome://tracing` or
    /// Perfetto). Timestamps are sim-time microseconds.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::with_capacity(64 + self.done.len() * 96);
        out.push_str("[\n");
        for (i, r) in self.done.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{},\"args\":{{\"depth\":{},\"excl_ns\":{}}}}}",
                r.phase.name(),
                r.start.as_nanos() / 1_000,
                r.start.as_nanos() % 1_000,
                r.inclusive_ns() / 1_000,
                r.inclusive_ns() % 1_000,
                r.tid,
                r.depth,
                r.exclusive_ns(),
            );
        }
        out.push_str("\n]\n");
        out
    }

    /// Renders retained spans as folded stacks (`path;to;leaf ns`),
    /// the input format of flamegraph tools. Exclusive nanoseconds are
    /// aggregated per unique path, lines sorted by path.
    pub fn folded(&self) -> String {
        let mut agg: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for r in &self.done {
            let mut key = String::with_capacity(16 * r.path.len());
            for (i, p) in r.path.iter().enumerate() {
                if i > 0 {
                    key.push(';');
                }
                key.push_str(p.name());
            }
            *agg.entry(key).or_insert(0) += r.exclusive_ns();
        }
        let mut out = String::new();
        for (k, ns) in &agg {
            let _ = writeln!(out, "{k} {ns}");
        }
        out
    }

    // -- the only enter/exit pair in the tree (simcheck span-pairing) --

    fn span_enter(&mut self, phase: Phase, tid: u64, at: SimTime) -> SpanGuard {
        let id = self.next_id;
        self.next_id += 1;
        self.stack.push(OpenSpan {
            phase,
            tid,
            start: at,
            child_ns: 0,
            id,
        });
        SpanGuard { id }
    }

    fn span_exit(&mut self, guard: SpanGuard, at: SimTime, probe: &mut MetricRegistry) {
        let top = self
            .stack
            .pop()
            .expect("invariant: close called with no open span");
        assert_eq!(
            top.id, guard.id,
            "span closed out of order: spans are strictly scoped"
        );
        let inclusive = at.saturating_duration_since(top.start).as_nanos();
        let exclusive = inclusive.saturating_sub(top.child_ns);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += inclusive;
        }
        probe.observe(top.phase.metric(), exclusive);
        let mut path: Vec<Phase> = Vec::with_capacity(self.stack.len() + 1);
        path.extend(self.stack.iter().map(|s| s.phase));
        path.push(top.phase);
        let depth = self.stack.len() as u16;
        self.keep(SpanRecord {
            phase: top.phase,
            tid: top.tid,
            start: top.start,
            end: at,
            child_ns: top.child_ns,
            depth,
            path,
        });
    }

    fn keep(&mut self, record: SpanRecord) {
        if self.done.len() < self.retain {
            self.done.push(record);
        } else {
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let mut spans = SpanTracer::new();
        let mut probe = MetricRegistry::new();
        assert!(spans.open(Phase::Dispatch, 1, ns(0)).is_none());
        spans.record_complete(Phase::AcceptWait, 1, ns(0), ns(50), &mut probe);
        assert!(probe.is_empty());
        assert!(spans.is_empty());
        assert_eq!(spans.dropped(), 0);
    }

    #[test]
    fn nested_spans_charge_exclusive_time() {
        let mut spans = SpanTracer::new();
        let mut probe = MetricRegistry::new();
        spans.set_enabled(true);
        let outer = spans.open(Phase::Dispatch, 3, ns(100)).unwrap();
        let inner = spans.open(Phase::Read, 3, ns(140)).unwrap();
        spans.close(inner, ns(190), &mut probe);
        let inner2 = spans.open(Phase::Write, 3, ns(200)).unwrap();
        spans.close(inner2, ns(260), &mut probe);
        spans.close(outer, ns(300), &mut probe);

        // Children: read 50 ns, write 60 ns; dispatch inclusive 200,
        // exclusive 200 - 110 = 90.
        assert_eq!(probe.histogram("span_ns.read").unwrap().sum(), 50);
        assert_eq!(probe.histogram("span_ns.write").unwrap().sum(), 60);
        assert_eq!(probe.histogram("span_ns.dispatch").unwrap().sum(), 90);

        let recs = spans.records();
        assert_eq!(recs.len(), 3);
        let dispatch = recs.iter().find(|r| r.phase == Phase::Dispatch).unwrap();
        assert_eq!(dispatch.inclusive_ns(), 200);
        assert_eq!(dispatch.exclusive_ns(), 90);
        assert_eq!(dispatch.depth, 0);
        let read = recs.iter().find(|r| r.phase == Phase::Read).unwrap();
        assert_eq!(read.depth, 1);
        assert_eq!(read.path, vec![Phase::Dispatch, Phase::Read]);
    }

    #[test]
    fn grandchild_time_rolls_up_once() {
        let mut spans = SpanTracer::new();
        let mut probe = MetricRegistry::new();
        spans.set_enabled(true);
        let a = spans.open(Phase::Dispatch, 1, ns(0)).unwrap();
        let b = spans.open(Phase::Read, 1, ns(10)).unwrap();
        let c = spans.open(Phase::LockSocket, 1, ns(20)).unwrap();
        spans.close(c, ns(30), &mut probe);
        spans.close(b, ns(50), &mut probe);
        spans.close(a, ns(100), &mut probe);
        // lock 10; read inclusive 40, exclusive 30; dispatch inclusive
        // 100, exclusive 100 - 40 = 60 (grandchild counted only via b).
        assert_eq!(probe.histogram("span_ns.lock_socket").unwrap().sum(), 10);
        assert_eq!(probe.histogram("span_ns.read").unwrap().sum(), 30);
        assert_eq!(probe.histogram("span_ns.dispatch").unwrap().sum(), 60);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_close_panics() {
        let mut spans = SpanTracer::new();
        let mut probe = MetricRegistry::new();
        spans.set_enabled(true);
        let a = spans.open(Phase::Dispatch, 1, ns(0)).unwrap();
        let _b = spans.open(Phase::Read, 1, ns(10)).unwrap();
        spans.close(a, ns(20), &mut probe);
    }

    #[test]
    fn leaf_charges_parent_child_time() {
        let mut spans = SpanTracer::new();
        let mut probe = MetricRegistry::new();
        spans.set_enabled(true);
        let g = spans.open(Phase::Dispatch, 1, ns(0)).unwrap();
        spans.leaf(Phase::Read, 1, ns(10), ns(40), &mut probe);
        spans.close(g, ns(100), &mut probe);
        // Leaf read 30; dispatch exclusive 100 - 30 = 70.
        assert_eq!(probe.histogram("span_ns.read").unwrap().sum(), 30);
        assert_eq!(probe.histogram("span_ns.dispatch").unwrap().sum(), 70);
        let read = spans
            .records()
            .iter()
            .find(|r| r.phase == Phase::Read)
            .unwrap();
        assert_eq!(read.depth, 1);
        assert_eq!(read.path, vec![Phase::Dispatch, Phase::Read]);
    }

    #[test]
    fn record_complete_bypasses_stack() {
        let mut spans = SpanTracer::new();
        let mut probe = MetricRegistry::new();
        spans.set_enabled(true);
        let g = spans.open(Phase::Dispatch, 1, ns(0)).unwrap();
        spans.record_complete(Phase::AcceptWait, 2, ns(0), ns(500), &mut probe);
        spans.close(g, ns(100), &mut probe);
        // The completed record does not become the dispatch span's child.
        assert_eq!(probe.histogram("span_ns.accept_wait").unwrap().sum(), 500);
        assert_eq!(probe.histogram("span_ns.dispatch").unwrap().sum(), 100);
    }

    #[test]
    fn retention_bound_drops_but_still_charges() {
        let mut spans = SpanTracer::new();
        let mut probe = MetricRegistry::new();
        spans.set_enabled(true);
        spans.set_retain(2);
        for i in 0..5 {
            spans.record_complete(Phase::Read, 1, ns(i * 10), ns(i * 10 + 5), &mut probe);
        }
        assert_eq!(spans.len(), 2);
        assert_eq!(spans.dropped(), 3);
        assert_eq!(probe.histogram("span_ns.read").unwrap().count(), 5);
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let mut spans = SpanTracer::new();
        let mut probe = MetricRegistry::new();
        spans.set_enabled(true);
        let g = spans.open(Phase::ReadyScan, 7, ns(1_234)).unwrap();
        spans.close(g, ns(5_678), &mut probe);
        let json = spans.chrome_trace();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\":\"ready_scan\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.234"));
        assert!(json.contains("\"dur\":4.444"));
        assert!(json.contains("\"tid\":7"));
        // Exactly one event: no comma separator.
        assert!(!json.contains("},\n"));
    }

    #[test]
    fn folded_stacks_aggregate_by_path() {
        let mut spans = SpanTracer::new();
        let mut probe = MetricRegistry::new();
        spans.set_enabled(true);
        for _ in 0..2 {
            let a = spans.open(Phase::Dispatch, 1, ns(0)).unwrap();
            let b = spans.open(Phase::Read, 1, ns(10)).unwrap();
            spans.close(b, ns(40), &mut probe);
            spans.close(a, ns(100), &mut probe);
        }
        let folded = spans.folded();
        assert!(folded.contains("dispatch 140\n"), "{folded}");
        assert!(folded.contains("dispatch;read 60\n"), "{folded}");
    }

    #[test]
    fn clear_resets_state() {
        let mut spans = SpanTracer::new();
        let mut probe = MetricRegistry::new();
        spans.set_enabled(true);
        spans.set_retain(1);
        spans.record_complete(Phase::Read, 1, ns(0), ns(5), &mut probe);
        spans.record_complete(Phase::Read, 1, ns(0), ns(5), &mut probe);
        assert_eq!(spans.dropped(), 1);
        spans.clear();
        assert!(spans.is_empty());
        assert_eq!(spans.dropped(), 0);
        assert!(spans.enabled(), "enabled survives clear");
    }
}
