//! Paged sparse tables: the million-connection storage layout.
//!
//! The simulator's per-connection tables — kernel fd tables, endpoint
//! slots, `/dev/poll` interest tables, watcher (backmap) bitsets, the
//! load generator's connection map — were all one dense
//! `Vec<Option<T>>` per world, sized by the highest handle ever seen.
//! That layout is fine at the paper's 6,000 inactive connections and
//! hostile at 10^6: a sparse world with a few high handles pays for the
//! whole dense range, and growth reallocates (and copies) the entire
//! table. [`PagedSlots`] replaces it with fixed-size pages allocated on
//! demand: indexing is two shifts, untouched ranges cost one pointer
//! per page span, and growth never moves existing entries. [`PagedBits`]
//! is the same idea for bitsets.
//!
//! Pages are never freed while the world lives — end-of-run footprint
//! therefore equals the high-water footprint, which is exactly what the
//! `mem.*` probes want to report.

/// Entries per page. 4096 slots keeps a page of `Option<u32>` at one
/// small-object allocation (32 KB) while making the page vector
/// negligible even at 2^32 handles (1M pointers).
pub const PAGE_SLOTS: usize = 4096;

/// A sparse, paged `index -> T` table: fixed-size pages allocated on
/// first touch, `Option<T>` per slot, per-page occupancy counts so
/// scans skip empty pages in O(1).
#[derive(Debug, Clone)]
pub struct PagedSlots<T> {
    pages: Vec<Option<Box<[Option<T>]>>>,
    /// Occupied slots per allocated page (index-parallel with `pages`).
    page_occ: Vec<u32>,
    /// Total occupied slots.
    len: usize,
}

impl<T> Default for PagedSlots<T> {
    fn default() -> PagedSlots<T> {
        PagedSlots::new()
    }
}

impl<T> PagedSlots<T> {
    /// An empty table (no pages allocated).
    pub fn new() -> PagedSlots<T> {
        PagedSlots {
            pages: Vec::new(),
            page_occ: Vec::new(),
            len: 0,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages currently allocated.
    pub fn pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Heap bytes held by the table: allocated pages plus the page
    /// vectors. This is the modeled resident footprint the `mem.*`
    /// probes report; since pages are never freed it is also the
    /// high-water footprint.
    pub fn heap_bytes(&self) -> usize {
        self.pages() * PAGE_SLOTS * std::mem::size_of::<Option<T>>()
            + self.pages.capacity() * std::mem::size_of::<Option<Box<[Option<T>]>>>()
            + self.page_occ.capacity() * std::mem::size_of::<u32>()
    }

    /// One past the highest index any allocated page can hold.
    pub fn capacity(&self) -> usize {
        self.pages.len() * PAGE_SLOTS
    }

    /// Shared access to the slot at `ix`.
    #[inline]
    pub fn get(&self, ix: usize) -> Option<&T> {
        self.pages
            .get(ix / PAGE_SLOTS)?
            .as_ref()?
            .get(ix % PAGE_SLOTS)?
            .as_ref()
    }

    /// Mutable access to the slot at `ix`.
    #[inline]
    pub fn get_mut(&mut self, ix: usize) -> Option<&mut T> {
        self.pages
            .get_mut(ix / PAGE_SLOTS)?
            .as_mut()?
            .get_mut(ix % PAGE_SLOTS)?
            .as_mut()
    }

    /// Whether the slot at `ix` is occupied.
    #[inline]
    pub fn contains(&self, ix: usize) -> bool {
        self.get(ix).is_some()
    }

    fn page_mut(&mut self, page: usize) -> &mut [Option<T>] {
        if page >= self.pages.len() {
            self.pages.resize_with(page + 1, || None);
            self.page_occ.resize(page + 1, 0);
        }
        self.pages[page].get_or_insert_with(|| {
            let mut v = Vec::with_capacity(PAGE_SLOTS);
            v.resize_with(PAGE_SLOTS, || None);
            v.into_boxed_slice()
        })
    }

    /// Stores `value` at `ix`, returning the previous occupant.
    pub fn insert(&mut self, ix: usize, value: T) -> Option<T> {
        let (p, o) = (ix / PAGE_SLOTS, ix % PAGE_SLOTS);
        let prev = self.page_mut(p)[o].replace(value);
        if prev.is_none() {
            self.page_occ[p] += 1;
            self.len += 1;
        }
        prev
    }

    /// Removes and returns the occupant of `ix`, if any. The page stays
    /// allocated (see the module docs on high-water footprint).
    pub fn take(&mut self, ix: usize) -> Option<T> {
        let page = self.pages.get_mut(ix / PAGE_SLOTS)?.as_mut()?;
        let prev = page[ix % PAGE_SLOTS].take();
        if prev.is_some() {
            self.page_occ[ix / PAGE_SLOTS] -= 1;
            self.len -= 1;
        }
        prev
    }

    /// The first unoccupied index at or after `from` — lowest-free fd
    /// semantics without an O(table) scan: fully-occupied pages are
    /// skipped via their occupancy counts.
    pub fn first_free_from(&self, from: usize) -> usize {
        let mut ix = from;
        loop {
            let page = ix / PAGE_SLOTS;
            if page >= self.pages.len() {
                return ix;
            }
            match &self.pages[page] {
                None => return ix,
                Some(slots) => {
                    if self.page_occ[page] as usize == PAGE_SLOTS {
                        // Full page: skip to the next one.
                        ix = (page + 1) * PAGE_SLOTS;
                        continue;
                    }
                    for (o, slot) in slots.iter().enumerate().skip(ix % PAGE_SLOTS) {
                        if slot.is_none() {
                            return page * PAGE_SLOTS + o;
                        }
                    }
                    ix = (page + 1) * PAGE_SLOTS;
                }
            }
        }
    }

    /// Iterates occupied slots in ascending index order, skipping
    /// unallocated and empty pages wholesale.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.pages
            .iter()
            .enumerate()
            .filter(|(p, page)| page.is_some() && self.page_occ[*p] > 0)
            .flat_map(|(p, page)| {
                page.as_deref()
                    .expect("invariant: filtered to allocated pages")
                    .iter()
                    .enumerate()
                    .filter_map(move |(o, slot)| slot.as_ref().map(|v| (p * PAGE_SLOTS + o, v)))
            })
    }

    /// Mutable sibling of [`PagedSlots::iter`].
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut T)> {
        let occ = &self.page_occ;
        self.pages
            .iter_mut()
            .enumerate()
            .filter(move |(p, page)| page.is_some() && occ[*p] > 0)
            .flat_map(|(p, page)| {
                page.as_deref_mut()
                    .expect("invariant: filtered to allocated pages")
                    .iter_mut()
                    .enumerate()
                    .filter_map(move |(o, slot)| slot.as_mut().map(|v| (p * PAGE_SLOTS + o, v)))
            })
    }
}

/// Bits per page of a [`PagedBits`] (matches [`PAGE_SLOTS`] so an fd
/// table page and its watcher-bit page cover the same handle range).
pub const PAGE_BITS: usize = PAGE_SLOTS;
const WORDS_PER_PAGE: usize = PAGE_BITS / 64;

/// A sparse, paged bitset: the backmap/watcher-set layout. Pages of
/// 4096 bits allocate on first set; cleared bits keep their page.
#[derive(Debug, Clone, Default)]
pub struct PagedBits {
    pages: Vec<Option<Box<[u64; WORDS_PER_PAGE]>>>,
    ones: usize,
}

impl PagedBits {
    /// An empty bitset (no pages allocated).
    pub fn new() -> PagedBits {
        PagedBits::default()
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.ones
    }

    /// Number of pages currently allocated.
    pub fn pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Heap bytes held by the bitset (pages plus the page vector).
    pub fn heap_bytes(&self) -> usize {
        self.pages() * WORDS_PER_PAGE * 8
            + self.pages.capacity() * std::mem::size_of::<Option<Box<[u64; WORDS_PER_PAGE]>>>()
    }

    /// Whether bit `ix` is set.
    #[inline]
    pub fn contains(&self, ix: usize) -> bool {
        match self.pages.get(ix / PAGE_BITS) {
            Some(Some(words)) => {
                let bit = ix % PAGE_BITS;
                words[bit / 64] & (1u64 << (bit % 64)) != 0
            }
            _ => false,
        }
    }

    /// Sets bit `ix`; returns whether it was newly set.
    pub fn insert(&mut self, ix: usize) -> bool {
        let page = ix / PAGE_BITS;
        if page >= self.pages.len() {
            self.pages.resize_with(page + 1, || None);
        }
        let words = self.pages[page].get_or_insert_with(|| Box::new([0u64; WORDS_PER_PAGE]));
        let bit = ix % PAGE_BITS;
        let mask = 1u64 << (bit % 64);
        let fresh = words[bit / 64] & mask == 0;
        words[bit / 64] |= mask;
        if fresh {
            self.ones += 1;
        }
        fresh
    }

    /// Clears bit `ix`; returns whether it was set.
    pub fn remove(&mut self, ix: usize) -> bool {
        if let Some(Some(words)) = self.pages.get_mut(ix / PAGE_BITS) {
            let bit = ix % PAGE_BITS;
            let mask = 1u64 << (bit % 64);
            if words[bit / 64] & mask != 0 {
                words[bit / 64] &= !mask;
                self.ones -= 1;
                return true;
            }
        }
        false
    }

    /// Clears every bit (pages stay allocated).
    pub fn clear(&mut self) {
        for page in self.pages.iter_mut().flatten() {
            **page = [0u64; WORDS_PER_PAGE];
        }
        self.ones = 0;
    }

    /// Calls `f(word_index, word)` for every nonzero 64-bit word, in
    /// ascending order — the shape state fingerprints fold.
    pub fn for_each_nonzero_word(&self, mut f: impl FnMut(usize, u64)) {
        for (p, page) in self.pages.iter().enumerate() {
            let Some(words) = page else { continue };
            for (w, &word) in words.iter().enumerate() {
                if word != 0 {
                    f(p * WORDS_PER_PAGE + w, word);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_grow_on_demand_and_index_sparsely() {
        let mut t: PagedSlots<u64> = PagedSlots::new();
        assert_eq!(t.len(), 0);
        assert_eq!(t.pages(), 0);
        assert_eq!(t.get(12_345_678), None);

        // A single far-out index allocates exactly one page.
        assert_eq!(t.insert(12_345_678, 7), None);
        assert_eq!(t.pages(), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(12_345_678), Some(&7));
        assert!(!t.contains(12_345_677));

        // A second index in the same page allocates nothing new.
        let same_page = (12_345_678 / PAGE_SLOTS) * PAGE_SLOTS;
        t.insert(same_page, 8);
        assert_eq!(t.pages(), 1);

        // Dense low range allocates its own pages independently.
        for i in 0..(PAGE_SLOTS + 1) {
            t.insert(i, i as u64);
        }
        assert_eq!(t.pages(), 3);
        assert_eq!(t.len(), PAGE_SLOTS + 3);
        assert!(t.heap_bytes() >= 3 * PAGE_SLOTS * std::mem::size_of::<Option<u64>>());
    }

    #[test]
    fn slots_insert_take_and_reuse() {
        let mut t: PagedSlots<String> = PagedSlots::new();
        assert_eq!(t.insert(5, "a".into()), None);
        assert_eq!(t.insert(5, "b".into()), Some("a".into()));
        assert_eq!(t.len(), 1);
        assert_eq!(t.take(5), Some("b".into()));
        assert_eq!(t.take(5), None);
        assert_eq!(t.len(), 0);
        // The page stays allocated: high-water footprint.
        assert_eq!(t.pages(), 1);
    }

    #[test]
    fn first_free_skips_full_pages_and_honours_holes() {
        let mut t: PagedSlots<u32> = PagedSlots::new();
        assert_eq!(t.first_free_from(0), 0);
        for i in 0..PAGE_SLOTS {
            t.insert(i, 1);
        }
        // Page 0 full: the scan jumps straight past it.
        assert_eq!(t.first_free_from(0), PAGE_SLOTS);
        t.take(17);
        assert_eq!(t.first_free_from(0), 17);
        assert_eq!(t.first_free_from(18), PAGE_SLOTS);
        t.insert(PAGE_SLOTS, 1);
        assert_eq!(t.first_free_from(PAGE_SLOTS), PAGE_SLOTS + 1);
    }

    #[test]
    fn slots_iterate_in_index_order_across_page_gaps() {
        let mut t: PagedSlots<u32> = PagedSlots::new();
        let far = 10 * PAGE_SLOTS + 3;
        t.insert(far, 30);
        t.insert(2, 20);
        t.insert(0, 10);
        let got: Vec<(usize, u32)> = t.iter().map(|(i, &v)| (i, v)).collect();
        assert_eq!(got, vec![(0, 10), (2, 20), (far, 30)]);
        for (_, v) in t.iter_mut() {
            *v += 1;
        }
        assert_eq!(t.get(far), Some(&31));
    }

    #[test]
    fn bits_set_clear_count_and_fold() {
        let mut b = PagedBits::new();
        assert!(!b.contains(9999));
        assert!(b.insert(9999));
        assert!(!b.insert(9999));
        assert!(b.insert(0));
        assert_eq!(b.count(), 2);
        assert_eq!(b.pages(), 2);
        assert!(b.remove(9999));
        assert!(!b.remove(9999));
        assert_eq!(b.count(), 1);

        let mut words = Vec::new();
        b.insert(64);
        b.for_each_nonzero_word(|ix, w| words.push((ix, w)));
        assert_eq!(words, vec![(0, 1), (1, 1)]);

        b.clear();
        assert_eq!(b.count(), 0);
        assert!(!b.contains(0));
        // Pages survive a clear (heap bytes unchanged).
        assert_eq!(b.pages(), 2);
        assert!(b.heap_bytes() >= 2 * (PAGE_BITS / 8));
    }
}
