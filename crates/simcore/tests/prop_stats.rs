//! Property-based tests for the statistics primitives.

use proptest::prelude::*;
use simcore::stats::{OnlineStats, Quantiles, RateSampler, RateSummary};
use simcore::time::{SimDuration, SimTime};

proptest! {
    /// Welford mean matches the naive mean; extrema are exact.
    #[test]
    fn online_stats_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..500)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.add(x);
        }
        let naive = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
        prop_assert_eq!(s.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    /// Quantiles are monotone in q and bounded by the extrema.
    #[test]
    fn quantiles_monotone(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut q = Quantiles::new();
        for &x in &xs {
            q.add(x);
        }
        let lo = q.quantile(0.0).unwrap();
        let q25 = q.quantile(0.25).unwrap();
        let med = q.median().unwrap();
        let q75 = q.quantile(0.75).unwrap();
        let hi = q.quantile(1.0).unwrap();
        prop_assert!(lo <= q25 && q25 <= med && med <= q75 && q75 <= hi);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(lo, min);
        prop_assert_eq!(hi, max);
    }

    /// Total events recorded equals the sum over window rates times the
    /// window length (events are conserved, modulo the dropped partial
    /// final window).
    #[test]
    fn rate_sampler_conserves_events(ts in prop::collection::vec(0u64..10_000_000_000u64, 0..500)) {
        let mut ts = ts;
        ts.sort_unstable();
        let window = SimDuration::from_secs(1);
        let mut r = RateSampler::new(SimTime::ZERO, window);
        for &t in &ts {
            r.record(SimTime::from_nanos(t));
        }
        let end = SimTime::from_secs(11); // Past every event's window.
        let rates = r.finish(end);
        let total: f64 = rates.iter().sum::<f64>() * window.as_secs_f64();
        prop_assert!((total - ts.len() as f64).abs() < 1e-6);
        // Summary never exceeds bounds.
        let s = RateSummary::of(&rates);
        prop_assert!(s.min <= s.avg && s.avg <= s.max);
    }
}
