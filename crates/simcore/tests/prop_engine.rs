//! Property-based tests for the event engine: ordering, determinism, and
//! cancellation invariants under arbitrary schedules.

use proptest::prelude::*;
use simcore::engine::{BoxedEvent, Engine};
use simcore::time::SimTime;

#[derive(Debug, Clone)]
struct Op {
    at: u64,
    tag: u64,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0u64..10_000, 0u64..u64::MAX), 0..200)
        .prop_map(|v| v.into_iter().map(|(at, tag)| Op { at, tag }).collect())
}

proptest! {
    /// Events always fire in non-decreasing time order, with FIFO ties.
    #[test]
    fn fires_sorted_stable(ops in ops()) {
        let mut e: Engine<Vec<(u64, u64)>> = Engine::new();
        let mut fired = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let at = op.at;
            let tag = op.tag;
            let seq = i as u64;
            let _ = tag;
            e.schedule_at(
                SimTime::from_nanos(at),
                BoxedEvent::new(move |s: &mut Vec<(u64, u64)>, _e| s.push((at, seq))),
            );
        }
        e.run(&mut fired);
        prop_assert_eq!(fired.len(), ops.len());
        // Sorted by (time, scheduling order).
        for w in fired.windows(2) {
            prop_assert!(w[0] <= w[1], "out of order: {:?} then {:?}", w[0], w[1]);
        }
    }

    /// Cancelling a subset removes exactly that subset.
    #[test]
    fn cancellation_exact(ops in ops(), mask in prop::collection::vec(any::<bool>(), 0..200)) {
        let mut e: Engine<Vec<usize>> = Engine::new();
        let mut fired = Vec::new();
        let mut ids = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let id = e.schedule_at(
                SimTime::from_nanos(op.at),
                BoxedEvent::new(move |s: &mut Vec<usize>, _e| s.push(i)),
            );
            ids.push(id);
        }
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if mask.get(i).copied().unwrap_or(false) {
                prop_assert!(e.cancel(*id));
            } else {
                expected.push(i);
            }
        }
        e.run(&mut fired);
        fired.sort_unstable();
        prop_assert_eq!(fired, expected);
    }

    /// Two engines fed the same schedule produce identical traces.
    #[test]
    fn deterministic_replay(ops in ops()) {
        let run = || {
            let mut e: Engine<Vec<(u64, u64)>> = Engine::new();
            let mut fired = Vec::new();
            for op in &ops {
                let at = op.at;
                let tag = op.tag;
                e.schedule_at(
                    SimTime::from_nanos(at),
                    BoxedEvent::new(move |s: &mut Vec<(u64, u64)>, _e| s.push((at, tag))),
                );
            }
            e.run(&mut fired);
            (fired, e.now())
        };
        prop_assert_eq!(run(), run());
    }
}
