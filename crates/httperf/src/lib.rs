#![warn(missing_docs)]

//! `httperf` — the benchmark client and testbed of *Scalable Network I/O
//! in Linux* (Provos & Lever, USENIX 2000).
//!
//! Modelled after the paper's modified `httperf` (§5): an open-loop
//! request generator at a targeted rate, plus a constant population of
//! inactive high-latency connections that reopen when the server times
//! them out. [`testbed::Testbed`] wires the network, the server kernel,
//! the `/dev/poll` registry, a server under test and the load generator
//! into one deterministic simulation; [`run::run_one`] executes a single
//! benchmark point and [`run::sweep`] a whole figure.

pub mod load;
pub mod report;
pub mod run;
pub mod testbed;

pub use load::{LoadConfig, LoadGen, LoadShape, LoadTimer};
pub use report::{ErrorCounts, RunReport};
pub use run::{run_one, sweep, RunParams, ServerKind};
pub use testbed::{default_testbed, Testbed, CLIENT_HOST, SERVER_HOST};
