//! High-level run controller: picks a server architecture, drives one
//! benchmark run, returns the report. The figure harness and the
//! integration tests are thin loops over [`run_one`].

use devpoll::{DevPollBackend, DevPollConfig, SelectBackend, StockPollBackend};
use simcore::time::{SimDuration, SimTime};
use simkernel::AcceptWake;
use simkernel::CostModel;
use simnet::{LinkConfig, TcpConfig};

use servers::{
    ContentStore, HybridConfig, HybridServer, PhConfig, Phhttpd, Prefork, Server, ServerConfig,
    ServerCtx, Thttpd,
};

use crate::load::LoadConfig;
use crate::report::RunReport;
use crate::testbed::Testbed;

/// Which server architecture to benchmark.
///
/// `Ord`/`Hash` follow declaration order so the kind can key sweep
/// caches (`BTreeMap<(ServerKind, usize), …>`) and hash job identities
/// without going through the string label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServerKind {
    /// Stock thttpd: `poll()`.
    ThttpdPoll,
    /// thttpd on `select()` — the pre-poll baseline with bitmap copies,
    /// the O(maxfd) slot walk and the `FD_SETSIZE` wall.
    ThttpdSelect,
    /// Modified thttpd: `/dev/poll` with hints and mmap (the paper's
    /// full configuration).
    ThttpdDevPoll,
    /// `/dev/poll` with explicit feature switches (ablations).
    ThttpdDevPollWith {
        /// Device configuration.
        config: DevPollConfig,
        /// Shared mmap result area on/off.
        mmap: bool,
        /// Combined write+ioctl updates (§6 future work).
        combined: bool,
    },
    /// phhttpd: RT signals, one `sigwaitinfo` per event.
    Phhttpd,
    /// phhttpd using the proposed `sigtimedwait4()` batch pickup.
    PhhttpdBatch(usize),
    /// The paper's imagined hybrid (§4/§6).
    Hybrid,
    /// `/dev/poll` thttpd responding via `sendfile()` (§6 future work).
    ThttpdDevPollSendfile,
    /// N prefork workers sharing the listener over `/dev/poll`, with the
    /// given accept wakeup policy (thundering herd study, §6).
    PreforkDevPoll {
        /// Worker processes.
        workers: usize,
        /// Wake one worker or all of them on accept-ready.
        wake: AcceptWake,
    },
}

impl ServerKind {
    /// Short label for file names and tables.
    pub fn label(&self) -> String {
        match self {
            ServerKind::ThttpdPoll => "poll".into(),
            ServerKind::ThttpdSelect => "select".into(),
            ServerKind::ThttpdDevPoll => "devpoll".into(),
            ServerKind::ThttpdDevPollWith {
                config,
                mmap,
                combined,
            } => format!(
                "devpoll(h={},m={},c={})",
                config.hints as u8, *mmap as u8, *combined as u8
            ),
            ServerKind::Phhttpd => "phhttpd".into(),
            ServerKind::PhhttpdBatch(n) => format!("phhttpd-batch{n}"),
            ServerKind::Hybrid => "hybrid".into(),
            ServerKind::ThttpdDevPollSendfile => "devpoll+sendfile".into(),
            ServerKind::PreforkDevPoll { workers, wake } => {
                let w = match wake {
                    AcceptWake::Herd => "herd",
                    AcceptWake::Exclusive => "excl",
                };
                format!("prefork{workers}-{w}")
            }
        }
    }
}

/// All parameters of one run.
#[derive(Debug, Clone)]
pub struct RunParams {
    /// Server architecture.
    pub kind: ServerKind,
    /// Load shape.
    pub load: LoadConfig,
    /// CPU cost model.
    pub cost: CostModel,
    /// Transport configuration.
    pub tcp: TcpConfig,
    /// Link configuration.
    pub link: LinkConfig,
    /// Server tunables.
    pub server: ServerConfig,
    /// Hard wall on simulated time.
    pub horizon: SimTime,
    /// Override the served document size (bytes); `None` keeps the
    /// paper's 6 KB CITI index.
    pub doc_bytes: Option<usize>,
    /// Trace categories to enable on the server kernel (see
    /// [`simcore::trace::CATEGORIES`]); the rendered trace lands in
    /// [`RunReport::trace`].
    pub trace: Vec<String>,
    /// Enable latency span tracing on the server kernel. Per-phase
    /// `span_ns.*` histograms land in [`RunReport::probe`]; retained
    /// span records render into [`RunReport::span_chrome`] /
    /// [`RunReport::span_folded`].
    pub spans: bool,
    /// Span-record retention cap; `None` keeps
    /// [`simcore::span::DEFAULT_RETAIN`]. Use `Some(0)` for
    /// histogram-only runs (sweeps) that do not need exports.
    pub span_retain: Option<usize>,
}

impl RunParams {
    /// Defaults matching the paper's environment, with the given kind,
    /// rate and inactive load.
    pub fn paper(kind: ServerKind, rate: f64, inactive: usize) -> RunParams {
        RunParams {
            kind,
            load: LoadConfig {
                rate,
                inactive,
                ..LoadConfig::default()
            },
            cost: CostModel::k6_2_400mhz(),
            tcp: TcpConfig::default(),
            link: LinkConfig::default(),
            server: ServerConfig::default(),
            horizon: SimTime::from_secs(600),
            doc_bytes: None,
            trace: Vec::new(),
            spans: false,
            span_retain: None,
        }
    }

    /// Scales the run down to `n` connections (fast tests and smoke
    /// benches).
    pub fn with_conns(mut self, n: u64) -> RunParams {
        self.load.total_conns = n;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> RunParams {
        self.load.seed = seed;
        self
    }

    /// Serves a document of `bytes` instead of the 6 KB default (the §5
    /// document-size remark).
    pub fn with_doc_bytes(mut self, bytes: usize) -> RunParams {
        self.doc_bytes = Some(bytes);
        self.load.doc_path = format!("/doc-{bytes}.html");
        self
    }

    /// Injects random per-segment loss (fault injection; WAN-like
    /// conditions the paper's LAN testbed could not produce).
    pub fn with_loss(mut self, prob: f64) -> RunParams {
        self.link.loss_prob = prob;
        self
    }

    /// Enables end-of-run memory probes (`mem.*` gauges plus exhaustion
    /// counters) — the million-lane measurement surface.
    pub fn with_mem_probes(mut self) -> RunParams {
        self.load.mem_probes = true;
        self
    }

    /// Drives the inactive population from `n` client machines, lifting
    /// the ~60k-ephemeral-ports-per-host ceiling.
    pub fn with_client_hosts(mut self, n: usize) -> RunParams {
        self.load.client_hosts = n.max(1);
        self
    }

    /// Raises the server's descriptor limit (the million lane needs a
    /// descriptor per held-open connection).
    pub fn with_server_fd_limit(mut self, limit: usize) -> RunParams {
        self.server.fd_limit = limit;
        self
    }

    /// Raises the client-side socket limit (counts active and inactive
    /// connections alike).
    pub fn with_client_fd_limit(mut self, limit: usize) -> RunParams {
        self.load.client_fd_limit = limit;
        self
    }

    /// Enables latency span tracing for this run.
    pub fn with_spans(mut self) -> RunParams {
        self.spans = true;
        self
    }

    /// Enables span tracing with an explicit record-retention cap
    /// (`0` = histograms only, no exports).
    pub fn with_span_retain(mut self, retain: usize) -> RunParams {
        self.spans = true;
        self.span_retain = Some(retain);
        self
    }

    /// Enables the given trace categories (`"devpoll"`, `"rtsig"`,
    /// `"tcp"`, `"sched"`, or `"all"`) for this run.
    pub fn with_trace<I, S>(mut self, categories: I) -> RunParams
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.trace.extend(categories.into_iter().map(Into::into));
        self
    }
}

/// Executes one benchmark run and returns its report.
pub fn run_one(params: RunParams) -> RunReport {
    let mut bed = Testbed::new(params.cost, params.tcp, params.link, params.load);
    for cat in &params.trace {
        bed.kernel.trace_mut().enable_by_name(cat);
    }
    if params.spans {
        bed.kernel.spans_mut().set_enabled(true);
        if let Some(retain) = params.span_retain {
            bed.kernel.spans_mut().set_retain(retain);
        }
    }
    let mut server_cfg = params.server;
    if params.kind == ServerKind::ThttpdDevPollSendfile {
        server_cfg.use_sendfile = true;
    }
    if let ServerKind::PreforkDevPoll { wake, .. } = params.kind {
        bed.kernel.set_accept_wake(wake);
    }
    let content = params
        .doc_bytes
        .map(|n| ContentStore::size_sweep(&[n]))
        .unwrap_or_default();
    let mut server: Box<dyn Server> = {
        let mut ctx = ServerCtx {
            kernel: &mut bed.kernel,
            net: &mut bed.net,
            registry: &mut bed.registry,
            now: SimTime::ZERO,
        };
        match params.kind {
            ServerKind::ThttpdPoll => {
                let mut s = Thttpd::new(&mut ctx, StockPollBackend::new(), server_cfg);
                s.set_content(content);
                Box::new(s)
            }
            ServerKind::ThttpdSelect => {
                let mut s = Thttpd::new(&mut ctx, SelectBackend::new(), server_cfg);
                s.set_content(content);
                Box::new(s)
            }
            ServerKind::ThttpdDevPoll | ServerKind::ThttpdDevPollSendfile => {
                let mut s = Thttpd::new(&mut ctx, DevPollBackend::new(), server_cfg);
                s.set_content(content);
                Box::new(s)
            }
            ServerKind::ThttpdDevPollWith {
                config,
                mmap,
                combined,
            } => {
                let mut s = Thttpd::new(
                    &mut ctx,
                    DevPollBackend::with_config(config, mmap, 512, combined),
                    server_cfg,
                );
                s.set_content(content);
                Box::new(s)
            }
            ServerKind::Phhttpd => {
                Box::new(Phhttpd::new(&mut ctx, server_cfg, PhConfig::default()))
            }
            ServerKind::PhhttpdBatch(n) => Box::new(Phhttpd::new(
                &mut ctx,
                server_cfg,
                PhConfig {
                    batch_dequeue: Some(n),
                },
            )),
            ServerKind::Hybrid => Box::new(HybridServer::new(
                &mut ctx,
                server_cfg,
                HybridConfig::default(),
            )),
            ServerKind::PreforkDevPoll { workers, .. } => Box::new(Prefork::new(
                &mut ctx,
                DevPollBackend::new,
                server_cfg,
                workers,
            )),
        }
    };
    bed.start(server.as_mut());
    bed.run(server.as_mut(), params.horizon);
    bed.report(server.as_ref())
}

/// Runs a rate sweep (one run per rate) and returns the reports in rate
/// order — one paper figure's worth of data.
pub fn sweep(
    kind: ServerKind,
    rates: &[f64],
    inactive: usize,
    conns_per_run: u64,
) -> Vec<RunReport> {
    rates
        .iter()
        .map(|&rate| {
            let params = RunParams::paper(kind, rate, inactive).with_conns(conns_per_run);
            run_one(params)
        })
        .collect()
}

/// Extends the run with the paper's inter-run procedure: after a run,
/// wait for every socket to leave TIME_WAIT ("we must avoid reaching the
/// port number limitation", §5). Returns the drain time needed.
pub fn time_wait_drain(bed: &Testbed) -> SimDuration {
    if bed.net.time_wait_count(crate::testbed::CLIENT_HOST) == 0 {
        SimDuration::ZERO
    } else {
        // Worst case: a socket entered TIME_WAIT at the very end.
        bed.net.config().time_wait
    }
}
