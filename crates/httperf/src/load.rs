//! The load generator: an httperf-style open-loop request stream plus
//! the paper's constant population of inactive (high-latency,
//! never-completing) connections.
//!
//! "We add client programs that do not complete an http request. To keep
//! the number of high-latency clients constant, these clients reopen
//! their connection if the server times them out." (§5)

use simcore::paged::PagedSlots;
use simcore::rng::SimRng;
use simcore::stats::{Quantiles, RateSampler};
use simcore::time::{SimDuration, SimTime};
use simnet::{ConnId, ConnectError, EndpointId, HostId, NetNotify, Network, Side, SockAddr};

use crate::report::ErrorCounts;

/// The arrival process shape.
///
/// The paper notes (§5, citing Banga & Druschel) that real WAN clients
/// "induce a bursty and unpredictable interrupt load on the server";
/// [`LoadShape::Bursty`] models that by alternating between an elevated
/// rate and silence while preserving the same average rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadShape {
    /// Evenly spaced arrivals (httperf's fixed --rate).
    Constant,
    /// On/off bursts: arrivals at `rate / duty` during a fraction `duty`
    /// of each `period`, silence otherwise. Average rate is preserved.
    Bursty {
        /// Burst cycle length.
        period: SimDuration,
        /// Fraction of the period spent bursting, in (0, 1].
        duty: f64,
    },
}

/// Load parameters for one benchmark run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Targeted request rate, requests per second.
    pub rate: f64,
    /// Stop after this many active connection attempts.
    pub total_conns: u64,
    /// Constant inactive-connection population.
    pub inactive: usize,
    /// Client-side timeout for a full response.
    pub client_timeout: SimDuration,
    /// Extra one-way latency on inactive (modem-class) connections.
    pub inactive_extra_delay: SimDuration,
    /// Extra one-way latency on active (LAN) connections.
    pub active_extra_delay: SimDuration,
    /// Uniform jitter fraction applied to inter-arrival gaps.
    pub jitter: f64,
    /// Maximum simultaneously open client sockets (fd limit).
    pub client_fd_limit: usize,
    /// RNG seed.
    pub seed: u64,
    /// Document requested.
    pub doc_path: String,
    /// Reply-rate sampling window.
    pub window: SimDuration,
    /// Time reserved to establish the inactive population before the
    /// first request is launched; measurement starts here too.
    pub warmup: SimDuration,
    /// Client user-space turnaround between `connect` completing and the
    /// request hitting the wire (process wakeup + `write()` on the
    /// 4-way Xeon client).
    pub client_think: SimDuration,
    /// Arrival process shape.
    pub shape: LoadShape,
    /// Client machines driving the inactive population. One host offers
    /// ~60k ephemeral ports, so populations beyond that need more
    /// machines — the paper's multi-client testbed. Inactive connections
    /// round-robin across the hosts; active requests stay on the first.
    pub client_hosts: usize,
    /// Fold end-of-run memory gauges (`mem.*`) and exhaustion counters
    /// into the probe snapshot. Off by default: the gauges would change
    /// the snapshot of existing figure configs.
    pub mem_probes: bool,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            rate: 500.0,
            total_conns: 35_000,
            inactive: 0,
            client_timeout: SimDuration::from_secs(2),
            inactive_extra_delay: SimDuration::from_millis(150),
            active_extra_delay: SimDuration::ZERO,
            jitter: 0.05,
            client_fd_limit: 60_000,
            seed: 1,
            doc_path: "/index.html".to_string(),
            window: SimDuration::from_secs(1),
            warmup: SimDuration::from_millis(2_500),
            client_think: SimDuration::from_micros(500),
            shape: LoadShape::Constant,
            client_hosts: 1,
            mem_probes: false,
        }
    }
}

/// What kind of connection a client socket is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnKind {
    Active,
    Inactive,
}

// #[hot_struct]: one per client socket, a million strong
#[derive(Debug)]
struct ClientConn {
    kind: ConnKind,
    started: SimTime,
    /// Bytes of response received so far (active only).
    got: usize,
    /// First bytes look like a 200 response.
    ok_prefix: Option<bool>,
    /// Request sent yet?
    sent_request: bool,
    /// Deadline for the whole exchange (active only).
    deadline: SimTime,
    done: bool,
}

/// Timer kinds the load generator schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LoadTimer {
    /// Launch the next active connection.
    NextArrival,
    /// Check an active connection's deadline.
    Timeout(ConnId),
    /// Re-open one inactive connection.
    ReopenInactive,
    /// Send the request on an established connection (after the client's
    /// turnaround time).
    SendRequest(ConnId),
}

/// The load generator state machine.
pub struct LoadGen {
    cfg: LoadConfig,
    host: HostId,
    server: SockAddr,
    rng: SimRng,
    /// Paged per-connection table indexed by `ConnId`: sequential ids
    /// keep pages dense, and a million-connection population costs only
    /// the pages its live id range touches.
    conns: PagedSlots<ClientConn>,
    /// Round-robin cursor over the client hosts for inactive connects.
    inactive_rr: usize,
    launched: u64,
    resolved: u64,
    /// Successful replies.
    pub replies: u64,
    /// Error tallies.
    pub errors: ErrorCounts,
    /// Reply completion sampler.
    pub sampler: RateSampler,
    /// Connection times in milliseconds.
    pub latencies_ms: Quantiles,
    inactive_open: usize,
    /// When the last active connection resolved.
    pub last_resolution: SimTime,
    /// When the last active connection was launched (measurement end).
    pub last_arrival: SimTime,
    finished_arrivals: bool,
}

impl LoadGen {
    /// Creates the generator; call [`LoadGen::bootstrap`] to get the
    /// initial timers.
    pub fn new(cfg: LoadConfig, host: HostId, server: SockAddr) -> LoadGen {
        let rng = SimRng::new(cfg.seed);
        let sampler = RateSampler::new(SimTime::ZERO + cfg.warmup, cfg.window);
        LoadGen {
            cfg,
            host,
            server,
            rng,
            conns: PagedSlots::new(),
            inactive_rr: 0,
            launched: 0,
            resolved: 0,
            replies: 0,
            errors: ErrorCounts::default(),
            sampler,
            latencies_ms: Quantiles::new(),
            inactive_open: 0,
            last_resolution: SimTime::ZERO,
            last_arrival: SimTime::ZERO,
            finished_arrivals: false,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &LoadConfig {
        &self.cfg
    }

    /// Connections attempted so far.
    pub fn attempted(&self) -> u64 {
        self.launched
    }

    /// Whether every active connection has resolved.
    pub fn done(&self) -> bool {
        self.finished_arrivals && self.resolved >= self.launched
    }

    /// Timers to schedule at startup: the first arrival plus one reopen
    /// per inactive slot (they all connect at staggered times).
    pub fn bootstrap(&mut self, now: SimTime) -> Vec<(SimTime, LoadTimer)> {
        // Inactive population first (staggered over 2 s), then requests
        // after the warmup — the paper fixes the inactive load, then
        // drives request rates against it (§5.1).
        let first = self.next_arrival_at(now + self.cfg.warmup);
        let mut timers = vec![(first, LoadTimer::NextArrival)];
        // Large populations (the million lane) spread across the whole
        // warmup so the connect burst doesn't pile onto one instant;
        // the classic loads keep the original 2 s stagger bit for bit.
        let stagger = if self.cfg.inactive > 10_000 {
            self.cfg.warmup
        } else {
            SimDuration::from_secs(2).min(self.cfg.warmup)
        };
        for i in 0..self.cfg.inactive {
            let at = now
                + SimDuration::from_nanos(
                    stagger.as_nanos() * i as u64 / self.cfg.inactive.max(1) as u64,
                );
            timers.push((at, LoadTimer::ReopenInactive));
        }
        timers
    }

    fn gap(&mut self) -> SimDuration {
        let base = 1.0 / self.cfg.rate.max(1e-9);
        let j = self.cfg.jitter;
        let f = 1.0 + j * (2.0 * self.rng.next_f64() - 1.0);
        SimDuration::from_secs_f64(base * f)
    }

    /// The next arrival instant after `now`, honouring the load shape.
    fn next_arrival_at(&mut self, now: SimTime) -> SimTime {
        match self.cfg.shape {
            LoadShape::Constant => now + self.gap(),
            LoadShape::Bursty { period, duty } => {
                let duty = duty.clamp(1e-3, 1.0);
                // Within a burst, arrivals come `duty` times as fast so
                // the average over the period matches `rate`.
                let fast_gap = self.gap().mul_f64(duty);
                let mut at = now + fast_gap;
                // If that lands in the silent part of the cycle, push to
                // the start of the next burst.
                let period_ns = period.as_nanos().max(1);
                let burst_ns = (period_ns as f64 * duty) as u64;
                let phase = at.as_nanos() % period_ns;
                if phase >= burst_ns {
                    let next_burst = at.as_nanos() - phase + period_ns;
                    at = SimTime::from_nanos(next_burst);
                }
                at
            }
        }
    }

    fn open_sockets(&self) -> usize {
        self.conns.len()
    }

    /// Heap bytes held by the client-side connection table.
    pub fn mem_bytes(&self) -> usize {
        self.conns.heap_bytes()
    }

    /// The host the next inactive connection originates from. With one
    /// client host this is always `self.host` (the pre-multi-client
    /// behaviour, bit for bit); with more, the population round-robins
    /// so no single host exhausts its ephemeral port range.
    fn next_inactive_host(&mut self) -> HostId {
        if self.cfg.client_hosts <= 1 {
            return self.host;
        }
        let i = self.inactive_rr % self.cfg.client_hosts;
        self.inactive_rr += 1;
        if i == 0 {
            self.host
        } else {
            // Extra client machines are numbered past the server host.
            HostId(self.host.0.max(self.server.host.0) + i)
        }
    }

    fn conn_get(&self, conn: ConnId) -> Option<&ClientConn> {
        self.conns.get(conn.0 as usize)
    }

    fn conn_get_mut(&mut self, conn: ConnId) -> Option<&mut ClientConn> {
        self.conns.get_mut(conn.0 as usize)
    }

    fn conn_insert(&mut self, conn: ConnId, c: ClientConn) {
        self.conns.insert(conn.0 as usize, c);
    }

    fn conn_remove(&mut self, conn: ConnId) -> Option<ClientConn> {
        self.conns.take(conn.0 as usize)
    }

    /// Fires one timer; returns follow-up timers to schedule.
    pub fn on_timer(
        &mut self,
        net: &mut Network,
        now: SimTime,
        timer: LoadTimer,
    ) -> Vec<(SimTime, LoadTimer)> {
        match timer {
            LoadTimer::NextArrival => self.launch_active(net, now),
            LoadTimer::Timeout(conn) => {
                self.check_timeout(net, now, conn);
                Vec::new()
            }
            LoadTimer::ReopenInactive => self.launch_inactive(net, now),
            LoadTimer::SendRequest(conn) => {
                self.send_request(net, now, conn);
                Vec::new()
            }
        }
    }

    fn send_request(&mut self, net: &mut Network, now: SimTime, conn: ConnId) {
        let Some(c) = self.conn_get_mut(conn) else {
            return;
        };
        if c.kind != ConnKind::Active || c.sent_request || c.done {
            return;
        }
        c.sent_request = true;
        let req = format!(
            "GET {} HTTP/1.0\r\nUser-Agent: simhttperf\r\n\r\n",
            self.cfg.doc_path
        );
        let ep = EndpointId::new(conn, Side::Client);
        let _ = net.send(now, ep, req.as_bytes());
    }

    fn launch_active(&mut self, net: &mut Network, now: SimTime) -> Vec<(SimTime, LoadTimer)> {
        let mut timers = Vec::new();
        if self.launched < self.cfg.total_conns {
            self.launched += 1;
            self.last_arrival = now;
            if self.launched == self.cfg.total_conns {
                self.finished_arrivals = true;
            } else {
                let at = self.next_arrival_at(now);
                timers.push((at, LoadTimer::NextArrival));
            }
            if self.open_sockets() >= self.cfg.client_fd_limit {
                self.errors.fd_shortage += 1;
                self.resolve(now);
            } else {
                match net.connect(now, self.host, self.server, self.cfg.active_extra_delay) {
                    Ok(conn) => {
                        let deadline = now + self.cfg.client_timeout;
                        self.conn_insert(
                            conn,
                            ClientConn {
                                kind: ConnKind::Active,
                                started: now,
                                got: 0,
                                ok_prefix: None,
                                sent_request: false,
                                deadline,
                                done: false,
                            },
                        );
                        timers.push((deadline, LoadTimer::Timeout(conn)));
                    }
                    Err(ConnectError::PortsExhausted) => {
                        self.errors.ports_exhausted += 1;
                        self.resolve(now);
                    }
                    Err(_) => {
                        self.errors.refused += 1;
                        self.resolve(now);
                    }
                }
            }
        }
        timers
    }

    fn launch_inactive(&mut self, net: &mut Network, now: SimTime) -> Vec<(SimTime, LoadTimer)> {
        if self.inactive_open >= self.cfg.inactive {
            return Vec::new();
        }
        let host = self.next_inactive_host();
        match net.connect(now, host, self.server, self.cfg.inactive_extra_delay) {
            Ok(conn) => {
                self.inactive_open += 1;
                self.conn_insert(
                    conn,
                    ClientConn {
                        kind: ConnKind::Inactive,
                        started: now,
                        got: 0,
                        ok_prefix: None,
                        sent_request: false,
                        deadline: SimTime::MAX,
                        done: false,
                    },
                );
                Vec::new()
            }
            Err(_) => {
                // Retry shortly; the population must stay constant.
                vec![(
                    now + SimDuration::from_millis(100),
                    LoadTimer::ReopenInactive,
                )]
            }
        }
    }

    fn check_timeout(&mut self, net: &mut Network, now: SimTime, conn: ConnId) {
        let Some(c) = self.conn_get(conn) else {
            return; // Already resolved.
        };
        if c.done || c.kind != ConnKind::Active {
            return;
        }
        if now < c.deadline {
            return; // Stale timer.
        }
        // Give up: abort and count a timeout.
        let ep = EndpointId::new(conn, Side::Client);
        let _ = net.abort(now, ep);
        self.conn_remove(conn);
        self.errors.timeouts += 1;
        self.resolve(now);
    }

    fn resolve(&mut self, now: SimTime) {
        self.resolved += 1;
        self.last_resolution = now;
    }

    /// Routes a network notification; returns follow-up timers.
    pub fn on_net(
        &mut self,
        net: &mut Network,
        now: SimTime,
        notify: &NetNotify,
    ) -> Vec<(SimTime, LoadTimer)> {
        match *notify {
            NetNotify::ConnectDone { ep } if ep.side == Side::Client => {
                self.on_connected(net, now, ep)
            }
            NetNotify::ConnectFailed { conn, reason, .. } => {
                if let Some(c) = self.conn_remove(conn) {
                    match c.kind {
                        ConnKind::Active => {
                            match reason {
                                ConnectError::Refused => self.errors.refused += 1,
                                ConnectError::Timeout => self.errors.timeouts += 1,
                                ConnectError::PortsExhausted => {
                                    self.errors.ports_exhausted += 1;
                                }
                            }
                            self.resolve(now);
                            Vec::new()
                        }
                        ConnKind::Inactive => {
                            self.inactive_open -= 1;
                            vec![(
                                now + SimDuration::from_millis(100),
                                LoadTimer::ReopenInactive,
                            )]
                        }
                    }
                } else {
                    Vec::new()
                }
            }
            NetNotify::Readable { ep } if ep.side == Side::Client => {
                self.drain(net, now, ep);
                Vec::new()
            }
            NetNotify::PeerClosed { ep } if ep.side == Side::Client => {
                self.on_peer_closed(net, now, ep)
            }
            NetNotify::ConnReset { ep } if ep.side == Side::Client => {
                if let Some(c) = self.conn_remove(ep.conn) {
                    match c.kind {
                        ConnKind::Active => {
                            self.errors.resets += 1;
                            self.resolve(now);
                            Vec::new()
                        }
                        ConnKind::Inactive => {
                            self.inactive_open -= 1;
                            vec![(
                                now + SimDuration::from_millis(100),
                                LoadTimer::ReopenInactive,
                            )]
                        }
                    }
                } else {
                    Vec::new()
                }
            }
            NetNotify::ConnClosed { ep } if ep.side == Side::Client => {
                // Fully closed; if still tracked (e.g. inactive closed by
                // the server cleanly) treat like a peer-close.
                if self.conn_get(ep.conn).is_some() {
                    self.on_peer_closed(net, now, ep)
                } else {
                    Vec::new()
                }
            }
            _ => Vec::new(),
        }
    }

    fn on_connected(
        &mut self,
        _net: &mut Network,
        now: SimTime,
        ep: EndpointId,
    ) -> Vec<(SimTime, LoadTimer)> {
        let Some(c) = self.conn_get_mut(ep.conn) else {
            return Vec::new();
        };
        if c.kind == ConnKind::Active && !c.sent_request {
            // Real clients take a scheduling quantum to issue the write.
            return vec![(now + self.cfg.client_think, LoadTimer::SendRequest(ep.conn))];
        }
        Vec::new()
    }

    fn drain(&mut self, net: &mut Network, now: SimTime, ep: EndpointId) {
        let Some(c) = self.conn_get_mut(ep.conn) else {
            return;
        };
        // Discarding read: the client only ever inspects the status-line
        // prefix, so the payload is never materialised.
        let Ok(sum) = net.recv_discard(now, ep, usize::MAX) else {
            return;
        };
        if sum.len == 0 {
            return;
        }
        if c.ok_prefix.is_none() && sum.len >= 12 {
            c.ok_prefix = Some(sum.prefix() == b"HTTP/1.0 200");
        }
        c.got += sum.len;
    }

    fn on_peer_closed(
        &mut self,
        net: &mut Network,
        now: SimTime,
        ep: EndpointId,
    ) -> Vec<(SimTime, LoadTimer)> {
        // Drain whatever arrived with the FIN.
        self.drain(net, now, ep);
        let Some(c) = self.conn_get_mut(ep.conn) else {
            return Vec::new();
        };
        match c.kind {
            ConnKind::Active => {
                let started = c.started;
                let ok = c.got > 0 && c.ok_prefix == Some(true);
                c.done = true;
                let _ = net.close(now, ep);
                self.conn_remove(ep.conn);
                if ok {
                    self.replies += 1;
                    self.sampler.record(now);
                    let ms = now.saturating_duration_since(started).as_nanos() as f64 / 1e6;
                    self.latencies_ms.add(ms);
                } else {
                    // Closed without a usable response (e.g. idle-closed
                    // by an overloaded server): counts as a timeout-class
                    // error immediately.
                    self.errors.timeouts += 1;
                }
                self.resolve(now);
                Vec::new()
            }
            ConnKind::Inactive => {
                // Server timed us out: close our side and reopen to keep
                // the population constant (§5).
                let _ = net.close(now, ep);
                self.conn_remove(ep.conn);
                self.inactive_open -= 1;
                vec![(
                    now + SimDuration::from_millis(50),
                    LoadTimer::ReopenInactive,
                )]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_schedules_arrival_and_inactive() {
        let cfg = LoadConfig {
            inactive: 10,
            ..LoadConfig::default()
        };
        let mut lg = LoadGen::new(cfg, HostId(0), SockAddr::new(HostId(1), 80));
        let timers = lg.bootstrap(SimTime::ZERO);
        let arrivals = timers
            .iter()
            .filter(|(_, t)| *t == LoadTimer::NextArrival)
            .count();
        let reopens = timers
            .iter()
            .filter(|(_, t)| *t == LoadTimer::ReopenInactive)
            .count();
        assert_eq!(arrivals, 1);
        assert_eq!(reopens, 10);
    }

    #[test]
    fn gap_tracks_rate_with_jitter_bounds() {
        let cfg = LoadConfig {
            rate: 1000.0,
            jitter: 0.05,
            ..LoadConfig::default()
        };
        let mut lg = LoadGen::new(cfg, HostId(0), SockAddr::new(HostId(1), 80));
        for _ in 0..1000 {
            let g = lg.gap();
            let ns = g.as_nanos();
            assert!(
                (950_000..=1_050_000).contains(&ns),
                "gap {ns}ns out of bounds"
            );
        }
    }

    #[test]
    fn send_request_fires_after_think_time() {
        let cfg = LoadConfig {
            total_conns: 1,
            rate: 1000.0,
            warmup: SimDuration::ZERO,
            ..LoadConfig::default()
        };
        let mut net = Network::new(
            simnet::TcpConfig::default(),
            simnet::LinkConfig::default(),
            2,
        );
        let _listener = net.listen(HostId(1), 80, 8).unwrap();
        let mut lg = LoadGen::new(cfg, HostId(0), SockAddr::new(HostId(1), 80));
        let timers = lg.on_timer(&mut net, SimTime::from_millis(1), LoadTimer::NextArrival);
        let conn = match timers.iter().find_map(|(_, t)| match t {
            LoadTimer::Timeout(c) => Some(*c),
            _ => None,
        }) {
            Some(c) => c,
            None => panic!("timeout timer expected"),
        };
        // Drive the handshake to completion.
        let mut follow = Vec::new();
        while let Some(t) = net.next_deadline() {
            if t > SimTime::from_millis(20) {
                break;
            }
            for n in net.advance(t) {
                follow.extend(lg.on_net(&mut net, t, &n));
            }
        }
        // ConnectDone scheduled a SendRequest after client_think.
        assert!(
            follow
                .iter()
                .any(|(_, t)| matches!(t, LoadTimer::SendRequest(c) if *c == conn)),
            "{follow:?}"
        );
        // Firing it puts the request on the wire.
        let at = SimTime::from_millis(30);
        let _ = lg.on_timer(&mut net, at, LoadTimer::SendRequest(conn));
        while let Some(t) = net.next_deadline() {
            if t > SimTime::from_millis(40) {
                break;
            }
            let _ = net.advance(t);
        }
        let server_ep = EndpointId::new(conn, Side::Server);
        assert!(net.readable_bytes(server_ep) > 0, "request bytes arrived");
    }

    #[test]
    fn fd_limit_counts_as_fd_shortage() {
        let cfg = LoadConfig {
            total_conns: 3,
            rate: 1000.0,
            client_fd_limit: 1,
            warmup: SimDuration::ZERO,
            ..LoadConfig::default()
        };
        let mut net = Network::new(
            simnet::TcpConfig::default(),
            simnet::LinkConfig::default(),
            2,
        );
        let _listener = net.listen(HostId(1), 80, 8).unwrap();
        let mut lg = LoadGen::new(cfg, HostId(0), SockAddr::new(HostId(1), 80));
        // First launch occupies the single fd; the next two fail.
        let mut timers = vec![(SimTime::from_millis(1), LoadTimer::NextArrival)];
        while let Some((at, timer)) = timers.pop() {
            if matches!(timer, LoadTimer::NextArrival) {
                timers.extend(lg.on_timer(&mut net, at, timer));
            }
        }
        assert_eq!(lg.attempted(), 3);
        assert_eq!(lg.errors.fd_shortage, 2);
    }

    #[test]
    fn bursty_gap_lands_inside_bursts() {
        let cfg = LoadConfig {
            rate: 1000.0,
            jitter: 0.0,
            shape: LoadShape::Bursty {
                period: SimDuration::from_millis(100),
                duty: 0.5,
            },
            warmup: SimDuration::ZERO,
            ..LoadConfig::default()
        };
        let mut lg = LoadGen::new(cfg, HostId(0), SockAddr::new(HostId(1), 80));
        let mut at = SimTime::ZERO;
        let mut in_burst = 0;
        let n = 500;
        for _ in 0..n {
            at = lg.next_arrival_at(at);
            let phase = at.as_nanos() % 100_000_000;
            if phase < 50_000_000 {
                in_burst += 1;
            }
        }
        assert_eq!(in_burst, n, "every arrival falls inside the duty window");
    }

    #[test]
    fn done_requires_all_resolved() {
        let cfg = LoadConfig {
            total_conns: 1,
            rate: 1000.0,
            ..LoadConfig::default()
        };
        let mut net = Network::new(
            simnet::TcpConfig::default(),
            simnet::LinkConfig::default(),
            2,
        );
        // No listener: the connect will eventually fail, but not yet.
        let mut lg = LoadGen::new(cfg, HostId(0), SockAddr::new(HostId(1), 80));
        assert!(!lg.done());
        let timers = lg.on_timer(&mut net, SimTime::from_millis(1), LoadTimer::NextArrival);
        // Single conn launched; arrivals finished but unresolved.
        assert!(!lg.done());
        assert_eq!(lg.attempted(), 1);
        // Timeout timer scheduled.
        assert!(timers
            .iter()
            .any(|(_, t)| matches!(t, LoadTimer::Timeout(_))));
    }
}
