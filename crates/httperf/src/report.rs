//! Measurement results: the numbers the paper plots.

use simcore::probe::Snapshot;
use simcore::stats::{Quantiles, RateSummary};

/// Why a connection was aborted, matching §5.1: "Connection errors can
/// result when the client runs out of file descriptors, when connections
/// time out, or when the server refuses connections for some reason."
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ErrorCounts {
    /// Client-side timeout (no reply within the deadline).
    pub timeouts: u64,
    /// RST from the server (refused).
    pub refused: u64,
    /// Client out of file descriptors.
    pub fd_shortage: u64,
    /// Client out of ephemeral ports (distinct from descriptor
    /// shortage: ports recycle through TIME_WAIT, descriptors free on
    /// close — the two exhaust at different population sizes).
    pub ports_exhausted: u64,
    /// Connection reset mid-transfer.
    pub resets: u64,
}

impl ErrorCounts {
    /// Total errors.
    pub fn total(&self) -> u64 {
        self.timeouts + self.refused + self.fd_shortage + self.ports_exhausted + self.resets
    }
}

/// The outcome of one benchmark run at one (rate, inactive-load) point.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Server architecture label.
    pub server: String,
    /// Targeted request rate (requests per second).
    pub target_rate: f64,
    /// Inactive connection count held during the run.
    pub inactive: usize,
    /// Connections attempted.
    pub attempted: u64,
    /// Successful replies.
    pub replies: u64,
    /// Error breakdown.
    pub errors: ErrorCounts,
    /// Reply-rate summary over one-second windows (avg/stddev/min/max —
    /// the panels of Figs. 4–9 and 11–13).
    pub rate: RateSummary,
    /// Connection-time quantile collector, milliseconds (Fig. 14 plots
    /// the median).
    pub latencies_ms: Quantiles,
    /// Simulated run length in seconds.
    pub sim_secs: f64,
    /// Simulation events the testbed dispatched (network notifies,
    /// kernel events, load timers) — the throughput-lane numerator.
    pub events: u64,
    /// Server-side metrics snapshot.
    pub server_metrics: servers::ServerMetrics,
    /// Kernel wakeups delivered to server processes (thundering-herd
    /// diagnostics: spurious wakeups inflate this).
    pub kernel_wakeups: u64,
    /// Probe snapshot of the server kernel's metric registry at the end
    /// of the run (syscall, devpoll, rtsig, server and tcp counters).
    pub probe: Snapshot,
    /// Rendered event trace (empty unless categories were enabled via
    /// `RunParams::with_trace`).
    pub trace: String,
    /// Chrome-trace JSON of retained latency spans (empty unless span
    /// tracing was enabled with record retention).
    pub span_chrome: String,
    /// Folded-stack (`path;leaf ns`) lines of retained latency spans —
    /// flamegraph input; same emptiness rule as `span_chrome`.
    pub span_folded: String,
    /// End-of-run server-side heap bytes: kernel endpoint slots, fd
    /// tables, watcher sets and `/dev/poll` interest pages. Paged
    /// stores never free pages, so this is also the run's high-water
    /// mark.
    pub mem_server_bytes: u64,
    /// Peak simultaneously-open kernel endpoints — the denominator of
    /// the bytes-per-connection lane.
    pub mem_eps_peak: u64,
}

impl RunReport {
    /// Errors as a percentage of attempted connections (Fig. 10).
    pub fn error_percent(&self) -> f64 {
        if self.attempted == 0 {
            return 0.0;
        }
        100.0 * self.errors.total() as f64 / self.attempted as f64
    }

    /// Median connection time in milliseconds (Fig. 14).
    pub fn median_latency_ms(&mut self) -> f64 {
        self.latencies_ms.median().unwrap_or(0.0)
    }

    /// An arbitrary latency quantile in milliseconds (`0.9` for p90).
    pub fn latency_quantile_ms(&mut self, q: f64) -> f64 {
        self.latencies_ms.quantile(q).unwrap_or(0.0)
    }

    /// Stable hex digest of the run's kernel probe snapshot — the form
    /// `BENCH.json` records so baselines can compare whole snapshots as
    /// one field.
    pub fn probe_digest_hex(&self) -> String {
        self.probe.digest_hex()
    }

    /// This run as one `BENCH.json` point object (no trailing newline).
    /// The schema is consumed by `bench::baseline`; every field except
    /// the digest is a plain shape metric so a comparator can apply
    /// numeric tolerances.
    pub fn bench_point_json(&mut self) -> String {
        let median = self.median_latency_ms();
        let p90 = self.latency_quantile_ms(0.9);
        format!(
            "{{\"rate\":{},\"avg\":{},\"stddev\":{},\"min\":{},\"max\":{},\
             \"error_percent\":{},\"median_ms\":{},\"p90_ms\":{},\
             \"replies\":{},\"attempted\":{},\"probe_digest\":\"{}\"}}",
            self.target_rate,
            self.rate.avg,
            self.rate.stddev,
            self.rate.min,
            self.rate.max,
            self.error_percent(),
            median,
            p90,
            self.replies,
            self.attempted,
            self.probe_digest_hex(),
        )
    }

    /// One summary line for terminal output.
    pub fn summary_line(&mut self) -> String {
        let median = self.median_latency_ms();
        let err = self.error_percent();
        format!(
            "{:<24} rate={:>5.0} load={:>4} -> avg={:>7.1} min={:>6.1} max={:>7.1} err%={:>5.1} median={:>7.2}ms",
            self.server,
            self.target_rate,
            self.inactive,
            self.rate.avg,
            self.rate.min,
            self.rate.max,
            err,
            median,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_percent_math() {
        let mut r = RunReport {
            server: "x".into(),
            target_rate: 100.0,
            inactive: 0,
            attempted: 200,
            replies: 150,
            errors: ErrorCounts {
                timeouts: 30,
                refused: 10,
                fd_shortage: 3,
                ports_exhausted: 2,
                resets: 5,
            },
            rate: RateSummary::of(&[]),
            latencies_ms: Quantiles::new(),
            sim_secs: 1.0,
            events: 0,
            server_metrics: servers::ServerMetrics::default(),
            kernel_wakeups: 0,
            probe: Snapshot::default(),
            trace: String::new(),
            span_chrome: String::new(),
            span_folded: String::new(),
            mem_server_bytes: 0,
            mem_eps_peak: 0,
        };
        assert_eq!(r.errors.total(), 50);
        assert!((r.error_percent() - 25.0).abs() < 1e-9);
        assert_eq!(r.median_latency_ms(), 0.0);
    }
}
