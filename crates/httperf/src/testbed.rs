//! The testbed orchestrator: two hosts on a switch, a server process on
//! one, the load generator on the other — the paper's experimental
//! set-up (§5) as one deterministic co-simulation loop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use devpoll::DevPollRegistry;
use simcore::stats::RateSummary;
use simcore::time::SimTime;
use simkernel::{CostModel, Kernel, KernelEvent};
use simnet::{HostId, LinkConfig, NetNotify, Network, SockAddr, TcpConfig};

use servers::{Server, ServerCtx};

use crate::load::{LoadConfig, LoadGen, LoadTimer};
use crate::report::RunReport;

/// The client (load-driving) host — the paper's 4-way Xeon.
pub const CLIENT_HOST: HostId = HostId(0);
/// The server host — the paper's 400 MHz K6-2.
pub const SERVER_HOST: HostId = HostId(1);

/// The assembled world.
pub struct Testbed {
    /// The network fabric.
    pub net: Network,
    /// The server host's kernel.
    pub kernel: Kernel,
    /// `/dev/poll` instances.
    pub registry: DevPollRegistry,
    /// The load generator.
    pub load: LoadGen,
    timers: BinaryHeap<Reverse<(SimTime, u64, LoadTimer)>>,
    timer_seq: u64,
    now: SimTime,
    /// Simulation events dispatched so far: network notifies, kernel
    /// events and load-generator timer firings. The numerator of the
    /// throughput lane in `BENCH.json` (events per wall-second).
    events: u64,
    /// Reused across `drain_at` iterations so the hot loop never
    /// allocates per tick.
    notify_scratch: Vec<NetNotify>,
    kevent_scratch: Vec<KernelEvent>,
    new_timer_scratch: Vec<(SimTime, LoadTimer)>,
}

impl Testbed {
    /// Builds a testbed with the given stacks and load.
    pub fn new(cost: CostModel, tcp: TcpConfig, link: LinkConfig, load_cfg: LoadConfig) -> Testbed {
        // Hosts: the client, the server, plus any extra client machines
        // the inactive population round-robins over (numbered from 2).
        let hosts = 2 + load_cfg.client_hosts.saturating_sub(1);
        let net = Network::new(tcp, link, hosts);
        let kernel = Kernel::new(SERVER_HOST, cost);
        let load = LoadGen::new(load_cfg, CLIENT_HOST, SockAddr::new(SERVER_HOST, 80));
        Testbed {
            net,
            kernel,
            registry: DevPollRegistry::new(),
            load,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            now: SimTime::ZERO,
            events: 0,
            notify_scratch: Vec::new(),
            kevent_scratch: Vec::new(),
            new_timer_scratch: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Simulation events dispatched so far (see the `events` field).
    pub fn events(&self) -> u64 {
        self.events
    }

    fn schedule(&mut self, at: SimTime, t: LoadTimer) {
        let seq = self.timer_seq;
        self.timer_seq += 1;
        self.timers.push(Reverse((at, seq, t)));
    }

    /// Starts the server and arms the load generator.
    pub fn start(&mut self, server: &mut dyn Server) {
        let mut ctx = ServerCtx {
            kernel: &mut self.kernel,
            net: &mut self.net,
            registry: &mut self.registry,
            now: self.now,
        };
        server
            .start(&mut ctx)
            .expect("invariant: server start on a fresh testbed cannot fail");
        let timers = self.load.bootstrap(self.now);
        for (at, t) in timers {
            self.schedule(at, t);
        }
        self.drain_at(self.now, server);
    }

    /// Processes everything due at exactly `now` until quiescent.
    fn drain_at(&mut self, now: SimTime, server: &mut dyn Server) {
        loop {
            // Network deliveries and their fan-out.
            let mut notifies = std::mem::take(&mut self.notify_scratch);
            notifies.clear();
            self.net.advance_into(now, &mut notifies);
            self.events += notifies.len() as u64;
            let mut new_timers = std::mem::take(&mut self.new_timer_scratch);
            for n in &notifies {
                self.kernel.on_net(now, n);
                new_timers.extend(self.load.on_net(&mut self.net, now, n));
            }
            self.notify_scratch = notifies;
            for (at, t) in new_timers.drain(..) {
                self.schedule(at, t);
            }
            self.new_timer_scratch = new_timers;

            // Kernel events: hints and runnable processes.
            let mut kevents = std::mem::take(&mut self.kevent_scratch);
            kevents.clear();
            self.kernel.advance_into(now, &mut kevents);
            self.events += kevents.len() as u64;
            for &e in &kevents {
                match e {
                    KernelEvent::FdEvent { pid, fd, .. } => {
                        self.registry.on_fd_event(&mut self.kernel, now, pid, fd);
                    }
                    KernelEvent::ProcRunnable { pid } => {
                        if server.handles(pid) {
                            let mut ctx = ServerCtx {
                                kernel: &mut self.kernel,
                                net: &mut self.net,
                                registry: &mut self.registry,
                                now,
                            };
                            server.run_batch_for(&mut ctx, pid);
                        }
                    }
                }
            }
            self.kevent_scratch = kevents;

            // Load-generator timers due now.
            while let Some(&Reverse((at, _, _))) = self.timers.peek() {
                if at > now {
                    break;
                }
                let Reverse((_, _, t)) = self
                    .timers
                    .pop()
                    .expect("invariant: peeked timer still queued");
                self.events += 1;
                let follow = self.load.on_timer(&mut self.net, now, t);
                for (at, t) in follow {
                    self.schedule(at, t);
                }
            }

            // Quiescence test: actions above may have scheduled more
            // work due at this same instant (a syscall queued segments,
            // a wakeup became runnable, a timer follow-up landed on
            // `now`). The O(1) `has_work_at` probes replace a full —
            // and usually empty — extra pass through every phase.
            let more = self.net.has_work_at(now)
                || self.kernel.has_work_at(now)
                || self
                    .timers
                    .peek()
                    .is_some_and(|&Reverse((at, _, _))| at <= now);
            if !more {
                break;
            }
        }
    }

    fn next_deadline(&mut self) -> Option<SimTime> {
        let mut next = self.net.next_deadline();
        if let Some(k) = self.kernel.next_deadline() {
            next = Some(next.map_or(k, |n| n.min(k)));
        }
        if let Some(&Reverse((t, _, _))) = self.timers.peek() {
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        next
    }

    /// Runs until the load completes or `horizon` passes. Returns the
    /// end-of-run time.
    pub fn run(&mut self, server: &mut dyn Server, horizon: SimTime) -> SimTime {
        while !self.load.done() {
            let Some(next) = self.next_deadline() else {
                break; // Stalled: nothing left to do.
            };
            if next > horizon {
                break;
            }
            debug_assert!(next >= self.now, "time went backwards");
            self.now = next;
            self.drain_at(next, server);
        }
        self.now
    }

    /// Produces the run report.
    pub fn report(self, server: &dyn Server) -> RunReport {
        let Testbed {
            load,
            now,
            mut kernel,
            net,
            registry,
            events,
            ..
        } = self;
        let kernel_wakeups = kernel.stats().wakeups;
        // Fold the subsystem counters that live outside the kernel into
        // its registry so one snapshot carries the whole run.
        server.metrics().fold_into(kernel.probe_mut());
        net.stats().fold_into(kernel.probe_mut());
        kernel
            .probe_mut()
            .gauge_set("tcp.time_wait", net.time_wait_count(SERVER_HOST) as u64);
        // Memory lane: server-side heap high-water (paged stores never
        // free pages) over the peak endpoint population.
        let mem_server_bytes = (kernel.mem_bytes() + registry.mem_bytes()) as u64;
        let mem_eps_peak = kernel.eps_peak() as u64;
        if load.config().mem_probes {
            let emfile = kernel.stats().emfile;
            let probe = kernel.probe_mut();
            probe.gauge_set("mem.server.bytes", mem_server_bytes);
            probe.gauge_set("mem.server.eps_peak", mem_eps_peak);
            probe.gauge_set("mem.server.devpoll_bytes", registry.mem_bytes() as u64);
            probe.gauge_set(
                "mem.client.bytes",
                (load.mem_bytes() + net.conn_mem_bytes()) as u64,
            );
            if emfile > 0 {
                probe.add("kernel.emfile", emfile);
            }
        }
        let probe = kernel.probe().snapshot();
        let trace = kernel.trace().dump();
        let (span_chrome, span_folded) = if kernel.spans().is_empty() {
            (String::new(), String::new())
        } else {
            (kernel.spans().chrome_trace(), kernel.spans().folded())
        };
        // The measured interval is the arrival period: stragglers resolve
        // (as errors) up to a client-timeout later, but windows after the
        // last launched request would only dilute the rate statistics.
        let end = load.last_arrival.max(SimTime::ZERO + load.config().warmup);
        let sim_end = load.last_resolution.max(now);
        let attempted = load.attempted();
        let target_rate = load.config().rate;
        let inactive = load.config().inactive;
        let LoadGen {
            sampler,
            latencies_ms,
            errors,
            replies,
            ..
        } = load;
        let rates = sampler.finish(end);
        RunReport {
            server: server.name(),
            target_rate,
            inactive,
            attempted,
            replies,
            errors,
            rate: RateSummary::of(&rates),
            latencies_ms,
            sim_secs: sim_end.as_secs_f64(),
            events,
            server_metrics: server.metrics(),
            kernel_wakeups,
            probe,
            trace,
            span_chrome,
            span_folded,
            mem_server_bytes,
            mem_eps_peak,
        }
    }
}

/// Convenience: builds a default testbed for `load`.
pub fn default_testbed(load: LoadConfig) -> Testbed {
    Testbed::new(
        CostModel::k6_2_400mhz(),
        TcpConfig::default(),
        LinkConfig::default(),
        load,
    )
}
