//! End-to-end tests of the extension experiments: prefork / thundering
//! herd, sendfile, and document-size parameterization.

use simkernel::AcceptWake;

use httperf::{run_one, RunParams, ServerKind};

#[test]
fn prefork_serves_with_both_wake_policies() {
    for wake in [AcceptWake::Herd, AcceptWake::Exclusive] {
        let kind = ServerKind::PreforkDevPoll { workers: 4, wake };
        let r = run_one(RunParams::paper(kind, 400.0, 25).with_conns(400));
        assert!(
            r.replies >= 395,
            "{wake:?}: replies {} errors {:?}",
            r.replies,
            r.errors
        );
    }
}

#[test]
fn herd_wakes_more_processes_than_exclusive() {
    let herd = run_one(
        RunParams::paper(
            ServerKind::PreforkDevPoll {
                workers: 4,
                wake: AcceptWake::Herd,
            },
            400.0,
            25,
        )
        .with_conns(400),
    );
    let excl = run_one(
        RunParams::paper(
            ServerKind::PreforkDevPoll {
                workers: 4,
                wake: AcceptWake::Exclusive,
            },
            400.0,
            25,
        )
        .with_conns(400),
    );
    assert!(
        herd.kernel_wakeups as f64 > 1.5 * excl.kernel_wakeups as f64,
        "herd {} vs exclusive {} wakeups",
        herd.kernel_wakeups,
        excl.kernel_wakeups
    );
    // Both still serve everything at this light load.
    assert_eq!(herd.replies, excl.replies);
}

#[test]
fn sendfile_reduces_cpu_per_reply() {
    // With a 16 KB document the user-space copy is significant; the
    // sendfile path must be at least as fast at the same load.
    let write = run_one(
        RunParams::paper(ServerKind::ThttpdDevPoll, 400.0, 25)
            .with_conns(400)
            .with_doc_bytes(16 * 1024),
    );
    let sendfile = run_one(
        RunParams::paper(ServerKind::ThttpdDevPollSendfile, 400.0, 25)
            .with_conns(400)
            .with_doc_bytes(16 * 1024),
    );
    assert!(write.replies >= 395, "{:?}", write.errors);
    assert!(sendfile.replies >= 395, "{:?}", sendfile.errors);
    let mut w = write;
    let mut s = sendfile;
    assert!(
        s.median_latency_ms() <= w.median_latency_ms(),
        "sendfile median {} must not exceed write median {}",
        s.median_latency_ms(),
        w.median_latency_ms()
    );
}

#[test]
fn doc_bytes_parameter_serves_the_sized_document() {
    let r = run_one(
        RunParams::paper(ServerKind::ThttpdDevPoll, 300.0, 0)
            .with_conns(100)
            .with_doc_bytes(1024),
    );
    assert_eq!(r.replies, 100, "{:?}", r.errors);
    // Larger documents take longer per reply (wire time).
    let mut small = r;
    let mut big = run_one(
        RunParams::paper(ServerKind::ThttpdDevPoll, 300.0, 0)
            .with_conns(100)
            .with_doc_bytes(32 * 1024),
    );
    assert_eq!(big.replies, 100, "{:?}", big.errors);
    assert!(
        big.median_latency_ms() > small.median_latency_ms(),
        "32 KB must take longer than 1 KB: {} vs {}",
        big.median_latency_ms(),
        small.median_latency_ms()
    );
}
