//! End-to-end benchmark runs: every server architecture serves a small
//! workload correctly.

use httperf::{run_one, RunParams, ServerKind};

fn smoke(kind: ServerKind) -> httperf::RunReport {
    let params = RunParams::paper(kind, 200.0, 0).with_conns(300);
    run_one(params)
}

#[test]
fn thttpd_poll_serves_light_load() {
    let mut r = smoke(ServerKind::ThttpdPoll);
    assert_eq!(r.attempted, 300);
    assert!(
        r.replies >= 295,
        "nearly all replies expected, got {} ({:?})",
        r.replies,
        r.errors
    );
    assert!(r.rate.avg > 150.0, "avg rate {}", r.rate.avg);
    let med = r.median_latency_ms();
    assert!(med > 0.0 && med < 100.0, "median {med} ms");
}

#[test]
fn thttpd_devpoll_serves_light_load() {
    let mut r = smoke(ServerKind::ThttpdDevPoll);
    assert!(r.replies >= 295, "replies {} ({:?})", r.replies, r.errors);
    assert!(r.median_latency_ms() < 100.0);
}

#[test]
fn phhttpd_serves_light_load() {
    let mut r = smoke(ServerKind::Phhttpd);
    assert!(r.replies >= 295, "replies {} ({:?})", r.replies, r.errors);
    assert!(r.median_latency_ms() < 100.0);
}

#[test]
fn hybrid_serves_light_load() {
    let mut r = smoke(ServerKind::Hybrid);
    assert!(r.replies >= 295, "replies {} ({:?})", r.replies, r.errors);
    assert!(r.median_latency_ms() < 100.0);
}

#[test]
fn inactive_connections_are_held_open() {
    let params = RunParams::paper(ServerKind::ThttpdDevPoll, 200.0, 50).with_conns(300);
    let r = run_one(params);
    assert!(r.replies >= 290, "replies {} ({:?})", r.replies, r.errors);
    // The server saw the inactive connections too.
    assert!(
        r.server_metrics.accepted >= 300 + 50,
        "accepted {}",
        r.server_metrics.accepted
    );
}

#[test]
fn deterministic_given_seed() {
    let a = run_one(RunParams::paper(ServerKind::ThttpdPoll, 300.0, 10).with_conns(200));
    let b = run_one(RunParams::paper(ServerKind::ThttpdPoll, 300.0, 10).with_conns(200));
    assert_eq!(a.replies, b.replies);
    assert_eq!(a.errors, b.errors);
    assert_eq!(a.rate, b.rate);
}
