//! Tests of the bursty arrival process (the §5 "bursty and unpredictable
//! interrupt load" remark modelled as an on/off arrival shape).

use httperf::{run_one, LoadShape, RunParams, ServerKind};
use simcore::time::SimDuration;

fn bursty(kind: ServerKind, rate: f64, inactive: usize, conns: u64) -> httperf::RunReport {
    let mut params = RunParams::paper(kind, rate, inactive).with_conns(conns);
    params.load.shape = LoadShape::Bursty {
        period: SimDuration::from_millis(500),
        duty: 0.25,
    };
    run_one(params)
}

#[test]
fn bursty_load_preserves_average_rate() {
    let r = bursty(ServerKind::ThttpdDevPoll, 400.0, 0, 2_000);
    assert!(
        r.replies >= 1_990,
        "bursts must not lose requests: {} ({:?})",
        r.replies,
        r.errors
    );
    // Average over the run stays near the configured rate (bursts are
    // 4x rate for a quarter of each period).
    assert!(
        (r.rate.avg - 400.0).abs() < 60.0,
        "avg {} should stay near 400",
        r.rate.avg
    );
}

#[test]
fn bursts_raise_rate_variance_vs_constant() {
    // Use a burst period longer than the 1 s sampling window so whole
    // windows land in the silent part of the cycle.
    let mut params = RunParams::paper(ServerKind::ThttpdDevPoll, 400.0, 0).with_conns(2_000);
    params.load.shape = LoadShape::Bursty {
        period: SimDuration::from_secs(2),
        duty: 0.25,
    };
    let b = run_one(params);
    let c = run_one(RunParams::paper(ServerKind::ThttpdDevPoll, 400.0, 0).with_conns(2_000));
    assert!(
        b.rate.stddev > 10.0 * c.rate.stddev.max(1.0),
        "bursty stddev {} should dwarf constant {}",
        b.rate.stddev,
        c.rate.stddev
    );
    assert!(b.rate.min < 100.0, "silent windows: min {}", b.rate.min);
    // Queueing smears the 4x burst peak across windows, but burst
    // windows must still clearly exceed the average.
    assert!(
        b.rate.max > 1.1 * b.rate.avg,
        "burst windows: max {} vs avg {}",
        b.rate.max,
        b.rate.avg
    );
}

#[test]
fn bursts_hurt_stock_poll_more_than_devpoll() {
    // Under bursts the instantaneous rate is 4x: stock poll with many
    // inactive connections is pushed past its knee during each burst
    // while devpoll absorbs them.
    let mut stock = bursty(ServerKind::ThttpdPoll, 400.0, 501, 2_500);
    let mut dev = bursty(ServerKind::ThttpdDevPoll, 400.0, 501, 2_500);
    let (s_med, d_med) = (stock.median_latency_ms(), dev.median_latency_ms());
    assert!(
        s_med > 3.0 * d_med,
        "stock burst median {s_med} ms vs devpoll {d_med} ms"
    );
    assert!(
        dev.error_percent() < 1.0,
        "devpoll errors {}",
        dev.error_percent()
    );
}
