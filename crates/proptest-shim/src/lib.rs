#![warn(missing_docs)]

//! A minimal, dependency-free stand-in for the `proptest` property
//! testing crate, so the workspace's property tests run in a fully
//! offline environment.
//!
//! Provides exactly the surface the tests use: the [`proptest!`] item
//! macro, [`Strategy`] with `prop_map`, range and tuple strategies,
//! [`any`], `prop::collection::vec`, [`prop_oneof!`],
//! [`ProptestConfig::with_cases`], and the `prop_assert*` macros.
//!
//! Differences from real proptest: inputs are drawn from a fixed-seed
//! deterministic RNG (per test name and case index), there is no
//! shrinking, and assertion failures panic like ordinary `assert!`.

use std::marker::PhantomData;
use std::ops::Range;

/// Everything the tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Deterministic splitmix64 generator, seeded per (test, case).
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds directly from a caller-chosen 64-bit seed (for harnesses
    /// that number their cases themselves, like the simcheck oracle).
    pub fn from_seed(seed: u64) -> Rng {
        Rng(seed ^ 0x6a09e667f3bcc909) // Avoid the all-zeros weak state.
    }

    /// Seeds from the test's name and the case index.
    pub fn for_case(name: &str, case: u32) -> Rng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Rng(h ^ ((case as u64) << 32 | 0x9e3779b9))
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run-count configuration (`with_cases` is all the tests use).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty strategy range");
                ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Generates any value of a type (see [`Arbitrary`]).
pub struct Any<T>(PhantomData<T>);

/// Types with a canonical full-range generator.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut Rng) -> Self;
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Object-safe strategy view, used by [`prop_oneof!`].
pub trait StrategyObj<V> {
    /// Draws one value through the object interface.
    fn generate_obj(&self, rng: &mut Rng) -> V;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut Rng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice among boxed strategies of one value type.
pub struct Union<V> {
    arms: Vec<Box<dyn StrategyObj<V>>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn StrategyObj<V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut Rng) -> V {
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[idx].generate_obj(rng)
    }
}

/// The `prop::` module the prelude exposes.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Rng, Strategy};
        use std::ops::Range;

        /// Generates `Vec`s with lengths drawn from `len` and elements
        /// from `elem`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        /// The strategy behind [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Minimises a failing input sequence, ddmin-style.
///
/// `still_fails` must return `true` when the candidate sequence still
/// reproduces the failure. Starting from `items` (which must fail),
/// chunks of decreasing size are removed greedily until no single
/// element can be dropped; the result is 1-minimal with respect to
/// element removal. This is the shrinking half the [`proptest!`] shim
/// itself omits, exposed directly for harnesses (like the simcheck
/// differential oracle) that shrink whole event scripts.
pub fn shrink_sequence<T: Clone, F: FnMut(&[T]) -> bool>(
    items: &[T],
    mut still_fails: F,
) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    debug_assert!(
        still_fails(&current),
        "shrink_sequence needs a failing input"
    );
    let mut chunk = current.len().div_ceil(2).max(1);
    loop {
        let mut shrunk = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && still_fails(&candidate) {
                current = candidate;
                shrunk = true;
                // Re-test from the same offset: the next chunk slid in.
            } else if candidate.is_empty() && still_fails(&candidate) {
                return candidate;
            } else {
                start = end;
            }
        }
        if !shrunk {
            if chunk == 1 {
                return current;
            }
            chunk = chunk.div_ceil(2).max(1);
        }
    }
}

/// Boolean property assertion (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality property assertion (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($strat) as Box<dyn $crate::StrategyObj<_>>),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::Rng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::Rng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn determinism_per_case() {
        let gen = |case| {
            let mut rng = crate::Rng::for_case("det", case);
            Strategy::generate(&prop::collection::vec(0u32..100, 1..20), &mut rng)
        };
        assert_eq!(gen(3), gen(3));
        assert_ne!(gen(0), gen(1));
    }

    #[test]
    fn shrink_finds_the_minimal_culprit() {
        // Failure requires 13 and 77 both present, in order.
        let input: Vec<u32> = (0..100).collect();
        let fails = |xs: &[u32]| {
            let i = xs.iter().position(|&x| x == 13);
            let j = xs.iter().position(|&x| x == 77);
            matches!((i, j), (Some(i), Some(j)) if i < j)
        };
        let min = crate::shrink_sequence(&input, fails);
        assert_eq!(min, vec![13, 77]);
    }

    #[test]
    fn shrink_of_single_culprit_reaches_length_one() {
        let input = vec![5u8, 9, 5, 2, 9, 9];
        let min = crate::shrink_sequence(&input, |xs| xs.contains(&2));
        assert_eq!(min, vec![2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_expands_and_runs(xs in prop::collection::vec(any::<u8>(), 0..10), flip in any::<bool>()) {
            prop_assert!(xs.len() < 10);
            let _ = flip;
        }

        #[test]
        fn oneof_draws_every_arm(v in prop_oneof![0i32..10, 100i32..110]) {
            prop_assert!((0..10).contains(&v) || (100..110).contains(&v));
        }
    }
}
