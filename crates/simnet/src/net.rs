//! The network: hosts, links, listeners and connections, driven by an
//! internal timer heap.
//!
//! # Driving the network
//!
//! [`Network`] is a passive state machine. The orchestrator (the test
//! harness or the benchmark driver) repeatedly asks for
//! [`Network::next_deadline`], advances its global clock, and calls
//! [`Network::advance`], which fires due timers and returns the batch of
//! [`NetNotify`] notifications produced since the last call. Mutating
//! calls (connect/send/close/…) may also produce notifications; they are
//! buffered and returned by the next `advance`.

use std::cmp::Reverse;
use std::collections::BTreeSet;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::collections::VecDeque;

use simcore::paged::PagedSlots;
use simcore::rng::SimRng;
use simcore::time::{SimDuration, SimTime};

use crate::addr::{ConnId, EndpointId, HostId, ListenerId, Port, Side, SockAddr};
use crate::link::{LinkConfig, Tx, TxOutcome};
use crate::ports::PortAllocator;
use crate::seg::{SegKind, Segment};
use crate::tcp::{Conn, ConnState, ConnectError, TcpConfig};

/// Notifications surfaced to the layer above (socket layers, clients).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetNotify {
    /// A segment arrived at `host` — interrupt/softirq load accounting.
    SegmentArrived {
        /// Receiving host.
        host: HostId,
        /// Size on the wire, headers included.
        wire_bytes: u32,
    },
    /// A `connect` completed; the client endpoint is usable.
    ConnectDone {
        /// The client half.
        ep: EndpointId,
    },
    /// A `connect` failed.
    ConnectFailed {
        /// The connection that failed.
        conn: ConnId,
        /// The connecting host.
        host: HostId,
        /// Why.
        reason: ConnectError,
    },
    /// A listener's accept queue went non-empty (or grew).
    AcceptReady {
        /// The listener.
        listener: ListenerId,
    },
    /// In-order data arrived; `recv` will return more bytes.
    Readable {
        /// The receiving endpoint.
        ep: EndpointId,
    },
    /// Send-buffer space became available after being exhausted.
    Writable {
        /// The sending endpoint.
        ep: EndpointId,
    },
    /// The peer's FIN arrived in order (read side is at EOF after
    /// draining).
    PeerClosed {
        /// The endpoint observing EOF.
        ep: EndpointId,
    },
    /// The connection was reset (RST received or retries exhausted).
    ConnReset {
        /// The endpoint observing the reset.
        ep: EndpointId,
    },
    /// The connection closed cleanly in both directions.
    ConnClosed {
        /// The endpoint observing the close.
        ep: EndpointId,
    },
    /// A SYN was dropped (or refused) because the backlog was full.
    SynDropped {
        /// The overloaded listener.
        listener: ListenerId,
    },
}

/// Errors from endpoint I/O calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// Unknown or already-freed connection/endpoint.
    Gone,
    /// The operation conflicts with the endpoint state (e.g. `send` after
    /// `close`).
    BadState,
    /// The address is already bound.
    AddrInUse,
}

#[derive(Debug, Clone)]
enum Timer {
    Deliver(Segment),
    Rto { conn: ConnId, side: Side },
}

#[derive(Debug, Clone)]
struct Host {
    tx: Tx,
    ports: PortAllocator,
    segments_in: u64,
    bytes_in: u64,
}

#[derive(Debug, Clone)]
struct Listener {
    backlog: usize,
    /// Handshakes in progress.
    syn_rcvd: BTreeSet<ConnId>,
    /// Established, waiting for `accept`.
    accept_q: VecDeque<ConnId>,
    /// SYNs dropped or refused for backlog overflow.
    refused: u64,
}

/// Aggregate statistics, mostly for tests and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections created (SYN sent).
    pub conns_started: u64,
    /// Connections that completed the handshake.
    pub conns_established: u64,
    /// Connections that ended in RST or retry exhaustion.
    pub conns_reset: u64,
    /// Connections that closed cleanly.
    pub conns_closed: u64,
    /// Data segments retransmitted.
    pub retransmits: u64,
    /// SYNs dropped at a full backlog.
    pub syn_drops: u64,
    /// Segments dropped by injected random loss.
    pub injected_losses: u64,
    /// `connect` attempts refused locally because the client host had no
    /// free ephemeral port (the paper's 60000-socket limitation, modeled
    /// as a first-class failure mode).
    pub ports_exhausted: u64,
}

impl NetStats {
    /// Folds these counters into a probe registry under `tcp.*` names
    /// (called once at report time).
    pub fn fold_into(&self, probe: &mut simcore::probe::MetricRegistry) {
        probe.add("tcp.conns_started", self.conns_started);
        probe.add("tcp.conns_established", self.conns_established);
        probe.add("tcp.conns_reset", self.conns_reset);
        probe.add("tcp.conns_closed", self.conns_closed);
        probe.add("tcp.retransmits", self.retransmits);
        probe.add("tcp.syn_drops", self.syn_drops);
        probe.add("tcp.injected_losses", self.injected_losses);
        // Gated: absent from runs that never hit the port ceiling, so the
        // probe snapshot of pre-existing configurations is unchanged.
        if self.ports_exhausted > 0 {
            probe.add("tcp.ports_exhausted", self.ports_exhausted);
        }
    }
}

/// The simulated network fabric connecting all hosts through one switch.
#[derive(Clone)]
pub struct Network {
    cfg: TcpConfig,
    base_delay: SimDuration,
    loss_prob: f64,
    rng: SimRng,
    hosts: Vec<Host>,
    /// Connection storage: ids stay unique forever (they participate in
    /// deterministic orderings), but the heavyweight state lives in a
    /// slab arena whose slots are recycled as connections die. The
    /// id → slot map is paged (sparse): long runs whose live window of
    /// ids marches upward only pay for the pages that window touches,
    /// not for every id ever issued.
    conn_slot: PagedSlots<u32>,
    conn_arena: Vec<Option<Conn>>,
    conn_free: Vec<u32>,
    next_conn: u32,
    /// Dense, id-indexed (listeners are never removed).
    listeners: Vec<Listener>,
    listen_by_addr: HashMap<SockAddr, ListenerId>,
    /// `(at, seq, slot)`: `seq` is the monotonic arming order (FIFO tie
    /// break at equal times), `slot` indexes the timer arena.
    timers: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Timer payload arena with free-list reuse: segments in flight are
    /// pooled here instead of being allocated per packet.
    timer_arena: Vec<Option<Timer>>,
    timer_free: Vec<u32>,
    timer_seq: u64,
    out: Vec<NetNotify>,
    /// Scratch for `pump` (reused, no per-call allocation).
    pump_scratch: Vec<Segment>,
    stats: NetStats,
}

impl Network {
    /// Creates a network of `n_hosts` hosts, all sharing the same link
    /// configuration, attached to one switch.
    pub fn new(cfg: TcpConfig, link: LinkConfig, n_hosts: usize) -> Network {
        Network {
            cfg,
            base_delay: link.base_delay,
            loss_prob: link.loss_prob.clamp(0.0, 1.0),
            rng: SimRng::new(0x5EED_1055),
            hosts: (0..n_hosts)
                .map(|_| Host {
                    tx: Tx::new(link),
                    ports: PortAllocator::ephemeral(),
                    segments_in: 0,
                    bytes_in: 0,
                })
                .collect(),
            conn_slot: PagedSlots::new(),
            conn_arena: Vec::new(),
            conn_free: Vec::new(),
            next_conn: 0,
            listeners: Vec::new(),
            listen_by_addr: HashMap::new(),
            timers: BinaryHeap::new(),
            timer_arena: Vec::new(),
            timer_free: Vec::new(),
            timer_seq: 0,
            out: Vec::new(),
            pump_scratch: Vec::new(),
            stats: NetStats::default(),
        }
    }

    /// Returns the transport configuration.
    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// Returns aggregate statistics.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Folds the network's full semantic state into one FNV digest for
    /// world deduplication in `simcheck explore`.
    ///
    /// Included: per-host transmitters and port allocators, every live
    /// connection (lifecycle state, both endpoint halves including
    /// buffered bytes and FIN/ack positions), listeners, armed timers,
    /// and undelivered notifications. Excluded: aggregate counters
    /// ([`NetStats`], per-host rx tallies) and the loss RNG (never
    /// advanced at `loss_prob == 0`, the only configuration explored),
    /// so semantically equal worlds that differ only in diagnostics
    /// hash alike.
    pub fn state_fingerprint(&self) -> u64 {
        use simcore::fingerprint::Fnv;
        let mut h = Fnv::new();
        let seg_into = |h: &mut Fnv, s: &Segment| {
            h.write_u64(u64::from(s.conn.0));
            h.write_bool(s.from == Side::Server);
            match s.kind {
                SegKind::Syn => h.write_u8(0),
                SegKind::SynAck => h.write_u8(1),
                SegKind::Ack { ack } => {
                    h.write_u8(2);
                    h.write_u64(ack);
                }
                SegKind::Data { seq, len } => {
                    h.write_u8(3);
                    h.write_u64(seq);
                    h.write_u64(u64::from(len));
                }
                SegKind::Fin { seq } => {
                    h.write_u8(4);
                    h.write_u64(seq);
                }
                SegKind::Rst => h.write_u8(5),
            }
        };
        h.write_len(self.hosts.len());
        for host in &self.hosts {
            host.tx.fingerprint_into(&mut h);
            host.ports.fingerprint_into(&mut h);
        }
        h.write_u64(u64::from(self.next_conn));
        h.write_len(self.conn_arena.iter().filter(|s| s.is_some()).count());
        for (slot, conn) in self.conn_arena.iter().enumerate() {
            let Some(c) = conn else { continue };
            h.write_usize(slot);
            h.write_u8(match c.state {
                ConnState::SynSent => 0,
                ConnState::Established => 1,
                ConnState::Closed => 2,
                ConnState::Reset => 3,
            });
            for side in [Side::Client, Side::Server] {
                h.write_usize(c.host(side).0);
                h.write_u64(u64::from(c.port(side)));
                let ep = c.ep(side);
                h.write_len(ep.out.len());
                h.write_u64(ep.out_base);
                h.write_u64(ep.wrote);
                h.write_u64(ep.snd_nxt);
                h.write_u64(ep.snd_una);
                h.write_u64(ep.fin_at().map_or(u64::MAX, |s| s));
                h.write_bool(ep.fin_sent());
                h.write_bool(ep.fin_acked());
                h.write_len(ep.inbox.len());
                h.write_bytes(ep.inbox.as_slice());
                h.write_u64(ep.rcv_nxt);
                h.write_u64(ep.peer_fin().map_or(u64::MAX, |s| s));
                h.write_u32(u32::from(ep.retries));
                h.write_bool(ep.rto_armed());
                h.write_bool(ep.blocked_writer());
            }
            h.write_u64(c.listener.map_or(u64::MAX, |l| u64::from(l.0)));
            h.write_u32(u32::from(c.syn_sent));
            h.write_u8(match c.closed_first() {
                None => 0,
                Some(Side::Client) => 1,
                Some(Side::Server) => 2,
            });
            h.write_bool(c.accept_queued());
            h.write_bool(c.accepted());
            h.write_bool(c.ports_freed());
        }
        h.write_len(self.listeners.len());
        for l in &self.listeners {
            h.write_usize(l.backlog);
            h.write_len(l.syn_rcvd.len());
            for c in &l.syn_rcvd {
                h.write_u64(u64::from(c.0));
            }
            h.write_len(l.accept_q.len());
            for c in &l.accept_q {
                h.write_u64(u64::from(c.0));
            }
        }
        h.write_len(self.timers.len());
        let mut armed: Vec<&Reverse<(SimTime, u64, u32)>> = self.timers.iter().collect();
        armed.sort();
        for Reverse((at, seq, slot)) in armed.into_iter().rev() {
            h.write_u64(at.as_nanos());
            h.write_u64(*seq);
            match &self.timer_arena[*slot as usize] {
                None => h.write_u8(0),
                Some(Timer::Deliver(s)) => {
                    h.write_u8(1);
                    seg_into(&mut h, s);
                }
                Some(Timer::Rto { conn, side }) => {
                    h.write_u8(2);
                    h.write_u64(u64::from(conn.0));
                    h.write_bool(*side == Side::Server);
                }
            }
        }
        h.write_len(self.out.len());
        h.finish()
    }

    /// Segments and bytes received by `host` so far.
    pub fn host_rx(&self, host: HostId) -> (u64, u64) {
        let h = &self.hosts[host.0];
        (h.segments_in, h.bytes_in)
    }

    /// Segments dropped on `host`'s egress queue.
    pub fn host_tx_drops(&self, host: HostId) -> u64 {
        self.hosts[host.0].tx.drops()
    }

    /// Ports currently in TIME_WAIT on `host`.
    pub fn time_wait_count(&self, host: HostId) -> usize {
        self.hosts[host.0].ports.in_time_wait()
    }

    // ------------------------------------------------------------------
    // Connection storage.
    // ------------------------------------------------------------------

    fn conn(&self, id: ConnId) -> Option<&Conn> {
        let &slot = self.conn_slot.get(id.0 as usize)?;
        self.conn_arena[slot as usize].as_ref()
    }

    fn conn_mut(&mut self, id: ConnId) -> Option<&mut Conn> {
        let &slot = self.conn_slot.get(id.0 as usize)?;
        self.conn_arena[slot as usize].as_mut()
    }

    fn conn_insert(&mut self, id: ConnId, conn: Conn) {
        let slot = match self.conn_free.pop() {
            Some(s) => {
                self.conn_arena[s as usize] = Some(conn);
                s
            }
            None => {
                self.conn_arena.push(Some(conn));
                (self.conn_arena.len() - 1) as u32
            }
        };
        self.conn_slot.insert(id.0 as usize, slot);
    }

    fn conn_remove(&mut self, id: ConnId) {
        if let Some(slot) = self.conn_slot.take(id.0 as usize) {
            self.conn_arena[slot as usize] = None;
            self.conn_free.push(slot);
        }
    }

    /// Heap bytes held by the connection machinery (id map pages, the
    /// slab arena, free lists) — the network side of the
    /// bytes-per-connection lane. Buffered stream bytes inside endpoints
    /// are excluded: inactive connections hold none.
    pub fn conn_mem_bytes(&self) -> usize {
        self.conn_slot.heap_bytes()
            + self.conn_arena.capacity() * std::mem::size_of::<Option<Conn>>()
            + self.conn_free.capacity() * std::mem::size_of::<u32>()
    }

    // ------------------------------------------------------------------
    // Timers.
    // ------------------------------------------------------------------

    fn arm(&mut self, at: SimTime, t: Timer) {
        let seq = self.timer_seq;
        self.timer_seq += 1;
        let slot = match self.timer_free.pop() {
            Some(s) => {
                self.timer_arena[s as usize] = Some(t);
                s
            }
            None => {
                self.timer_arena.push(Some(t));
                (self.timer_arena.len() - 1) as u32
            }
        };
        self.timers.push(Reverse((at, seq, slot)));
    }

    /// Earliest pending work, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let timer = self.timers.peek().map(|Reverse((t, _, _))| *t);
        let ports = self
            .hosts
            .iter()
            .filter_map(|h| h.ports.next_expiry())
            .min();
        match (timer, ports) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// O(1): whether `advance_into(now, …)` would do anything — pending
    /// notifications, a due timer, or a due TIME_WAIT expiry. Lets the
    /// driving loop test for quiescence without paying for an empty
    /// advance pass.
    pub fn has_work_at(&self, now: SimTime) -> bool {
        !self.out.is_empty()
            || self
                .timers
                .peek()
                .is_some_and(|Reverse((t, _, _))| *t <= now)
            || self
                .hosts
                .iter()
                .any(|h| h.ports.next_expiry().is_some_and(|t| t <= now))
    }

    /// Fires all timers due at or before `now` and returns the
    /// notifications accumulated since the previous call.
    ///
    /// Convenience wrapper over [`Network::advance_into`] that allocates
    /// a fresh vector per call; hot callers should hold a scratch buffer
    /// and use `advance_into` directly.
    pub fn advance(&mut self, now: SimTime) -> Vec<NetNotify> {
        let mut out = Vec::new();
        self.advance_into(now, &mut out);
        out
    }

    /// Fires all timers due at or before `now` and appends the
    /// notifications accumulated since the previous call to `out` (which
    /// is *not* cleared — the caller owns the buffer).
    pub fn advance_into(&mut self, now: SimTime, out: &mut Vec<NetNotify>) {
        while let Some(&Reverse((t, _, slot))) = self.timers.peek() {
            if t > now {
                break;
            }
            self.timers.pop();
            let body = self.timer_arena[slot as usize]
                .take()
                .expect("invariant: armed timers keep their bodies");
            self.timer_free.push(slot);
            match body {
                Timer::Deliver(seg) => self.deliver(t, seg),
                Timer::Rto { conn, side } => self.rto_fire(t, conn, side),
            }
        }
        for h in &mut self.hosts {
            h.ports.expire(now);
        }
        out.append(&mut self.out);
    }

    // ------------------------------------------------------------------
    // Listener API.
    // ------------------------------------------------------------------

    /// Opens a listening socket on `host:port` with the given backlog.
    pub fn listen(
        &mut self,
        host: HostId,
        port: Port,
        backlog: usize,
    ) -> Result<ListenerId, NetError> {
        let addr = SockAddr::new(host, port);
        if self.listen_by_addr.contains_key(&addr) {
            return Err(NetError::AddrInUse);
        }
        if !self.hosts[host.0].ports.bind(port) {
            return Err(NetError::AddrInUse);
        }
        let id = ListenerId(self.listeners.len() as u32);
        self.listeners.push(Listener {
            backlog,
            syn_rcvd: BTreeSet::new(),
            accept_q: VecDeque::new(),
            refused: 0,
        });
        self.listen_by_addr.insert(addr, id);
        Ok(id)
    }

    /// Pops one established connection off the accept queue.
    pub fn accept(&mut self, listener: ListenerId) -> Option<EndpointId> {
        let l = self.listeners.get_mut(listener.0 as usize)?;
        let conn = l.accept_q.pop_front()?;
        if let Some(c) = self.conn_mut(conn) {
            c.set_accepted(true);
        }
        Some(EndpointId::new(conn, Side::Server))
    }

    /// When this endpoint's connection entered the accept queue
    /// (`None` until the three-way handshake queued it). Still valid
    /// after [`Network::accept`] pops it — the accept-wait latency span
    /// reads it from the just-accepted endpoint.
    pub fn accept_queued_at(&self, ep: EndpointId) -> Option<SimTime> {
        let c = self.conn(ep.conn)?;
        if c.accept_queued() {
            Some(c.accept_queued_at)
        } else {
            None
        }
    }

    /// Number of connections waiting in the accept queue.
    pub fn accept_queue_len(&self, listener: ListenerId) -> usize {
        self.listeners
            .get(listener.0 as usize)
            .map_or(0, |l| l.accept_q.len())
    }

    /// SYNs this listener refused because its backlog was full.
    pub fn refused_count(&self, listener: ListenerId) -> u64 {
        self.listeners
            .get(listener.0 as usize)
            .map_or(0, |l| l.refused)
    }

    // ------------------------------------------------------------------
    // Connection API.
    // ------------------------------------------------------------------

    /// Starts a connection from `host` to `remote`.
    ///
    /// `extra_delay` is added one-way to every segment of this
    /// connection, modelling a high-latency (modem-class) client.
    pub fn connect(
        &mut self,
        now: SimTime,
        host: HostId,
        remote: SockAddr,
        extra_delay: SimDuration,
    ) -> Result<ConnId, ConnectError> {
        let Some(port) = self.hosts[host.0].ports.alloc(now) else {
            self.stats.ports_exhausted += 1;
            return Err(ConnectError::PortsExhausted);
        };
        let id = ConnId(self.next_conn);
        // Checked: id exhaustion is a loud failure, never a silent wrap
        // onto a live handle.
        self.next_conn = self
            .next_conn
            .checked_add(1)
            .expect("invariant: connection id space (2^32) never exhausted in one run");
        let conn = Conn::new([host, remote.host], [port, remote.port], extra_delay, now);
        self.conn_insert(id, conn);
        self.stats.conns_started += 1;
        self.transmit(
            now,
            Segment {
                conn: id,
                from: Side::Client,
                kind: SegKind::Syn,
            },
        );
        if let Some(c) = self.conn_mut(id) {
            c.syn_sent = 1;
            // The SYN timer doubles as the client's data-RTO timer once
            // the handshake completes, so mark it armed to avoid a
            // duplicate from `pump`.
            c.ep_mut(Side::Client).set_rto_armed(true);
        }
        self.arm(
            now + self.cfg.syn_rto,
            Timer::Rto {
                conn: id,
                side: Side::Client,
            },
        );
        Ok(id)
    }

    /// Test hook: repositions the connection-id counter (e.g. near
    /// `u32::MAX`) so tests can exercise high-id handle paths — the
    /// paged id → slot map must serve sparse, huge indices without
    /// densifying.
    #[doc(hidden)]
    pub fn set_next_conn_id(&mut self, next: u32) {
        self.next_conn = next;
    }

    /// Writes application bytes into the endpoint's send buffer.
    ///
    /// Returns how many bytes were accepted (may be less than offered when
    /// the buffer fills; a [`NetNotify::Writable`] will follow once space
    /// frees).
    pub fn send(&mut self, now: SimTime, ep: EndpointId, data: &[u8]) -> Result<usize, NetError> {
        let accepted = {
            let cfg = self.cfg;
            let conn = self.conn_mut(ep.conn).ok_or(NetError::Gone)?;
            if conn.state == ConnState::Reset || conn.state == ConnState::Closed {
                return Err(NetError::BadState);
            }
            let e = conn.ep_mut(ep.side);
            if e.fin_at().is_some() {
                return Err(NetError::BadState);
            }
            let space = e.send_space(&cfg);
            let n = space.min(data.len());
            e.out.extend_from_slice(&data[..n]);
            e.wrote += n as u64;
            if n < data.len() {
                e.set_blocked_writer(true);
            }
            n
        };
        if accepted > 0 {
            self.pump(now, ep.conn, ep.side);
        }
        Ok(accepted)
    }

    /// Reads up to `max` bytes of in-order data.
    pub fn recv(&mut self, now: SimTime, ep: EndpointId, max: usize) -> Result<Vec<u8>, NetError> {
        let mut buf = Vec::new();
        self.recv_into(now, ep, max, &mut buf)?;
        Ok(buf)
    }

    /// Reads up to `max` bytes of in-order data, appending them to `buf`.
    ///
    /// The allocation-free sibling of [`Network::recv`]: servers read
    /// straight into their per-connection request buffers instead of
    /// routing every chunk through a fresh `Vec`.
    pub fn recv_into(
        &mut self,
        _now: SimTime,
        ep: EndpointId,
        max: usize,
        buf: &mut Vec<u8>,
    ) -> Result<usize, NetError> {
        let conn = self.conn_mut(ep.conn).ok_or(NetError::Gone)?;
        let e = conn.ep_mut(ep.side);
        let n = e.inbox.len().min(max);
        buf.extend_from_slice(&e.inbox.as_slice()[..n]);
        e.inbox.consume(n);
        Ok(n)
    }

    /// Reads and discards up to `max` bytes of in-order data, returning
    /// only a summary — the byte count and the first bytes of the chunk.
    /// This is the hot-path sibling of [`Network::recv`] for callers
    /// (e.g. load generators) that never look past a response prefix.
    pub fn recv_discard(
        &mut self,
        _now: SimTime,
        ep: EndpointId,
        max: usize,
    ) -> Result<RecvSummary, NetError> {
        let conn = self.conn_mut(ep.conn).ok_or(NetError::Gone)?;
        let e = conn.ep_mut(ep.side);
        let n = e.inbox.len().min(max);
        let mut prefix = [0u8; RECV_PREFIX];
        let prefix_len = n.min(RECV_PREFIX);
        prefix[..prefix_len].copy_from_slice(&e.inbox.as_slice()[..prefix_len]);
        e.inbox.consume(n);
        Ok(RecvSummary {
            len: n,
            prefix,
            prefix_len,
        })
    }

    /// Bytes available for `recv` right now.
    pub fn readable_bytes(&self, ep: EndpointId) -> usize {
        self.conn(ep.conn).map_or(0, |c| c.ep(ep.side).inbox.len())
    }

    /// Whether the peer has closed its sending direction (EOF after the
    /// inbox drains).
    pub fn peer_closed(&self, ep: EndpointId) -> bool {
        self.conn(ep.conn)
            .is_some_and(|c| c.ep(ep.side).recv_done())
    }

    /// Free space in the send buffer.
    pub fn send_space(&self, ep: EndpointId) -> usize {
        self.conn(ep.conn)
            .map_or(0, |c| c.ep(ep.side).send_space(&self.cfg))
    }

    /// Whether the connection is established and not reset.
    pub fn is_established(&self, conn: ConnId) -> bool {
        self.conn(conn)
            .is_some_and(|c| c.state == ConnState::Established)
    }

    /// Whether the connection still exists (reset tombstones awaiting
    /// their RST delivery do not count).
    pub fn exists(&self, conn: ConnId) -> bool {
        self.conn(conn).is_some_and(|c| c.state != ConnState::Reset)
    }

    /// One-way base delay of the switch fabric.
    fn link_base_delay(&self) -> SimDuration {
        // All hosts share one link configuration; asking host 0 is fine.
        self.base_delay
    }

    /// Half-closes the endpoint: all buffered data is sent, then a FIN.
    pub fn close(&mut self, now: SimTime, ep: EndpointId) -> Result<(), NetError> {
        {
            let conn = self.conn_mut(ep.conn).ok_or(NetError::Gone)?;
            if conn.state == ConnState::Reset || conn.state == ConnState::Closed {
                return Err(NetError::BadState);
            }
            let e = conn.ep_mut(ep.side);
            if e.fin_at().is_some() {
                return Err(NetError::BadState);
            }
            e.set_fin_at(e.wrote);
            if conn.closed_first().is_none() {
                conn.set_closed_first(ep.side);
            }
        }
        self.pump(now, ep.conn, ep.side);
        Ok(())
    }

    /// Aborts the connection: RST to the peer, local resources freed
    /// immediately, no TIME_WAIT.
    pub fn abort(&mut self, now: SimTime, ep: EndpointId) -> Result<(), NetError> {
        let conn = self.conn_mut(ep.conn).ok_or(NetError::Gone)?;
        if conn.state == ConnState::Closed || conn.state == ConnState::Reset {
            return Err(NetError::BadState);
        }
        conn.state = ConnState::Reset;
        let (from_host, extra) = (conn.host(ep.side), conn.extra_delay);
        self.stats.conns_reset += 1;
        let seg = Segment {
            conn: ep.conn,
            from: ep.side,
            kind: SegKind::Rst,
        };
        // RSTs bypass the drop-tail queue: modelling their loss would only
        // leak tombstones without adding any behaviour the paper measures.
        let delay = self.hosts[from_host.0].tx.tx_time(seg.wire_bytes());
        let base = self.link_base_delay();
        self.arm(now + delay + base + extra, Timer::Deliver(seg));
        self.free_conn_ports(ep.conn, None);
        self.detach_listener(ep.conn);
        // The tombstone is reaped when the RST delivers (`on_rst`).
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals: transmission and delivery.
    // ------------------------------------------------------------------

    fn transmit(&mut self, now: SimTime, seg: Segment) {
        let (from_host, extra) = match self.conn(seg.conn) {
            Some(conn) => (conn.host(seg.from), conn.extra_delay),
            None => return,
        };
        // Injected random loss (never applied to RSTs, which bypass the
        // queue in `abort` for tombstone-reaping reasons).
        if self.loss_prob > 0.0 && self.rng.gen_bool(self.loss_prob) {
            self.stats.injected_losses += 1;
            return;
        }
        match self.hosts[from_host.0].tx.offer(now, &seg, extra) {
            TxOutcome::Deliver(at) => self.arm(at, Timer::Deliver(seg)),
            TxOutcome::Dropped => {
                // Loss: the retransmission machinery recovers.
            }
        }
    }

    fn deliver(&mut self, now: SimTime, seg: Segment) {
        let Some(conn) = self.conn(seg.conn) else {
            return; // Connection vanished (aborted); stale segment.
        };
        let to_side = seg.from.other();
        let host = conn.host(to_side);
        {
            let h = &mut self.hosts[host.0];
            h.segments_in += 1;
            h.bytes_in += seg.wire_bytes() as u64;
        }
        self.out.push(NetNotify::SegmentArrived {
            host,
            wire_bytes: seg.wire_bytes(),
        });
        match seg.kind {
            SegKind::Syn => self.on_syn(now, seg.conn),
            SegKind::SynAck => self.on_synack(now, seg.conn),
            SegKind::Ack { ack } => self.on_ack(now, seg.conn, to_side, ack),
            SegKind::Data { seq, len } => self.on_data(now, seg.conn, to_side, seq, len),
            SegKind::Fin { seq } => self.on_fin(now, seg.conn, to_side, seq),
            SegKind::Rst => self.on_rst(now, seg.conn, to_side),
        }
    }

    fn on_syn(&mut self, now: SimTime, conn_id: ConnId) {
        let Some(conn) = self.conn_mut(conn_id) else {
            return;
        };
        if conn.listener.is_some() {
            if !conn.accept_queued() {
                // Duplicate SYN (client retransmission): re-answer.
                let seg = Segment {
                    conn: conn_id,
                    from: Side::Server,
                    kind: SegKind::SynAck,
                };
                self.transmit(now, seg);
            }
            return;
        }
        let addr = SockAddr::new(conn.host(Side::Server), conn.port(Side::Server));
        let Some(&lid) = self.listen_by_addr.get(&addr) else {
            // No listener: refuse.
            let seg = Segment {
                conn: conn_id,
                from: Side::Server,
                kind: SegKind::Rst,
            };
            self.transmit(now, seg);
            return;
        };
        let l = self
            .listeners
            .get_mut(lid.0 as usize)
            .expect("invariant: accepting connections keep their listener");
        if l.syn_rcvd.len() + l.accept_q.len() >= l.backlog {
            l.refused += 1;
            self.stats.syn_drops += 1;
            self.out.push(NetNotify::SynDropped { listener: lid });
            if self.cfg.rst_on_backlog_full {
                let seg = Segment {
                    conn: conn_id,
                    from: Side::Server,
                    kind: SegKind::Rst,
                };
                self.transmit(now, seg);
            }
            return;
        }
        l.syn_rcvd.insert(conn_id);
        let conn = self
            .conn_mut(conn_id)
            .expect("invariant: delivered segments reference live connections");
        conn.listener = Some(lid);
        let seg = Segment {
            conn: conn_id,
            from: Side::Server,
            kind: SegKind::SynAck,
        };
        self.transmit(now, seg);
    }

    fn on_synack(&mut self, now: SimTime, conn_id: ConnId) {
        let Some(conn) = self.conn_mut(conn_id) else {
            return;
        };
        match conn.state {
            ConnState::SynSent => {
                conn.state = ConnState::Established;
                conn.ep_mut(Side::Client).last_progress = now;
                self.stats.conns_established += 1;
                self.out.push(NetNotify::ConnectDone {
                    ep: EndpointId::new(conn_id, Side::Client),
                });
                let seg = Segment {
                    conn: conn_id,
                    from: Side::Client,
                    kind: SegKind::Ack { ack: 0 },
                };
                self.transmit(now, seg);
                // Data may already be buffered (connect-then-write).
                self.pump(now, conn_id, Side::Client);
            }
            ConnState::Established => {
                // Duplicate SYN-ACK: re-ack the handshake.
                let seg = Segment {
                    conn: conn_id,
                    from: Side::Client,
                    kind: SegKind::Ack { ack: 0 },
                };
                self.transmit(now, seg);
            }
            _ => {}
        }
    }

    /// Promotes a server-side connection onto the accept queue (on the
    /// handshake ack, or on first data/FIN doing double duty when the ack
    /// was lost).
    fn promote_server(&mut self, now: SimTime, conn_id: ConnId) {
        let Some(conn) = self.conn_mut(conn_id) else {
            return;
        };
        let Some(lid) = conn.listener else {
            return; // No SYN seen yet (cannot happen in a FIFO network).
        };
        if conn.accept_queued() {
            return;
        }
        conn.ep_mut(Side::Server).last_progress = now;
        conn.set_accept_queued(true);
        conn.accept_queued_at = now;
        let l = self
            .listeners
            .get_mut(lid.0 as usize)
            .expect("invariant: accepting connections keep their listener");
        l.syn_rcvd.remove(&conn_id);
        l.accept_q.push_back(conn_id);
        self.out.push(NetNotify::AcceptReady { listener: lid });
    }

    fn on_ack(&mut self, now: SimTime, conn_id: ConnId, to_side: Side, ack: u64) {
        if to_side == Side::Server {
            self.promote_server(now, conn_id);
        }
        let cfg = self.cfg;
        let mut became_writable = false;
        let mut fin_now_acked = false;
        {
            let Some(conn) = self.conn_mut(conn_id) else {
                return;
            };
            let e = conn.ep_mut(to_side);
            if ack > e.snd_una {
                e.snd_una = ack.min(e.snd_nxt);
                e.last_progress = now;
                e.retries = 0;
                // Trim acknowledged bytes (the FIN occupies one virtual
                // sequence slot past `wrote`, so clamp).
                let trim_to = e.snd_una.min(e.wrote);
                if e.out_base < trim_to {
                    e.out.consume((trim_to - e.out_base) as usize);
                    e.out_base = trim_to;
                }
                if let Some(fin) = e.fin_at() {
                    if e.snd_una > fin {
                        if !e.fin_acked() {
                            fin_now_acked = true;
                        }
                        e.set_fin_acked(true);
                    }
                }
                if e.blocked_writer() && e.send_space(&cfg) > 0 {
                    e.set_blocked_writer(false);
                    became_writable = true;
                }
            }
        }
        if became_writable {
            self.out.push(NetNotify::Writable {
                ep: EndpointId::new(conn_id, to_side),
            });
        }
        // More window may be open now.
        self.pump(now, conn_id, to_side);
        if fin_now_acked {
            self.check_full_close(now, conn_id);
        }
    }

    fn on_data(&mut self, now: SimTime, conn_id: ConnId, to_side: Side, seq: u64, len: u32) {
        if to_side == Side::Server {
            self.promote_server(now, conn_id);
        }
        let mut readable = false;
        let ack;
        {
            let Some(conn) = self.conn_mut(conn_id) else {
                return;
            };
            if conn.state != ConnState::Established {
                return;
            }
            // Copy the in-order payload straight from the peer's stream
            // buffer into the inbox (split borrow of the endpoint pair —
            // no intermediate allocation).
            if seq == conn.ep(to_side).rcv_nxt {
                let (a, b) = conn.eps.split_at_mut(1);
                let (rx, tx) = match to_side.index() {
                    0 => (&mut a[0], &b[0]),
                    _ => (&mut b[0], &a[0]),
                };
                let start = (seq - tx.out_base) as usize;
                let payload = &tx.out.as_slice()[start..start + len as usize];
                rx.inbox.extend_from_slice(payload);
                rx.rcv_nxt = seq + len as u64;
                readable = true;
            }
            ack = conn.ep(to_side).rcv_nxt;
        }
        if readable {
            self.out.push(NetNotify::Readable {
                ep: EndpointId::new(conn_id, to_side),
            });
        }
        let seg = Segment {
            conn: conn_id,
            from: to_side,
            kind: SegKind::Ack { ack },
        };
        self.transmit(now, seg);
    }

    fn on_fin(&mut self, now: SimTime, conn_id: ConnId, to_side: Side, seq: u64) {
        if to_side == Side::Server {
            self.promote_server(now, conn_id);
        }
        let mut saw_fin = false;
        let ack;
        {
            let Some(conn) = self.conn_mut(conn_id) else {
                return;
            };
            let e = conn.ep_mut(to_side);
            if seq == e.rcv_nxt && e.peer_fin().is_none() {
                e.set_peer_fin(seq);
                e.rcv_nxt = seq + 1;
                saw_fin = true;
            }
            ack = conn.ep(to_side).rcv_nxt;
        }
        if saw_fin {
            self.out.push(NetNotify::PeerClosed {
                ep: EndpointId::new(conn_id, to_side),
            });
        }
        let seg = Segment {
            conn: conn_id,
            from: to_side,
            kind: SegKind::Ack { ack },
        };
        self.transmit(now, seg);
        if saw_fin {
            self.check_full_close(now, conn_id);
        }
    }

    fn on_rst(&mut self, now: SimTime, conn_id: ConnId, to_side: Side) {
        let Some(conn) = self.conn_mut(conn_id) else {
            return;
        };
        let was_syn_sent = conn.state == ConnState::SynSent;
        let newly_reset = conn.state != ConnState::Reset;
        conn.state = ConnState::Reset;
        let host = conn.host(Side::Client);
        if newly_reset {
            self.stats.conns_reset += 1;
        }
        if was_syn_sent {
            self.out.push(NetNotify::ConnectFailed {
                conn: conn_id,
                host,
                reason: ConnectError::Refused,
            });
        } else {
            self.out.push(NetNotify::ConnReset {
                ep: EndpointId::new(conn_id, to_side),
            });
        }
        let _ = now;
        self.free_conn_ports(conn_id, None);
        self.detach_listener(conn_id);
        self.conn_remove(conn_id);
    }

    /// Sends whatever the window allows: data first, then the FIN.
    fn pump(&mut self, now: SimTime, conn_id: ConnId, side: Side) {
        let mut to_send = std::mem::take(&mut self.pump_scratch);
        to_send.clear();
        let mut arm_rto = false;
        {
            let cfg = self.cfg;
            let Some(conn) = self.conn_mut(conn_id) else {
                self.pump_scratch = to_send;
                return;
            };
            if conn.state != ConnState::Established {
                self.pump_scratch = to_send;
                return; // Data flows only once established.
            }
            let window = cfg.window_segments as u64 * cfg.mss as u64;
            let e = conn.ep_mut(side);
            while e.snd_nxt < e.wrote && e.in_flight() < window {
                let len = (e.wrote - e.snd_nxt).min(cfg.mss as u64) as u32;
                to_send.push(Segment {
                    conn: conn_id,
                    from: side,
                    kind: SegKind::Data {
                        seq: e.snd_nxt,
                        len,
                    },
                });
                e.snd_nxt += len as u64;
            }
            if let Some(fin) = e.fin_at() {
                if e.snd_nxt == fin && !e.fin_sent() && e.in_flight() < window + 1 {
                    to_send.push(Segment {
                        conn: conn_id,
                        from: side,
                        kind: SegKind::Fin { seq: fin },
                    });
                    e.set_fin_sent(true);
                    e.snd_nxt = fin + 1;
                }
            }
            if e.in_flight() > 0 && !e.rto_armed() {
                e.set_rto_armed(true);
                arm_rto = true;
            }
        }
        for &seg in &to_send {
            self.transmit(now, seg);
        }
        self.pump_scratch = to_send;
        if arm_rto {
            self.arm(
                now + self.cfg.rto_initial,
                Timer::Rto {
                    conn: conn_id,
                    side,
                },
            );
        }
    }

    fn rto_fire(&mut self, now: SimTime, conn_id: ConnId, side: Side) {
        enum Action {
            None,
            ConnectTimeout,
            ResendSyn { rearm: SimDuration },
            ResetBoth,
            Retransmit { rearm: SimDuration },
            Rearm { at: SimTime },
        }
        let action;
        {
            let cfg = self.cfg;
            let Some(conn) = self.conn_mut(conn_id) else {
                return;
            };
            match conn.state {
                ConnState::SynSent if side == Side::Client => {
                    if u32::from(conn.syn_sent) > cfg.syn_retries {
                        action = Action::ConnectTimeout;
                    } else {
                        conn.syn_sent += 1;
                        let backoff = cfg.syn_rto * (1 << (conn.syn_sent - 1).min(4)) as u64;
                        action = Action::ResendSyn {
                            rearm: backoff.min(cfg.rto_max),
                        };
                    }
                }
                ConnState::Established => {
                    let e = conn.ep_mut(side);
                    if e.in_flight() == 0 {
                        e.set_rto_armed(false);
                        action = Action::None;
                    } else {
                        let rto = cfg
                            .rto_initial
                            .mul_f64((1u64 << e.retries.min(6)) as f64)
                            .min(cfg.rto_max);
                        let age = now.saturating_duration_since(e.last_progress);
                        if age >= rto {
                            if u32::from(e.retries) >= cfg.data_retries {
                                action = Action::ResetBoth;
                            } else {
                                e.retries += 1;
                                e.snd_nxt = e.snd_una; // Go-back-N.
                                if let Some(fin) = e.fin_at() {
                                    if e.snd_una <= fin {
                                        e.set_fin_sent(false);
                                    }
                                }
                                let next = cfg
                                    .rto_initial
                                    .mul_f64((1u64 << e.retries.min(6)) as f64)
                                    .min(cfg.rto_max);
                                action = Action::Retransmit { rearm: next };
                            }
                        } else {
                            action = Action::Rearm {
                                at: e.last_progress + rto,
                            };
                        }
                    }
                }
                _ => {
                    // Handshake completed or connection tearing down:
                    // disarm quietly.
                    let e = conn.ep_mut(side);
                    e.set_rto_armed(false);
                    action = Action::None;
                }
            }
        }
        match action {
            Action::None => {}
            Action::ConnectTimeout => {
                let conn = self
                    .conn(conn_id)
                    .expect("invariant: existence checked above");
                let host = conn.host(Side::Client);
                self.out.push(NetNotify::ConnectFailed {
                    conn: conn_id,
                    host,
                    reason: ConnectError::Timeout,
                });
                self.free_conn_ports(conn_id, None);
                self.conn_remove(conn_id);
            }
            Action::ResendSyn { rearm } => {
                self.transmit(
                    now,
                    Segment {
                        conn: conn_id,
                        from: Side::Client,
                        kind: SegKind::Syn,
                    },
                );
                self.arm(
                    now + rearm,
                    Timer::Rto {
                        conn: conn_id,
                        side,
                    },
                );
            }
            Action::ResetBoth => {
                let conn = self
                    .conn_mut(conn_id)
                    .expect("invariant: existence checked above");
                conn.state = ConnState::Reset;
                self.stats.conns_reset += 1;
                self.out.push(NetNotify::ConnReset {
                    ep: EndpointId::new(conn_id, side),
                });
                self.out.push(NetNotify::ConnReset {
                    ep: EndpointId::new(conn_id, side.other()),
                });
                self.free_conn_ports(conn_id, None);
                self.detach_listener(conn_id);
                self.conn_remove(conn_id);
            }
            Action::Retransmit { rearm } => {
                self.stats.retransmits += 1;
                self.pump_retransmit(now, conn_id, side);
                self.arm(
                    now + rearm,
                    Timer::Rto {
                        conn: conn_id,
                        side,
                    },
                );
            }
            Action::Rearm { at } => {
                self.arm(
                    at,
                    Timer::Rto {
                        conn: conn_id,
                        side,
                    },
                );
            }
        }
    }

    /// Re-sends everything from `snd_una` (go-back-N restart).
    fn pump_retransmit(&mut self, now: SimTime, conn_id: ConnId, side: Side) {
        // `pump` resends from `snd_nxt`, which the RTO handler rewound.
        self.pump(now, conn_id, side);
    }

    fn check_full_close(&mut self, now: SimTime, conn_id: ConnId) {
        let done = self.conn(conn_id).is_some_and(|c| c.fully_closed());
        if !done {
            return;
        }
        self.stats.conns_closed += 1;
        self.out.push(NetNotify::ConnClosed {
            ep: EndpointId::new(conn_id, Side::Client),
        });
        self.out.push(NetNotify::ConnClosed {
            ep: EndpointId::new(conn_id, Side::Server),
        });
        // TIME_WAIT is per connection tuple; whichever side closed first,
        // the tuple — and hence the client's ephemeral port — cannot be
        // reused for `time_wait`. Parking the client port models that.
        self.free_conn_ports(conn_id, Some((Side::Client, now + self.cfg.time_wait)));
        self.detach_listener(conn_id);
        if let Some(c) = self.conn_mut(conn_id) {
            c.state = ConnState::Closed;
        }
        self.conn_remove(conn_id);
    }

    /// Releases both ports; the side in `time_wait` (if any) holds its
    /// port until the given expiry.
    fn free_conn_ports(&mut self, conn_id: ConnId, time_wait: Option<(Side, SimTime)>) {
        let Some(conn) = self.conn_mut(conn_id) else {
            return;
        };
        if conn.ports_freed() {
            return;
        }
        conn.set_ports_freed(true);
        let sides = [
            (conn.host(Side::Client), conn.port(Side::Client)),
            (conn.host(Side::Server), conn.port(Side::Server)),
        ];
        for (side, (host, port)) in [Side::Client, Side::Server].into_iter().zip(sides) {
            // A listener's well-known port is shared by many connections;
            // only ephemeral (client-allocated) ports are released.
            let is_listener_port = self.listen_by_addr.contains_key(&SockAddr::new(host, port));

            if is_listener_port {
                continue;
            }
            match time_wait {
                Some((tw_side, until)) if tw_side == side => {
                    self.hosts[host.0].ports.release_time_wait(port, until);
                }
                _ => self.hosts[host.0].ports.release(port),
            }
        }
    }

    fn detach_listener(&mut self, conn_id: ConnId) {
        let Some(conn) = self.conn(conn_id) else {
            return;
        };
        let (listener, accepted) = (conn.listener, conn.accepted());
        if let Some(lid) = listener {
            if let Some(l) = self.listeners.get_mut(lid.0 as usize) {
                l.syn_rcvd.remove(&conn_id);
                if !accepted {
                    l.accept_q.retain(|c| *c != conn_id);
                }
            }
        }
    }
}

/// How many response-prefix bytes [`Network::recv_discard`] captures.
pub const RECV_PREFIX: usize = 12;

/// Summary of a drained-and-discarded read: the byte count plus the
/// first bytes of the chunk (enough for an HTTP status-line check)
/// without materialising the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvSummary {
    /// Bytes drained from the inbox.
    pub len: usize,
    /// The first `prefix_len` bytes of the drained chunk.
    pub prefix: [u8; RECV_PREFIX],
    /// How many bytes of `prefix` are valid.
    pub prefix_len: usize,
}

impl RecvSummary {
    /// The valid prefix bytes.
    pub fn prefix(&self) -> &[u8] {
        &self.prefix[..self.prefix_len]
    }
}
