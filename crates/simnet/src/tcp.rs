//! Simplified TCP: connection and endpoint state.
//!
//! The transport is a go-back-N reliable byte stream with a fixed
//! in-flight window, cumulative acks, coarse retransmission timeouts, and
//! the connection-lifecycle states that matter to the paper's benchmark:
//! the three-way handshake (with listener backlog and SYN drop under
//! overload), FIN teardown, abortive RST, and a 60-second TIME_WAIT that
//! pins the closing side's port.
//!
//! What is deliberately *not* modelled: congestion control dynamics
//! (the window is fixed), selective acknowledgement, and receiver-side
//! flow control (server applications in the benchmark always drain their
//! buffers; inactive connections never send). None of these influence the
//! event-notification costs the paper measures.

use simcore::time::{SimDuration, SimTime};

use crate::addr::{HostId, ListenerId, Port, Side};
use crate::bytes::ByteQueue;

/// Transport configuration shared by every connection.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment size for data segments.
    pub mss: u32,
    /// Maximum unacknowledged bytes in flight, in segments of `mss`.
    pub window_segments: u32,
    /// Application send-buffer size in bytes.
    pub send_buf: usize,
    /// Initial retransmission timeout for data and FIN.
    pub rto_initial: SimDuration,
    /// Upper bound on the (exponentially backed-off) RTO.
    pub rto_max: SimDuration,
    /// Retransmission timeout for SYN.
    pub syn_rto: SimDuration,
    /// SYN retransmissions before the connect fails.
    pub syn_retries: u32,
    /// Data/FIN retransmissions before the connection is reset.
    pub data_retries: u32,
    /// TIME_WAIT duration (60 s on the paper's Linux 2.2.14).
    pub time_wait: SimDuration,
    /// If `true`, a listener with a full backlog answers SYN with RST
    /// ("connection refused"); if `false` it drops the SYN silently and
    /// the client retries (stock Linux 2.2 behaviour).
    pub rst_on_backlog_full: bool,
}

impl Default for TcpConfig {
    fn default() -> TcpConfig {
        TcpConfig {
            mss: crate::seg::DEFAULT_MSS,
            window_segments: 8,
            send_buf: 16 * 1024,
            rto_initial: SimDuration::from_millis(200),
            rto_max: SimDuration::from_secs(30),
            syn_rto: SimDuration::from_secs(3),
            syn_retries: 4,
            data_retries: 8,
            time_wait: SimDuration::from_secs(60),
            rst_on_backlog_full: false,
        }
    }
}

/// Why a `connect` attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectError {
    /// The client host has no free ephemeral ports (all in use or in
    /// TIME_WAIT) — the paper's 60000-socket limitation.
    PortsExhausted,
    /// SYN (re)transmissions were exhausted without an answer.
    Timeout,
    /// The server answered with RST.
    Refused,
}

/// Overall connection lifecycle phase.
///
/// Handshake progress on the server side is tracked separately (whether
/// the SYN was seen, whether the connection was promoted to the accept
/// queue); `state` flips to `Established` when the *client* completes the
/// handshake, which gates data flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Client sent SYN, awaiting SYN-ACK.
    SynSent,
    /// Both directions open (possibly half-closed during teardown).
    Established,
    /// Fully closed (both FINs delivered and acknowledged).
    Closed,
    /// Torn down by RST or retry exhaustion.
    Reset,
}

/// Sentinel for "no FIN sequence recorded" in the packed
/// [`Endpoint::fin_at`]/[`Endpoint::peer_fin`] fields. Stream sequence
/// numbers never reach 2^64, so the sentinel is unambiguous.
const NO_SEQ: u64 = u64::MAX;

/// One directional half of a connection's state.
///
/// Per-connection memory is the scaling bottleneck at 10^6 inactive
/// connections, so this struct is bit-packed: the four lifecycle
/// booleans share one flags byte, retransmission counts are a byte
/// (retry limits are single digits), and the optional FIN sequences use
/// a `u64::MAX` sentinel instead of `Option<u64>`'s padded 16 bytes.
// #[hot_struct]: two per connection, a million connections deep
#[derive(Debug, Clone)]
pub struct Endpoint {
    /// Outgoing stream bytes not yet trimmed; front is at `out_base`.
    pub(crate) out: ByteQueue,
    /// Incoming stream delivered in order and not yet read.
    pub(crate) inbox: ByteQueue,
    /// Sequence number of `out.front()`.
    pub(crate) out_base: u64,
    /// Total bytes accepted from the application.
    pub(crate) wrote: u64,
    /// Next sequence number to transmit.
    pub(crate) snd_nxt: u64,
    /// Oldest unacknowledged sequence number.
    pub(crate) snd_una: u64,
    /// Next sequence number expected from the peer.
    pub(crate) rcv_nxt: u64,
    /// Sequence of our FIN once `close` was called (== `wrote` at
    /// close); [`NO_SEQ`] until then.
    fin_at_raw: u64,
    /// Sequence of the peer's FIN once received in order; [`NO_SEQ`]
    /// until then.
    peer_fin_raw: u64,
    /// Timestamp of the last forward progress (for RTO age checks).
    pub(crate) last_progress: SimTime,
    /// Consecutive retransmissions without progress (bounded by
    /// [`TcpConfig::data_retries`], single digits).
    pub(crate) retries: u8,
    /// Packed lifecycle booleans (`EP_*` bits).
    flags: u8,
}

/// [`Endpoint::flags`]: the FIN has been transmitted at least once.
const EP_FIN_SENT: u8 = 1 << 0;
/// [`Endpoint::flags`]: the FIN has been acknowledged.
const EP_FIN_ACKED: u8 = 1 << 1;
/// [`Endpoint::flags`]: an RTO timer event is outstanding.
const EP_RTO_ARMED: u8 = 1 << 2;
/// [`Endpoint::flags`]: the last `send` could not accept all bytes (so
/// a `Writable` notification fires when space frees).
const EP_BLOCKED_WRITER: u8 = 1 << 3;

impl Endpoint {
    pub(crate) fn new(now: SimTime) -> Endpoint {
        Endpoint {
            out: ByteQueue::new(),
            inbox: ByteQueue::new(),
            out_base: 0,
            wrote: 0,
            snd_nxt: 0,
            snd_una: 0,
            rcv_nxt: 0,
            fin_at_raw: NO_SEQ,
            peer_fin_raw: NO_SEQ,
            last_progress: now,
            retries: 0,
            flags: 0,
        }
    }

    pub(crate) fn fin_at(&self) -> Option<u64> {
        (self.fin_at_raw != NO_SEQ).then_some(self.fin_at_raw)
    }

    pub(crate) fn set_fin_at(&mut self, seq: u64) {
        debug_assert_ne!(seq, NO_SEQ);
        self.fin_at_raw = seq;
    }

    pub(crate) fn peer_fin(&self) -> Option<u64> {
        (self.peer_fin_raw != NO_SEQ).then_some(self.peer_fin_raw)
    }

    pub(crate) fn set_peer_fin(&mut self, seq: u64) {
        debug_assert_ne!(seq, NO_SEQ);
        self.peer_fin_raw = seq;
    }

    pub(crate) fn fin_sent(&self) -> bool {
        self.flags & EP_FIN_SENT != 0
    }

    pub(crate) fn fin_acked(&self) -> bool {
        self.flags & EP_FIN_ACKED != 0
    }

    pub(crate) fn rto_armed(&self) -> bool {
        self.flags & EP_RTO_ARMED != 0
    }

    pub(crate) fn blocked_writer(&self) -> bool {
        self.flags & EP_BLOCKED_WRITER != 0
    }

    pub(crate) fn set_fin_sent(&mut self, v: bool) {
        self.set_flag(EP_FIN_SENT, v);
    }

    pub(crate) fn set_fin_acked(&mut self, v: bool) {
        self.set_flag(EP_FIN_ACKED, v);
    }

    pub(crate) fn set_rto_armed(&mut self, v: bool) {
        self.set_flag(EP_RTO_ARMED, v);
    }

    pub(crate) fn set_blocked_writer(&mut self, v: bool) {
        self.set_flag(EP_BLOCKED_WRITER, v);
    }

    fn set_flag(&mut self, bit: u8, v: bool) {
        if v {
            self.flags |= bit;
        } else {
            self.flags &= !bit;
        }
    }

    /// Bytes in flight (sent, not yet acknowledged), including a FIN.
    pub(crate) fn in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Bytes the application may still write before the buffer is full.
    pub(crate) fn send_space(&self, cfg: &TcpConfig) -> usize {
        cfg.send_buf.saturating_sub(self.out.len())
    }

    /// Whether this half has finished sending (FIN acknowledged).
    pub(crate) fn send_done(&self) -> bool {
        self.fin_acked()
    }

    /// Whether this half has seen the peer's FIN.
    pub(crate) fn recv_done(&self) -> bool {
        self.peer_fin_raw != NO_SEQ
    }
}

/// A full connection: both halves plus routing metadata.
///
/// Lifecycle booleans are packed into one flags byte (`CONN_*` bits)
/// and the SYN counter is a byte; with the endpoint packing above, a
/// million-connection world carries connections, not padding.
// #[hot_struct]: one per connection
#[derive(Debug, Clone)]
pub struct Conn {
    /// Lifecycle phase.
    pub(crate) state: ConnState,
    /// SYN (re)transmissions so far (bounded by
    /// [`TcpConfig::syn_retries`], single digits).
    pub(crate) syn_sent: u8,
    /// Packed lifecycle booleans (`CONN_*` bits).
    flags: u8,
    /// `[client port, server port]`.
    pub(crate) ports: [Port; 2],
    /// `[client host, server host]`.
    pub(crate) hosts: [HostId; 2],
    /// `[client endpoint, server endpoint]`.
    pub(crate) eps: [Endpoint; 2],
    /// Extra one-way latency for this connection's path (high-latency
    /// client simulation).
    pub(crate) extra_delay: SimDuration,
    /// The listener that spawned the server half.
    pub(crate) listener: Option<ListenerId>,
    /// When the server half entered the accept queue (meaningful only
    /// once `accept_queued` is set; feeds the accept-wait latency span).
    pub(crate) accept_queued_at: SimTime,
}

/// [`Conn::flags`]: the server half was pushed to the accept queue.
const CONN_ACCEPT_QUEUED: u8 = 1 << 0;
/// [`Conn::flags`]: the server half was accepted by the application.
const CONN_ACCEPTED: u8 = 1 << 1;
/// [`Conn::flags`]: ports already returned to their allocators (guards
/// double-free when an abort tombstone is later reaped by its own RST
/// delivery).
const CONN_PORTS_FREED: u8 = 1 << 2;
/// [`Conn::flags`]: some side has closed first (owns the TIME_WAIT).
const CONN_CLOSED_FIRST: u8 = 1 << 3;
/// [`Conn::flags`]: the first closer was the server side (meaningful
/// only with [`CONN_CLOSED_FIRST`]).
const CONN_CLOSED_FIRST_SERVER: u8 = 1 << 4;

impl Conn {
    /// Creates a fresh `SynSent` connection (`[client, server]` order
    /// for `hosts` and `ports`).
    pub(crate) fn new(
        hosts: [HostId; 2],
        ports: [Port; 2],
        extra_delay: SimDuration,
        now: SimTime,
    ) -> Conn {
        Conn {
            state: ConnState::SynSent,
            syn_sent: 0,
            flags: 0,
            ports,
            hosts,
            eps: [Endpoint::new(now), Endpoint::new(now)],
            extra_delay,
            listener: None,
            accept_queued_at: SimTime::ZERO,
        }
    }

    pub(crate) fn accept_queued(&self) -> bool {
        self.flags & CONN_ACCEPT_QUEUED != 0
    }

    pub(crate) fn set_accept_queued(&mut self, v: bool) {
        self.set_flag(CONN_ACCEPT_QUEUED, v);
    }

    pub(crate) fn accepted(&self) -> bool {
        self.flags & CONN_ACCEPTED != 0
    }

    pub(crate) fn set_accepted(&mut self, v: bool) {
        self.set_flag(CONN_ACCEPTED, v);
    }

    pub(crate) fn ports_freed(&self) -> bool {
        self.flags & CONN_PORTS_FREED != 0
    }

    pub(crate) fn set_ports_freed(&mut self, v: bool) {
        self.set_flag(CONN_PORTS_FREED, v);
    }

    /// Which side closed first (owns the TIME_WAIT), if any yet.
    pub(crate) fn closed_first(&self) -> Option<Side> {
        if self.flags & CONN_CLOSED_FIRST == 0 {
            None
        } else if self.flags & CONN_CLOSED_FIRST_SERVER != 0 {
            Some(Side::Server)
        } else {
            Some(Side::Client)
        }
    }

    pub(crate) fn set_closed_first(&mut self, side: Side) {
        self.flags |= CONN_CLOSED_FIRST;
        self.set_flag(CONN_CLOSED_FIRST_SERVER, side == Side::Server);
    }

    fn set_flag(&mut self, bit: u8, v: bool) {
        if v {
            self.flags |= bit;
        } else {
            self.flags &= !bit;
        }
    }

    pub(crate) fn ep(&self, side: Side) -> &Endpoint {
        &self.eps[side.index()]
    }

    pub(crate) fn ep_mut(&mut self, side: Side) -> &mut Endpoint {
        &mut self.eps[side.index()]
    }

    pub(crate) fn host(&self, side: Side) -> HostId {
        self.hosts[side.index()]
    }

    pub(crate) fn port(&self, side: Side) -> Port {
        self.ports[side.index()]
    }

    /// Both directions fully shut down?
    pub(crate) fn fully_closed(&self) -> bool {
        self.eps.iter().all(|e| e.send_done() && e.recv_done())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_send_space_tracks_buffer() {
        let cfg = TcpConfig {
            send_buf: 10,
            ..TcpConfig::default()
        };
        let mut ep = Endpoint::new(SimTime::ZERO);
        assert_eq!(ep.send_space(&cfg), 10);
        ep.out.extend_from_slice(&[0u8; 4]);
        assert_eq!(ep.send_space(&cfg), 6);
        ep.out.extend_from_slice(&[0u8; 10]);
        assert_eq!(ep.send_space(&cfg), 0);
    }

    #[test]
    fn endpoint_in_flight() {
        let mut ep = Endpoint::new(SimTime::ZERO);
        ep.snd_nxt = 100;
        ep.snd_una = 40;
        assert_eq!(ep.in_flight(), 60);
    }

    #[test]
    fn default_config_matches_paper_environment() {
        let cfg = TcpConfig::default();
        assert_eq!(cfg.time_wait, SimDuration::from_secs(60));
        assert_eq!(cfg.mss, 1460);
        assert!(!cfg.rst_on_backlog_full, "Linux 2.2 drops SYNs");
    }
}
