//! TCP segments as modelled on the wire.
//!
//! The model is deliberately simplified: segments carry byte *counts* and
//! sequence numbers, not payload bytes (payload lives in the sender's
//! stream buffer and is handed to the receiver when the sequence range
//! completes, see [`crate::tcp`]). Sizes still matter — transmission time
//! and interrupt load are charged per segment.

use crate::addr::{ConnId, Side};

/// Bytes of TCP/IP header overhead charged per segment on the wire.
pub const HEADER_BYTES: u32 = 40;

/// Default maximum segment size (Ethernet MTU minus headers).
pub const DEFAULT_MSS: u32 = 1460;

/// The kind of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegKind {
    /// Connection request.
    Syn,
    /// Connection accept.
    SynAck,
    /// Final handshake ack (also used as pure ack of a FIN).
    Ack {
        /// Cumulative ack: the next sequence number expected.
        ack: u64,
    },
    /// In-stream data.
    Data {
        /// First sequence number of the payload.
        seq: u64,
        /// Payload length in bytes.
        len: u32,
    },
    /// End of stream. `seq` is the sequence number after the last data
    /// byte (the FIN occupies one virtual sequence position).
    Fin {
        /// Sequence number of the FIN itself.
        seq: u64,
    },
    /// Connection reset.
    Rst,
}

/// A segment in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// The connection this segment belongs to.
    pub conn: ConnId,
    /// The side that *sent* the segment.
    pub from: Side,
    /// What the segment carries.
    pub kind: SegKind,
}

impl Segment {
    /// Total wire size in bytes (headers plus payload).
    pub fn wire_bytes(&self) -> u32 {
        match self.kind {
            SegKind::Data { len, .. } => HEADER_BYTES + len,
            _ => HEADER_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_counts_headers() {
        let d = Segment {
            conn: ConnId(0),
            from: Side::Client,
            kind: SegKind::Data { seq: 0, len: 1000 },
        };
        assert_eq!(d.wire_bytes(), 1040);
        let a = Segment {
            conn: ConnId(0),
            from: Side::Server,
            kind: SegKind::Ack { ack: 1000 },
        };
        assert_eq!(a.wire_bytes(), 40);
    }
}
