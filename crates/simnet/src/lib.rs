#![warn(missing_docs)]

//! `simnet` — the simulated network testbed.
//!
//! Reproduces the physical environment of *Scalable Network I/O in Linux*
//! (Provos & Lever, USENIX 2000): two (or more) hosts on a 100 Mbit/s
//! switched Ethernet, running a simplified but faithful TCP — three-way
//! handshake with listener backlogs, go-back-N reliable delivery over
//! rate-limited drop-tail links, FIN/RST teardown, 60-second TIME_WAIT
//! and a bounded ephemeral-port range (the paper's "about 60000 open
//! sockets" limitation).
//!
//! The central type is [`net::Network`]; see its docs for the driving
//! protocol (`next_deadline` / `advance`).

pub mod addr;
pub mod bytes;
pub mod link;
pub mod net;
pub mod ports;
pub mod seg;
pub mod tcp;

pub use addr::{ConnId, EndpointId, HostId, ListenerId, Port, Side, SockAddr};
pub use bytes::ByteQueue;
pub use link::{LinkConfig, Tx, TxOutcome};
pub use net::{NetError, NetNotify, NetStats, Network, RecvSummary, RECV_PREFIX};
pub use ports::PortAllocator;
pub use seg::{SegKind, Segment, DEFAULT_MSS, HEADER_BYTES};
pub use tcp::{ConnState, ConnectError, TcpConfig};
