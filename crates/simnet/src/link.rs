//! The transmit side of a NIC: a rate-limited, bounded FIFO queue.
//!
//! Each host owns one egress [`Tx`] per direction onto the switch. A
//! segment occupies the transmitter for `bytes * 8 / bandwidth` and is
//! then delivered after the propagation delay. When the queue is full the
//! segment is dropped — the sender discovers the loss through its
//! retransmission timer, which is how overload turns into latency and
//! errors, exactly as on the paper's testbed.

use simcore::time::{SimDuration, SimTime};

use crate::seg::Segment;

/// Configuration of one egress link direction.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Link rate in bits per second (the paper's switch: 100 Mbit/s).
    pub bits_per_sec: u64,
    /// One-way propagation + switch forwarding delay.
    pub base_delay: SimDuration,
    /// Maximum segments queued awaiting transmission before tail drop.
    pub queue_cap: usize,
    /// Random per-segment loss probability in `[0, 1]` — fault injection
    /// for exercising retransmission under an unreliable fabric (the
    /// paper's LAN was clean; WAN paths are not).
    pub loss_prob: f64,
}

impl Default for LinkConfig {
    fn default() -> LinkConfig {
        LinkConfig {
            bits_per_sec: 100_000_000,
            base_delay: SimDuration::from_micros(100),
            queue_cap: 256,
            loss_prob: 0.0,
        }
    }
}

/// Result of offering a segment to the transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// Segment accepted; it will be delivered at the returned time
    /// (transmission completion plus propagation and any extra delay).
    Deliver(SimTime),
    /// Queue full; the segment was dropped.
    Dropped,
}

/// The egress transmitter of a host.
///
/// Transmission is serialized: a segment begins transmitting when the
/// previous one finishes. The model does not need an explicit queue of
/// segment objects — because delivery order equals enqueue order and the
/// per-segment transmit time is known on enqueue, tracking the time the
/// transmitter becomes free plus the number of queued-but-unsent segments
/// suffices.
#[derive(Debug, Clone)]
pub struct Tx {
    config: LinkConfig,
    /// When the transmitter finishes everything currently accepted.
    free_at: SimTime,
    /// (time the segment finishes transmitting) for segments still queued
    /// or in transmission, oldest first — used only to bound queue depth.
    in_flight: std::collections::VecDeque<SimTime>,
    /// Segments dropped due to a full queue.
    drops: u64,
    /// Segments accepted.
    sent: u64,
}

impl Tx {
    /// Folds the transmitter's semantic state into `h` (drop/sent
    /// counters are diagnostics and deliberately excluded so equal
    /// queue states dedup).
    pub fn fingerprint_into(&self, h: &mut simcore::fingerprint::Fnv) {
        h.write_u64(self.free_at.as_nanos());
        h.write_len(self.in_flight.len());
        for t in &self.in_flight {
            h.write_u64(t.as_nanos());
        }
    }

    /// Creates an idle transmitter.
    pub fn new(config: LinkConfig) -> Tx {
        Tx {
            config,
            free_at: SimTime::ZERO,
            in_flight: std::collections::VecDeque::new(),
            drops: 0,
            sent: 0,
        }
    }

    /// Time to clock `bytes` onto the wire.
    pub fn tx_time(&self, bytes: u32) -> SimDuration {
        let bits = bytes as u64 * 8;
        SimDuration::from_nanos(bits * 1_000_000_000 / self.config.bits_per_sec)
    }

    fn reap(&mut self, now: SimTime) {
        while let Some(&done) = self.in_flight.front() {
            if done <= now {
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
    }

    /// Offers a segment for transmission at `now`, with `extra_delay`
    /// added one-way (models a high-latency client path).
    ///
    /// Returns when the segment will arrive at the other host, or
    /// [`TxOutcome::Dropped`].
    pub fn offer(&mut self, now: SimTime, seg: &Segment, extra_delay: SimDuration) -> TxOutcome {
        self.reap(now);
        if self.in_flight.len() >= self.config.queue_cap {
            self.drops += 1;
            return TxOutcome::Dropped;
        }
        let start = self.free_at.max(now);
        let done = start + self.tx_time(seg.wire_bytes());
        self.free_at = done;
        self.in_flight.push_back(done);
        self.sent += 1;
        TxOutcome::Deliver(done + self.config.base_delay + extra_delay)
    }

    /// Number of segments dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Number of segments accepted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Current queue depth (segments accepted and not yet fully
    /// transmitted as of `now`).
    pub fn depth(&mut self, now: SimTime) -> usize {
        self.reap(now);
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{ConnId, Side};
    use crate::seg::SegKind;

    fn seg(len: u32) -> Segment {
        Segment {
            conn: ConnId(0),
            from: Side::Client,
            kind: SegKind::Data { seq: 0, len },
        }
    }

    fn cfg() -> LinkConfig {
        LinkConfig {
            bits_per_sec: 100_000_000,
            base_delay: SimDuration::from_micros(100),
            queue_cap: 2,
            loss_prob: 0.0,
        }
    }

    #[test]
    fn tx_time_matches_bandwidth() {
        let tx = Tx::new(cfg());
        // 1250 bytes = 10_000 bits at 100 Mbit/s = 100 us.
        assert_eq!(tx.tx_time(1250), SimDuration::from_micros(100));
    }

    #[test]
    fn serializes_back_to_back_segments() {
        let mut tx = Tx::new(LinkConfig {
            queue_cap: 16,
            ..cfg()
        });
        let s = seg(1210); // 1250 wire bytes -> 100us tx.
        let t0 = SimTime::ZERO;
        let d1 = tx.offer(t0, &s, SimDuration::ZERO);
        let d2 = tx.offer(t0, &s, SimDuration::ZERO);
        assert_eq!(d1, TxOutcome::Deliver(SimTime::from_micros(200)));
        assert_eq!(d2, TxOutcome::Deliver(SimTime::from_micros(300)));
    }

    #[test]
    fn extra_delay_adds_one_way_latency() {
        let mut tx = Tx::new(cfg());
        let s = seg(1210);
        let d = tx.offer(SimTime::ZERO, &s, SimDuration::from_millis(50));
        assert_eq!(
            d,
            TxOutcome::Deliver(SimTime::from_micros(100 + 100 + 50_000))
        );
    }

    #[test]
    fn queue_overflow_drops() {
        let mut tx = Tx::new(cfg()); // cap 2
        let s = seg(1210);
        assert!(matches!(
            tx.offer(SimTime::ZERO, &s, SimDuration::ZERO),
            TxOutcome::Deliver(_)
        ));
        assert!(matches!(
            tx.offer(SimTime::ZERO, &s, SimDuration::ZERO),
            TxOutcome::Deliver(_)
        ));
        assert_eq!(
            tx.offer(SimTime::ZERO, &s, SimDuration::ZERO),
            TxOutcome::Dropped
        );
        assert_eq!(tx.drops(), 1);
        assert_eq!(tx.sent(), 2);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut tx = Tx::new(cfg());
        let s = seg(1210);
        tx.offer(SimTime::ZERO, &s, SimDuration::ZERO);
        tx.offer(SimTime::ZERO, &s, SimDuration::ZERO);
        assert_eq!(tx.depth(SimTime::ZERO), 2);
        // After 200us both finished transmitting.
        assert_eq!(tx.depth(SimTime::from_micros(200)), 0);
        assert!(matches!(
            tx.offer(SimTime::from_micros(200), &s, SimDuration::ZERO),
            TxOutcome::Deliver(_)
        ));
    }

    #[test]
    fn idle_transmitter_starts_immediately() {
        let mut tx = Tx::new(cfg());
        let s = seg(1210);
        let t = SimTime::from_millis(5);
        let d = tx.offer(t, &s, SimDuration::ZERO);
        assert_eq!(d, TxOutcome::Deliver(t + SimDuration::from_micros(200)));
    }
}
