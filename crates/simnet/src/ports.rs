//! Ephemeral port allocation with TIME_WAIT accounting.
//!
//! The paper's benchmark procedure is shaped by this resource: "we can
//! have only about 60000 open sockets at a single point in time. When a
//! socket closes it enters the TIME-WAIT state for sixty seconds, so we
//! must avoid reaching the port number limitation. We therefore run each
//! benchmark for 35,000 connections, and then wait for all sockets to
//! leave the TIMEWAIT state" (§5). This module reproduces that limit.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use simcore::time::SimTime;

use crate::addr::Port;

/// Default start of the ephemeral range (Linux 2.2 used 1024).
pub const EPHEMERAL_LO: Port = 1024;
/// Default end (exclusive) of the ephemeral range.
pub const EPHEMERAL_HI: Port = 61024;

/// Allocates ephemeral ports and tracks TIME_WAIT occupancy.
#[derive(Debug, Clone)]
pub struct PortAllocator {
    lo: Port,
    hi: Port,
    next: Port,
    /// Ports currently bound to a live endpoint.
    in_use: std::collections::HashSet<Port>,
    /// Ports in TIME_WAIT, keyed by expiry time (multiple ports may share
    /// an expiry).
    time_wait: BTreeMap<SimTime, Vec<Port>>,
    /// Reverse index so we know a port is waiting.
    waiting: std::collections::HashSet<Port>,
    /// Ports released outright (closed without TIME_WAIT) for quick reuse.
    free_list: VecDeque<Port>,
}

impl PortAllocator {
    /// Creates an allocator over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn new(lo: Port, hi: Port) -> PortAllocator {
        assert!(lo < hi, "empty port range");
        PortAllocator {
            lo,
            hi,
            next: lo,
            in_use: Default::default(),
            time_wait: BTreeMap::new(),
            waiting: Default::default(),
            free_list: VecDeque::new(),
        }
    }

    /// Creates an allocator over the default ephemeral range.
    pub fn ephemeral() -> PortAllocator {
        PortAllocator::new(EPHEMERAL_LO, EPHEMERAL_HI)
    }

    /// Expires TIME_WAIT entries due at or before `now`.
    pub fn expire(&mut self, now: SimTime) {
        // Called on every `Network::advance_into`, so the common case —
        // nothing due yet — must not touch the tree: `split_off` +
        // replace rebuilds nodes even when every entry stays.
        match self.time_wait.first_key_value() {
            Some((&t, _)) if t <= now => {}
            _ => return,
        }
        // `split_off` keeps entries strictly greater than `now` in the
        // map; everything at or before `now` expires.
        let still_waiting = self
            .time_wait
            .split_off(&SimTime::from_nanos(now.as_nanos() + 1));
        for (_t, ports) in std::mem::replace(&mut self.time_wait, still_waiting) {
            for p in ports {
                self.waiting.remove(&p);
                self.free_list.push_back(p);
            }
        }
    }

    /// Allocates a port, or `None` if the range is exhausted
    /// (everything is in use or in TIME_WAIT).
    pub fn alloc(&mut self, now: SimTime) -> Option<Port> {
        self.expire(now);
        // Fast path: sweep the range once from `next`.
        let span = (self.hi - self.lo) as usize;
        for _ in 0..span {
            let p = self.next;
            self.next = if self.next + 1 >= self.hi {
                self.lo
            } else {
                self.next + 1
            };
            if !self.in_use.contains(&p) && !self.waiting.contains(&p) {
                self.in_use.insert(p);
                return Some(p);
            }
        }
        None
    }

    /// Marks a specific port as bound (for well-known server ports).
    ///
    /// Returns `false` if the port is already taken.
    pub fn bind(&mut self, port: Port) -> bool {
        if self.in_use.contains(&port) {
            return false;
        }
        self.in_use.insert(port);
        true
    }

    /// Releases a port into TIME_WAIT until `until`.
    pub fn release_time_wait(&mut self, port: Port, until: SimTime) {
        if self.in_use.remove(&port) {
            self.time_wait.entry(until).or_default().push(port);
            self.waiting.insert(port);
        }
    }

    /// Releases a port immediately (abortive close — no TIME_WAIT).
    pub fn release(&mut self, port: Port) {
        self.in_use.remove(&port);
    }

    /// Number of ports currently bound.
    pub fn in_use(&self) -> usize {
        self.in_use.len()
    }

    /// Number of ports sitting in TIME_WAIT.
    pub fn in_time_wait(&self) -> usize {
        self.waiting.len()
    }

    /// Earliest TIME_WAIT expiry, if any.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.time_wait.keys().next().copied()
    }

    /// Folds the allocator's semantic state into `h`. The unordered
    /// sets are folded as an order-independent XOR so the digest does
    /// not depend on hash-map iteration order.
    pub fn fingerprint_into(&self, h: &mut simcore::fingerprint::Fnv) {
        h.write_u64(u64::from(self.lo));
        h.write_u64(u64::from(self.hi));
        h.write_u64(u64::from(self.next));
        let xor_of = |set: &std::collections::HashSet<Port>| {
            set.iter().fold(0u64, |acc, &p| {
                let mut e = simcore::fingerprint::Fnv::new();
                e.write_u64(u64::from(p));
                acc ^ e.finish()
            })
        };
        h.write_len(self.in_use.len());
        h.write_u64(xor_of(&self.in_use));
        h.write_len(self.waiting.len());
        h.write_u64(xor_of(&self.waiting));
        h.write_len(self.time_wait.len());
        for (at, ports) in &self.time_wait {
            h.write_u64(at.as_nanos());
            h.write_len(ports.len());
            for &p in ports {
                h.write_u64(u64::from(p));
            }
        }
        h.write_len(self.free_list.len());
        for &p in &self.free_list {
            h.write_u64(u64::from(p));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    #[test]
    fn allocates_distinct_ports() {
        let mut a = PortAllocator::new(10, 14);
        let t = SimTime::ZERO;
        let mut got = vec![
            a.alloc(t).unwrap(),
            a.alloc(t).unwrap(),
            a.alloc(t).unwrap(),
            a.alloc(t).unwrap(),
        ];
        got.sort_unstable();
        assert_eq!(got, vec![10, 11, 12, 13]);
        assert_eq!(a.alloc(t), None);
    }

    #[test]
    fn released_ports_are_reusable() {
        let mut a = PortAllocator::new(10, 12);
        let t = SimTime::ZERO;
        let p = a.alloc(t).unwrap();
        a.alloc(t).unwrap();
        assert_eq!(a.alloc(t), None);
        a.release(p);
        assert_eq!(a.alloc(t), Some(p));
    }

    #[test]
    fn time_wait_blocks_reuse_until_expiry() {
        let mut a = PortAllocator::new(10, 11);
        let t0 = SimTime::ZERO;
        let p = a.alloc(t0).unwrap();
        let expiry = t0 + SimDuration::from_secs(60);
        a.release_time_wait(p, expiry);
        assert_eq!(a.in_time_wait(), 1);
        assert_eq!(a.alloc(SimTime::from_secs(59)), None);
        assert_eq!(a.alloc(expiry), Some(p));
        assert_eq!(a.in_time_wait(), 0);
    }

    #[test]
    fn bind_well_known_port() {
        let mut a = PortAllocator::new(10, 20);
        assert!(a.bind(80));
        assert!(!a.bind(80));
        a.release(80);
        assert!(a.bind(80));
    }

    #[test]
    fn next_expiry_reports_earliest() {
        let mut a = PortAllocator::new(10, 20);
        let t = SimTime::ZERO;
        let p1 = a.alloc(t).unwrap();
        let p2 = a.alloc(t).unwrap();
        a.release_time_wait(p1, SimTime::from_secs(60));
        a.release_time_wait(p2, SimTime::from_secs(30));
        assert_eq!(a.next_expiry(), Some(SimTime::from_secs(30)));
    }

    #[test]
    fn exhaustion_reproduces_paper_limit() {
        // Faster than 1000 conns/s with 60s TIME_WAIT exhausts a
        // 60000-port range in under a minute — the reason the paper ran
        // 35,000 connections per benchmark and then drained.
        let mut a = PortAllocator::ephemeral();
        let mut t = SimTime::ZERO;
        let mut failed_at = None;
        for i in 0..70_000u64 {
            t = SimTime::from_micros(i * 900); // ~1111 conns per second.
            match a.alloc(t) {
                Some(p) => a.release_time_wait(p, t + SimDuration::from_secs(60)),
                None => {
                    failed_at = Some(i);
                    break;
                }
            }
        }
        assert_eq!(
            failed_at,
            Some(60_000),
            "exhausts exactly at the range size"
        );
        // After the drain the allocator recovers fully.
        a.expire(t + SimDuration::from_secs(61));
        assert_eq!(a.in_time_wait(), 0);
        assert!(a.alloc(t + SimDuration::from_secs(61)).is_some());
    }
}
