//! A contiguous byte FIFO for endpoint stream buffers.
//!
//! `VecDeque<u8>` served here originally, but its ring layout makes the
//! three hot operations — bulk append on `send`, bulk copy on data
//! delivery, bulk trim on ack — byte-wise or two-slice affairs. The
//! profile showed those loops dominating the run (the stream plumbing of
//! a 6 KB response costs more than every modelled syscall around it).
//! `ByteQueue` keeps the live bytes contiguous in a `Vec` behind a head
//! offset: append is one `memcpy`, trim is a pointer bump, and readers
//! get a single slice. Reclaiming the dead prefix is amortised O(1):
//! the buffer compacts only when the head crosses half the backing
//! storage, so every live byte moves at most once per compaction cycle.

/// A FIFO of bytes with O(1) amortised append, bulk pop, and single-slice
/// access to the queued bytes.
#[derive(Debug, Clone, Default)]
pub struct ByteQueue {
    buf: Vec<u8>,
    head: usize,
}

impl ByteQueue {
    /// An empty queue (no allocation until the first append).
    pub fn new() -> ByteQueue {
        ByteQueue::default()
    }

    /// Number of queued (unconsumed) bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Whether no bytes are queued.
    pub fn is_empty(&self) -> bool {
        self.head == self.buf.len()
    }

    /// The queued bytes, oldest first, as one contiguous slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.head..]
    }

    /// Appends `data` to the back of the queue.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Drops the first `n` queued bytes (`n` must not exceed `len`).
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.len(), "consume past end of queue");
        self.head += n;
        if self.head == self.buf.len() {
            // Fully drained: reset without moving any bytes.
            self.buf.clear();
            self.head = 0;
        } else if self.head > self.buf.len() / 2 {
            // The dead prefix outweighs the live bytes: compact so the
            // backing store stops growing. Each live byte is copied at
            // most once per doubling of consumed volume, keeping the
            // whole scheme amortised O(1) per byte.
            self.buf.copy_within(self.head.., 0);
            let live = self.buf.len() - self.head;
            self.buf.truncate(live);
            self.head = 0;
        }
    }

    /// Removes all queued bytes.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_across_compactions() {
        let mut q = ByteQueue::new();
        let mut expect: Vec<u8> = Vec::new();
        let mut next = 0u8;
        for round in 0..50 {
            let push = (round * 7) % 23 + 1;
            for _ in 0..push {
                q.extend_from_slice(&[next]);
                expect.push(next);
                next = next.wrapping_add(1);
            }
            let pop = ((round * 5) % 19 + 1).min(expect.len());
            assert_eq!(&q.as_slice()[..pop], &expect[..pop]);
            q.consume(pop);
            expect.drain(..pop);
            assert_eq!(q.as_slice(), &expect[..]);
            assert_eq!(q.len(), expect.len());
        }
    }

    #[test]
    fn full_drain_resets_storage() {
        let mut q = ByteQueue::new();
        q.extend_from_slice(&[1, 2, 3]);
        q.consume(3);
        assert!(q.is_empty());
        assert_eq!(q.as_slice(), &[] as &[u8]);
        q.extend_from_slice(&[4]);
        assert_eq!(q.as_slice(), &[4]);
    }

    #[test]
    fn backing_storage_stays_bounded() {
        // Steady-state: append 8, consume 8, forever. The backing Vec
        // must not grow linearly with total throughput.
        let mut q = ByteQueue::new();
        for _ in 0..10_000 {
            q.extend_from_slice(&[0u8; 8]);
            q.consume(8);
        }
        assert!(q.buf.capacity() < 1024, "capacity {}", q.buf.capacity());
    }
}
