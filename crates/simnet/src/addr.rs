//! Host and socket addressing.

use core::fmt;

/// Identifies a host attached to the simulated switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub usize);

/// A TCP port number.
pub type Port = u16;

/// A (host, port) pair: the simulated equivalent of an `ip:port` socket
/// address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SockAddr {
    /// The host.
    pub host: HostId,
    /// The port on that host.
    pub port: Port,
}

impl SockAddr {
    /// Creates an address.
    pub fn new(host: HostId, port: Port) -> SockAddr {
        SockAddr { host, port }
    }
}

impl fmt::Display for SockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}:{}", self.host.0, self.port)
    }
}

/// Identifies a connection inside the [`crate::net::Network`].
///
/// A `u32` handle: four billion connections outlast any simulated run
/// by orders of magnitude, and at 10^6 live connections the narrower
/// handle halves every id-bearing structure (timers, segments, client
/// tables). Exhaustion is a checked failure in the network's id bump,
/// not silent wraparound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u32);

/// Which half of a connection an endpoint refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    /// The initiating (connecting, client) half.
    Client,
    /// The accepting (listening, server) half.
    Server,
}

impl Side {
    /// Returns the opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::Client => Side::Server,
            Side::Server => Side::Client,
        }
    }

    /// Index (0 for client, 1 for server) used for endpoint arrays.
    pub fn index(self) -> usize {
        match self {
            Side::Client => 0,
            Side::Server => 1,
        }
    }
}

/// One half of a connection: the unit the socket layer reads/writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId {
    /// The connection.
    pub conn: ConnId,
    /// Which half.
    pub side: Side,
}

impl EndpointId {
    /// Creates an endpoint id.
    pub fn new(conn: ConnId, side: Side) -> EndpointId {
        EndpointId { conn, side }
    }

    /// Returns the peer endpoint of the same connection.
    pub fn peer(self) -> EndpointId {
        EndpointId {
            conn: self.conn,
            side: self.side.other(),
        }
    }
}

/// Identifies a listening socket (`u32` for the same reasons as
/// [`ConnId`]; listeners are never removed, so ids are simply dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ListenerId(pub u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_other_roundtrips() {
        assert_eq!(Side::Client.other(), Side::Server);
        assert_eq!(Side::Server.other(), Side::Client);
        assert_eq!(Side::Client.other().other(), Side::Client);
    }

    #[test]
    fn endpoint_peer() {
        let ep = EndpointId::new(ConnId(3), Side::Client);
        assert_eq!(ep.peer().conn, ConnId(3));
        assert_eq!(ep.peer().side, Side::Server);
        assert_eq!(ep.peer().peer(), ep);
    }

    #[test]
    fn sockaddr_display() {
        let a = SockAddr::new(HostId(1), 80);
        assert_eq!(a.to_string(), "host1:80");
    }
}
