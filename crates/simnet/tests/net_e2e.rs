//! End-to-end tests of the network: full connection lifecycles driven the
//! way the orchestrator drives it (`next_deadline` + `advance`).

use simcore::time::{SimDuration, SimTime};
use simnet::{
    ConnectError, EndpointId, HostId, LinkConfig, NetNotify, Network, Side, SockAddr, TcpConfig,
};

const CLIENT: HostId = HostId(0);
const SERVER: HostId = HostId(1);

fn network() -> Network {
    Network::new(TcpConfig::default(), LinkConfig::default(), 2)
}

/// Runs the network until it has no work left or `horizon` passes,
/// collecting every notification.
fn run(net: &mut Network, horizon: SimTime) -> (Vec<NetNotify>, SimTime) {
    let mut all = Vec::new();
    let mut now = SimTime::ZERO;
    loop {
        match net.next_deadline() {
            Some(t) if t <= horizon => {
                now = t;
                all.extend(net.advance(now));
            }
            _ => break,
        }
    }
    all.extend(net.advance(horizon));
    (all, now)
}

#[test]
fn handshake_establishes_and_accepts() {
    let mut net = network();
    let listener = net.listen(SERVER, 80, 128).unwrap();
    let conn = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
    let (events, _) = run(&mut net, SimTime::from_secs(1));

    let client_ep = EndpointId::new(conn, Side::Client);
    assert!(events.contains(&NetNotify::ConnectDone { ep: client_ep }));
    assert!(events.contains(&NetNotify::AcceptReady { listener }));
    let server_ep = net.accept(listener).expect("accept queue non-empty");
    assert_eq!(server_ep.conn, conn);
    assert!(net.is_established(conn));
}

#[test]
fn data_flows_both_directions() {
    let mut net = network();
    let listener = net.listen(SERVER, 80, 128).unwrap();
    let conn = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
    let (_, mut now) = run(&mut net, SimTime::from_millis(50));
    let server_ep = net.accept(listener).unwrap();
    let client_ep = EndpointId::new(conn, Side::Client);

    // Client sends a request.
    let req = b"GET / HTTP/1.0\r\n\r\n";
    assert_eq!(net.send(now, client_ep, req).unwrap(), req.len());
    let (events, t) = run(&mut net, now + SimDuration::from_millis(50));
    now = t;
    assert!(events.contains(&NetNotify::Readable { ep: server_ep }));
    let got = net.recv(now, server_ep, 4096).unwrap();
    assert_eq!(got, req);

    // Server responds with 6 KB (the paper's document size).
    let resp = vec![0xAB; 6 * 1024];
    assert_eq!(net.send(now, server_ep, &resp).unwrap(), resp.len());
    let (_, t2) = run(&mut net, now + SimDuration::from_millis(100));
    let got = net.recv(t2, client_ep, 10_000).unwrap();
    assert_eq!(got.len(), resp.len());
    assert!(got.iter().all(|&b| b == 0xAB));
}

#[test]
fn clean_close_enters_time_wait_on_client_port() {
    let mut net = network();
    let listener = net.listen(SERVER, 80, 128).unwrap();
    let conn = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
    let (_, now) = run(&mut net, SimTime::from_millis(50));
    let server_ep = net.accept(listener).unwrap();
    let client_ep = EndpointId::new(conn, Side::Client);

    // HTTP/1.0 style: server closes first, client closes after EOF.
    net.close(now, server_ep).unwrap();
    let (events, now) = run(&mut net, now + SimDuration::from_millis(50));
    assert!(events.contains(&NetNotify::PeerClosed { ep: client_ep }));
    net.close(now, client_ep).unwrap();
    let (events, _) = run(&mut net, now + SimDuration::from_millis(50));
    assert!(events.contains(&NetNotify::ConnClosed { ep: client_ep }));
    assert!(!net.exists(conn));
    assert_eq!(net.time_wait_count(CLIENT), 1);
    assert_eq!(net.stats().conns_closed, 1);

    // The port frees after TIME_WAIT.
    let _ = net.advance(SimTime::from_secs(61));
    assert_eq!(net.time_wait_count(CLIENT), 0);
}

#[test]
fn backlog_overflow_drops_syns() {
    let mut net = network();
    let listener = net.listen(SERVER, 80, 2).unwrap();
    for _ in 0..5 {
        net.connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
    }
    let (events, _) = run(&mut net, SimTime::from_millis(10));
    let drops = events
        .iter()
        .filter(|e| matches!(e, NetNotify::SynDropped { .. }))
        .count();
    assert_eq!(drops, 3);
    assert_eq!(net.refused_count(listener), 3);
    assert_eq!(net.accept_queue_len(listener), 2);
}

#[test]
fn rst_on_backlog_full_refuses_connect() {
    let cfg = TcpConfig {
        rst_on_backlog_full: true,
        ..TcpConfig::default()
    };
    let mut net = Network::new(cfg, LinkConfig::default(), 2);
    net.listen(SERVER, 80, 1).unwrap();
    net.connect(
        SimTime::ZERO,
        CLIENT,
        SockAddr::new(SERVER, 80),
        SimDuration::ZERO,
    )
    .unwrap();
    let refused_conn = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
    let (events, _) = run(&mut net, SimTime::from_millis(10));
    assert!(events.iter().any(|e| matches!(
        e,
        NetNotify::ConnectFailed { conn, reason: ConnectError::Refused, .. } if *conn == refused_conn
    )));
}

#[test]
fn connect_to_closed_port_is_refused() {
    let mut net = network();
    let conn = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 81),
            SimDuration::ZERO,
        )
        .unwrap();
    let (events, _) = run(&mut net, SimTime::from_millis(10));
    assert!(events.iter().any(|e| matches!(
        e,
        NetNotify::ConnectFailed { conn: c, reason: ConnectError::Refused, .. } if *c == conn
    )));
    assert!(!net.exists(conn));
}

#[test]
fn extra_delay_slows_the_path() {
    let mut net = network();
    net.listen(SERVER, 80, 128).unwrap();
    // LAN client.
    net.connect(
        SimTime::ZERO,
        CLIENT,
        SockAddr::new(SERVER, 80),
        SimDuration::ZERO,
    )
    .unwrap();
    let (events, _) = run(&mut net, SimTime::from_millis(5));
    let lan_done = events
        .iter()
        .any(|e| matches!(e, NetNotify::ConnectDone { .. }));
    assert!(lan_done, "LAN handshake finishes within 5 ms");

    // Modem-class client: 100 ms each way means the handshake needs
    // at least 200 ms.
    let mut net2 = network();
    net2.listen(SERVER, 80, 128).unwrap();
    net2.connect(
        SimTime::ZERO,
        CLIENT,
        SockAddr::new(SERVER, 80),
        SimDuration::from_millis(100),
    )
    .unwrap();
    let (events, _) = run(&mut net2, SimTime::from_millis(150));
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, NetNotify::ConnectDone { .. })),
        "high-latency handshake cannot finish in 150 ms"
    );
    let (events, _) = run(&mut net2, SimTime::from_millis(300));
    assert!(events
        .iter()
        .any(|e| matches!(e, NetNotify::ConnectDone { .. })));
}

#[test]
fn abort_frees_port_without_time_wait() {
    let mut net = network();
    net.listen(SERVER, 80, 128).unwrap();
    let conn = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
    let (_, now) = run(&mut net, SimTime::from_millis(10));
    net.abort(now, EndpointId::new(conn, Side::Client)).unwrap();
    assert!(!net.exists(conn));
    assert_eq!(net.time_wait_count(CLIENT), 0);
    assert_eq!(net.stats().conns_reset, 1);
}

#[test]
fn abort_notifies_peer_with_reset() {
    let mut net = network();
    let listener = net.listen(SERVER, 80, 128).unwrap();
    let conn = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
    let (_, now) = run(&mut net, SimTime::from_millis(10));
    let server_ep = net.accept(listener).unwrap();
    net.abort(now, EndpointId::new(conn, Side::Client)).unwrap();
    let (events, _) = run(&mut net, now + SimDuration::from_millis(10));
    assert!(events.contains(&NetNotify::ConnReset { ep: server_ep }));
}

#[test]
fn send_buffer_backpressure_and_writable() {
    let cfg = TcpConfig {
        send_buf: 4096,
        ..TcpConfig::default()
    };
    let mut net = Network::new(cfg, LinkConfig::default(), 2);
    let listener = net.listen(SERVER, 80, 128).unwrap();
    let conn = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
    let (_, now) = run(&mut net, SimTime::from_millis(10));
    let _server_ep = net.accept(listener).unwrap();
    let client_ep = EndpointId::new(conn, Side::Client);

    let big = vec![0u8; 10_000];
    let n = net.send(now, client_ep, &big).unwrap();
    assert_eq!(n, 4096, "send buffer caps the write");
    let (events, _) = run(&mut net, now + SimDuration::from_millis(100));
    assert!(
        events.contains(&NetNotify::Writable { ep: client_ep }),
        "writable fires once acks free buffer space"
    );
}

#[test]
fn segment_arrivals_are_accounted_per_host() {
    let mut net = network();
    net.listen(SERVER, 80, 128).unwrap();
    net.connect(
        SimTime::ZERO,
        CLIENT,
        SockAddr::new(SERVER, 80),
        SimDuration::ZERO,
    )
    .unwrap();
    let (events, _) = run(&mut net, SimTime::from_millis(10));
    let server_arrivals = events
        .iter()
        .filter(|e| matches!(e, NetNotify::SegmentArrived { host, .. } if *host == SERVER))
        .count();
    let client_arrivals = events
        .iter()
        .filter(|e| matches!(e, NetNotify::SegmentArrived { host, .. } if *host == CLIENT))
        .count();
    // Handshake: SYN + ACK reach the server; SYN-ACK reaches the client.
    assert_eq!(server_arrivals, 2);
    assert_eq!(client_arrivals, 1);
    let (segs, bytes) = net.host_rx(SERVER);
    assert_eq!(segs, 2);
    assert_eq!(bytes, 80);
}

#[test]
fn large_transfer_respects_bandwidth_ceiling() {
    // 1 MB at 100 Mbit/s takes at least ~84 ms on the wire.
    let mut net = network();
    let listener = net.listen(SERVER, 80, 128).unwrap();
    let conn = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
    let (_, now) = run(&mut net, SimTime::from_millis(10));
    let server_ep = net.accept(listener).unwrap();
    let client_ep = EndpointId::new(conn, Side::Client);

    let total = 1_000_000usize;
    let mut sent = 0usize;
    let mut received = 0usize;
    let mut t = now;
    let chunk = vec![0u8; 8192];
    let deadline = now + SimDuration::from_secs(10);
    let mut finished_at = None;
    while t < deadline {
        if sent < total {
            sent += net
                .send(t, server_ep, &chunk[..chunk.len().min(total - sent)])
                .unwrap();
        }
        match net.next_deadline() {
            Some(next) => {
                t = next;
                let _ = net.advance(t);
                received += net.recv(t, client_ep, usize::MAX).unwrap().len();
                if received >= total && finished_at.is_none() {
                    finished_at = Some(t);
                    break;
                }
            }
            None => break,
        }
    }
    let finished_at = finished_at.expect("transfer completes");
    let elapsed = finished_at.saturating_duration_since(now);
    assert!(
        elapsed >= SimDuration::from_millis(80),
        "1 MB cannot beat the 100 Mbit/s wire: took {elapsed}"
    );
    assert!(
        elapsed <= SimDuration::from_millis(500),
        "transfer should still be wire-dominated: took {elapsed}"
    );
}

#[test]
fn lossy_overload_recovers_via_retransmission() {
    // A tiny egress queue forces drops; go-back-N must still deliver
    // everything.
    let link = LinkConfig {
        queue_cap: 2,
        ..LinkConfig::default()
    };
    let mut net = Network::new(TcpConfig::default(), link, 2);
    let listener = net.listen(SERVER, 80, 128).unwrap();
    let conn = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
    let (_, now) = run(&mut net, SimTime::from_millis(10));
    let server_ep = net.accept(listener).unwrap();
    let client_ep = EndpointId::new(conn, Side::Client);

    let payload = vec![7u8; 40_000];
    let mut sent = 0;
    let mut received = Vec::new();
    let mut t = now;
    let deadline = now + SimDuration::from_secs(30);
    while t < deadline && received.len() < payload.len() {
        if sent < payload.len() {
            sent += net.send(t, server_ep, &payload[sent..]).unwrap();
        }
        match net.next_deadline() {
            Some(next) if next <= deadline => {
                t = next;
                let _ = net.advance(t);
                received.extend(net.recv(t, client_ep, usize::MAX).unwrap());
            }
            _ => break,
        }
    }
    assert_eq!(received.len(), payload.len(), "all bytes delivered");
    assert!(received.iter().all(|&b| b == 7));
    assert!(net.stats().retransmits > 0, "loss actually happened");
    assert!(net.host_tx_drops(SERVER) > 0);
}

#[test]
fn double_close_is_bad_state() {
    let mut net = network();
    let listener = net.listen(SERVER, 80, 128).unwrap();
    let conn = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
    let (_, now) = run(&mut net, SimTime::from_millis(10));
    let _ = net.accept(listener).unwrap();
    let client_ep = EndpointId::new(conn, Side::Client);
    net.close(now, client_ep).unwrap();
    assert_eq!(net.close(now, client_ep), Err(simnet::NetError::BadState));
}

#[test]
fn listen_twice_on_same_port_fails() {
    let mut net = network();
    net.listen(SERVER, 80, 8).unwrap();
    assert!(net.listen(SERVER, 80, 8).is_err());
}

#[test]
fn send_after_close_fails() {
    let mut net = network();
    let listener = net.listen(SERVER, 80, 128).unwrap();
    let conn = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
    let (_, now) = run(&mut net, SimTime::from_millis(10));
    let _ = net.accept(listener).unwrap();
    let client_ep = EndpointId::new(conn, Side::Client);
    net.close(now, client_ep).unwrap();
    assert!(net.send(now, client_ep, b"late").is_err());
}

#[test]
fn conn_ids_near_u32_max_work_end_to_end() {
    // The id → slot map is paged and sparse; handles at the top of the
    // u32 range must behave exactly like handles at the bottom, without
    // densifying 2^32 slots.
    let mut net = network();
    net.set_next_conn_id(u32::MAX - 2);
    let listener = net.listen(SERVER, 80, 128).unwrap();
    let mut eps = Vec::new();
    for _ in 0..2 {
        let conn = net
            .connect(
                SimTime::ZERO,
                CLIENT,
                SockAddr::new(SERVER, 80),
                SimDuration::ZERO,
            )
            .unwrap();
        assert!(conn.0 >= u32::MAX - 2, "ids must start at the seeded top");
        eps.push(EndpointId::new(conn, Side::Client));
    }
    let (_, mut now) = run(&mut net, SimTime::from_millis(50));
    let server_eps = [net.accept(listener).unwrap(), net.accept(listener).unwrap()];

    // Data still flows on both high-id connections.
    for (client_ep, server_ep) in eps.iter().zip(server_eps) {
        let req = b"GET / HTTP/1.0\r\n\r\n";
        assert_eq!(net.send(now, *client_ep, req).unwrap(), req.len());
        let (events, t) = run(&mut net, now + SimDuration::from_millis(50));
        now = t;
        assert!(events.contains(&NetNotify::Readable { ep: server_ep }));
        assert_eq!(net.recv(now, server_ep, 4096).unwrap(), req);
    }

    // Sparse top-of-range ids must not cost top-of-range memory. The
    // paged map pays one pointer per page span (~a few MB of directory
    // at 2^32) plus one 32 KB page per touched span — not the tens of
    // gigabytes a dense `Vec<Option<Conn>>` over 2^32 ids would cost.
    assert!(
        net.conn_mem_bytes() < 64 << 20,
        "sparse high ids must stay paged: {} bytes",
        net.conn_mem_bytes()
    );
}

#[test]
#[should_panic(expected = "invariant: connection id space")]
fn conn_id_exhaustion_fails_loudly_not_silently() {
    // Wrapping onto a live handle would corrupt the id → slot map; the
    // allocator must abort instead of wrapping.
    let mut net = network();
    net.listen(SERVER, 80, 128).unwrap();
    net.set_next_conn_id(u32::MAX);
    let _ = net.connect(
        SimTime::ZERO,
        CLIENT,
        SockAddr::new(SERVER, 80),
        SimDuration::ZERO,
    );
}
