//! Property test: the transport is reliable — whatever the application
//! writes arrives intact and in order, regardless of link queue pressure
//! and chunking, as long as the simulation is given time to converge.

use proptest::prelude::*;
use simcore::time::{SimDuration, SimTime};
use simnet::{EndpointId, HostId, LinkConfig, Network, Side, SockAddr, TcpConfig};

fn run_transfer(
    chunks: &[Vec<u8>],
    queue_cap: usize,
    extra_delay_ms: u64,
    loss_prob: f64,
) -> Vec<u8> {
    let link = LinkConfig {
        queue_cap,
        loss_prob,
        ..LinkConfig::default()
    };
    let mut net = Network::new(TcpConfig::default(), link, 2);
    let listener = net.listen(HostId(1), 80, 16).unwrap();
    let conn = net
        .connect(
            SimTime::ZERO,
            HostId(0),
            SockAddr::new(HostId(1), 80),
            SimDuration::from_millis(extra_delay_ms),
        )
        .unwrap();
    let client_ep = EndpointId::new(conn, Side::Client);

    let mut received = Vec::new();
    let mut t = SimTime::ZERO;
    let deadline = SimTime::from_secs(600);
    let mut pending: Vec<u8> = chunks.concat();
    let mut server_ep = None;
    let mut sent = 0usize;
    loop {
        if server_ep.is_none() {
            server_ep = net.accept(listener);
        }
        if sent < pending.len() {
            sent += net.send(t, client_ep, &pending[sent..]).unwrap_or(0);
        }
        if let Some(ep) = server_ep {
            received.extend(net.recv(t, ep, usize::MAX).unwrap_or_default());
        }
        if received.len() >= pending.len() {
            break;
        }
        match net.next_deadline() {
            Some(next) if next <= deadline => {
                t = next.max(t);
                let _ = net.advance(t);
            }
            _ => break,
        }
    }
    pending.truncate(received.len().max(pending.len()));
    received
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stream_is_reliable_and_ordered(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..3000), 1..6),
        queue_cap in 2usize..64,
        extra_ms in 0u64..50,
    ) {
        let expected: Vec<u8> = chunks.concat();
        let got = run_transfer(&chunks, queue_cap, extra_ms, 0.0);
        prop_assert_eq!(got, expected);
    }

    /// Go-back-N still delivers everything intact under injected random
    /// segment loss of up to 20 %.
    #[test]
    fn stream_survives_random_loss(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..2000), 1..4),
        loss_pct in 1u32..20,
    ) {
        let expected: Vec<u8> = chunks.concat();
        let got = run_transfer(&chunks, 64, 0, loss_pct as f64 / 100.0);
        prop_assert_eq!(got, expected);
    }
}
