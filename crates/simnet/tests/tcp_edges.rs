//! TCP edge cases: simultaneous close, close-with-pending-data, aborts
//! racing data, exact backlog boundaries, and half-close semantics.

use simcore::time::{SimDuration, SimTime};
use simnet::{EndpointId, HostId, LinkConfig, NetNotify, Network, Side, SockAddr, TcpConfig};

const CLIENT: HostId = HostId(0);
const SERVER: HostId = HostId(1);

fn run(net: &mut Network, horizon: SimTime) -> Vec<NetNotify> {
    let mut all = Vec::new();
    while let Some(t) = net.next_deadline() {
        if t > horizon {
            break;
        }
        all.extend(net.advance(t));
    }
    all.extend(net.advance(horizon));
    all
}

fn established_pair(net: &mut Network) -> (EndpointId, EndpointId) {
    let listener = net.listen(SERVER, 80, 16).unwrap();
    let conn = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
    run(net, SimTime::from_millis(10));
    let server_ep = net.accept(listener).expect("accepted");
    (EndpointId::new(conn, Side::Client), server_ep)
}

#[test]
fn simultaneous_close_converges() {
    let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
    let (client, server) = established_pair(&mut net);
    let t = SimTime::from_millis(10);
    net.close(t, client).unwrap();
    net.close(t, server).unwrap();
    let events = run(&mut net, SimTime::from_millis(100));
    let closed = events
        .iter()
        .filter(|e| matches!(e, NetNotify::ConnClosed { .. }))
        .count();
    assert_eq!(closed, 2, "both halves observe the close");
    assert!(!net.exists(client.conn));
    assert_eq!(net.stats().conns_closed, 1);
    // Exactly one TIME_WAIT entry (the client tuple).
    assert_eq!(net.time_wait_count(CLIENT), 1);
    assert_eq!(net.time_wait_count(SERVER), 0);
}

#[test]
fn close_flushes_buffered_data_before_fin() {
    let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
    let (client, server) = established_pair(&mut net);
    let t = SimTime::from_millis(10);
    let payload = vec![9u8; 12_000];
    assert_eq!(net.send(t, server, &payload).unwrap(), payload.len());
    net.close(t, server).unwrap(); // FIN must trail the data.
    let events = run(&mut net, SimTime::from_millis(200));
    let got = net.recv(SimTime::from_millis(200), client, usize::MAX);
    // The connection fully closed, so the endpoint may already be gone —
    // but the data must have been readable before: count Readable
    // events and verify the client's inbox was filled at some point.
    let readable = events
        .iter()
        .filter(|e| matches!(e, NetNotify::Readable { ep } if *ep == client))
        .count();
    assert!(readable > 0, "data arrived before the close completed");
    // PeerClosed must come after data arrival in the event order.
    let first_peer_closed = events
        .iter()
        .position(|e| matches!(e, NetNotify::PeerClosed { ep } if *ep == client))
        .expect("client saw FIN");
    let first_readable = events
        .iter()
        .position(|e| matches!(e, NetNotify::Readable { ep } if *ep == client))
        .expect("client saw data");
    assert!(first_readable < first_peer_closed, "data before FIN");
    let _ = got;
}

#[test]
fn unread_data_is_available_until_consumed() {
    let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
    let (client, server) = established_pair(&mut net);
    let t = SimTime::from_millis(10);
    net.send(t, server, b"take your time").unwrap();
    run(&mut net, SimTime::from_millis(50));
    assert_eq!(net.readable_bytes(client), 14);
    // Partial reads drain incrementally.
    let part = net.recv(SimTime::from_millis(50), client, 4).unwrap();
    assert_eq!(part, b"take");
    assert_eq!(net.readable_bytes(client), 10);
    let rest = net
        .recv(SimTime::from_millis(50), client, usize::MAX)
        .unwrap();
    assert_eq!(rest, b" your time");
}

#[test]
fn backlog_of_one_admits_exactly_one_then_recovers() {
    let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
    let listener = net.listen(SERVER, 80, 1).unwrap();
    let _c1 = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
    let _c2 = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
    run(&mut net, SimTime::from_millis(10));
    assert_eq!(net.accept_queue_len(listener), 1);
    assert_eq!(net.refused_count(listener), 1);
    // Accepting frees the slot; the dropped SYN retries at ~3 s and then
    // succeeds.
    let _ep = net.accept(listener).unwrap();
    run(&mut net, SimTime::from_secs(4));
    assert_eq!(net.accept_queue_len(listener), 1, "retried SYN got in");
}

#[test]
fn send_after_peer_abort_errors_eventually() {
    let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
    let (client, server) = established_pair(&mut net);
    let t = SimTime::from_millis(10);
    net.abort(t, client).unwrap();
    run(&mut net, SimTime::from_millis(20));
    // The server side observed the RST; its endpoint is gone.
    assert!(net.send(SimTime::from_millis(20), server, b"x").is_err());
}

#[test]
fn half_close_allows_server_to_keep_sending() {
    // Client closes its sending direction; the server can still respond
    // (classic HTTP-over-half-close).
    let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
    let (client, server) = established_pair(&mut net);
    let t = SimTime::from_millis(10);
    net.send(t, client, b"request").unwrap();
    net.close(t, client).unwrap();
    run(&mut net, SimTime::from_millis(50));
    assert!(net.peer_closed(server), "server sees the half-close");
    let req = net
        .recv(SimTime::from_millis(50), server, usize::MAX)
        .unwrap();
    assert_eq!(req, b"request");
    // Server responds on its still-open direction.
    assert_eq!(
        net.send(SimTime::from_millis(50), server, b"response")
            .unwrap(),
        8
    );
    run(&mut net, SimTime::from_millis(100));
    let resp = net
        .recv(SimTime::from_millis(100), client, usize::MAX)
        .unwrap();
    assert_eq!(resp, b"response");
    net.close(SimTime::from_millis(100), server).unwrap();
    run(&mut net, SimTime::from_millis(200));
    assert!(!net.exists(client.conn), "fully closed after both FINs");
}

#[test]
fn listener_port_survives_connection_churn() {
    let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
    let listener = net.listen(SERVER, 80, 64).unwrap();
    for round in 0..5u64 {
        let t = SimTime::from_millis(round * 200);
        let conn = net
            .connect(t, CLIENT, SockAddr::new(SERVER, 80), SimDuration::ZERO)
            .unwrap();
        run(&mut net, t + SimDuration::from_millis(20));
        let server_ep = net.accept(listener).unwrap();
        let client_ep = EndpointId::new(conn, Side::Client);
        net.close(t + SimDuration::from_millis(20), server_ep)
            .unwrap();
        run(&mut net, t + SimDuration::from_millis(40));
        let _ = net.close(t + SimDuration::from_millis(40), client_ep);
        run(&mut net, t + SimDuration::from_millis(100));
    }
    assert_eq!(net.stats().conns_closed, 5);
    // The well-known port is still bound and accepting.
    let t = SimTime::from_secs(2);
    net.connect(t, CLIENT, SockAddr::new(SERVER, 80), SimDuration::ZERO)
        .unwrap();
    run(&mut net, t + SimDuration::from_millis(20));
    assert_eq!(net.accept_queue_len(listener), 1);
}

#[test]
fn window_limits_inflight_bytes() {
    let cfg = TcpConfig {
        window_segments: 2,
        ..TcpConfig::default()
    };
    // With a 2-segment window and a long-delay path, throughput is
    // window-bound: 2 * 1460 bytes per RTT.
    let mut net = Network::new(cfg, LinkConfig::default(), 2);
    let listener = net.listen(SERVER, 80, 16).unwrap();
    let conn = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::from_millis(50), // ~100 ms RTT.
        )
        .unwrap();
    run(&mut net, SimTime::from_millis(400));
    let server_ep = net.accept(listener).unwrap();
    let client_ep = EndpointId::new(conn, Side::Client);
    let t = SimTime::from_millis(400);
    net.send(t, server_ep, &vec![0u8; 14_600]).unwrap(); // 10 segments.
                                                         // One RTT later only ~2 segments have arrived.
    run(&mut net, t + SimDuration::from_millis(140));
    let got_after_1rtt = net
        .recv(t + SimDuration::from_millis(140), client_ep, usize::MAX)
        .unwrap()
        .len();
    assert!(
        got_after_1rtt <= 2 * 1460,
        "window must cap the first flight: got {got_after_1rtt}"
    );
    // Eventually everything arrives.
    let mut total = got_after_1rtt;
    for step in 0..40u64 {
        run(&mut net, t + SimDuration::from_millis(200 + step * 100));
        total += net
            .recv(
                t + SimDuration::from_millis(200 + step * 100),
                client_ep,
                usize::MAX,
            )
            .unwrap()
            .len();
        if total >= 14_600 {
            break;
        }
    }
    assert_eq!(total, 14_600);
}

#[test]
fn total_loss_turns_connect_into_timeout() {
    // With 100 % injected loss no SYN ever arrives: the connect must
    // fail with Timeout after the retry budget, and the client port must
    // be released.
    let link = LinkConfig {
        loss_prob: 1.0,
        ..LinkConfig::default()
    };
    let mut net = Network::new(TcpConfig::default(), link, 2);
    let _l = net.listen(SERVER, 80, 8).unwrap();
    let conn = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
    let events = run(&mut net, SimTime::from_secs(200));
    assert!(
        events.iter().any(|e| matches!(
            e,
            NetNotify::ConnectFailed { conn: c, reason: simnet::ConnectError::Timeout, .. } if *c == conn
        )),
        "SYN retries must exhaust: {events:?}"
    );
    assert!(!net.exists(conn));
    assert!(net.stats().injected_losses > 1, "retries were attempted");
}

#[test]
fn moderate_loss_still_completes_requests() {
    let link = LinkConfig {
        loss_prob: 0.1,
        ..LinkConfig::default()
    };
    let mut net = Network::new(TcpConfig::default(), link, 2);
    let listener = net.listen(SERVER, 80, 8).unwrap();
    let conn = net
        .connect(
            SimTime::ZERO,
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
    let client = EndpointId::new(conn, Side::Client);
    let mut server_ep = None;
    let mut got = Vec::new();
    let mut sent = false;
    let mut t = SimTime::ZERO;
    while t < SimTime::from_secs(120) && got.len() < 6144 {
        if server_ep.is_none() {
            server_ep = net.accept(listener);
            if let Some(ep) = server_ep {
                let _ = net.send(t, ep, &vec![3u8; 6144]);
                sent = true;
            }
        }
        match net.next_deadline() {
            Some(next) => {
                t = next;
                let _ = net.advance(t);
                got.extend(net.recv(t, client, usize::MAX).unwrap_or_default());
            }
            None => break,
        }
    }
    assert!(sent, "handshake must survive 10% loss");
    assert_eq!(got.len(), 6144, "reliable despite loss");
}
