//! Acceptance test for `simcheck explore`: every seeded /dev/poll fault
//! must be caught by exhaustive exploration with a **minimal**
//! counterexample (iterative deepening guarantees no shorter schedule
//! fails), the counterexample must replay through the token encoding,
//! and explore must beat the random differential oracle — two of the
//! three faults are structurally invisible to the oracle (its
//! normalized ready sets mask OR'd interest, and watcher-registry leaks
//! never surface in ready sets at all), and the third needs a longer
//! event chain than the shortest schedule explore finds.
//!
//! The release-mode CI job re-runs the oracle comparison at 200 seeds
//! (`simcheck mutants --seeds 200`); this test uses a smaller sweep so
//! debug-mode `cargo test` stays quick, with the same accounting: an
//! oracle script's length is its shrunk op count plus the `conns`
//! accepts the oracle harness performs implicitly before every script,
//! since explore schedules pay for their accepts as explicit ops.

use simcheck::explore::{self, DivergenceKind, ExploreConfig};
use simcheck::oracle::{self, Mutant};
use simcheck::script::{self, ScriptConfig};

const ORACLE_SEEDS: u64 = 40;

fn cfg(mutant: Mutant) -> ExploreConfig {
    ExploreConfig {
        conns: 2,
        depth: 6,
        max_sends_per_conn: 2,
        mutant,
    }
}

/// The shortest oracle counterexample over a bounded sweep, in
/// accept-inclusive ops; `None` if no seed fails.
fn oracle_minimal(mutant: Mutant) -> Option<usize> {
    let or_cfg = ScriptConfig::default();
    let mut best: Option<usize> = None;
    for seed in 0..ORACLE_SEEDS {
        if oracle::run_seed(seed, or_cfg, mutant).is_err() {
            let len = oracle::shrink_failure(seed, or_cfg, mutant).minimal.len() + or_cfg.conns;
            if best.is_none_or(|b| len < b) {
                best = Some(len);
            }
        }
    }
    best
}

#[test]
fn every_seeded_fault_is_caught_with_a_minimal_replayable_schedule() {
    // (mutant, expected minimal length, divergence shape).
    let expectations = [
        (Mutant::SkipRevalidation, 6, false),
        (Mutant::OrInsteadOfReplace, 4, false),
        (Mutant::SkipBackmapPurge, 4, true),
    ];
    for (mutant, expected_len, is_watcher_leak) in expectations {
        let cfg = cfg(mutant);
        let cx = explore::find_minimal_counterexample(&cfg)
            .unwrap_or_else(|| panic!("explore must catch `{}`", mutant.name()));
        assert_eq!(
            cx.schedule.len(),
            expected_len,
            "`{}` has a known minimal counterexample length",
            mutant.name()
        );
        assert_eq!(
            cx.depth, expected_len,
            "iterative deepening finds the failure exactly at the minimal depth"
        );
        assert_eq!(
            cx.failure.lane, "devpoll",
            "all seeded faults live in /dev/poll"
        );
        assert_eq!(
            matches!(cx.failure.kind, DivergenceKind::WatcherLeak { .. }),
            is_watcher_leak,
            "`{}` has a known divergence shape",
            mutant.name()
        );

        // The counterexample survives the token encoding and replays to
        // the same verdict: failing under the mutant...
        let tokens = script::encode(&cx.schedule);
        let decoded = script::parse(&tokens)
            .unwrap_or_else(|e| panic!("encoded schedule must re-parse: {e}"));
        assert_eq!(decoded, cx.schedule);
        assert!(
            explore::replay(&decoded, &cfg).is_err(),
            "`{}` counterexample must reproduce from its token form",
            mutant.name()
        );
        // ...and clean on unmutated worlds, so the schedule indicts the
        // fault rather than the alphabet.
        let clean = ExploreConfig {
            mutant: Mutant::None,
            ..cfg
        };
        assert!(
            explore::replay(&decoded, &clean).is_ok(),
            "`{}` counterexample must pass once the fault is removed",
            mutant.name()
        );
    }
}

#[test]
fn explore_counterexamples_are_strictly_shorter_than_the_oracles() {
    for mutant in Mutant::all() {
        let cx = explore::find_minimal_counterexample(&cfg(mutant))
            .unwrap_or_else(|| panic!("explore must catch `{}`", mutant.name()));
        // When the oracle is blind to the fault, explore finding anything
        // at all is the win; when the oracle caught it too, explore must
        // still win outright.
        if let Some(oracle_len) = oracle_minimal(mutant) {
            assert!(
                cx.schedule.len() < oracle_len,
                "`{}`: explore found {} op(s), oracle {} — not strictly shorter",
                mutant.name(),
                cx.schedule.len(),
                oracle_len
            );
        }
    }
}

#[test]
fn or_semantics_and_backmap_leaks_are_invisible_to_the_random_oracle() {
    // Locks in *why* the exhaustive pass earns its keep: the oracle's
    // normalized snapshots mask OR'd interest bits, and a leaked kernel
    // watcher never changes any ready set. If either assertion starts
    // failing, the oracle grew stronger — update the comparison story
    // in DESIGN.md rather than weakening this test.
    for mutant in [Mutant::OrInsteadOfReplace, Mutant::SkipBackmapPurge] {
        assert!(
            oracle_minimal(mutant).is_none(),
            "`{}` should be invisible to normalized ready-set comparison",
            mutant.name()
        );
    }
}
