//! Acceptance test for the differential oracle: a deliberately injected
//! bug — `/dev/poll` serving cached poll results without revalidating
//! them (the exact bug class §3.2's "results … have to be reevaluated
//! each time" warns about) — must be caught by lane divergence and
//! shrunk to a minimal reproducing script.
//!
//! The bug is injected through `DevPollRegistry::testhook_skip_revalidation`,
//! a doc-hidden hook that bypasses the runtime auditor too, so only the
//! differential comparison can catch it — which is the point.

use simcheck::oracle::{self, Failure, Mutant};
use simcheck::script::{Op, ScriptConfig};

const CFG: ScriptConfig = ScriptConfig { conns: 4, ops: 30 };
const SEEDS: u64 = 40;

#[test]
fn clean_build_passes_the_sweep() {
    let stats = oracle::sweep(0..10, CFG, Mutant::None).unwrap_or_else(|f| {
        panic!(
            "clean backends must agree on every boundary:\n{}",
            oracle::render_failure(&f)
        )
    });
    assert!(stats.boundaries > 0, "sweep must compare real boundaries");
    assert!(stats.audit_checks > 0, "invariant auditor must be live");
}

#[test]
fn skipped_revalidation_is_caught_and_shrunk() {
    // Some seed in a bounded sweep must expose the stale-cache bug...
    let failure = oracle::sweep(0..SEEDS, CFG, Mutant::SkipRevalidation)
        .expect_err("a bounded sweep must catch the injected stale-cache bug");

    // ...in a /dev/poll lane (the hook only affects cached results, and
    // only the hinted+cached configuration serves them).
    let Failure::Divergence(d) = &failure.failure else {
        panic!("expected a lane divergence, got {:?}", failure.failure);
    };
    assert_eq!(
        d.lane, "devpoll",
        "stale cached results are a devpoll-lane bug"
    );

    // The shrunk script must still fail, be no longer than the
    // generated one, and end at a Poll boundary where the stale result
    // shows up.
    let full_len = simcheck::script::generate(failure.seed, CFG).len();
    assert!(failure.minimal.len() <= full_len);
    assert!(
        failure.minimal.len() < full_len,
        "shrinking should drop at least some of the {full_len} ops"
    );
    assert!(
        failure.minimal.contains(&Op::Poll),
        "a divergence needs a comparison boundary"
    );
    assert!(
        oracle::run_script(&failure.minimal, CFG.conns, Mutant::SkipRevalidation).is_err(),
        "the minimal script must still reproduce the divergence"
    );
    assert!(
        oracle::run_script(&failure.minimal, CFG.conns, Mutant::None).is_ok(),
        "the minimal script must pass once the bug is removed"
    );

    // The report names the stale extra readiness: the devpoll lane
    // claims more (or different) readiness than the rescanning
    // reference.
    assert_ne!(d.expected, d.got);
}

#[test]
fn lanes_agree_at_elevated_fd_offsets() {
    // The million lane parks descriptors at indexes the old dense
    // tables never reached; readiness semantics must not notice. Every
    // clean script that passes at base 0 must pass with descriptors
    // numbered from 10^6 (select sits out — FD_SETSIZE is a real wall,
    // not a divergence), and the injected stale-cache bug must still be
    // caught there.
    let mut boundaries = 0;
    for seed in 0..10 {
        let ops = simcheck::script::generate(seed, CFG);
        let stats = oracle::run_script_at(&ops, CFG.conns, Mutant::None, 1_000_000)
            .unwrap_or_else(|f| panic!("seed {seed} diverged at fd base 10^6:\n{f:?}"));
        boundaries += stats.boundaries;
    }
    assert!(boundaries > 0, "the sweep must compare real boundaries");

    let caught = (0..SEEDS).any(|seed| {
        let ops = simcheck::script::generate(seed, CFG);
        oracle::run_script_at(&ops, CFG.conns, Mutant::SkipRevalidation, 1_000_000).is_err()
    });
    assert!(caught, "the stale-cache bug must be visible at any fd base");
}
