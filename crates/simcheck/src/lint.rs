//! The in-repo source lint pass (no registry dependencies): a
//! line-oriented scanner over `crates/*/src` for the hazard classes that
//! matter in a deterministic simulation.
//!
//! Rules:
//!
//! * `unwrap-nontest` — `.unwrap()` / `.expect(` in non-test library
//!   code. Panicking on untrusted state turns a recoverable condition
//!   into a simulator abort; call sites should return typed errors, or
//!   document a genuine invariant with `expect("invariant: …")`, which
//!   this rule sanctions.
//! * `hash-iter` — iteration over a `HashMap`/`HashSet` binding. Hash
//!   iteration order is randomised per process, so any result or output
//!   produced from it is non-deterministic; use `BTreeMap`/`BTreeSet`
//!   or sort explicitly.
//! * `wallclock` — `Instant::now` / `SystemTime` in simulation code.
//!   Simulated time must come from [`simcore::time::SimTime`]; wall
//!   clocks make runs irreproducible. (`criterion-shim` is exempt: its
//!   entire purpose is wall-clock measurement of real benchmarks.)
//! * `alloc-in-hot-path` — `Box::new` or `.collect` inside a function
//!   on the simulator's per-event hot path. Hot functions are the ones
//!   annotated with a `#[hot_path]` comment marker directly above the
//!   `fn`, plus any listed as `hot <path> <fn>` in `simcheck.allow`.
//!   These run millions of times per figures sweep; a per-call heap
//!   allocation there is the exact overhead the arena/dense-table
//!   overhaul removed, so the budget is zero — allocate once and reuse
//!   (`std::mem::take` scratch buffers), or keep the cold path out of
//!   the marked function.
//! * `span-pairing` — a raw `span_enter` / `span_exit` call outside
//!   `simcore`'s span module. The stack operations are private for a
//!   reason: an unmatched enter (an early `return` or `?` between the
//!   pair) corrupts the LIFO span stack and mis-attributes every phase
//!   after it. Instrumentation must go through the scoped guard API
//!   (`span_open`/`span_close`, `span_leaf`, `span_hold`), whose guards
//!   cannot leak. Budget is zero, permanently.
//! * `time-unit` — identifiers with different time-unit suffixes
//!   (`_ns`, `_us`, `_ms`) combined by arithmetic on one line. Adding
//!   nanoseconds to milliseconds compiles fine and is wrong by 10^6;
//!   convert first. Lines that spell out the conversion factor through
//!   a `_per_`/`_PER_` constant are the sanctioned form.
//! * `wide-handle` — a handle-named field (`fd`, `conn`, `*_fd`,
//!   `*_conn`) declared `usize` or `u64` inside a struct annotated with
//!   a `#[hot_struct]` comment marker. Hot structs are the
//!   per-connection records the million-connection lane multiplies by
//!   10^6; a word-sized handle doubles their footprint for index space
//!   nothing uses (fd and connection ids are u32 end-to-end). The
//!   budget is zero — handles in marked structs stay u32 (or narrower).
//!
//! Function spans and the `time-unit` rule are computed on a
//! tokenizer-stripped view of the source ([`strip_noncode`]): string
//! and char literals, raw strings and comments (line and nested block,
//! carried across lines) are blanked first, so a `"}"` in a literal
//! cannot end a hot span early and a `_ms` inside a doc string cannot
//! trip the unit check.
//!
//! Scope: `lib` sources only. `tests/`, `benches/`, `src/bin/` drivers,
//! crate binary roots (`src/main.rs`) and `#[cfg(test)]` modules may
//! unwrap freely — a panicking test is a failing test, which is the
//! point — and CLI drivers may read the wall clock to report their own
//! runtime.
//!
//! Findings are budgeted by the checked-in `simcheck.allow` file; the
//! build fails on any finding beyond its budget, so the allowlist can
//! only shrink over time.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint hit.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule code (`unwrap-nontest`, `hash-iter`, `wallclock`,
    /// `alloc-in-hot-path`, `span-pairing`, `time-unit`,
    /// `wide-handle`).
    pub rule: &'static str,
    /// Path relative to the repository root, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

/// A function the `alloc-in-hot-path` rule watches, named by the
/// `hot <path> <fn>` lines of `simcheck.allow` (the in-source
/// `#[hot_path]` comment marker is the other way in).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotFn {
    /// Repo-relative `/`-separated path.
    pub path: String,
    /// Bare function name.
    pub func: String,
}

/// Parses the `hot <path> <fn>` lines of `simcheck.allow`.
pub fn parse_hot_list(text: &str) -> Vec<HotFn> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("hot") {
            continue;
        }
        let (Some(path), Some(func)) = (parts.next(), parts.next()) else {
            continue;
        };
        out.push(HotFn {
            path: path.to_string(),
            func: func.to_string(),
        });
    }
    out
}

/// Scans `crates/*/src` under `root` and returns all findings in
/// deterministic (path, line) order. `hot` names additional functions
/// for the `alloc-in-hot-path` rule (usually from
/// [`parse_hot_list`]).
pub fn scan(root: &Path, hot: &[HotFn]) -> Vec<Finding> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .unwrap_or_else(|e| panic!("invariant: {} must exist: {e}", crates_dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files);
    }
    files.sort();

    let mut findings = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if skip_file(&rel) {
            continue;
        }
        let Ok(text) = fs::read_to_string(&file) else {
            continue;
        };
        let hot_fns: Vec<&str> = hot
            .iter()
            .filter(|h| h.path == rel)
            .map(|h| h.func.as_str())
            .collect();
        scan_file(&rel, &text, &hot_fns, &mut findings);
    }
    findings
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Whole files outside the lint's scope.
fn skip_file(rel: &str) -> bool {
    // Binary drivers are interactive tools, not simulation library code;
    // that covers both `src/bin/` trees and crate binary roots.
    rel.contains("/src/bin/") || rel.ends_with("/src/main.rs")
}

/// Scans one file, appending findings. `hot_fns` are the functions the
/// allowlist marks hot in this file (merged with in-source `#[hot_path]`
/// markers).
fn scan_file(rel: &str, text: &str, hot_fns: &[&str], out: &mut Vec<Finding>) {
    let is_criterion_shim = rel.starts_with("crates/criterion-shim/");
    let is_span_module = rel == "crates/simcore/src/span.rs";
    let all_lines: Vec<&str> = text.lines().collect();
    // Everything from the test module on is test code. (Repo convention:
    // the `#[cfg(test)] mod tests` block closes the file.)
    let test_start = all_lines
        .iter()
        .position(|l| l.trim().starts_with("#[cfg(test)]"))
        .unwrap_or(all_lines.len());
    let lines = &all_lines[..test_start];
    // The stripped view (literal and comment contents blanked) feeds
    // the structural passes: function-span walking and the time-unit
    // suffix scan.
    let code = strip_lines(lines);

    // Names of bindings/fields declared with a hash-ordered type in the
    // non-test code; iteration over them is what the hash-iter rule
    // flags.
    let mut hash_names: Vec<String> = Vec::new();
    for line in lines {
        if line.trim().starts_with("//") {
            continue;
        }
        for decl in ["HashMap", "HashSet"] {
            if let Some(idx) = line.find(&format!(": {decl}<")) {
                if let Some(name) = ident_before(line, idx) {
                    hash_names.push(name);
                }
            }
            if let Some(idx) = line.find(&format!("= {decl}::new")) {
                if let Some(name) = ident_before(line, idx) {
                    hash_names.push(name);
                }
            }
        }
    }
    hash_names.sort();
    hash_names.dedup();

    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with("//") {
            continue;
        }
        let mut hit = |rule: &'static str| {
            out.push(Finding {
                rule,
                path: rel.to_string(),
                line: i + 1,
                excerpt: trimmed.to_string(),
            });
        };

        // The needles are split so this scanner does not flag its own
        // rule definitions.
        if line.contains(concat!(".unw", "rap()")) {
            hit("unwrap-nontest");
        }
        if let Some(pos) = line.find(concat!(".exp", "ect(")) {
            // `expect("invariant: …")` documents a checked invariant and
            // is sanctioned.
            if !line[pos..].starts_with(concat!(".exp", "ect(\"invariant:")) {
                hit("unwrap-nontest");
            }
        }

        for name in &hash_names {
            if iterates(line, name) {
                hit("hash-iter");
                break;
            }
        }

        let wallclock =
            line.contains(concat!("Instant::", "now")) || line.contains(concat!("System", "Time"));
        if !is_criterion_shim && wallclock {
            hit("wallclock");
        }

        // The span stack's raw operations live in (and are private to)
        // the span module itself; any other mention is a bypass of the
        // guard API.
        let raw_span =
            line.contains(concat!("span_", "enter")) || line.contains(concat!("span_", "exit"));
        if !is_span_module && raw_span {
            hit("span-pairing");
        }

        if time_unit_mix(&code[i]) {
            hit("time-unit");
        }
    }

    scan_hot_spans(rel, lines, &code, hot_fns, out);
    scan_hot_structs(rel, lines, &code, out);
}

/// The `time-unit` rule: does this (stripped) line combine identifiers
/// of at least two different time-unit suffix classes (`_ns`, `_us`,
/// `_ms`) with an arithmetic operator? `_per_`/`_PER_` conversion
/// constants sanction the line — spelling out the factor *is* the
/// conversion.
fn time_unit_mix(code: &str) -> bool {
    if code.contains("_per_") || code.contains("_PER_") {
        return false;
    }
    let arith = [" + ", " - ", " * ", " / ", "+=", "-="]
        .iter()
        .any(|op| code.contains(op));
    if !arith {
        return false;
    }
    let (mut ns, mut us, mut ms) = (false, false, false);
    for ident in code.split(|c: char| !c.is_alphanumeric() && c != '_') {
        ns |= ident.ends_with(concat!("_n", "s"));
        us |= ident.ends_with(concat!("_u", "s"));
        ms |= ident.ends_with(concat!("_m", "s"));
    }
    u8::from(ns) + u8::from(us) + u8::from(ms) >= 2
}

/// The `alloc-in-hot-path` pass: walks function spans that are marked
/// hot — by a `#[hot_path]` comment marker directly above the `fn`
/// (doc comments and attributes may sit between), or by name via
/// `simcheck.allow`'s `hot` lines — and flags per-call allocations
/// inside them.
fn scan_hot_spans(
    rel: &str,
    lines: &[&str],
    code: &[String],
    hot_fns: &[&str],
    out: &mut Vec<Finding>,
) {
    // Needles split so this scanner does not flag its own definitions.
    let box_needle = concat!("Box", "::new");
    let collect_needle = concat!(".col", "lect");
    // The comment must *start* with the marker so prose that merely
    // mentions it (like this module's docs) does not mark anything.
    let marker = concat!("// #[hot", "_path]");

    let mut pending_hot = false;
    let mut i = 0;
    while i < lines.len() {
        let trimmed = lines[i].trim();
        if trimmed.starts_with("//") {
            if trimmed.starts_with(marker) {
                pending_hot = true;
            }
            i += 1;
            continue;
        }
        if let Some(name) = fn_name(trimmed) {
            let hot = pending_hot || hot_fns.contains(&name.as_str());
            pending_hot = false;
            if hot {
                let end = fn_span_end(code, i);
                for (j, l) in lines.iter().enumerate().take(end).skip(i) {
                    let lt = l.trim();
                    if lt.starts_with("//") {
                        continue;
                    }
                    if l.contains(box_needle) || l.contains(collect_needle) {
                        out.push(Finding {
                            rule: "alloc-in-hot-path",
                            path: rel.to_string(),
                            line: j + 1,
                            excerpt: lt.to_string(),
                        });
                    }
                }
                i = end;
                continue;
            }
        } else if !trimmed.is_empty() && !trimmed.starts_with("#[") {
            // Any other code line breaks the marker-to-fn adjacency.
            pending_hot = false;
        }
        i += 1;
    }
}

/// The `wide-handle` pass: walks struct spans marked with a
/// `#[hot_struct]` comment marker directly above the `struct` (doc
/// comments and attributes may sit between) and flags handle-named
/// fields declared with a word-sized integer. The span walk reuses
/// [`fn_span_end`]'s brace counting on the stripped view; field
/// matching also runs on the stripped view so a `conn: usize` inside a
/// trailing comment cannot trip it.
fn scan_hot_structs(rel: &str, lines: &[&str], code: &[String], out: &mut Vec<Finding>) {
    // The comment must *start* with the marker so prose that merely
    // mentions it (like this module's docs) does not mark anything.
    let marker = concat!("// #[hot", "_struct]");

    let mut pending_hot = false;
    let mut i = 0;
    while i < lines.len() {
        let trimmed = lines[i].trim();
        if trimmed.starts_with("//") {
            if trimmed.starts_with(marker) {
                pending_hot = true;
            }
            i += 1;
            continue;
        }
        if is_struct_decl(trimmed) {
            let hot = pending_hot;
            pending_hot = false;
            if hot {
                let end = fn_span_end(code, i);
                for j in i..end.min(code.len()) {
                    if wide_handle_field(code[j].trim()) {
                        out.push(Finding {
                            rule: "wide-handle",
                            path: rel.to_string(),
                            line: j + 1,
                            excerpt: lines[j].trim().to_string(),
                        });
                    }
                }
                i = end;
                continue;
            }
        } else if !trimmed.is_empty() && !trimmed.starts_with("#[") {
            // Any other code line breaks the marker-to-struct adjacency.
            pending_hot = false;
        }
        i += 1;
    }
}

/// Does `trimmed` begin a struct item? Every word before `struct` must
/// be a visibility qualifier, so `impl` blocks and expressions that
/// merely mention the word do not open a span.
fn is_struct_decl(trimmed: &str) -> bool {
    if trimmed.starts_with("struct ") {
        return true;
    }
    trimmed.find(" struct ").is_some_and(|idx| {
        trimmed[..idx]
            .split_whitespace()
            .all(|w| w == "pub" || w.starts_with("pub("))
    })
}

/// Is this (stripped) struct-body line a field named `fd`, `conn`, or
/// `*_fd`/`*_conn`, typed `usize` or `u64`? Names like `fd_limit` or
/// `conns` are counts and capacities, not handles, and stay exempt; so
/// do `_per_` names (`max_sends_per_conn` is a rate cap — the same
/// convention the time-unit rule sanctions).
fn wide_handle_field(code: &str) -> bool {
    let Some((head, tail)) = code.split_once(':') else {
        return false;
    };
    let Some(name) = head.split_whitespace().last() else {
        return false;
    };
    let is_handle =
        name == "fd" || name == "conn" || name.ends_with("_fd") || name.ends_with("_conn");
    if !is_handle || name.contains("_per_") {
        return false;
    }
    let ty = tail.trim().trim_end_matches(',').trim_end();
    ty == "usize" || ty == "u64"
}

/// If `trimmed` begins a function item, its bare name. Rejects lines
/// where `fn` appears mid-expression (closure types, comments): every
/// word before `fn` must be a declaration qualifier.
fn fn_name(trimmed: &str) -> Option<String> {
    let idx = if trimmed.starts_with("fn ") {
        0
    } else {
        let idx = trimmed.find(" fn ")? + 1;
        let qualifier_ok = trimmed[..idx].split_whitespace().all(|w| {
            w == "pub"
                || w.starts_with("pub(")
                || matches!(w, "const" | "unsafe" | "async" | "extern")
                || w.starts_with('"')
        });
        if !qualifier_ok {
            return None;
        }
        idx
    };
    let name: String = trimmed[idx + 3..]
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Cross-line lexer state for [`strip_noncode`]: what a line *starts*
/// inside.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct LexState {
    /// Nesting depth of `/* … */` (Rust block comments nest).
    block_comment: u32,
    /// An open string literal, if any (plain strings may span lines).
    string: Option<StrKind>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StrKind {
    /// `"…"` — backslash escapes, closes at an unescaped `"`.
    Plain,
    /// `r##"…"##` — closes at `"` followed by this many `#`.
    Raw(u8),
}

impl LexState {
    /// Test-only convenience: is the lexer outside every literal and
    /// comment?
    #[cfg(test)]
    fn in_code(self) -> bool {
        self.block_comment == 0 && self.string.is_none()
    }
}

/// Returns `line` with comments and string/char-literal *contents*
/// blanked to spaces (plus the carried-over state for the next line),
/// so structural scans — brace counting, suffix matching — only ever
/// see real code. Handles line and nested block comments, plain and
/// raw (and byte) strings, char literals including `'\u{…}'`, and
/// distinguishes lifetimes from char literals by lookahead.
fn strip_noncode(line: &str, mut st: LexState) -> (String, LexState) {
    let b = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < b.len() {
        if st.block_comment > 0 {
            if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                st.block_comment += 1;
                i += 2;
            } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                st.block_comment -= 1;
                i += 2;
            } else {
                i += 1;
            }
            out.push(' ');
            continue;
        }
        match st.string {
            Some(StrKind::Plain) => {
                if b[i] == b'\\' {
                    i += 2; // the escaped byte cannot close the string
                } else {
                    if b[i] == b'"' {
                        st.string = None;
                    }
                    i += 1;
                }
                out.push(' ');
                continue;
            }
            Some(StrKind::Raw(hashes)) => {
                let h = usize::from(hashes);
                if b[i] == b'"'
                    && b[i + 1..].len() >= h
                    && b[i + 1..i + 1 + h].iter().all(|&c| c == b'#')
                {
                    st.string = None;
                    for _ in 0..=h {
                        out.push(' ');
                    }
                    i += 1 + h;
                } else {
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            None => {}
        }
        // In code. Openers first.
        if b[i] == b'/' && b.get(i + 1) == Some(&b'/') {
            break; // line comment: the rest is prose
        }
        if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
            st.block_comment = 1;
            out.push_str("  ");
            i += 2;
            continue;
        }
        // Raw (and raw-byte) strings: r"…", r#"…"#, br"…".
        if b[i] == b'r' || (b[i] == b'b' && b.get(i + 1) == Some(&b'r')) {
            let after_r = i + if b[i] == b'b' { 2 } else { 1 };
            let mut j = after_r;
            while b.get(j) == Some(&b'#') {
                j += 1;
            }
            if b.get(j) == Some(&b'"') && j - after_r <= usize::from(u8::MAX) {
                st.string = Some(StrKind::Raw((j - after_r) as u8));
                for _ in i..=j {
                    out.push(' ');
                }
                i = j + 1;
                continue;
            }
        }
        if b[i] == b'"' || (b[i] == b'b' && b.get(i + 1) == Some(&b'"')) {
            st.string = Some(StrKind::Plain);
            let skip = if b[i] == b'b' { 2 } else { 1 };
            for _ in 0..skip {
                out.push(' ');
            }
            i += skip;
            continue;
        }
        // Char / byte-char literal vs. lifetime: a quote starts a char
        // literal if it is escaped (`'\n'`, `'\u{7f}'`) or one
        // character wide (`'{'`); otherwise it is a lifetime (`'a`).
        let quote_at = if b[i] == b'\'' {
            Some(i)
        } else if b[i] == b'b' && b.get(i + 1) == Some(&b'\'') {
            Some(i + 1)
        } else {
            None
        };
        if let Some(q) = quote_at {
            let is_escape = b.get(q + 1) == Some(&b'\\');
            let one_wide = b.get(q + 2) == Some(&b'\'');
            if is_escape || one_wide {
                // Blank to the closing quote (escapes like \u{…} are
                // multi-byte, so scan rather than assume a width).
                let mut j = q + 1;
                while j < b.len() {
                    if b[j] == b'\\' {
                        j += 2;
                        continue;
                    }
                    if b[j] == b'\'' {
                        break;
                    }
                    j += 1;
                }
                let end = j.min(b.len().saturating_sub(1));
                for _ in i..=end {
                    out.push(' ');
                }
                i = end + 1;
                continue;
            }
        }
        out.push(char::from(b[i]));
        i += 1;
    }
    (out, st)
}

/// Blanks every line of a file in one pass, carrying lexer state across
/// line boundaries (multi-line block comments, multi-line strings).
fn strip_lines(lines: &[&str]) -> Vec<String> {
    let mut st = LexState::default();
    let mut out = Vec::with_capacity(lines.len());
    for line in lines {
        let (code, next) = strip_noncode(line, st);
        st = next;
        out.push(code);
    }
    out
}

/// One past the last line of the function starting at `start`, by brace
/// counting over the stripped view (`code[j]` is line `j` with literals
/// and comments blanked — a `"}"` in a string cannot end the span). A
/// signature-only declaration ends at its `;`.
fn fn_span_end(code: &[String], start: usize) -> usize {
    let mut depth = 0i32;
    let mut opened = false;
    for (j, line) in code.iter().enumerate().skip(start) {
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return j + 1;
        }
        if !opened && line.trim_end().ends_with(';') {
            return j + 1; // trait-method declaration, no body
        }
    }
    code.len()
}

/// The identifier ending just before byte `idx` (declaration name).
fn ident_before(line: &str, idx: usize) -> Option<String> {
    let head = &line[..idx];
    let name: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_numeric()) {
        None
    } else {
        Some(name)
    }
}

/// Does `line` contain `needle` preceded by a non-identifier character
/// (so binding `m` does not match inside `item…`)?
fn contains_bounded(line: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(needle) {
        let abs = start + pos;
        let boundary = line[..abs]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if boundary {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

/// Does `line` iterate over the binding `name`?
fn iterates(line: &str, name: &str) -> bool {
    for pattern in [".iter()", ".keys()", ".values()", ".drain(", ".into_iter()"] {
        if contains_bounded(line, &format!("{name}{pattern}")) {
            return true;
        }
    }
    [
        "in &{n}",
        "in &self.{n}",
        "in &mut self.{n}",
        "in self.{n}",
        "in {n}",
    ]
    .iter()
    .any(|t| {
        let needle = t.replace("{n}", name);
        // Both ends must sit on identifier boundaries (` in &conns {`
        // matches; `begin conns` and ` in &conns_sorted` do not).
        let mut start = 0;
        while let Some(pos) = line[start..].find(&needle) {
            let abs = start + pos;
            let end = abs + needle.len();
            let head_ok = line[..abs]
                .chars()
                .next_back()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_');
            let tail_ok = line[end..]
                .chars()
                .next()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_' && c != '.');
            if head_ok && tail_ok {
                return true;
            }
            start = end;
        }
        false
    })
}

/// One allowlist budget line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Budget {
    /// Rule code.
    pub rule: String,
    /// Repo-relative path.
    pub path: String,
    /// Maximum findings allowed.
    pub max: usize,
}

/// Parses `simcheck.allow`: `<rule> <path> <max>` per line, `#` comments.
pub fn parse_allowlist(text: &str) -> Vec<Budget> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(path), Some(max)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        let Ok(max) = max.parse() else { continue };
        out.push(Budget {
            rule: rule.to_string(),
            path: path.to_string(),
            max,
        });
    }
    out
}

/// The outcome of checking findings against the allowlist.
#[derive(Debug, Clone, Default)]
pub struct Verdict {
    /// Findings beyond any budget — these fail the build.
    pub over_budget: Vec<String>,
    /// Budgets that are now larger than needed — tighten them.
    pub slack: Vec<String>,
    /// Total findings seen.
    pub total: usize,
}

impl Verdict {
    /// Did the lint pass?
    pub fn ok(&self) -> bool {
        self.over_budget.is_empty()
    }
}

/// Checks `findings` against `budgets`.
pub fn check(findings: &[Finding], budgets: &[Budget]) -> Verdict {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in findings {
        *counts
            .entry((f.rule.to_string(), f.path.clone()))
            .or_insert(0) += 1;
    }
    let mut verdict = Verdict {
        total: findings.len(),
        ..Verdict::default()
    };
    for ((rule, path), &count) in &counts {
        let max = budgets
            .iter()
            .find(|b| &b.rule == rule && &b.path == path)
            .map_or(0, |b| b.max);
        if count > max {
            verdict
                .over_budget
                .push(format!("{path}: {count} `{rule}` finding(s), budget {max}"));
        }
    }
    for b in budgets {
        let used = counts
            .get(&(b.rule.clone(), b.path.clone()))
            .copied()
            .unwrap_or(0);
        if used < b.max {
            verdict.slack.push(format!(
                "{}: budget {} but only {used} `{}` finding(s) — tighten",
                b.path, b.max, b.rule
            ));
        }
    }
    verdict
}

/// Renders findings as an allowlist body (used to regenerate budgets).
pub fn render_budgets(findings: &[Finding]) -> String {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in findings {
        *counts
            .entry((f.rule.to_string(), f.path.clone()))
            .or_insert(0) += 1;
    }
    let mut out = String::new();
    for ((rule, path), count) in counts {
        out.push_str(&format!("{rule} {path} {count}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanctioned_expect_is_not_flagged() {
        let mut out = Vec::new();
        scan_file(
            "crates/x/src/lib.rs",
            "let a = m.get(k).expect(\"invariant: present\");\nlet b = m.get(k).expect(\"oops\");\nlet c = o.unwrap();\n",
            &[],
            &mut out,
        );
        let rules: Vec<_> = out.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(rules, vec![("unwrap-nontest", 2), ("unwrap-nontest", 3)]);
    }

    #[test]
    fn test_modules_are_exempt() {
        let mut out = Vec::new();
        scan_file(
            "crates/x/src/lib.rs",
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { o.unwrap(); }\n}\n",
            &[],
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn hash_iteration_is_flagged_only_for_hash_bindings() {
        let mut out = Vec::new();
        scan_file(
            "crates/x/src/lib.rs",
            "struct S { m: HashMap<u32, u32>, v: Vec<u32> }\nfor x in &self.m {}\nlet k: Vec<_> = self.m.keys().collect();\nfor x in &self.v {}\n",
            &[],
            &mut out,
        );
        let lines: Vec<_> = out.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3]);
    }

    #[test]
    fn wallclock_is_flagged_outside_criterion_shim() {
        let mut out = Vec::new();
        scan_file(
            "crates/x/src/lib.rs",
            "let t = Instant::now();\n",
            &[],
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "wallclock");
        let mut out = Vec::new();
        scan_file(
            "crates/criterion-shim/src/lib.rs",
            "let t = Instant::now();\n",
            &[],
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn hot_path_marker_flags_allocations_in_span_only() {
        let mut out = Vec::new();
        let src = "\
/// Docs survive between marker and fn.
// #[hot_path]: per-event dispatch loop
pub fn dispatch(&mut self) {
    let b = Box::new(1);
    let v: Vec<u32> = xs.iter().collect();
}

fn cold() {
    let b = Box::new(2); // fine: not marked
}
";
        scan_file("crates/x/src/lib.rs", src, &[], &mut out);
        let hits: Vec<_> = out
            .iter()
            .filter(|f| f.rule == "alloc-in-hot-path")
            .map(|f| f.line)
            .collect();
        assert_eq!(hits, vec![4, 5]);
    }

    #[test]
    fn allowlist_hot_entries_mark_functions_by_name() {
        let hot = parse_hot_list(
            "# comment\nhot crates/x/src/lib.rs scan\nunwrap-nontest crates/y/src/lib.rs 3\n",
        );
        assert_eq!(
            hot,
            vec![HotFn {
                path: "crates/x/src/lib.rs".into(),
                func: "scan".into()
            }]
        );
        // `hot` lines are invisible to the budget parser.
        let budgets = parse_allowlist("hot crates/x/src/lib.rs scan\n");
        assert!(budgets.is_empty());

        let mut out = Vec::new();
        let src = "\
fn scan(&mut self) {
    let v: Vec<u32> = xs.iter().collect();
}
fn other() {
    let v: Vec<u32> = xs.iter().collect();
}
";
        scan_file("crates/x/src/lib.rs", src, &["scan"], &mut out);
        let hits: Vec<_> = out
            .iter()
            .filter(|f| f.rule == "alloc-in-hot-path")
            .map(|f| f.line)
            .collect();
        assert_eq!(hits, vec![2]);
    }

    #[test]
    fn hot_marker_does_not_leak_past_an_unrelated_item() {
        let mut out = Vec::new();
        let src = "\
// #[hot_path]
const X: u32 = 1;
fn later() {
    let b = Box::new(1);
}
";
        scan_file("crates/x/src/lib.rs", src, &[], &mut out);
        assert!(out.iter().all(|f| f.rule != "alloc-in-hot-path"));
    }

    #[test]
    fn raw_span_stack_calls_are_flagged_outside_the_span_module() {
        let src = "let g = tracer.span_enter(p, 0, now);\ntracer.span_exit(g, now, probe);\nlet g = k.span_open(pid, p);\nk.span_close(pid, g);\n";
        let mut out = Vec::new();
        scan_file("crates/servers/src/thttpd.rs", src, &[], &mut out);
        let hits: Vec<_> = out
            .iter()
            .filter(|f| f.rule == "span-pairing")
            .map(|f| f.line)
            .collect();
        assert_eq!(hits, vec![1, 2], "guard API must stay unflagged");
        // The span module defines the operations and is exempt.
        let mut out = Vec::new();
        scan_file("crates/simcore/src/span.rs", src, &[], &mut out);
        assert!(out.iter().all(|f| f.rule != "span-pairing"));
    }

    #[test]
    fn fn_span_survives_adversarial_braces_in_literals_and_comments() {
        // Every line between the marker and the real closing brace
        // contains decoy braces that a naive counter miscounts: string
        // and char literals, raw strings, trailing and nested block
        // comments, and a \u{…} escape. The alloc on the last body line
        // must still be inside the span, and the alloc in the next
        // function must stay outside it.
        let mut out = Vec::new();
        let src = r##"
// #[hot_path]
fn adversarial(&mut self) {
    let s = "}{";
    let c = '{';
    let close = '}';
    let esc = '\u{7d}';
    let raw = r#"}}}"#; // } in a trailing comment
    /* a block comment } with a {
       spanning lines and nesting /* }} */ still } */
    let multi = "a string that
        spans lines with } and {";
    let b = Box::new(1);
}

fn cold() {
    let b = Box::new(2);
}
"##;
        let lines: Vec<&str> = src.lines().collect();
        let code = strip_lines(&lines);
        scan_hot_spans("crates/x/src/lib.rs", &lines, &code, &[], &mut out);
        let hits: Vec<_> = out
            .iter()
            .filter(|f| f.rule == "alloc-in-hot-path")
            .map(|f| f.line)
            .collect();
        assert_eq!(
            hits,
            vec![13],
            "decoy braces must neither truncate nor extend the hot span"
        );
    }

    #[test]
    fn hot_struct_marker_flags_wide_handles_in_span_only() {
        let mut out = Vec::new();
        let src = "\
/// Docs and derives survive between marker and struct.
// #[hot_struct]: one per connection, a million strong
#[derive(Debug)]
pub struct ClientConn {
    pub conn: usize,
    pub peer_fd: u64,
    pub fd: u32,
    pub fd_limit: usize,
    pub max_sends_per_conn: usize,
    bytes: u64,
}

struct Unmarked {
    pub conn: usize,
    first_fd: usize,
}
";
        scan_file("crates/x/src/lib.rs", src, &[], &mut out);
        let hits: Vec<_> = out
            .iter()
            .filter(|f| f.rule == "wide-handle")
            .map(|f| f.line)
            .collect();
        assert_eq!(
            hits,
            vec![5, 6],
            "only word-sized handle names in the marked struct are findings"
        );
    }

    #[test]
    fn hot_struct_marker_does_not_leak_past_an_unrelated_item() {
        let mut out = Vec::new();
        let src = "\
// #[hot_struct]
const X: u32 = 1;
struct Later {
    conn: usize,
}
";
        scan_file("crates/x/src/lib.rs", src, &[], &mut out);
        assert!(out.iter().all(|f| f.rule != "wide-handle"));
    }

    #[test]
    fn wide_handle_ignores_decoys_in_comments_and_impls() {
        let mut out = Vec::new();
        let src = "\
// #[hot_struct]
pub struct Slot {
    pub fd: i32, // was `fd: usize` before the u32 overhaul
}

impl Slot {
    fn touch(&mut self, conn: usize) {
        let other_fd: usize = 7;
    }
}
";
        scan_file("crates/x/src/lib.rs", src, &[], &mut out);
        assert!(
            out.iter().all(|f| f.rule != "wide-handle"),
            "comments, fn args and locals are not struct fields: {out:?}"
        );
    }

    #[test]
    fn stripping_carries_state_across_lines() {
        let (a, st) = strip_noncode("let x = \"open", LexState::default());
        assert_eq!(a, "let x =      ");
        let (b, st) = strip_noncode("still } string\" + 1; /* c", st);
        assert!(!b.contains('}'), "string contents must be blanked: {b:?}");
        assert!(
            b.contains("+ 1;"),
            "code after the close must survive: {b:?}"
        );
        let (c, st) = strip_noncode("comment */ done", st);
        assert!(c.contains("done"));
        assert!(st.in_code());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (code, st) = strip_noncode("fn f<'a>(x: &'a str) -> &'a str {", LexState::default());
        assert!(st.in_code());
        assert!(code.contains('{'), "the body brace must survive: {code:?}");
        assert!(code.contains("'a>"), "lifetimes are code, not literals");
    }

    #[test]
    fn mixed_time_unit_arithmetic_is_flagged() {
        let mut out = Vec::new();
        let src = "\
let total = budget_ns + timeout_ms;
let fine = budget_ns + slack_ns;
let scaled = timeout_ms * 1_000;
let converted = timeout_ms * US_PER_MS + slack_us;
let stored = deadline_us;
// prose about mixing budget_ns and timeout_ms + slack_us freely
";
        scan_file("crates/x/src/lib.rs", src, &[], &mut out);
        let hits: Vec<_> = out
            .iter()
            .filter(|f| f.rule == "time-unit")
            .map(|f| f.line)
            .collect();
        assert_eq!(
            hits,
            vec![1],
            "only the unconverted cross-unit sum is a finding"
        );
    }

    #[test]
    fn budgets_gate_and_report_slack() {
        let findings = vec![
            Finding {
                rule: "unwrap-nontest",
                path: "crates/x/src/lib.rs".into(),
                line: 1,
                excerpt: "o.unwrap()".into(),
            };
            3
        ];
        let budgets = parse_allowlist("# c\nunwrap-nontest crates/x/src/lib.rs 5\n");
        let v = check(&findings, &budgets);
        assert!(v.ok());
        assert_eq!(v.slack.len(), 1);
        let tight = parse_allowlist("unwrap-nontest crates/x/src/lib.rs 2\n");
        assert!(!check(&findings, &tight).ok());
        assert!(!check(&findings, &[]).ok());
    }
}
