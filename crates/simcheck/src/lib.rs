#![warn(missing_docs)]

//! Offline correctness tooling for the simulation (DESIGN.md §7):
//!
//! * [`oracle`] — the differential backend oracle: one seeded workload
//!   driven through `poll()`, `select()`, `/dev/poll` (with and without
//!   driver hints) and the RT-signal path, with ready sets compared at
//!   every wait boundary and failing seeds shrunk to a minimal script;
//! * [`lint`] — a dependency-free source scanner for panicking calls in
//!   library code, hash-ordered iteration, and wall-clock usage;
//! * the runtime invariant auditor and lockdep graph themselves live in
//!   the `devpoll` crate behind its `simcheck` feature, which this
//!   crate's dependency switches on.
//!
//! The `simcheck` binary wires all three into CI; see `README.md`.

pub mod lint;
pub mod oracle;
pub mod script;
