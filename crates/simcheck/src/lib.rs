#![warn(missing_docs)]

//! Offline correctness tooling for the simulation (DESIGN.md §7):
//!
//! * [`oracle`] — the differential backend oracle: one seeded workload
//!   driven through `poll()`, `select()`, `/dev/poll` (with and without
//!   driver hints) and the RT-signal path, with ready sets compared at
//!   every wait boundary and failing seeds shrunk to a minimal script;
//! * [`explore`] — bounded exhaustive model checking: every canonical
//!   schedule of a small event alphabet to a depth bound, all five
//!   lanes checked against the executable reference [`model`] at every
//!   wait boundary, with fingerprint dedup and DPOR-style pruning;
//! * [`lint`] — a dependency-free source scanner for panicking calls in
//!   library code, hash-ordered iteration, wall-clock usage, and mixed
//!   time-unit arithmetic;
//! * the runtime invariant auditor and lockdep graph themselves live in
//!   the `devpoll` crate behind its `simcheck` feature, which this
//!   crate's dependency switches on.
//!
//! The `simcheck` binary wires all three into CI; see `README.md`.

pub mod explore;
pub mod lint;
pub mod model;
pub mod oracle;
pub mod script;
