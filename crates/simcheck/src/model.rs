//! The executable reference model of ready-set semantics.
//!
//! A pure function of the event history: no kernel, no network, no
//! backend — just the level-triggered readiness contract the paper's
//! mechanisms all promise, reduced to ~a dozen state bits per
//! connection. `explore` replays every schedule through this model in
//! parallel with the five real lanes and compares at each wait
//! boundary, so a bug in *any* layer of the implementation (including
//! the reference `poll()` lane itself) shows up as a divergence — the
//! model cannot inherit an implementation bug because it shares no code
//! with the implementation.
//!
//! ## The modelled contract
//!
//! Per accepted connection, with `unread` bytes buffered server-side
//! and `fin` once the client half-closed:
//!
//! * `POLLIN`  iff `unread > 0 || fin` (data or a pending EOF);
//! * `POLLOUT` iff `!fin` (the send buffer never fills in explored
//!   worlds, and a hangup suppresses writability);
//! * `POLLHUP` iff `fin`.
//!
//! `POLLERR`/`POLLNVAL` never occur (no resets, no closed server fds in
//! the explored alphabet). A wait boundary reports, for every slot with
//! declared interest `I` (replace semantics — the §3.1 contract):
//!
//! * poll / /dev/poll (hints on or off) / rtsig-recovery-poll:
//!   `truth & (I | POLLHUP | POLLERR | POLLNVAL)` — HUP and ERR are
//!   always reported, and only non-empty results appear;
//! * select: `POLLIN` iff `I` asks for reads and the read bitmap fires
//!   (data, EOF, or error all readable), `POLLOUT` iff `I` asks for
//!   writes and the socket is writable — select has no HUP channel.
//!
//! The model is *total*: any [`Op`] applies in any state (server ops on
//! a not-yet-accepted slot are no-ops, like the lanes), so every
//! subsequence of a schedule is a valid schedule and ddmin slices stay
//! meaningful.

use simkernel::PollBits;

use crate::oracle::{LaneKind, Snapshot};
use crate::script::Op;

/// Reference state of one connection slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SlotModel {
    /// Accepted by the server (fd exists; watchable and readable).
    accepted: bool,
    /// Bytes sent by the client and not yet read by the server.
    unread: u64,
    /// Client half-closed (FIN observed once deliveries settle).
    fin: bool,
    /// Declared interest, if watched — **replace** semantics.
    interest: Option<PollBits>,
}

/// The reference model: per-slot connection state, advanced by the same
/// [`Op`] alphabet the lanes execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    slots: Vec<SlotModel>,
    /// Connections accepted so far (the next `Accept` takes this slot).
    accepted: usize,
}

impl Model {
    /// A model over `conns` established-but-unaccepted connections.
    pub fn new(conns: usize) -> Model {
        Model {
            slots: vec![SlotModel::default(); conns],
            accepted: 0,
        }
    }

    /// Advances the model by one event. Total in any state.
    pub fn apply(&mut self, op: Op) {
        match op {
            Op::Accept => {
                if self.accepted < self.slots.len() {
                    self.slots[self.accepted].accepted = true;
                    self.accepted += 1;
                }
            }
            Op::Watch { conn, events } => {
                if let Some(s) = self.slots.get_mut(conn) {
                    if s.accepted {
                        // Replace, never OR — the §3.1 contract.
                        s.interest = Some(events);
                    }
                }
            }
            Op::Unwatch { conn } => {
                if let Some(s) = self.slots.get_mut(conn) {
                    s.interest = None;
                }
            }
            Op::ClientSend { conn, bytes } => {
                if let Some(s) = self.slots.get_mut(conn) {
                    // A send after FIN is rejected by the transport.
                    if !s.fin {
                        s.unread += bytes as u64;
                    }
                }
            }
            Op::ClientClose { conn } => {
                if let Some(s) = self.slots.get_mut(conn) {
                    s.fin = true;
                }
            }
            Op::ServerRead { conn, max } => {
                if let Some(s) = self.slots.get_mut(conn) {
                    if s.accepted {
                        s.unread = s.unread.saturating_sub(max as u64);
                    }
                }
            }
            Op::ServerSend { .. } => {
                // Writes never fill the buffer in explored worlds and
                // the peer never reads; no readiness state changes.
            }
            Op::Poll => {
                // A wait boundary observes; it never mutates the model.
            }
        }
    }

    /// The level-triggered truth bits for one slot.
    fn truth(s: SlotModel) -> PollBits {
        let mut bits = PollBits::EMPTY;
        if s.unread > 0 || s.fin {
            bits |= PollBits::POLLIN;
        }
        if !s.fin {
            bits |= PollBits::POLLOUT;
        }
        if s.fin {
            bits |= PollBits::POLLHUP;
        }
        bits
    }

    /// The raw snapshot `lane` must report at a wait boundary.
    pub fn expected(&self, lane: LaneKind) -> Snapshot {
        let mut out = Vec::new();
        for (slot, &s) in self.slots.iter().enumerate() {
            let Some(interest) = s.interest else { continue };
            let truth = Model::truth(s);
            let bits = match lane {
                LaneKind::Select => {
                    // Bitmap semantics: IN if any readable condition and
                    // reads were asked for; OUT likewise. No HUP channel.
                    let mut b = PollBits::EMPTY;
                    if interest.intersects(PollBits::POLLIN)
                        && truth
                            .intersects(PollBits::POLLIN | PollBits::POLLHUP | PollBits::POLLERR)
                    {
                        b |= PollBits::POLLIN;
                    }
                    if interest.intersects(PollBits::POLLOUT)
                        && truth.intersects(PollBits::POLLOUT | PollBits::POLLERR)
                    {
                        b |= PollBits::POLLOUT;
                    }
                    b
                }
                LaneKind::Poll | LaneKind::RtSig | LaneKind::DevPoll | LaneKind::DevPollNoHints => {
                    truth & (interest | PollBits::always_reported())
                }
            };
            if !bits.is_empty() {
                out.push((slot, bits));
            }
        }
        out
    }

    /// Whether `slot` must currently hold a kernel watcher registration
    /// in a /dev/poll lane — the backmap half of the POLLREMOVE dual
    /// purge. (Other lanes keep interest in user space, so the
    /// invariant is only checked against the /dev/poll lanes.)
    pub fn expect_kernel_watcher(&self, slot: usize) -> bool {
        self.slots.get(slot).is_some_and(|s| s.interest.is_some())
    }

    /// Connections accepted so far.
    pub fn accepted(&self) -> usize {
        self.accepted
    }

    /// Whether `slot` currently has buffered unread data.
    pub fn has_unread(&self, slot: usize) -> bool {
        self.slots.get(slot).is_some_and(|s| s.unread > 0)
    }

    /// Whether `slot`'s client already half-closed.
    pub fn fin(&self, slot: usize) -> bool {
        self.slots.get(slot).is_some_and(|s| s.fin)
    }

    /// Whether `slot` is accepted.
    pub fn is_accepted(&self, slot: usize) -> bool {
        self.slots.get(slot).is_some_and(|s| s.accepted)
    }

    /// The declared interest of `slot`, if watched.
    pub fn interest(&self, slot: usize) -> Option<PollBits> {
        self.slots.get(slot).and_then(|s| s.interest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IN: PollBits = PollBits::POLLIN;
    const OUT: PollBits = PollBits::POLLOUT;

    fn model_after(conns: usize, ops: &[Op]) -> Model {
        let mut m = Model::new(conns);
        for &op in ops {
            m.apply(op);
        }
        m
    }

    #[test]
    fn fresh_accepted_watched_slot_is_writable_only() {
        let m = model_after(
            2,
            &[
                Op::Accept,
                Op::Watch {
                    conn: 0,
                    events: IN | OUT,
                },
            ],
        );
        assert_eq!(m.expected(LaneKind::Poll), vec![(0, OUT)]);
        assert_eq!(m.expected(LaneKind::Select), vec![(0, OUT)]);
    }

    #[test]
    fn data_arrival_reports_in_even_before_accept_happened_first() {
        // Data sent before the accept is buffered by the transport and
        // visible at the first boundary after the accept.
        let m = model_after(
            1,
            &[
                Op::ClientSend { conn: 0, bytes: 64 },
                Op::Accept,
                Op::Watch {
                    conn: 0,
                    events: IN,
                },
            ],
        );
        assert_eq!(m.expected(LaneKind::Poll), vec![(0, IN)]);
    }

    #[test]
    fn hup_is_always_reported_by_poll_but_not_select() {
        let m = model_after(
            1,
            &[
                Op::Accept,
                Op::Watch {
                    conn: 0,
                    events: OUT,
                },
                Op::ClientClose { conn: 0 },
            ],
        );
        // poll reports HUP even for an OUT-only interest; OUT itself is
        // suppressed by the hangup.
        assert_eq!(m.expected(LaneKind::Poll), vec![(0, PollBits::POLLHUP)]);
        // select has no HUP channel and OUT is off: nothing fires.
        assert_eq!(m.expected(LaneKind::Select), vec![]);
    }

    #[test]
    fn fin_makes_the_stream_readable_for_select() {
        let m = model_after(
            1,
            &[
                Op::Accept,
                Op::Watch {
                    conn: 0,
                    events: IN,
                },
                Op::ClientClose { conn: 0 },
            ],
        );
        assert_eq!(m.expected(LaneKind::Select), vec![(0, IN)]);
        assert_eq!(
            m.expected(LaneKind::Poll),
            vec![(0, IN | PollBits::POLLHUP)]
        );
    }

    #[test]
    fn watch_replaces_interest_instead_of_oring() {
        let m = model_after(
            1,
            &[
                Op::Accept,
                Op::ClientSend { conn: 0, bytes: 8 },
                Op::Watch {
                    conn: 0,
                    events: IN,
                },
                Op::Watch {
                    conn: 0,
                    events: OUT,
                },
            ],
        );
        // Readable data exists, but interest was *replaced* by OUT.
        assert_eq!(m.expected(LaneKind::Poll), vec![(0, OUT)]);
    }

    #[test]
    fn read_drains_and_clears_in() {
        let m = model_after(
            1,
            &[
                Op::Accept,
                Op::Watch {
                    conn: 0,
                    events: IN,
                },
                Op::ClientSend {
                    conn: 0,
                    bytes: 100,
                },
                Op::ServerRead {
                    conn: 0,
                    max: 1 << 20,
                },
            ],
        );
        assert_eq!(m.expected(LaneKind::Poll), vec![]);
    }

    #[test]
    fn ops_on_unaccepted_slots_are_no_ops_and_total() {
        let mut m = Model::new(1);
        for op in [
            Op::Watch {
                conn: 0,
                events: IN,
            },
            Op::ServerRead { conn: 0, max: 10 },
            Op::Unwatch { conn: 0 },
            Op::Watch {
                conn: 5,
                events: IN,
            },
            Op::ServerRead { conn: 9, max: 1 },
        ] {
            m.apply(op);
        }
        assert_eq!(m.expected(LaneKind::Poll), vec![]);
        assert!(!m.is_accepted(0));
    }

    #[test]
    fn unwatch_clears_the_kernel_watcher_expectation() {
        let mut m = model_after(
            1,
            &[
                Op::Accept,
                Op::Watch {
                    conn: 0,
                    events: IN,
                },
            ],
        );
        assert!(m.expect_kernel_watcher(0));
        m.apply(Op::Unwatch { conn: 0 });
        assert!(!m.expect_kernel_watcher(0));
    }
}
