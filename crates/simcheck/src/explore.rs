//! `simcheck explore`: bounded exhaustive model checking of readiness
//! semantics.
//!
//! Where the differential oracle *samples* schedules with random seeds,
//! `explore` enumerates **all** canonical schedules of a small event
//! alphabet — accept, data arrival, FIN, interest add/modify/remove,
//! server read, wait boundary — up to a depth bound, over 2–4
//! connections. Every schedule drives all five backend lanes in
//! isolated worlds, and each wait boundary is checked against the
//! executable reference model ([`crate::model::Model`]): raw per-slot
//! ready bits per lane, plus the kernel-watcher (backmap) registration
//! invariant on the /dev/poll lanes.
//!
//! Two prunings keep the state space tractable (soundness argument in
//! DESIGN.md "Exhaustive exploration and the reference model"):
//!
//! * **Canonical slot order** (sleep-set/DPOR-style): between two wait
//!   boundaries, events on different connections commute — no
//!   observation separates them and the settled world state is
//!   identical — so only the representative with non-decreasing slot
//!   indices is explored. Same-slot event orderings (which do not
//!   commute) are all explored; a boundary resets the floor.
//! * **Fingerprint memoization**: worlds are FNV-fingerprinted
//!   ([`simcore::fingerprint`]) across all five lanes; a state already
//!   explored with at least the remaining depth (and an equally or less
//!   constrained canonical floor) is not re-expanded.
//!
//! On divergence the minimal counterexample is found by iterative
//! deepening (shortest failing schedule length) and tightened with the
//! same ddmin machinery the oracle uses, then printed as a replayable
//! `--replay` token string ([`crate::script::encode`]).

use std::collections::HashMap;

use proptest::shrink_sequence;
use simkernel::PollBits;

use crate::model::Model;
use crate::oracle::{Lane, LaneKind, Mutant, Snapshot};
use crate::script::{self, Op};

/// Exploration shape.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Connection slots (2–4 are useful; state space is exponential).
    pub conns: usize,
    /// Maximum schedule length (events, boundaries included).
    pub depth: usize,
    /// Client sends allowed per connection (bounds the alphabet).
    pub max_sends_per_conn: usize,
    /// Seeded fault to inject into the /dev/poll lanes.
    pub mutant: Mutant,
}

impl ExploreConfig {
    /// The PR-blocking CI shape: seconds of wall time, ≥10k schedules.
    pub fn quick() -> ExploreConfig {
        ExploreConfig {
            conns: 3,
            depth: 6,
            max_sends_per_conn: 2,
            mutant: Mutant::None,
        }
    }

    /// The nightly shape: same alphabet, deeper bound (~3.4M schedules,
    /// ~2 minutes in release).
    pub fn full() -> ExploreConfig {
        ExploreConfig {
            conns: 3,
            depth: 9,
            max_sends_per_conn: 2,
            mutant: Mutant::None,
        }
    }
}

/// Aggregate statistics of one exploration run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreStats {
    /// Interior nodes expanded (worlds from which children were tried).
    pub nodes: u64,
    /// Distinct post-pruning schedules fully explored (maximal paths).
    pub schedules: u64,
    /// Wait boundaries executed and checked against the model.
    pub boundaries: u64,
    /// Subtrees skipped because an equal-or-stronger visit was memoized.
    pub dedup_hits: u64,
    /// Distinct world fingerprints seen.
    pub distinct_states: u64,
}

impl ExploreStats {
    fn absorb(&mut self, other: ExploreStats) {
        self.nodes += other.nodes;
        self.schedules += other.schedules;
        self.boundaries += other.boundaries;
        self.dedup_hits += other.dedup_hits;
        self.distinct_states += other.distinct_states;
    }
}

/// How a lane disagreed with the reference model.
#[derive(Debug, Clone)]
pub enum DivergenceKind {
    /// The raw ready set differs from the model's prediction.
    Snapshot {
        /// What the model predicts for this lane.
        expected: Snapshot,
        /// What the lane reported.
        got: Snapshot,
    },
    /// The kernel watcher registry disagrees with the declared interest
    /// set (the POLLREMOVE dual-purge invariant; /dev/poll lanes only).
    WatcherLeak {
        /// The offending slot.
        slot: usize,
        /// Whether the model says a watcher must exist.
        expected: bool,
        /// Whether the kernel actually holds one.
        got: bool,
    },
}

/// A schedule on which a lane diverged from the reference model.
#[derive(Debug, Clone)]
pub struct ExploreFailure {
    /// The failing schedule (its last op is the failing boundary).
    pub schedule: Vec<Op>,
    /// The disagreeing lane.
    pub lane: &'static str,
    /// What went wrong.
    pub kind: DivergenceKind,
}

/// One exploration node: five backend worlds, the reference model, and
/// the canonical-order bookkeeping.
#[derive(Clone)]
struct World {
    lanes: Vec<Lane>,
    model: Model,
    /// Client sends already used per slot.
    sends: Vec<u8>,
    /// Canonical floor: the next non-boundary event's slot must be
    /// `>= min_slot`. Reset by a boundary.
    min_slot: usize,
    /// Two consecutive boundaries observe identical state; the second
    /// is pruned.
    last_was_poll: bool,
}

impl World {
    fn new(cfg: &ExploreConfig) -> World {
        World {
            lanes: LaneKind::all()
                .into_iter()
                .map(|k| Lane::new_pending(k, cfg.conns, cfg.mutant))
                .collect(),
            model: Model::new(cfg.conns),
            sends: vec![0; cfg.conns],
            min_slot: 0,
            last_was_poll: false,
        }
    }

    fn fingerprint(&self) -> u64 {
        let mut h = simcore::fingerprint::Fnv::new();
        for lane in &self.lanes {
            h.write_u64(lane.state_fingerprint());
        }
        h.finish()
    }

    /// The slot an op acts on, for the canonical ordering.
    fn slot_of(&self, op: Op) -> usize {
        match op {
            Op::Accept => self.model.accepted(),
            Op::Watch { conn, .. }
            | Op::Unwatch { conn }
            | Op::ClientSend { conn, .. }
            | Op::ClientClose { conn }
            | Op::ServerRead { conn, .. }
            | Op::ServerSend { conn, .. } => conn,
            Op::Poll => 0,
        }
    }

    /// Applies a non-boundary event to every lane and the model.
    fn apply(&mut self, op: Op) {
        for lane in &mut self.lanes {
            lane.apply(op);
        }
        self.min_slot = self.slot_of(op);
        self.model.apply(op);
        if let Op::ClientSend { conn, .. } = op {
            if let Some(s) = self.sends.get_mut(conn) {
                *s += 1;
            }
        }
        self.last_was_poll = false;
    }

    /// Executes a wait boundary on every lane and checks each against
    /// the reference model. `schedule` is borrowed only to build the
    /// failure report.
    fn boundary(&mut self, schedule: &[Op]) -> Result<(), Box<ExploreFailure>> {
        for lane in &mut self.lanes {
            let kind = lane.kind;
            let got = lane.snapshot_raw();
            let expected = self.model.expected(kind);
            if got != expected {
                return Err(Box::new(ExploreFailure {
                    schedule: schedule.to_vec(),
                    lane: kind.name(),
                    kind: DivergenceKind::Snapshot { expected, got },
                }));
            }
            if matches!(kind, LaneKind::DevPoll | LaneKind::DevPollNoHints) {
                for slot in 0..lane.accepted() {
                    let expect = self.model.expect_kernel_watcher(slot);
                    let have = lane.slot_watched_in_kernel(slot);
                    if expect != have {
                        return Err(Box::new(ExploreFailure {
                            schedule: schedule.to_vec(),
                            lane: kind.name(),
                            kind: DivergenceKind::WatcherLeak {
                                slot,
                                expected: expect,
                                got: have,
                            },
                        }));
                    }
                }
            }
        }
        self.model.apply(Op::Poll);
        self.min_slot = 0;
        self.last_was_poll = true;
        Ok(())
    }

    /// The canonically-enabled events, in deterministic expansion order.
    fn enabled(&self, cfg: &ExploreConfig) -> Vec<Op> {
        let m = &self.model;
        let mut ops = Vec::new();
        if !self.last_was_poll {
            ops.push(Op::Poll);
        }
        if m.accepted() < cfg.conns && m.accepted() >= self.min_slot {
            ops.push(Op::Accept);
        }
        for conn in self.min_slot..cfg.conns {
            if m.is_accepted(conn) {
                for mask in [
                    PollBits::POLLIN,
                    PollBits::POLLOUT,
                    PollBits::POLLIN | PollBits::POLLOUT,
                ] {
                    if m.interest(conn) != Some(mask) {
                        ops.push(Op::Watch { conn, events: mask });
                    }
                }
                if m.interest(conn).is_some() {
                    ops.push(Op::Unwatch { conn });
                }
                if m.has_unread(conn) {
                    ops.push(Op::ServerRead { conn, max: 1 << 20 });
                }
            }
            if !m.fin(conn) {
                if usize::from(self.sends[conn]) < cfg.max_sends_per_conn {
                    ops.push(Op::ClientSend { conn, bytes: 512 });
                }
                ops.push(Op::ClientClose { conn });
            }
        }
        ops
    }
}

/// Memo key: world fingerprint plus the two bits of search bookkeeping
/// that constrain the continuation set. A memoized visit dominates a
/// later one only if it had at least the remaining depth *and* an
/// equally-or-less constrained continuation set (same flags).
type SeenKey = (u64, u32, bool);
type Seen = HashMap<SeenKey, u32>;

struct Ctx<'a> {
    cfg: &'a ExploreConfig,
    seen: Seen,
    stats: ExploreStats,
    schedule: Vec<Op>,
}

/// Runs one full exploration at `cfg.depth`. `Ok` carries the stats of
/// a clean (model-conformant) exploration; `Err` the first divergence
/// in depth-first order.
pub fn explore(cfg: &ExploreConfig) -> Result<ExploreStats, Box<ExploreFailure>> {
    let mut ctx = Ctx {
        cfg,
        seen: Seen::new(),
        stats: ExploreStats::default(),
        schedule: Vec::with_capacity(cfg.depth),
    };
    let root = World::new(cfg);
    dfs(&root, cfg.depth, &mut ctx)?;
    ctx.stats.distinct_states = ctx.seen.len() as u64;
    Ok(ctx.stats)
}

fn dfs(world: &World, depth_left: usize, ctx: &mut Ctx<'_>) -> Result<(), Box<ExploreFailure>> {
    if depth_left == 0 {
        ctx.stats.schedules += 1;
        return Ok(());
    }
    let key: SeenKey = (
        world.fingerprint(),
        world.min_slot as u32,
        world.last_was_poll,
    );
    let remaining = depth_left as u32;
    match ctx.seen.get(&key) {
        Some(&r) if r >= remaining => {
            ctx.stats.dedup_hits += 1;
            return Ok(());
        }
        _ => {
            ctx.seen.insert(key, remaining);
        }
    }
    let ops = world.enabled(ctx.cfg);
    if ops.is_empty() {
        ctx.stats.schedules += 1;
        return Ok(());
    }
    ctx.stats.nodes += 1;
    for op in ops {
        let mut child = world.clone();
        ctx.schedule.push(op);
        let step = if op == Op::Poll {
            ctx.stats.boundaries += 1;
            child.boundary(&ctx.schedule)
        } else {
            child.apply(op);
            Ok(())
        };
        let result = step.and_then(|()| dfs(&child, depth_left - 1, ctx));
        ctx.schedule.pop();
        result?;
    }
    Ok(())
}

/// Replays one explicit schedule (the `--replay` path and the ddmin
/// predicate): fresh worlds, every `Poll` checked against the model.
pub fn replay(ops: &[Op], cfg: &ExploreConfig) -> Result<ExploreStats, Box<ExploreFailure>> {
    let mut world = World::new(cfg);
    let mut stats = ExploreStats::default();
    for (i, &op) in ops.iter().enumerate() {
        if op == Op::Poll {
            stats.boundaries += 1;
            world.boundary(&ops[..=i])?;
        } else {
            world.apply(op);
        }
    }
    stats.schedules = 1;
    Ok(stats)
}

/// A minimal counterexample: found by iterative deepening (no shorter
/// schedule fails), then ddmin-tightened and re-verified.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The minimal failing schedule.
    pub schedule: Vec<Op>,
    /// Its divergence.
    pub failure: ExploreFailure,
    /// Exploration statistics accumulated across all deepening rounds.
    pub stats: ExploreStats,
    /// Depths explored before the failure surfaced.
    pub depth: usize,
}

/// Searches for the shortest failing schedule under `cfg.mutant` by
/// iterative deepening up to `cfg.depth`. Because every subsequence of
/// a schedule is a valid schedule, the ddmin pass cannot shrink below
/// the deepening bound — it re-validates minimality and exercises the
/// exact machinery `--replay` uses.
pub fn find_minimal_counterexample(cfg: &ExploreConfig) -> Option<Counterexample> {
    let mut stats = ExploreStats::default();
    for depth in 1..=cfg.depth {
        let round = ExploreConfig { depth, ..*cfg };
        match explore(&round) {
            Ok(s) => stats.absorb(s),
            Err(failure) => {
                let minimal = shrink_sequence(&failure.schedule, |candidate| {
                    replay(candidate, cfg).is_err()
                });
                let failure = match replay(&minimal, cfg) {
                    Err(f) => *f,
                    Ok(_) => unreachable!("invariant: shrink_sequence keeps failing schedules"),
                };
                return Some(Counterexample {
                    schedule: minimal,
                    failure,
                    stats,
                    depth,
                });
            }
        }
    }
    None
}

/// Renders an explore divergence the way CI and `--replay` print it.
pub fn render_failure(f: &ExploreFailure, cfg: &ExploreConfig) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "lane `{}` diverged from the reference model; schedule ({} ops):",
        f.lane,
        f.schedule.len()
    );
    let _ = write!(out, "{}", script::render(&f.schedule));
    match &f.kind {
        DivergenceKind::Snapshot { expected, got } => {
            let _ = writeln!(out, "at the final boundary:");
            let _ = writeln!(out, "  model expects (slot, bits): {expected:?}");
            let _ = writeln!(out, "  lane reported (slot, bits): {got:?}");
        }
        DivergenceKind::WatcherLeak {
            slot,
            expected,
            got,
        } => {
            let _ = writeln!(
                out,
                "kernel watcher invariant violated on slot {slot}: \
                 interest-table says {expected}, watcher registry says {got} \
                 (POLLREMOVE dual-purge)",
            );
        }
    }
    let _ = writeln!(
        out,
        "replay: cargo run -p simcheck -- explore --conns {} --mutant {} --replay \"{}\"",
        cfg.conns,
        cfg.mutant.name(),
        script::encode(&f.schedule)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(mutant: Mutant) -> ExploreConfig {
        ExploreConfig {
            conns: 2,
            depth: 5,
            max_sends_per_conn: 1,
            mutant,
        }
    }

    #[test]
    fn clean_tiny_world_conforms_to_the_model() {
        let stats = explore(&tiny(Mutant::None)).expect("clean world must match the model");
        assert!(stats.schedules > 0, "must explore at least one schedule");
        assert!(stats.boundaries > 0, "must check at least one boundary");
    }

    #[test]
    fn dedup_actually_fires() {
        let stats = explore(&tiny(Mutant::None)).expect("clean world must match the model");
        assert!(
            stats.dedup_hits > 0,
            "permutation-equivalent states must be memoized: {stats:?}"
        );
    }

    #[test]
    fn replay_roundtrips_through_the_token_encoding() {
        let cfg = tiny(Mutant::None);
        let ops = script::parse("a w0:i d0:512 P r0:1048576 P").expect("valid tokens");
        // 6 ops > depth 5 is fine: replay ignores cfg.depth.
        replay(&ops, &cfg).expect("clean schedule must conform");
    }

    #[test]
    fn consecutive_boundaries_are_pruned() {
        let cfg = tiny(Mutant::None);
        let w = World::new(&cfg);
        let mut after_poll = w.clone();
        after_poll
            .boundary(&[Op::Poll])
            .expect("empty boundary conforms");
        assert!(
            !after_poll.enabled(&cfg).contains(&Op::Poll),
            "a boundary directly after a boundary observes nothing new"
        );
    }

    #[test]
    fn canonical_floor_limits_slots() {
        let cfg = tiny(Mutant::None);
        let mut w = World::new(&cfg);
        w.apply(Op::Accept);
        w.apply(Op::Accept);
        w.apply(Op::ClientSend {
            conn: 1,
            bytes: 512,
        });
        // Floor is now slot 1: no slot-0 events until a boundary.
        assert!(w
            .enabled(&cfg)
            .iter()
            .all(|&op| op == Op::Poll || w.slot_of(op) >= 1));
    }
}
