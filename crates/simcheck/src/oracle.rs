//! The differential backend oracle.
//!
//! One seeded workload script is driven through an independent simulated
//! world per backend — stock `poll()`, `select()`, `/dev/poll` with the
//! paper's full feature set, `/dev/poll` with driver hints disabled, and
//! the RT-signal API (drain + recovery `poll()`, the paper's overflow
//! path) — and the normalised ready set is compared at every `Poll`
//! boundary. All five implement the same level-triggered readiness
//! contract, so any disagreement is a bug in one of them; stock `poll()`
//! is the reference because it is the simplest (it rescans everything on
//! every call).
//!
//! On divergence the failing script is minimised with
//! [`proptest::shrink_sequence`] so the report shows the shortest op
//! sequence that still splits the backends.

use std::collections::BTreeMap;

use devpoll::{
    DevPollBackend, DevPollConfig, DevPollRegistry, EventBackend, PollFd, RtSignalApi,
    SelectBackend, StockPollBackend, WaitResult,
};
use proptest::shrink_sequence;
use simcore::time::{SimDuration, SimTime};
use simkernel::{CostModel, Fd, Kernel, KernelEvent, Pid, PollBits};
use simnet::{EndpointId, HostId, LinkConfig, Network, Side, SockAddr, TcpConfig};

use crate::script::{self, Op, ScriptConfig};

const CLIENT: HostId = HostId(0);
const SERVER: HostId = HostId(1);
/// Sim-time allowed for deliveries to settle after each op.
const SETTLE: SimDuration = SimDuration::from_millis(200);

/// A seeded semantic bug, injected through the doc-hidden fault hooks
/// on [`DevPollRegistry`]. Each one disables the runtime auditor's view
/// of the corresponding invariant, so only external comparison — the
/// differential oracle or `explore`'s reference model — can catch it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutant {
    /// No fault injected.
    #[default]
    None,
    /// `DP_POLL` serves cached-ready results without revalidation
    /// (the §3.2 "has to be reevaluated each time" bug).
    SkipRevalidation,
    /// Interest updates OR into the previous mask instead of replacing
    /// it (the §3.1 Solaris-semantics divergence).
    OrInsteadOfReplace,
    /// `POLLREMOVE` drops the interest-table entry but leaves the
    /// backmap/watcher registration behind (half of the dual purge).
    SkipBackmapPurge,
}

impl Mutant {
    /// The three real faults (everything except `None`).
    pub fn all() -> [Mutant; 3] {
        [
            Mutant::SkipRevalidation,
            Mutant::OrInsteadOfReplace,
            Mutant::SkipBackmapPurge,
        ]
    }

    /// Display / CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Mutant::None => "none",
            Mutant::SkipRevalidation => "skip-revalidation",
            Mutant::OrInsteadOfReplace => "or-semantics",
            Mutant::SkipBackmapPurge => "skip-backmap-purge",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Mutant> {
        match s {
            "none" => Some(Mutant::None),
            "skip-revalidation" => Some(Mutant::SkipRevalidation),
            "or-semantics" => Some(Mutant::OrInsteadOfReplace),
            "skip-backmap-purge" => Some(Mutant::SkipBackmapPurge),
            _ => None,
        }
    }

    fn arm(self, registry: &mut DevPollRegistry) {
        match self {
            Mutant::None => {}
            Mutant::SkipRevalidation => registry.testhook_skip_revalidation(true),
            Mutant::OrInsteadOfReplace => registry.testhook_or_semantics(true),
            Mutant::SkipBackmapPurge => registry.testhook_skip_backmap_purge(true),
        }
    }
}

/// The backends under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneKind {
    /// Stock `poll()` — the reference lane.
    Poll,
    /// `select()`.
    Select,
    /// `/dev/poll`, hints + mmap (the paper's full configuration).
    DevPoll,
    /// `/dev/poll` with driver hints disabled (every scan polls all).
    DevPollNoHints,
    /// RT signals: drain the queue, then the paper's recovery `poll()`.
    RtSig,
}

impl LaneKind {
    /// All lanes, reference first.
    pub fn all() -> [LaneKind; 5] {
        [
            LaneKind::Poll,
            LaneKind::Select,
            LaneKind::DevPoll,
            LaneKind::DevPollNoHints,
            LaneKind::RtSig,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LaneKind::Poll => "poll",
            LaneKind::Select => "select",
            LaneKind::DevPoll => "devpoll",
            LaneKind::DevPollNoHints => "devpoll-nohints",
            LaneKind::RtSig => "rtsig",
        }
    }
}

/// A normalised ready set: `(conn slot, ready bits)` sorted by slot.
pub type Snapshot = Vec<(usize, PollBits)>;

/// Why a run failed.
#[derive(Debug, Clone)]
pub enum Failure {
    /// Two lanes disagreed at a `Poll` boundary.
    Divergence(Divergence),
    /// The lockdep graph recorded an inverted lock acquisition.
    LockOrder {
        /// Which lane.
        lane: &'static str,
        /// The recorded violations, rendered.
        detail: String,
    },
}

/// A disagreement between a lane and the reference.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index of the `Poll` op where the lanes split.
    pub op_index: usize,
    /// The disagreeing lane.
    pub lane: &'static str,
    /// What the reference lane (`poll`) reported.
    pub expected: Snapshot,
    /// What the disagreeing lane reported.
    pub got: Snapshot,
    /// The disagreeing lane's probe snapshot at the divergence.
    pub probe_text: String,
}

/// Statistics from a passing run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Ops applied.
    pub ops: usize,
    /// `Poll` boundaries compared.
    pub boundaries: usize,
    /// Invariant-audit checks performed across the /dev/poll lanes.
    pub audit_checks: u64,
    /// Lock acquisitions recorded by the lockdep graphs.
    pub lock_acquisitions: u64,
}

/// One backend's world: its own network, kernel, process and backend
/// state, so lanes cannot contaminate each other. `Clone` forks the
/// entire world — `explore` snapshots lanes at every decision point.
#[derive(Clone)]
pub(crate) struct Lane {
    pub(crate) kind: LaneKind,
    net: Network,
    pub(crate) kernel: Kernel,
    pub(crate) registry: DevPollRegistry,
    pub(crate) pid: Pid,
    backend: Box<dyn EventBackend>,
    rtapi: RtSignalApi,
    /// Server-side fd per connection slot.
    pub(crate) fds: Vec<Fd>,
    /// Client-side endpoint per connection slot.
    eps: Vec<EndpointId>,
    /// Listener fd (pending accepts pop from here).
    lfd: Fd,
    /// Slot lookup by server fd.
    slot_of: BTreeMap<Fd, usize>,
    /// Current declared interest per slot (drives normalisation and the
    /// rtsig registration set).
    watched: BTreeMap<usize, PollBits>,
    now: SimTime,
}

impl Lane {
    /// The oracle's lane with descriptors allocated from `fd_base`
    /// upward: `conns` connections pre-accepted at setup (slot i = i-th
    /// arrival), backend initialised after the accepts. Base 0 is the
    /// classic layout; elevated bases check readiness semantics are
    /// independent of descriptor numbering.
    pub(crate) fn new_at(kind: LaneKind, conns: usize, mutant: Mutant, fd_base: usize) -> Lane {
        let mut lane = Lane::new_pending_at(kind, conns, mutant, fd_base);
        lane.kernel.begin_batch(lane.now, lane.pid);
        for _ in 0..conns {
            lane.accept_next();
        }
        lane.now = lane.now.max(lane.kernel.end_batch(lane.now, lane.pid));
        lane.pump();
        lane
    }

    /// An `explore` lane: connections are established (handshakes
    /// settled, sitting in the accept queue) but **not** accepted —
    /// `Op::Accept` events accept them one at a time.
    pub(crate) fn new_pending(kind: LaneKind, conns: usize, mutant: Mutant) -> Lane {
        Lane::new_pending_at(kind, conns, mutant, 0)
    }

    /// [`Lane::new_pending`] at an elevated descriptor offset.
    pub(crate) fn new_pending_at(
        kind: LaneKind,
        conns: usize,
        mutant: Mutant,
        fd_base: usize,
    ) -> Lane {
        let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
        let mut kernel = Kernel::new(SERVER, CostModel::k6_2_400mhz());
        let mut registry = DevPollRegistry::new();
        mutant.arm(&mut registry);
        // The limit counts open descriptors (not the highest index), so
        // the default 1024 holds at any base.
        let pid = kernel.spawn_with_fd_base(1024, 1024, fd_base);
        let mut now = SimTime::ZERO;

        kernel.begin_batch(now, pid);
        let lfd = kernel
            .sys_listen(&mut net, now, pid, 80, 128)
            .expect("invariant: listen on a fresh world cannot fail");
        now = now.max(kernel.end_batch(now, pid));

        let mut eps = Vec::with_capacity(conns);
        for _ in 0..conns {
            let conn = net
                .connect(now, CLIENT, SockAddr::new(SERVER, 80), SimDuration::ZERO)
                .expect("invariant: ports cannot be exhausted at setup");
            eps.push(EndpointId::new(conn, Side::Client));
        }

        let backend: Box<dyn EventBackend> = match kind {
            // The rtsig lane's recovery poll reuses the stock backend's
            // interest bookkeeping.
            LaneKind::Poll | LaneKind::RtSig => Box::new(StockPollBackend::new()),
            LaneKind::Select => Box::new(SelectBackend::new()),
            LaneKind::DevPoll => Box::new(DevPollBackend::new()),
            LaneKind::DevPollNoHints => Box::new(DevPollBackend::with_config(
                DevPollConfig {
                    hints: false,
                    ..DevPollConfig::default()
                },
                true,
                512,
                false,
            )),
        };

        let mut lane = Lane {
            kind,
            net,
            kernel,
            registry,
            pid,
            backend,
            rtapi: RtSignalApi::default(),
            fds: Vec::new(),
            eps,
            lfd,
            slot_of: BTreeMap::new(),
            watched: BTreeMap::new(),
            now,
        };

        // Let every handshake complete so the accept queue holds all
        // connections in arrival order, then initialise the backend
        // (for /dev/poll lanes this allocates the dpfd — doing it here
        // keeps fd numbering identical whether slots are accepted at
        // setup or by `Op::Accept` events).
        lane.pump();
        lane.kernel.begin_batch(lane.now, lane.pid);
        lane.backend
            .init(&mut lane.kernel, &mut lane.registry, lane.now, lane.pid)
            .expect("invariant: backend init on a fresh world cannot fail");
        lane.now = lane.now.max(lane.kernel.end_batch(lane.now, lane.pid));
        lane.pump();
        lane
    }

    /// Accepts the next queued connection as the next slot (call inside
    /// a batch). No-op when nothing is queued.
    fn accept_next(&mut self) {
        let Ok(fd) = self
            .kernel
            .sys_accept(&mut self.net, self.now, self.pid, self.lfd)
        else {
            return;
        };
        self.kernel
            .sys_set_nonblock(self.pid, fd)
            .expect("invariant: freshly accepted fd is valid");
        let slot = self.fds.len();
        self.slot_of.insert(fd, slot);
        self.fds.push(fd);
    }

    /// Number of accepted slots so far.
    pub(crate) fn accepted(&self) -> usize {
        self.fds.len()
    }

    /// Whether the kernel watcher registry holds a watcher for `slot`'s
    /// fd — the backmap half of the POLLREMOVE dual purge. Only
    /// meaningful on the /dev/poll lanes, where every watcher comes
    /// from the registry's interest writes.
    pub(crate) fn slot_watched_in_kernel(&self, slot: usize) -> bool {
        self.fds
            .get(slot)
            .is_some_and(|&fd| self.kernel.is_watched(self.pid, fd))
    }

    /// Folds this lane's entire world — network, kernel, /dev/poll
    /// registry, backend bookkeeping, slot maps — into one fingerprint.
    pub(crate) fn state_fingerprint(&self) -> u64 {
        let mut h = simcore::fingerprint::Fnv::new();
        h.write_u64(self.net.state_fingerprint());
        h.write_u64(self.kernel.state_fingerprint());
        h.write_u64(self.registry.state_fingerprint());
        self.backend.fingerprint_into(&mut h);
        h.write_u64(self.now.as_nanos());
        h.write_len(self.fds.len());
        for &fd in &self.fds {
            h.write_i64(i64::from(fd));
        }
        h.write_len(self.watched.len());
        for (&slot, &events) in &self.watched {
            h.write_usize(slot);
            h.write_u32(u32::from(events.0));
        }
        h.finish()
    }

    /// Drains network and kernel deadlines for one settle window,
    /// routing driver hints into the `/dev/poll` registry exactly like
    /// the testbed loop (`crates/httperf/src/testbed.rs`).
    fn pump(&mut self) {
        let horizon = self.now + SETTLE;
        loop {
            let mut next = self.net.next_deadline();
            if let Some(k) = self.kernel.next_deadline() {
                next = Some(next.map_or(k, |n| n.min(k)));
            }
            let Some(next) = next else { break };
            if next > horizon {
                break;
            }
            self.now = self.now.max(next);
            let t = self.now;
            for n in self.net.advance(t) {
                self.kernel.on_net(t, &n);
            }
            for e in self.kernel.advance(t) {
                if let KernelEvent::FdEvent { pid, fd, .. } = e {
                    self.registry.on_fd_event(&mut self.kernel, t, pid, fd);
                }
            }
        }
    }

    /// Applies one non-`Poll` op and lets the world settle.
    ///
    /// Total: server-side ops on a not-yet-accepted slot are no-ops, so
    /// any subsequence of a valid schedule is itself a valid schedule —
    /// the property ddmin shrinking relies on.
    pub(crate) fn apply(&mut self, op: Op) {
        match op {
            Op::Accept => {
                self.kernel.begin_batch(self.now, self.pid);
                self.accept_next();
                self.now = self.now.max(self.kernel.end_batch(self.now, self.pid));
            }
            Op::Watch { conn, events } => {
                let Some(&fd) = self.fds.get(conn) else {
                    return;
                };
                self.kernel.begin_batch(self.now, self.pid);
                self.backend
                    .set_interest(
                        &mut self.kernel,
                        &mut self.registry,
                        self.now,
                        self.pid,
                        fd,
                        events,
                    )
                    .expect("invariant: interest update on a live fd cannot fail");
                if self.kind == LaneKind::RtSig {
                    let _ = self.rtapi.register(&mut self.kernel, self.pid, fd);
                }
                self.now = self.now.max(self.kernel.end_batch(self.now, self.pid));
                self.watched.insert(conn, events);
            }
            Op::Unwatch { conn } => {
                let Some(&fd) = self.fds.get(conn) else {
                    return;
                };
                self.kernel.begin_batch(self.now, self.pid);
                self.backend
                    .remove_interest(&mut self.kernel, &mut self.registry, self.now, self.pid, fd)
                    .expect("invariant: interest removal cannot fail");
                if self.kind == LaneKind::RtSig {
                    let _ = self.rtapi.unregister(&mut self.kernel, self.pid, fd);
                }
                self.now = self.now.max(self.kernel.end_batch(self.now, self.pid));
                self.watched.remove(&conn);
            }
            Op::ClientSend { conn, bytes } => {
                let Some(&ep) = self.eps.get(conn) else {
                    return;
                };
                let payload = vec![b'x'; bytes];
                let _ = self.net.send(self.now, ep, &payload);
            }
            Op::ClientClose { conn } => {
                let Some(&ep) = self.eps.get(conn) else {
                    return;
                };
                let _ = self.net.close(self.now, ep);
            }
            Op::ServerRead { conn, max } => {
                let Some(&fd) = self.fds.get(conn) else {
                    return;
                };
                self.kernel.begin_batch(self.now, self.pid);
                let _ = self
                    .kernel
                    .sys_read(&mut self.net, self.now, self.pid, fd, max);
                self.now = self.now.max(self.kernel.end_batch(self.now, self.pid));
            }
            Op::ServerSend { conn, bytes } => {
                let Some(&fd) = self.fds.get(conn) else {
                    return;
                };
                let payload = vec![b'y'; bytes];
                self.kernel.begin_batch(self.now, self.pid);
                let _ = self
                    .kernel
                    .sys_write(&mut self.net, self.now, self.pid, fd, &payload);
                self.now = self.now.max(self.kernel.end_batch(self.now, self.pid));
            }
            Op::Poll => unreachable!("Poll boundaries are handled by snapshot()"),
        }
        self.pump();
    }

    /// Collects this lane's normalised ready set at a `Poll` boundary.
    fn snapshot(&mut self) -> Snapshot {
        let events = self.wait_events();
        normalize(&events, &self.slot_of, &self.watched)
    }

    /// Collects this lane's **raw** ready set at a `Poll` boundary:
    /// `(slot, full revents)` with no interest masking. The oracle's
    /// normalised comparison intersects with the declared interest,
    /// which hides whole bug classes (an OR-semantics fault widens the
    /// reported mask but never escapes the intersection); `explore`
    /// compares raw bits against its per-lane reference model instead.
    pub(crate) fn snapshot_raw(&mut self) -> Snapshot {
        let events = self.wait_events();
        let mut out: Vec<(usize, PollBits)> = events
            .iter()
            .filter_map(|e| self.slot_of.get(&e.fd).map(|&s| (s, e.revents)))
            .collect();
        out.sort_by_key(|&(s, _)| s);
        out
    }

    /// Runs one wait boundary (RT drain + recovery for the rtsig lane,
    /// then a zero-timeout backend wait) and returns the raw events.
    fn wait_events(&mut self) -> Vec<PollFd> {
        let max = self.fds.len() + 4;
        self.kernel.begin_batch(self.now, self.pid);
        if self.kind == LaneKind::RtSig {
            // Drain the RT queue (the events are only hints), flush on
            // overflow, then take the paper's recovery path: a full
            // poll() over the interest set.
            while let Ok(ev) = self.rtapi.next_event(&mut self.kernel, self.pid) {
                if ev == devpoll::RtEvent::Overflow {
                    self.rtapi.flush(&mut self.kernel, self.pid);
                    break;
                }
            }
        }
        let result = self
            .backend
            .wait(
                &mut self.kernel,
                &mut self.registry,
                self.now,
                self.pid,
                max,
                0,
            )
            .expect("invariant: a zero-timeout wait cannot fail");
        self.now = self.now.max(self.kernel.end_batch(self.now, self.pid));
        self.pump();

        match result {
            WaitResult::WouldBlock => Vec::new(),
            WaitResult::Events(v) => v,
        }
    }
}

/// Reduces raw wait results to the comparable core: per connection slot,
/// the reported bits restricted to the declared interest's `POLLIN`/
/// `POLLOUT` (the only bits every backend can express — `select()` has
/// no HUP/ERR channel and `/dev/poll` adds always-reported bits).
fn normalize(
    events: &[PollFd],
    slot_of: &BTreeMap<Fd, usize>,
    watched: &BTreeMap<usize, PollBits>,
) -> Snapshot {
    let mut out: BTreeMap<usize, PollBits> = BTreeMap::new();
    for e in events {
        let Some(&slot) = slot_of.get(&e.fd) else {
            continue;
        };
        let Some(&interest) = watched.get(&slot) else {
            continue;
        };
        let bits = e.revents & interest & (PollBits::POLLIN | PollBits::POLLOUT);
        if !bits.is_empty() {
            *out.entry(slot).or_insert(PollBits::EMPTY) |= bits;
        }
    }
    out.into_iter().collect()
}

/// Runs `ops` through every lane, comparing at each `Poll` boundary.
pub fn run_script(ops: &[Op], conns: usize, mutant: Mutant) -> Result<RunStats, Failure> {
    run_script_at(ops, conns, mutant, 0)
}

/// [`run_script`] with every lane's descriptors allocated from
/// `fd_base` upward. Readiness semantics must not depend on descriptor
/// numbering, so any script that passes (or fails) at base 0 must do
/// the same at any base — the layout-independence check the paged fd
/// tables make cheap to run at offsets like 10^6.
pub fn run_script_at(
    ops: &[Op],
    conns: usize,
    mutant: Mutant,
    fd_base: usize,
) -> Result<RunStats, Failure> {
    // `select()` genuinely cannot number descriptors past FD_SETSIZE —
    // the paper's §2 wall, not a divergence — so its lane only runs at
    // bases where the whole world fits under 1024.
    let fits_select = fd_base + conns + 8 < devpoll::FD_SETSIZE;
    let mut lanes: Vec<Lane> = LaneKind::all()
        .into_iter()
        .filter(|&k| fits_select || k != LaneKind::Select)
        .map(|k| Lane::new_at(k, conns, mutant, fd_base))
        .collect();
    let mut stats = RunStats {
        ops: ops.len(),
        ..RunStats::default()
    };
    for (i, &op) in ops.iter().enumerate() {
        if op == Op::Poll {
            stats.boundaries += 1;
            let reference = lanes[0].snapshot();
            for lane in &mut lanes[1..] {
                let got = lane.snapshot();
                if got != reference {
                    return Err(Failure::Divergence(Divergence {
                        op_index: i,
                        lane: lane.kind.name(),
                        expected: reference,
                        got,
                        probe_text: lane.kernel.probe().snapshot().to_text(),
                    }));
                }
            }
        } else {
            for lane in &mut lanes {
                lane.apply(op);
            }
        }
    }
    for lane in &lanes {
        let graph = lane.registry.lockdep();
        stats.lock_acquisitions += graph.acquisitions();
        if !graph.violations().is_empty() {
            let detail = graph
                .violations()
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("; ");
            return Err(Failure::LockOrder {
                lane: lane.kind.name(),
                detail,
            });
        }
        stats.audit_checks += lane.kernel.probe().counter("audit.checks");
    }
    Ok(stats)
}

/// Runs the generated script for `seed`.
pub fn run_seed(seed: u64, cfg: ScriptConfig, mutant: Mutant) -> Result<RunStats, Failure> {
    run_script(&script::generate(seed, cfg), cfg.conns, mutant)
}

/// A fully-reported oracle failure: the seed, the minimal script that
/// still reproduces it, and the divergence details.
#[derive(Debug, Clone)]
pub struct ShrunkFailure {
    /// The failing seed.
    pub seed: u64,
    /// The minimal op sequence still failing.
    pub minimal: Vec<Op>,
    /// The failure observed on the minimal script.
    pub failure: Failure,
}

/// Minimises the failing script for `seed` and re-runs it for the final
/// report.
pub fn shrink_failure(seed: u64, cfg: ScriptConfig, mutant: Mutant) -> ShrunkFailure {
    let full = script::generate(seed, cfg);
    let minimal = shrink_sequence(&full, |candidate| {
        run_script(candidate, cfg.conns, mutant).is_err()
    });
    let failure = run_script(&minimal, cfg.conns, mutant)
        .expect_err("invariant: shrink_sequence only keeps failing scripts");
    ShrunkFailure {
        seed,
        minimal,
        failure,
    }
}

/// Sweeps `seeds`, stopping at (and shrinking) the first failure.
pub fn sweep(
    seeds: impl IntoIterator<Item = u64>,
    cfg: ScriptConfig,
    mutant: Mutant,
) -> Result<RunStats, Box<ShrunkFailure>> {
    let mut total = RunStats::default();
    for seed in seeds {
        match run_seed(seed, cfg, mutant) {
            Ok(s) => {
                total.ops += s.ops;
                total.boundaries += s.boundaries;
                total.audit_checks += s.audit_checks;
                total.lock_acquisitions += s.lock_acquisitions;
            }
            Err(_) => return Err(Box::new(shrink_failure(seed, cfg, mutant))),
        }
    }
    Ok(total)
}

/// Renders a shrunk failure the way `--replay` and CI print it.
pub fn render_failure(f: &ShrunkFailure) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "seed {} diverged; minimal script:", f.seed);
    let _ = write!(out, "{}", script::render(&f.minimal));
    match &f.failure {
        Failure::Divergence(d) => {
            let _ = writeln!(
                out,
                "at op {}: lane `{}` disagrees with reference `poll`",
                d.op_index, d.lane
            );
            let _ = writeln!(out, "  expected (slot, bits): {:?}", d.expected);
            let _ = writeln!(out, "  got      (slot, bits): {:?}", d.got);
            let _ = writeln!(out, "probe snapshot of `{}` at divergence:", d.lane);
            for line in d.probe_text.lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        Failure::LockOrder { lane, detail } => {
            let _ = writeln!(out, "lock-order violation in lane `{lane}`: {detail}");
        }
    }
    out
}
