//! The `simcheck` CLI: offline analysis passes over the simulation.
//!
//! ```text
//! simcheck all                  # lint + oracle sweep + audit summary (CI entry point)
//! simcheck lint                 # source lint pass against simcheck.allow
//! simcheck lint --print-budgets # emit current counts in allowlist format
//! simcheck oracle [--seeds N] [--conns N] [--ops N]
//! simcheck audit  [--seed N]    # one audited run; prints live check counts
//! simcheck --replay <seed>      # rerun one seed; on divergence print the
//!                               # minimal script + probe snapshot
//! ```
//!
//! Exit status is non-zero on any finding, so CI can gate on it.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use simcheck::oracle::{self, Failure};
use simcheck::script::ScriptConfig;
use simcheck::{lint, script};

/// Repository root (the workspace the binary was built from).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn script_config(args: &[String]) -> ScriptConfig {
    let mut cfg = ScriptConfig::default();
    if let Some(c) = parse_flag(args, "--conns") {
        cfg.conns = (c as usize).max(1);
    }
    if let Some(o) = parse_flag(args, "--ops") {
        cfg.ops = o as usize;
    }
    cfg
}

fn run_lint(root: &Path, print_budgets: bool) -> bool {
    let allow_path = root.join("simcheck.allow");
    let allow_text = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let hot = lint::parse_hot_list(&allow_text);
    let findings = lint::scan(root, &hot);
    if print_budgets {
        print!("{}", lint::render_budgets(&findings));
        return true;
    }
    let budgets = lint::parse_allowlist(&allow_text);
    let verdict = lint::check(&findings, &budgets);
    println!(
        "lint: {} finding(s) across {} budget line(s)",
        verdict.total,
        budgets.len()
    );
    if !verdict.ok() {
        println!("lint: FAIL — findings beyond the simcheck.allow budget:");
        for v in &verdict.over_budget {
            println!("  {v}");
        }
        // Per-site detail so the offending lines are actionable.
        for f in &findings {
            println!("  {f}");
        }
        return false;
    }
    for s in &verdict.slack {
        println!("lint: note — {s}");
    }
    println!("lint: OK (no findings outside the allowlist)");
    true
}

fn run_oracle(args: &[String]) -> bool {
    let seeds = parse_flag(args, "--seeds").unwrap_or(25);
    let cfg = script_config(args);
    match oracle::sweep(0..seeds, cfg, false) {
        Ok(stats) => {
            println!(
                "oracle: OK — {seeds} seed(s), {} op(s), {} boundarie(s) compared, \
                 {} audit check(s), {} lock acquisition(s)",
                stats.ops, stats.boundaries, stats.audit_checks, stats.lock_acquisitions
            );
            true
        }
        Err(failure) => {
            println!("oracle: FAIL");
            print!("{}", oracle::render_failure(&failure));
            println!(
                "replay with: cargo run -p simcheck -- --replay {}",
                failure.seed
            );
            false
        }
    }
}

fn run_audit(args: &[String]) -> bool {
    let seed = parse_flag(args, "--seed").unwrap_or(0);
    let cfg = script_config(args);
    match oracle::run_seed(seed, cfg, false) {
        Ok(stats) => {
            println!(
                "audit: OK — seed {seed}: {} invariant check(s) live, {} lock acquisition(s), \
                 0 order violations",
                stats.audit_checks, stats.lock_acquisitions
            );
            stats.audit_checks > 0
        }
        Err(Failure::Divergence(d)) => {
            println!(
                "audit: FAIL — lanes diverged at op {} ({})",
                d.op_index, d.lane
            );
            false
        }
        Err(Failure::LockOrder { lane, detail }) => {
            println!("audit: FAIL — lock order violation in `{lane}`: {detail}");
            false
        }
    }
}

fn run_replay(seed: u64, args: &[String]) -> bool {
    let cfg = script_config(args);
    match oracle::run_seed(seed, cfg, false) {
        Ok(stats) => {
            println!(
                "replay: seed {seed} passes ({} boundarie(s) compared); script:",
                stats.boundaries
            );
            print!("{}", script::render(&script::generate(seed, cfg)));
            true
        }
        Err(_) => {
            let failure = oracle::shrink_failure(seed, cfg, false);
            print!("{}", oracle::render_failure(&failure));
            false
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let ok = match cmd {
        "lint" => run_lint(&repo_root(), args.iter().any(|a| a == "--print-budgets")),
        "oracle" => run_oracle(&args),
        "audit" => run_audit(&args),
        "--replay" => match args.get(1).and_then(|s| s.parse().ok()) {
            Some(seed) => run_replay(seed, &args),
            None => {
                eprintln!("usage: simcheck --replay <seed>");
                false
            }
        },
        "all" => {
            let lint_ok = run_lint(&repo_root(), false);
            let oracle_ok = run_oracle(&args);
            let audit_ok = run_audit(&args);
            lint_ok && oracle_ok && audit_ok
        }
        other => {
            eprintln!("unknown command `{other}`; see src/main.rs docs for usage");
            false
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
