//! The `simcheck` CLI: offline analysis passes over the simulation.
//!
//! ```text
//! simcheck all                  # lint + oracle sweep + audit + quick explore (CI entry)
//! simcheck lint                 # source lint pass against simcheck.allow
//! simcheck lint --print-budgets # emit current counts in allowlist format
//! simcheck oracle [--seeds N] [--conns N] [--ops N]
//! simcheck audit  [--seed N]    # one audited run; prints live check counts
//! simcheck explore [--depth quick|full|N] [--conns N] [--max-sends N]
//!                  [--mutant NAME] [--min-schedules N]
//!                  [--replay "<tokens>"]
//!                               # bounded exhaustive model checking; with a
//!                               # mutant, hunts the minimal counterexample
//! simcheck mutants [--seeds N]  # explore vs. random oracle on all seeded
//!                               # faults; explore must win strictly
//! simcheck --replay <seed>      # rerun one oracle seed; on divergence print
//!                               # the minimal script + probe snapshot
//! ```
//!
//! Exit status is non-zero on any finding, so CI can gate on it.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use simcheck::explore::{self, ExploreConfig};
use simcheck::oracle::{self, Failure, Mutant};
use simcheck::script::ScriptConfig;
use simcheck::{lint, script};

/// Repository root (the workspace the binary was built from).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn parse_str_flag<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn script_config(args: &[String]) -> ScriptConfig {
    let mut cfg = ScriptConfig::default();
    if let Some(c) = parse_flag(args, "--conns") {
        cfg.conns = (c as usize).max(1);
    }
    if let Some(o) = parse_flag(args, "--ops") {
        cfg.ops = o as usize;
    }
    cfg
}

fn run_lint(root: &Path, print_budgets: bool) -> bool {
    let allow_path = root.join("simcheck.allow");
    let allow_text = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let hot = lint::parse_hot_list(&allow_text);
    let findings = lint::scan(root, &hot);
    if print_budgets {
        print!("{}", lint::render_budgets(&findings));
        return true;
    }
    let budgets = lint::parse_allowlist(&allow_text);
    let verdict = lint::check(&findings, &budgets);
    println!(
        "lint: {} finding(s) across {} budget line(s)",
        verdict.total,
        budgets.len()
    );
    if !verdict.ok() {
        println!("lint: FAIL — findings beyond the simcheck.allow budget:");
        for v in &verdict.over_budget {
            println!("  {v}");
        }
        // Per-site detail so the offending lines are actionable.
        for f in &findings {
            println!("  {f}");
        }
        return false;
    }
    for s in &verdict.slack {
        println!("lint: note — {s}");
    }
    println!("lint: OK (no findings outside the allowlist)");
    true
}

fn run_oracle(args: &[String]) -> bool {
    let seeds = parse_flag(args, "--seeds").unwrap_or(25);
    let cfg = script_config(args);
    match oracle::sweep(0..seeds, cfg, Mutant::None) {
        Ok(stats) => {
            println!(
                "oracle: OK — {seeds} seed(s), {} op(s), {} boundarie(s) compared, \
                 {} audit check(s), {} lock acquisition(s)",
                stats.ops, stats.boundaries, stats.audit_checks, stats.lock_acquisitions
            );
            true
        }
        Err(failure) => {
            println!("oracle: FAIL");
            print!("{}", oracle::render_failure(&failure));
            println!(
                "replay with: cargo run -p simcheck -- --replay {}",
                failure.seed
            );
            false
        }
    }
}

fn run_audit(args: &[String]) -> bool {
    let seed = parse_flag(args, "--seed").unwrap_or(0);
    let cfg = script_config(args);
    match oracle::run_seed(seed, cfg, Mutant::None) {
        Ok(stats) => {
            println!(
                "audit: OK — seed {seed}: {} invariant check(s) live, {} lock acquisition(s), \
                 0 order violations",
                stats.audit_checks, stats.lock_acquisitions
            );
            stats.audit_checks > 0
        }
        Err(Failure::Divergence(d)) => {
            println!(
                "audit: FAIL — lanes diverged at op {} ({})",
                d.op_index, d.lane
            );
            false
        }
        Err(Failure::LockOrder { lane, detail }) => {
            println!("audit: FAIL — lock order violation in `{lane}`: {detail}");
            false
        }
    }
}

fn run_replay(seed: u64, args: &[String]) -> bool {
    let cfg = script_config(args);
    match oracle::run_seed(seed, cfg, Mutant::None) {
        Ok(stats) => {
            println!(
                "replay: seed {seed} passes ({} boundarie(s) compared); script:",
                stats.boundaries
            );
            print!("{}", script::render(&script::generate(seed, cfg)));
            true
        }
        Err(_) => {
            let failure = oracle::shrink_failure(seed, cfg, Mutant::None);
            print!("{}", oracle::render_failure(&failure));
            false
        }
    }
}

/// Builds an [`ExploreConfig`] from `--depth quick|full|N`, `--conns`,
/// `--max-sends` and `--mutant`.
fn explore_config(args: &[String]) -> Result<ExploreConfig, String> {
    let mut cfg = match parse_str_flag(args, "--depth") {
        None | Some("quick") => ExploreConfig::quick(),
        Some("full") => ExploreConfig::full(),
        Some(n) => {
            let depth: usize = n
                .parse()
                .map_err(|_| format!("--depth expects quick, full or a number, got `{n}`"))?;
            ExploreConfig {
                depth,
                ..ExploreConfig::quick()
            }
        }
    };
    if let Some(c) = parse_flag(args, "--conns") {
        cfg.conns = (c as usize).clamp(1, 4);
    }
    if let Some(s) = parse_flag(args, "--max-sends") {
        cfg.max_sends_per_conn = s as usize;
    }
    if let Some(name) = parse_str_flag(args, "--mutant") {
        cfg.mutant = Mutant::parse(name)
            .ok_or_else(|| format!("unknown mutant `{name}` (see `simcheck mutants`)"))?;
    }
    Ok(cfg)
}

fn run_explore(args: &[String]) -> bool {
    let cfg = match explore_config(args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("explore: {msg}");
            return false;
        }
    };
    if let Some(tokens) = parse_str_flag(args, "--replay") {
        return run_explore_replay(tokens, &cfg);
    }
    let started = Instant::now();
    if cfg.mutant != Mutant::None {
        // Mutant hunt: iterative deepening for the shortest failing
        // schedule, then ddmin. *Not* finding one is the failure.
        return match explore::find_minimal_counterexample(&cfg) {
            Some(cx) => {
                println!(
                    "explore: mutant `{}` caught — minimal counterexample ({} op(s), \
                     found at depth {}, {} schedule(s) explored, {:.1}s):",
                    cfg.mutant.name(),
                    cx.schedule.len(),
                    cx.depth,
                    cx.stats.schedules,
                    started.elapsed().as_secs_f64()
                );
                print!("{}", explore::render_failure(&cx.failure, &cfg));
                true
            }
            None => {
                println!(
                    "explore: FAIL — mutant `{}` survived exploration to depth {}",
                    cfg.mutant.name(),
                    cfg.depth
                );
                false
            }
        };
    }
    match explore::explore(&cfg) {
        Ok(stats) => {
            let elapsed = started.elapsed().as_secs_f64();
            println!(
                "explore: OK — conns {} depth {}: {} schedule(s), {} boundarie(s) checked \
                 against the model, {} node(s), {} distinct state(s), {} dedup hit(s), {elapsed:.1}s",
                cfg.conns,
                cfg.depth,
                stats.schedules,
                stats.boundaries,
                stats.nodes,
                stats.distinct_states,
                stats.dedup_hits
            );
            if let Some(min) = parse_flag(args, "--min-schedules") {
                if stats.schedules < min {
                    println!(
                        "explore: FAIL — only {} schedule(s), gate requires >= {min} \
                         (exploration shrank; did pruning get too aggressive?)",
                        stats.schedules
                    );
                    return false;
                }
            }
            true
        }
        Err(failure) => {
            println!("explore: FAIL — a lane diverged from the reference model");
            print!("{}", explore::render_failure(&failure, &cfg));
            false
        }
    }
}

fn run_explore_replay(tokens: &str, cfg: &ExploreConfig) -> bool {
    let ops = match script::parse(tokens) {
        Ok(ops) => ops,
        Err(msg) => {
            eprintln!("explore --replay: {msg}");
            return false;
        }
    };
    match explore::replay(&ops, cfg) {
        Ok(stats) => {
            println!(
                "explore replay: {} op(s) conform to the model ({} boundarie(s) checked)",
                ops.len(),
                stats.boundaries
            );
            // A replay that *passes* is the suspicious case when the
            // schedule came out of a failure report: signal it.
            cfg.mutant == Mutant::None
        }
        Err(failure) => {
            println!("explore replay: diverges as recorded");
            print!("{}", explore::render_failure(&failure, cfg));
            // Reproducing a recorded divergence is the expected outcome
            // when replaying a counterexample under its mutant.
            cfg.mutant != Mutant::None
        }
    }
}

/// One row of the explore-vs-oracle comparison.
struct MutantRow {
    mutant: Mutant,
    explore_len: Option<usize>,
    /// Minimal shrunk oracle script length over all failing seeds, plus
    /// the `conns` accepts the oracle harness performs implicitly
    /// before every script (the explore schedule pays for its accepts
    /// as explicit ops, so the comparison counts both sides' setup).
    oracle_len: Option<usize>,
    oracle_failing_seeds: usize,
}

fn run_mutants(args: &[String]) -> bool {
    let seeds = parse_flag(args, "--seeds").unwrap_or(200);
    // Two connections suffice for every seeded fault and keep the
    // deepening rounds fast; depth 8 leaves headroom over the deepest
    // known counterexample (6 ops for skip-revalidation).
    let ex_cfg = ExploreConfig {
        conns: 2,
        depth: 8,
        max_sends_per_conn: 2,
        mutant: Mutant::None,
    };
    let or_cfg = ScriptConfig::default();
    let mut rows = Vec::new();
    for mutant in Mutant::all() {
        let cx = explore::find_minimal_counterexample(&ExploreConfig { mutant, ..ex_cfg });
        let mut best: Option<usize> = None;
        let mut failing = 0usize;
        for seed in 0..seeds {
            if oracle::run_seed(seed, or_cfg, mutant).is_err() {
                failing += 1;
                let shrunk = oracle::shrink_failure(seed, or_cfg, mutant);
                let len = shrunk.minimal.len() + or_cfg.conns;
                if best.is_none_or(|b| len < b) {
                    best = Some(len);
                }
            }
        }
        rows.push(MutantRow {
            mutant,
            explore_len: cx.map(|c| c.schedule.len()),
            oracle_len: best,
            oracle_failing_seeds: failing,
        });
    }
    let mut ok = true;
    println!("mutants: explore vs. random oracle ({seeds} seed(s); lengths include accepts)");
    for row in &rows {
        let explore_s = row
            .explore_len
            .map_or("MISSED".to_string(), |l| format!("{l} op(s)"));
        let oracle_s = row.oracle_len.map_or_else(
            || "not caught".to_string(),
            |l| format!("{l} op(s), {} failing seed(s)", row.oracle_failing_seeds),
        );
        let win = match (row.explore_len, row.oracle_len) {
            (Some(e), Some(o)) => e < o,
            (Some(_), None) => true,
            _ => false,
        };
        ok &= win;
        println!(
            "  {:<20} explore {:<10} oracle {:<30} {}",
            row.mutant.name(),
            explore_s,
            oracle_s,
            if win { "explore wins" } else { "FAIL" }
        );
    }
    if ok {
        println!("mutants: OK — every seeded fault caught, strictly shorter than the oracle");
    } else {
        println!("mutants: FAIL — a seeded fault was missed or not strictly shorter");
    }
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let ok = match cmd {
        "lint" => run_lint(&repo_root(), args.iter().any(|a| a == "--print-budgets")),
        "oracle" => run_oracle(&args),
        "audit" => run_audit(&args),
        "explore" => run_explore(&args),
        "mutants" => run_mutants(&args),
        "--replay" => match args.get(1).and_then(|s| s.parse().ok()) {
            Some(seed) => run_replay(seed, &args),
            None => {
                eprintln!("usage: simcheck --replay <seed>");
                false
            }
        },
        "all" => {
            let lint_ok = run_lint(&repo_root(), false);
            let oracle_ok = run_oracle(&args);
            let audit_ok = run_audit(&args);
            let explore_ok = run_explore(&["--depth".into(), "quick".into()]);
            lint_ok && oracle_ok && audit_ok && explore_ok
        }
        other => {
            eprintln!("unknown command `{other}`; see src/main.rs docs for usage");
            false
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
