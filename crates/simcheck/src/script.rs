//! Seeded event scripts: the deterministic workloads the differential
//! oracle drives through every backend.
//!
//! A script is a flat list of [`Op`]s over a fixed set of pre-established
//! connections. Generation is a pure function of the seed (via the
//! proptest shim's splitmix64 generator), so any failure is replayable
//! from its seed alone, and a script slice remains a valid script — the
//! property [`proptest::shrink_sequence`] needs to minimise one.

use proptest::Rng;
use simkernel::PollBits;
use std::fmt;

/// One step of a workload script.
///
/// Connections are referred to by slot index (0..conns); each backend
/// lane maps slots to its own fds/endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Accept the next pending connection (slots are accepted in
    /// arrival order, so the k-th `Accept` establishes slot k). Only
    /// emitted by `explore` schedules; oracle scripts pre-accept every
    /// slot at setup, and an `Accept` with nothing pending is a no-op.
    Accept,
    /// Declare interest in `events` on the slot's server fd.
    Watch {
        /// Connection slot.
        conn: usize,
        /// Requested event mask.
        events: PollBits,
    },
    /// Drop interest in the slot's server fd (may be a no-op).
    Unwatch {
        /// Connection slot.
        conn: usize,
    },
    /// The client writes `bytes` of payload.
    ClientSend {
        /// Connection slot.
        conn: usize,
        /// Payload size.
        bytes: usize,
    },
    /// The client half-closes its side.
    ClientClose {
        /// Connection slot.
        conn: usize,
    },
    /// The server reads up to `max` bytes.
    ServerRead {
        /// Connection slot.
        conn: usize,
        /// Read size cap.
        max: usize,
    },
    /// The server writes `bytes` of payload.
    ServerSend {
        /// Connection slot.
        conn: usize,
        /// Payload size.
        bytes: usize,
    },
    /// A wait boundary: every lane collects its ready set and the oracle
    /// compares the normalised snapshots.
    Poll,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::Accept => write!(f, "accept"),
            Op::Watch { conn, events } => write!(f, "watch      c{conn} {events:?}"),
            Op::Unwatch { conn } => write!(f, "unwatch    c{conn}"),
            Op::ClientSend { conn, bytes } => write!(f, "c-send     c{conn} {bytes}B"),
            Op::ClientClose { conn } => write!(f, "c-close    c{conn}"),
            Op::ServerRead { conn, max } => write!(f, "s-read     c{conn} max {max}B"),
            Op::ServerSend { conn, bytes } => write!(f, "s-send     c{conn} {bytes}B"),
            Op::Poll => write!(f, "poll"),
        }
    }
}

/// Script shape knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScriptConfig {
    /// Pre-established connections (slots).
    pub conns: usize,
    /// Generated ops before the closing `Poll`.
    pub ops: usize,
}

impl Default for ScriptConfig {
    fn default() -> ScriptConfig {
        ScriptConfig { conns: 5, ops: 40 }
    }
}

/// Generates the script for `seed`.
///
/// Deterministic: same seed, same script. Every script ends with a
/// `Poll` so at least one comparison boundary exists.
pub fn generate(seed: u64, cfg: ScriptConfig) -> Vec<Op> {
    let mut rng = Rng::from_seed(seed);
    let mut ops = Vec::with_capacity(cfg.ops + 1);
    for _ in 0..cfg.ops {
        let conn = (rng.next_u64() as usize) % cfg.conns;
        let op = match rng.next_u64() % 100 {
            0..=17 => Op::Watch {
                conn,
                events: match rng.next_u64() % 3 {
                    0 => PollBits::POLLIN,
                    1 => PollBits::POLLOUT,
                    _ => PollBits::POLLIN | PollBits::POLLOUT,
                },
            },
            18..=25 => Op::Unwatch { conn },
            26..=45 => Op::ClientSend {
                conn,
                bytes: 1 + (rng.next_u64() as usize) % 2048,
            },
            46..=49 => Op::ClientClose { conn },
            50..=67 => Op::ServerRead {
                conn,
                max: 1 + (rng.next_u64() as usize) % 4096,
            },
            68..=75 => Op::ServerSend {
                conn,
                bytes: 1 + (rng.next_u64() as usize) % 1024,
            },
            _ => Op::Poll,
        };
        ops.push(op);
    }
    ops.push(Op::Poll);
    ops
}

/// Encodes a script as one compact replay token per op, space-joined —
/// the form `simcheck explore --replay` accepts and counterexample
/// reports print.
///
/// Tokens: `a` accept · `w<c>:<i|o|io>` watch · `u<c>` unwatch ·
/// `d<c>:<bytes>` client send (data) · `f<c>` client close (fin) ·
/// `r<c>:<max>` server read · `s<c>:<bytes>` server send · `P` poll.
pub fn encode(ops: &[Op]) -> String {
    let mut out = String::new();
    for (i, op) in ops.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        match *op {
            Op::Accept => out.push('a'),
            Op::Watch { conn, events } => {
                let mask = match (
                    events.contains(PollBits::POLLIN),
                    events.contains(PollBits::POLLOUT),
                ) {
                    (true, false) => "i",
                    (false, true) => "o",
                    _ => "io",
                };
                out.push_str(&format!("w{conn}:{mask}"));
            }
            Op::Unwatch { conn } => out.push_str(&format!("u{conn}")),
            Op::ClientSend { conn, bytes } => out.push_str(&format!("d{conn}:{bytes}")),
            Op::ClientClose { conn } => out.push_str(&format!("f{conn}")),
            Op::ServerRead { conn, max } => out.push_str(&format!("r{conn}:{max}")),
            Op::ServerSend { conn, bytes } => out.push_str(&format!("s{conn}:{bytes}")),
            Op::Poll => out.push('P'),
        }
    }
    out
}

/// Parses the token form produced by [`encode`].
pub fn parse(text: &str) -> Result<Vec<Op>, String> {
    let mut ops = Vec::new();
    for tok in text.split_whitespace() {
        ops.push(parse_token(tok)?);
    }
    Ok(ops)
}

fn parse_token(tok: &str) -> Result<Op, String> {
    let bad = || format!("bad replay token `{tok}`");
    let mut chars = tok.chars();
    let kind = chars.next().ok_or_else(bad)?;
    let rest = chars.as_str();
    let split_colon = |s: &str| -> Result<(usize, String), String> {
        let (c, arg) = s.split_once(':').ok_or_else(bad)?;
        Ok((c.parse::<usize>().map_err(|_| bad())?, arg.to_string()))
    };
    match kind {
        'a' if rest.is_empty() => Ok(Op::Accept),
        'P' if rest.is_empty() => Ok(Op::Poll),
        'w' => {
            let (conn, mask) = split_colon(rest)?;
            let events = match mask.as_str() {
                "i" => PollBits::POLLIN,
                "o" => PollBits::POLLOUT,
                "io" => PollBits::POLLIN | PollBits::POLLOUT,
                _ => return Err(bad()),
            };
            Ok(Op::Watch { conn, events })
        }
        'u' => Ok(Op::Unwatch {
            conn: rest.parse().map_err(|_| bad())?,
        }),
        'd' => {
            let (conn, n) = split_colon(rest)?;
            Ok(Op::ClientSend {
                conn,
                bytes: n.parse().map_err(|_| bad())?,
            })
        }
        'f' => Ok(Op::ClientClose {
            conn: rest.parse().map_err(|_| bad())?,
        }),
        'r' => {
            let (conn, n) = split_colon(rest)?;
            Ok(Op::ServerRead {
                conn,
                max: n.parse().map_err(|_| bad())?,
            })
        }
        's' => {
            let (conn, n) = split_colon(rest)?;
            Ok(Op::ServerSend {
                conn,
                bytes: n.parse().map_err(|_| bad())?,
            })
        }
        _ => Err(bad()),
    }
}

/// Renders a script as the numbered listing `--replay` prints.
pub fn render(ops: &[Op]) -> String {
    use fmt::Write;
    let mut out = String::new();
    for (i, op) in ops.iter().enumerate() {
        let _ = writeln!(out, "  {i:3}: {op}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ScriptConfig::default();
        assert_eq!(generate(42, cfg), generate(42, cfg));
        assert_ne!(generate(42, cfg), generate(43, cfg));
    }

    #[test]
    fn scripts_end_with_a_poll_boundary() {
        for seed in 0..32 {
            let ops = generate(seed, ScriptConfig::default());
            assert_eq!(*ops.last().unwrap(), Op::Poll);
        }
    }

    #[test]
    fn encode_parse_roundtrips() {
        let ops = vec![
            Op::Accept,
            Op::Watch {
                conn: 0,
                events: PollBits::POLLIN,
            },
            Op::Watch {
                conn: 1,
                events: PollBits::POLLIN | PollBits::POLLOUT,
            },
            Op::ClientSend {
                conn: 2,
                bytes: 512,
            },
            Op::Poll,
            Op::ServerRead { conn: 0, max: 4096 },
            Op::ClientClose { conn: 1 },
            Op::Unwatch { conn: 0 },
            Op::ServerSend { conn: 1, bytes: 64 },
            Op::Poll,
        ];
        let text = encode(&ops);
        assert_eq!(parse(&text).unwrap(), ops);
        // Generated scripts roundtrip too.
        let gen = generate(3, ScriptConfig::default());
        assert_eq!(parse(&encode(&gen)).unwrap(), gen);
    }

    #[test]
    fn parse_rejects_malformed_tokens() {
        for bad in ["x1", "w1", "w1:z", "d:5", "dz:5", "a1", "P2", "r1"] {
            assert!(parse(bad).is_err(), "token `{bad}` should be rejected");
        }
    }

    #[test]
    fn conn_slots_stay_in_range() {
        let cfg = ScriptConfig { conns: 3, ops: 200 };
        for op in generate(7, cfg) {
            let conn = match op {
                Op::Watch { conn, .. }
                | Op::Unwatch { conn }
                | Op::ClientSend { conn, .. }
                | Op::ClientClose { conn }
                | Op::ServerRead { conn, .. }
                | Op::ServerSend { conn, .. } => conn,
                Op::Accept | Op::Poll => 0,
            };
            assert!(conn < cfg.conns);
        }
    }
}
