//! Property tests for the kernel substrate: CPU accounting, the RT
//! signal queue against a reference model, and the descriptor table
//! against a reference map.

use proptest::prelude::*;
use simcore::time::{SimDuration, SimTime};
use simkernel::{Cpu, FdTable, FileKind, PollBits, Siginfo, SignalState, SIGIO, SIGRTMIN};
use simnet::{ConnId, EndpointId, Side};

proptest! {
    /// CPU completions are monotone and the busy horizon equals the sum
    /// of all charged work once saturated from time zero.
    #[test]
    fn cpu_work_conservation(ops in prop::collection::vec((any::<bool>(), 1u64..10_000), 1..200)) {
        let mut cpu = Cpu::new();
        let now = SimTime::ZERO;
        let mut last_done = SimTime::ZERO;
        let mut total = 0u64;
        for (is_softirq, work) in ops {
            total += work;
            let d = SimDuration::from_nanos(work);
            if is_softirq {
                cpu.charge_softirq(now, d);
            } else {
                let done = cpu.run_process(now, d);
                prop_assert!(done >= last_done, "completions must be monotone");
                last_done = done;
            }
        }
        // Everything was submitted at t=0, so the CPU is busy
        // back-to-back: the horizon is exactly the total work.
        prop_assert_eq!(cpu.busy_until(), SimTime::from_nanos(total));
        prop_assert_eq!(
            (cpu.softirq_total() + cpu.process_total()).as_nanos(),
            total
        );
    }

    /// The RT queue behaves like a reference model: bounded, ordered by
    /// (signo, FIFO), SIGIO precisely when an overflow happened.
    #[test]
    fn signal_queue_matches_model(
        cap in 1usize..32,
        ops in prop::collection::vec((0u8..8, 0i32..100, any::<bool>()), 0..200),
    ) {
        let mut s = SignalState::new(cap);
        let mut model: Vec<(u8, i32)> = Vec::new(); // (signo, fd), kept sorted stable by signo.
        let mut model_sigio = false;
        for (signo_off, fd, dequeue) in ops {
            if dequeue {
                let got = s.dequeue();
                let expect = if model_sigio {
                    model_sigio = false;
                    Some((SIGIO, -1))
                } else if model.is_empty() {
                    None
                } else {
                    // Lowest signo first, FIFO within.
                    let min_signo = model.iter().map(|&(s, _)| s).min().expect("non-empty");
                    let pos = model.iter().position(|&(s, _)| s == min_signo).expect("exists");
                    Some(model.remove(pos))
                };
                prop_assert_eq!(got.map(|i| (i.signo, i.fd)), expect);
            } else {
                let signo = SIGRTMIN + signo_off;
                let ok = s.enqueue_rt(Siginfo { signo, fd, band: PollBits::POLLIN });
                if model.len() < cap {
                    prop_assert!(ok);
                    model.push((signo, fd));
                } else {
                    prop_assert!(!ok);
                    model_sigio = true;
                }
            }
            prop_assert_eq!(s.queue_len(), model.len());
            prop_assert_eq!(s.sigio_pending(), model_sigio);
        }
    }

    /// The descriptor table matches a reference map and respects the
    /// limit and lowest-free allocation.
    #[test]
    fn fd_table_matches_model(
        limit in 1usize..64,
        ops in prop::collection::vec((any::<bool>(), 0i32..80), 0..300),
    ) {
        let mut t = FdTable::new(limit);
        let mut model: std::collections::BTreeMap<i32, u32> = Default::default();
        let mut counter = 0u32;
        for (close, fd_or_tag) in ops {
            if close {
                let fd = fd_or_tag;
                let ours = t.close(fd);
                let model_had = model.remove(&fd).is_some();
                prop_assert_eq!(ours.is_ok(), model_had);
            } else if model.len() < limit {
                counter += 1;
                let kind = FileKind::Stream(EndpointId::new(ConnId(counter), Side::Server));
                let fd = t.alloc(kind).expect("below limit");
                // Lowest-free: no smaller free slot may exist.
                for smaller in 0..fd {
                    prop_assert!(model.contains_key(&smaller), "fd {} skipped {}", fd, smaller);
                }
                model.insert(fd, counter);
            } else {
                counter += 1;
                let kind = FileKind::Stream(EndpointId::new(ConnId(counter), Side::Server));
                prop_assert!(t.alloc(kind).is_err(), "limit must hold");
            }
            prop_assert_eq!(t.open_count(), model.len());
        }
        for &fd in model.keys() {
            prop_assert!(t.get(fd).is_ok());
        }
    }
}
