//! The server's single CPU, modelled as a FIFO work queue.
//!
//! Interrupt/softirq work is charged the moment a segment arrives and
//! pushes the CPU's `busy_until` horizon forward; process-level batches
//! queue behind whatever the CPU already owes. This reproduces the
//! paper's observation that high-latency clients "induce a bursty and
//! unpredictable interrupt load on the server" which delays application
//! progress — without needing a full preemption model, because softirq
//! work always has priority (it is charged first) and the application
//! only ever runs in the gaps.

use simcore::time::{SimDuration, SimTime};

/// The simulated CPU of one host.
#[derive(Debug, Clone)]
pub struct Cpu {
    busy_until: SimTime,
    softirq_total: SimDuration,
    process_total: SimDuration,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// Creates an idle CPU.
    pub fn new() -> Cpu {
        Cpu {
            busy_until: SimTime::ZERO,
            softirq_total: SimDuration::ZERO,
            process_total: SimDuration::ZERO,
        }
    }

    /// Charges interrupt-context work arriving at `now`.
    ///
    /// The work starts as soon as the CPU frees up (or immediately if
    /// idle) and extends the busy horizon.
    pub fn charge_softirq(&mut self, now: SimTime, work: SimDuration) {
        let start = self.busy_until.max(now);
        self.busy_until = start + work;
        self.softirq_total += work;
    }

    /// Runs a process-level batch of `work` submitted at `now`.
    ///
    /// Returns the completion time: the process may continue only then.
    pub fn run_process(&mut self, now: SimTime, work: SimDuration) -> SimTime {
        let start = self.busy_until.max(now);
        self.busy_until = start + work;
        self.process_total += work;
        self.busy_until
    }

    /// When the CPU next becomes idle (may be in the past if idle now).
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Whether the CPU has nothing queued at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Total softirq time charged so far.
    pub fn softirq_total(&self) -> SimDuration {
        self.softirq_total
    }

    /// Total process time charged so far.
    pub fn process_total(&self) -> SimDuration {
        self.process_total
    }

    /// Utilization over a wall-clock window ending at `now`: busy time as
    /// a fraction of `window`.
    pub fn utilization(&self, now: SimTime, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        let busy = (self.softirq_total + self.process_total).as_nanos() as f64;
        let _ = now;
        (busy / window.as_nanos() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_cpu_runs_immediately() {
        let mut cpu = Cpu::new();
        let done = cpu.run_process(SimTime::from_micros(10), SimDuration::from_micros(5));
        assert_eq!(done, SimTime::from_micros(15));
        assert!(cpu.is_idle(done));
    }

    #[test]
    fn softirq_delays_process_work() {
        let mut cpu = Cpu::new();
        cpu.charge_softirq(SimTime::ZERO, SimDuration::from_micros(30));
        let done = cpu.run_process(SimTime::ZERO, SimDuration::from_micros(10));
        assert_eq!(done, SimTime::from_micros(40));
    }

    #[test]
    fn softirq_during_idle_is_free_for_later_work() {
        let mut cpu = Cpu::new();
        cpu.charge_softirq(SimTime::ZERO, SimDuration::from_micros(5));
        // CPU was idle long before the process runs; no delay remains.
        let done = cpu.run_process(SimTime::from_millis(1), SimDuration::from_micros(10));
        assert_eq!(done, SimTime::from_millis(1) + SimDuration::from_micros(10));
    }

    #[test]
    fn work_queues_fifo() {
        let mut cpu = Cpu::new();
        let d1 = cpu.run_process(SimTime::ZERO, SimDuration::from_micros(10));
        cpu.charge_softirq(SimTime::from_micros(2), SimDuration::from_micros(7));
        let d2 = cpu.run_process(SimTime::from_micros(3), SimDuration::from_micros(1));
        assert_eq!(d1, SimTime::from_micros(10));
        assert_eq!(d2, SimTime::from_micros(18));
    }

    #[test]
    fn totals_accumulate() {
        let mut cpu = Cpu::new();
        cpu.charge_softirq(SimTime::ZERO, SimDuration::from_micros(3));
        cpu.run_process(SimTime::ZERO, SimDuration::from_micros(4));
        cpu.charge_softirq(SimTime::ZERO, SimDuration::from_micros(5));
        assert_eq!(cpu.softirq_total(), SimDuration::from_micros(8));
        assert_eq!(cpu.process_total(), SimDuration::from_micros(4));
    }
}
