//! The calibrated CPU cost model.
//!
//! Every kernel operation in the simulation charges simulated CPU time
//! from this table. The *absolute* values approximate a 400 MHz AMD K6-2
//! running Linux 2.2.14 (the paper's server, §5); what the reproduction
//! actually relies on is the *structure* — which costs scale with the
//! interest-set size, which are per event, and which are per byte — since
//! those produce the curve shapes of Figs. 4–14.
//!
//! All values are nanoseconds of simulated CPU time.

use simcore::time::SimDuration;

/// Cost table for the simulated server kernel and applications.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    // ---------------- syscall plumbing ----------------
    /// Fixed syscall entry/exit overhead (trap, register save, dispatch).
    pub syscall: u64,
    /// Copying one byte between user and kernel space.
    pub copy_per_byte: u64,

    // ---------------- stock poll() (§3, baseline) ----------------
    /// Copy-in and validation of one `pollfd` on `poll()` entry.
    pub pollfd_copyin: u64,
    /// One device-driver poll callback (`f_op->poll`) per scanned
    /// descriptor — all-in: the callback itself plus the `poll_wait`
    /// wait-queue add and `poll_freewait` remove that Linux 2.2 performs
    /// on *every* scan (§6 quotes Brown blaming exactly this wait-queue
    /// traffic), plus the cache misses of touching a cold socket struct
    /// on a 400 MHz K6-2. This is the dominant per-descriptor cost the
    /// hinting scheme avoids.
    pub driver_poll: u64,
    /// Adding the process to one file's wait queue before sleeping.
    pub wq_add: u64,
    /// Removing the process from one file's wait queue on wakeup.
    pub wq_remove: u64,
    /// Copying one result `pollfd` back to user space.
    pub pollfd_copyout: u64,
    /// Per-slot cost of one `select()` round trip, charged for every
    /// slot up to `maxfd`, member or not: the kernel's bitmap walk plus
    /// the application's mandatory `FD_ZERO`/`FD_SET` rebuild and
    /// `FD_ISSET` result scan — `select`'s signature O(maxfd) tax
    /// (Banga & Mogul's baseline, cited as [1]).
    pub select_bit_walk: u64,

    // ---------------- /dev/poll (§3.1–3.3) ----------------
    /// Fixed `ioctl(DP_POLL)` dispatch cost.
    pub devpoll_base: u64,
    /// One interest-set hash-table operation (insert/modify/remove).
    pub devpoll_hash_op: u64,
    /// Walking one hinted descriptor during a `DP_POLL` scan (flag check
    /// plus cache bookkeeping; the driver poll callback is charged
    /// separately when the hint forces revalidation).
    pub hint_walk: u64,
    /// The driver marking one backmap hint when an event arrives
    /// (softirq side).
    pub backmap_mark: u64,
    /// Taking the backmap read-write lock (read side).
    pub backmap_rlock: u64,
    /// Taking the backmap read-write lock (write side).
    pub backmap_wlock: u64,
    /// Writing one result `pollfd` into the shared `mmap` area (no
    /// user-space copy; cache-line dirtying only).
    pub mmap_result_write: u64,

    // ---------------- POSIX RT signals (§2, §4) ----------------
    /// Kernel work to enqueue one RT signal (allocation + queue insert).
    pub rt_enqueue: u64,
    /// Kernel work to dequeue one siginfo in `sigwaitinfo` beyond the
    /// syscall overhead.
    pub rt_dequeue: u64,
    /// Raising SIGIO on queue overflow.
    pub sigio_raise: u64,

    // ---------------- networking softirq ----------------
    /// TCP/IP receive processing per segment (interrupt + softirq).
    pub softirq_per_segment: u64,
    /// Per-byte receive cost (checksum).
    pub softirq_per_byte: u64,
    /// Transmit-path cost per segment (charged inside `write`).
    pub tx_per_segment: u64,

    // ---------------- socket syscalls ----------------
    /// `accept()` beyond the generic syscall cost.
    pub accept: u64,
    /// `read()` base cost beyond syscall + copy.
    pub read_base: u64,
    /// `write()` base cost beyond syscall + copy.
    pub write_base: u64,
    /// `close()` cost.
    pub close: u64,
    /// `fcntl()` cost.
    pub fcntl: u64,
    /// `sendfile()` per-byte cost: the kernel-internal page-cache-to-
    /// socket path skips the user-space copy (§6 lists sendfile as
    /// interesting future work).
    pub sendfile_per_byte: u64,

    // ---------------- application-level work ----------------
    /// Parsing an HTTP request and building response headers.
    pub app_parse_request: u64,
    /// Locating a (cached) file: open + fstat of the 6 KB document.
    pub app_open_file: u64,
    /// Per-connection bookkeeping in the server's own tables.
    pub app_conn_setup: u64,
    /// Walking one entry of the server's timer list during an idle scan.
    pub app_timer_scan: u64,
    /// Per-open-connection lookup cost the experimental phhttpd pays on
    /// every event (the implementation weakness §5.2/Fig. 12 points at:
    /// "Inactive connections appear to increase the overhead of handling
    /// active connections ... may be a problem with ... the phhttpd
    /// implementation itself").
    pub app_event_lookup: u64,
}

impl CostModel {
    /// The paper's server: a 400 MHz AMD K6-2, 64 MB RAM, Linux 2.2.14.
    ///
    /// Calibrated so a single-process event-driven server saturates
    /// between 800 and 1300 replies/s depending on its event model —
    /// the operating region of Figs. 4–14.
    pub fn k6_2_400mhz() -> CostModel {
        CostModel {
            syscall: 5_000,
            copy_per_byte: 3,
            pollfd_copyin: 350,
            driver_poll: 10_000,
            wq_add: 400,
            wq_remove: 400,
            pollfd_copyout: 120,
            select_bit_walk: 600,
            devpoll_base: 1_000,
            devpoll_hash_op: 250,
            hint_walk: 80,
            backmap_mark: 120,
            backmap_rlock: 60,
            backmap_wlock: 150,
            mmap_result_write: 30,
            rt_enqueue: 2_000,
            rt_dequeue: 2_000,
            sigio_raise: 2_000,
            softirq_per_segment: 50_000,
            softirq_per_byte: 4,
            tx_per_segment: 20_000,
            accept: 15_000,
            read_base: 6_000,
            write_base: 6_000,
            close: 10_000,
            fcntl: 3_000,
            sendfile_per_byte: 1,
            app_parse_request: 60_000,
            app_open_file: 15_000,
            app_conn_setup: 12_000,
            app_timer_scan: 150,
            app_event_lookup: 700,
        }
    }

    /// A uniformly faster machine: every cost scaled by `1 / factor`.
    ///
    /// Useful for sensitivity benches (does the ordering of the three
    /// event models survive a faster CPU?).
    pub fn scaled(&self, factor: f64) -> CostModel {
        assert!(factor > 0.0, "scale factor must be positive");
        let s = |v: u64| -> u64 { ((v as f64 / factor).round() as u64).max(1) };
        CostModel {
            syscall: s(self.syscall),
            copy_per_byte: s(self.copy_per_byte),
            pollfd_copyin: s(self.pollfd_copyin),
            driver_poll: s(self.driver_poll),
            wq_add: s(self.wq_add),
            wq_remove: s(self.wq_remove),
            pollfd_copyout: s(self.pollfd_copyout),
            select_bit_walk: s(self.select_bit_walk),
            devpoll_base: s(self.devpoll_base),
            devpoll_hash_op: s(self.devpoll_hash_op),
            hint_walk: s(self.hint_walk),
            backmap_mark: s(self.backmap_mark),
            backmap_rlock: s(self.backmap_rlock),
            backmap_wlock: s(self.backmap_wlock),
            mmap_result_write: s(self.mmap_result_write),
            rt_enqueue: s(self.rt_enqueue),
            rt_dequeue: s(self.rt_dequeue),
            sigio_raise: s(self.sigio_raise),
            softirq_per_segment: s(self.softirq_per_segment),
            softirq_per_byte: s(self.softirq_per_byte),
            tx_per_segment: s(self.tx_per_segment),
            accept: s(self.accept),
            read_base: s(self.read_base),
            write_base: s(self.write_base),
            close: s(self.close),
            fcntl: s(self.fcntl),
            sendfile_per_byte: s(self.sendfile_per_byte),
            app_parse_request: s(self.app_parse_request),
            app_open_file: s(self.app_open_file),
            app_conn_setup: s(self.app_conn_setup),
            app_timer_scan: s(self.app_timer_scan),
            app_event_lookup: s(self.app_event_lookup),
        }
    }

    /// Convenience: a cost in nanoseconds as a [`SimDuration`].
    pub fn d(&self, nanos: u64) -> SimDuration {
        SimDuration::from_nanos(nanos)
    }

    /// Softirq cost of receiving one segment of `wire_bytes`.
    pub fn softirq_rx(&self, wire_bytes: u32) -> SimDuration {
        SimDuration::from_nanos(
            self.softirq_per_segment + self.softirq_per_byte * wire_bytes as u64,
        )
    }

    /// Cost of copying `n` bytes across the user/kernel boundary.
    pub fn copy(&self, n: usize) -> SimDuration {
        SimDuration::from_nanos(self.copy_per_byte * n as u64)
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::k6_2_400mhz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_is_self_consistent() {
        let c = CostModel::k6_2_400mhz();
        // The driver poll callback must dominate the hint walk, otherwise
        // hinting could not pay off (§3.2).
        assert!(c.driver_poll > 5 * c.hint_walk);
        // The mmap result write must be cheaper than the copy-out it
        // replaces (§3.3).
        assert!(c.mmap_result_write < c.pollfd_copyout);
        // The all-in per-descriptor scan cost (driver callback plus the
        // wait-queue add/remove of every 2.2-era scan) dominates the
        // syscall entry cost — this is what makes kernel-resident
        // interest sets worthwhile (§3.1) while RT signals still pay one
        // syscall per event (§6).
        assert!(c.driver_poll > c.syscall);
        assert!(c.syscall > c.rt_dequeue);
    }

    #[test]
    fn scaled_divides_costs() {
        let c = CostModel::k6_2_400mhz();
        let f = c.scaled(2.0);
        assert_eq!(f.syscall, c.syscall / 2);
        assert_eq!(f.driver_poll, c.driver_poll / 2);
        // Never hits zero.
        let tiny = c.scaled(1e9);
        assert_eq!(tiny.copy_per_byte, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_nonpositive() {
        let _ = CostModel::k6_2_400mhz().scaled(0.0);
    }

    #[test]
    fn softirq_rx_includes_per_byte() {
        let c = CostModel::k6_2_400mhz();
        let small = c.softirq_rx(40);
        let big = c.softirq_rx(1500);
        assert!(big > small);
        assert_eq!(
            big.as_nanos() - small.as_nanos(),
            (1500 - 40) * c.softirq_per_byte
        );
    }
}
