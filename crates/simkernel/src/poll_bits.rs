//! Poll event bits, matching the classic `<sys/poll.h>` values.

use core::fmt;
use core::ops::{BitAnd, BitOr, BitOrAssign, Not};

/// A set of poll condition bits (`POLLIN`, `POLLOUT`, …).
///
/// The numeric values match Linux so that a `pollfd` dump from the
/// simulator reads like the real thing.
///
/// # Examples
///
/// ```
/// use simkernel::poll_bits::PollBits;
///
/// let bits = PollBits::POLLIN | PollBits::POLLOUT;
/// assert!(bits.contains(PollBits::POLLIN));
/// assert!(!bits.contains(PollBits::POLLERR));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PollBits(pub u16);

impl PollBits {
    /// No conditions.
    pub const EMPTY: PollBits = PollBits(0);
    /// Data available to read (or pending accept, or EOF).
    pub const POLLIN: PollBits = PollBits(0x0001);
    /// Exceptional condition.
    pub const POLLPRI: PollBits = PollBits(0x0002);
    /// Writing will not block.
    pub const POLLOUT: PollBits = PollBits(0x0004);
    /// Error condition (always reported; never requested explicitly).
    pub const POLLERR: PollBits = PollBits(0x0008);
    /// Hang up: the peer closed its end.
    pub const POLLHUP: PollBits = PollBits(0x0010);
    /// Invalid descriptor.
    pub const POLLNVAL: PollBits = PollBits(0x0020);
    /// `/dev/poll` interest removal flag (§3.1; value from Solaris).
    pub const POLLREMOVE: PollBits = PollBits(0x1000);

    /// Returns `true` if every bit of `other` is set in `self`.
    pub fn contains(self, other: PollBits) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if any bit of `other` is set in `self`.
    pub fn intersects(self, other: PollBits) -> bool {
        self.0 & other.0 != 0
    }

    /// Returns `true` if no bits are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The bits of `self` that are not in `other`.
    pub fn without(self, other: PollBits) -> PollBits {
        PollBits(self.0 & !other.0)
    }

    /// Bits that are always reported by poll even when not requested.
    pub fn always_reported() -> PollBits {
        PollBits::POLLERR | PollBits::POLLHUP | PollBits::POLLNVAL
    }
}

impl BitOr for PollBits {
    type Output = PollBits;

    fn bitor(self, rhs: PollBits) -> PollBits {
        PollBits(self.0 | rhs.0)
    }
}

impl BitOrAssign for PollBits {
    fn bitor_assign(&mut self, rhs: PollBits) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for PollBits {
    type Output = PollBits;

    fn bitand(self, rhs: PollBits) -> PollBits {
        PollBits(self.0 & rhs.0)
    }
}

impl Not for PollBits {
    type Output = PollBits;

    fn not(self) -> PollBits {
        PollBits(!self.0)
    }
}

impl fmt::Display for PollBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (PollBits::POLLIN, "IN"),
            (PollBits::POLLPRI, "PRI"),
            (PollBits::POLLOUT, "OUT"),
            (PollBits::POLLERR, "ERR"),
            (PollBits::POLLHUP, "HUP"),
            (PollBits::POLLNVAL, "NVAL"),
            (PollBits::POLLREMOVE, "REMOVE"),
        ];
        let mut first = true;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_values() {
        assert_eq!(PollBits::POLLIN.0, 0x0001);
        assert_eq!(PollBits::POLLOUT.0, 0x0004);
        assert_eq!(PollBits::POLLERR.0, 0x0008);
        assert_eq!(PollBits::POLLHUP.0, 0x0010);
    }

    #[test]
    fn set_ops() {
        let b = PollBits::POLLIN | PollBits::POLLHUP;
        assert!(b.contains(PollBits::POLLIN));
        assert!(b.intersects(PollBits::POLLHUP | PollBits::POLLOUT));
        assert!(!b.contains(PollBits::POLLIN | PollBits::POLLOUT));
        assert_eq!(b.without(PollBits::POLLIN), PollBits::POLLHUP);
        assert!(PollBits::EMPTY.is_empty());
    }

    #[test]
    fn display_is_readable() {
        let b = PollBits::POLLIN | PollBits::POLLOUT;
        assert_eq!(b.to_string(), "IN|OUT");
        assert_eq!(PollBits::EMPTY.to_string(), "0");
    }
}
