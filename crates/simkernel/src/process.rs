//! Simulated processes and their run-state machine.
//!
//! A process executes *batches*: bursts of syscalls issued at one logical
//! instant whose costs accumulate and are then charged to the CPU as one
//! piece of work. After a batch the process either yields (it has more
//! work and runs again as soon as the CPU lets it) or sleeps (blocked in
//! `poll`/`ioctl(DP_POLL)`/`sigwaitinfo` until an event or timeout).
//! This "quantized event loop" model keeps server code straight-line
//! while preserving the throughput-vs-cost dynamics the paper measures.

use simcore::time::{SimDuration, SimTime};

use crate::fd::FdTable;
use crate::signal::SignalState;

/// Process identifier.
pub type Pid = u32;

/// What happens when the in-progress batch's CPU work completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AfterBatch {
    /// Run again immediately (more work queued in the application).
    Yield,
    /// Go to sleep, optionally with a wakeup deadline.
    Sleep {
        /// Absolute timeout, if any.
        timeout: Option<SimTime>,
    },
}

/// The run state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Waiting for the orchestrator to run its next batch.
    Idle,
    /// A batch's CPU work is in progress until the given time.
    Running {
        /// When the CPU work finishes.
        until: SimTime,
        /// What to do then.
        then: AfterBatch,
    },
    /// Blocked awaiting an event (or timeout).
    Sleeping {
        /// Absolute timeout, if any.
        timeout: Option<SimTime>,
    },
}

/// A simulated process.
#[derive(Debug, Clone)]
pub struct Process {
    /// Descriptor table.
    pub fds: FdTable,
    /// Signal state (RT queue + SIGIO).
    pub signals: SignalState,
    /// Run state.
    pub state: ProcState,
    /// Cost accumulated by the batch currently being issued, if any.
    pub batch_acc: Option<SimDuration>,
    /// When the current (or most recent) batch began; `batch_start +
    /// batch_acc` is the batch's virtual now, the clock latency spans
    /// are stamped with.
    pub batch_start: SimTime,
    /// A wake arrived while the batch that decided to sleep was still on
    /// the CPU; do not sleep after all.
    pub pending_wake: bool,
    /// Total syscalls issued (diagnostic).
    pub syscall_count: u64,
    /// Total batches executed (diagnostic).
    pub batch_count: u64,
}

impl Process {
    /// Creates an idle process.
    pub fn new(fd_limit: usize, rt_queue_max: usize) -> Process {
        Process::with_first_fd(fd_limit, rt_queue_max, 0)
    }

    /// Creates an idle process whose descriptor numbering starts at
    /// `first_fd` (the elevated-offset layout-independence lane).
    pub fn with_first_fd(fd_limit: usize, rt_queue_max: usize, first_fd: usize) -> Process {
        Process {
            fds: FdTable::with_first_fd(fd_limit, first_fd),
            signals: SignalState::new(rt_queue_max),
            state: ProcState::Idle,
            batch_acc: None,
            batch_start: SimTime::ZERO,
            pending_wake: false,
            syscall_count: 0,
            batch_count: 0,
        }
    }

    /// Whether the process is asleep (and so needs a wake to make
    /// progress).
    pub fn is_sleeping(&self) -> bool {
        matches!(self.state, ProcState::Sleeping { .. })
    }

    /// The next time this process needs attention, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        match self.state {
            ProcState::Idle => None,
            ProcState::Running { until, .. } => Some(until),
            ProcState::Sleeping { timeout } => timeout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_process_is_idle() {
        let p = Process::new(1024, 1024);
        assert_eq!(p.state, ProcState::Idle);
        assert_eq!(p.next_deadline(), None);
        assert!(!p.is_sleeping());
    }

    #[test]
    fn deadlines_reflect_state() {
        let mut p = Process::new(16, 16);
        p.state = ProcState::Running {
            until: SimTime::from_micros(5),
            then: AfterBatch::Yield,
        };
        assert_eq!(p.next_deadline(), Some(SimTime::from_micros(5)));
        p.state = ProcState::Sleeping {
            timeout: Some(SimTime::from_millis(1)),
        };
        assert_eq!(p.next_deadline(), Some(SimTime::from_millis(1)));
        assert!(p.is_sleeping());
        p.state = ProcState::Sleeping { timeout: None };
        assert_eq!(p.next_deadline(), None);
    }
}
