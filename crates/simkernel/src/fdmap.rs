//! A paged, fd-indexed map.
//!
//! Descriptors are small sequential integers (the fd table always hands
//! out the lowest free slot), so direct indexing beats a hash map for
//! every per-connection table keyed by fd: O(1) access with no hashing,
//! and iteration in ascending fd order — which also makes walks
//! deterministic, where a `HashMap` would visit entries in seed-dependent
//! order. The backing store is paged so a process running at an elevated
//! descriptor offset (or with sparse fd usage) only pays for the pages
//! it touches, not a dense vector up to its highest fd.

use simcore::paged::PagedSlots;

use crate::fd::Fd;

/// A map from file descriptor to `T`, stored in fixed-size pages.
#[derive(Debug, Clone)]
pub struct FdMap<T> {
    slots: PagedSlots<T>,
}

impl<T> Default for FdMap<T> {
    fn default() -> Self {
        FdMap {
            slots: PagedSlots::new(),
        }
    }
}

impl<T> FdMap<T> {
    /// Creates an empty map.
    pub fn new() -> FdMap<T> {
        FdMap::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn index(fd: Fd) -> Option<usize> {
        usize::try_from(fd).ok()
    }

    /// Inserts (or replaces) the entry for `fd`, returning the previous
    /// value if any.
    pub fn insert(&mut self, fd: Fd, value: T) -> Option<T> {
        let ix = Self::index(fd).expect("invariant: FdMap::insert takes a non-negative fd");
        self.slots.insert(ix, value)
    }

    /// Removes and returns the entry for `fd`.
    pub fn remove(&mut self, fd: Fd) -> Option<T> {
        Self::index(fd).and_then(|ix| self.slots.take(ix))
    }

    /// Looks up `fd`.
    pub fn get(&self, fd: Fd) -> Option<&T> {
        Self::index(fd).and_then(|ix| self.slots.get(ix))
    }

    /// Looks up `fd` mutably.
    pub fn get_mut(&mut self, fd: Fd) -> Option<&mut T> {
        Self::index(fd).and_then(|ix| self.slots.get_mut(ix))
    }

    /// Whether `fd` has an entry.
    pub fn contains(&self, fd: Fd) -> bool {
        self.get(fd).is_some()
    }

    /// Heap bytes held by the map's pages.
    pub fn mem_bytes(&self) -> usize {
        self.slots.heap_bytes()
    }

    /// Iterates `(fd, &T)` in ascending fd order.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, &T)> {
        self.slots.iter().map(|(ix, v)| (ix as Fd, v))
    }

    /// Iterates `(fd, &mut T)` in ascending fd order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Fd, &mut T)> {
        self.slots.iter_mut().map(|(ix, v)| (ix as Fd, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut m: FdMap<&str> = FdMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(4, "a"), None);
        assert_eq!(m.insert(4, "b"), Some("a"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(4), Some(&"b"));
        assert!(m.contains(4));
        assert_eq!(m.remove(4), Some("b"));
        assert_eq!(m.remove(4), None);
        assert!(m.is_empty());
        assert_eq!(m.get(-1), None);
        assert_eq!(m.remove(-1), None);
    }

    #[test]
    fn iteration_is_fd_ordered() {
        let mut m: FdMap<u32> = FdMap::new();
        for fd in [7, 0, 3, 12] {
            m.insert(fd, fd as u32 * 10);
        }
        let seen: Vec<(Fd, u32)> = m.iter().map(|(fd, &v)| (fd, v)).collect();
        assert_eq!(seen, vec![(0, 0), (3, 30), (7, 70), (12, 120)]);
    }

    #[test]
    fn slot_reuse_after_remove() {
        let mut m: FdMap<u8> = FdMap::new();
        m.insert(2, 1);
        m.remove(2);
        assert_eq!(m.insert(2, 9), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn high_fds_touch_only_their_pages() {
        let mut m: FdMap<u64> = FdMap::new();
        m.insert(1_000_000, 7);
        m.insert(3, 1);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(1_000_000), Some(&7));
        // Two resident pages, not a dense million-slot vector.
        let page = 4096 * std::mem::size_of::<Option<u64>>();
        assert!(m.mem_bytes() < 3 * page);
        let seen: Vec<Fd> = m.iter().map(|(fd, _)| fd).collect();
        assert_eq!(seen, vec![3, 1_000_000]);
    }
}
