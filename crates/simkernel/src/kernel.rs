//! The kernel facade: syscalls, readiness tracking, signal delivery and
//! process scheduling for the simulated server host.
//!
//! # Driving the kernel
//!
//! Like [`simnet::Network`], the kernel is a passive state machine. The
//! orchestrator:
//!
//! 1. routes network notifications in via [`Kernel::on_net`] (charging
//!    softirq CPU, updating readiness, queueing RT signals, waking
//!    sleepers);
//! 2. asks [`Kernel::next_deadline`] / calls [`Kernel::advance`], which
//!    yields [`KernelEvent`]s;
//! 3. when it sees [`KernelEvent::ProcRunnable`], runs the application's
//!    next batch: [`Kernel::begin_batch`], any number of `sys_*` calls,
//!    then [`Kernel::end_batch`] (yield) or [`Kernel::end_batch_sleep`]
//!    (block).
//!
//! Syscall costs accumulate into the batch; network side effects happen
//! at the batch's *virtual now* (start time plus cost so far), so a
//! response written after an expensive scan hits the wire later than one
//! written after a cheap scan — the causal chain behind every saturation
//! curve in the paper.

use simcore::paged::{PagedBits, PagedSlots};
use simcore::probe::MetricRegistry;
use simcore::span::{Phase, SpanGuard, SpanTracer};
use simcore::time::{SimDuration, SimTime};
use simcore::trace::Trace;
use simnet::{EndpointId, ListenerId, NetNotify, Network, Port};

use crate::cost::CostModel;
use crate::cpu::Cpu;
use crate::fd::{Errno, Fd, FileKind};
use crate::poll_bits::PollBits;
use crate::process::{AfterBatch, Pid, ProcState, Process};
use crate::signal::{Siginfo, DEFAULT_RT_QUEUE_MAX, SIGRTMAX, SIGRTMIN};

/// How an accept-ready event wakes processes sharing a listener.
///
/// Linux 2.2 woke *every* process sleeping on the listener's wait queue
/// (the "thundering herd"); §6 of the paper proposes "waking only one
/// thread, instead of all of them".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum AcceptWake {
    /// Wake every sharer (stock 2.2 behaviour).
    #[default]
    Herd,
    /// Wake exactly one sharer (the paper's proposal; `WQ_FLAG_EXCLUSIVE`
    /// in later kernels).
    Exclusive,
}

/// Events the kernel surfaces to the orchestrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelEvent {
    /// A process finished its CPU work / woke / timed out, and should be
    /// given a batch to run.
    ProcRunnable {
        /// The runnable process.
        pid: Pid,
    },
    /// Something happened on a descriptor (data, space, hangup, error) —
    /// consumed by `/dev/poll` instances to mark driver hints.
    FdEvent {
        /// Owning process.
        pid: Pid,
        /// The descriptor.
        fd: Fd,
        /// What happened.
        band: PollBits,
    },
}

/// Mirrored readiness of one stream socket.
#[derive(Debug, Clone, Copy, Default)]
struct SockMirror {
    readable: bool,
    writable: bool,
    hup: bool,
    err: bool,
}

impl SockMirror {
    fn bits(self) -> PollBits {
        let mut b = PollBits::EMPTY;
        if self.readable || self.hup || self.err {
            b |= PollBits::POLLIN;
        }
        if self.writable && !self.hup && !self.err {
            b |= PollBits::POLLOUT;
        }
        if self.hup {
            b |= PollBits::POLLHUP;
        }
        if self.err {
            b |= PollBits::POLLERR;
        }
        b
    }
}

/// Kernel-side state of one accepted stream descriptor: its owner and
/// the readiness mirror, in one dense slot indexed by endpoint.
// #[hot_struct]: one per accepted descriptor
#[derive(Debug, Clone, Copy)]
struct EpSlot {
    pid: Pid,
    fd: Fd,
    mirror: SockMirror,
}

/// Kernel-side state of one listener: the sharing processes and the
/// accept-queue readiness level.
#[derive(Debug, Clone, Default)]
struct ListenerSlot {
    owners: Vec<(Pid, Fd)>,
    ready: bool,
}

/// Index of `ep` in the endpoint-slot table: `conn * 2 + side`. The
/// table is paged, so the index need not be dense — high connection ids
/// land on their own pages without densifying the low range.
fn ep_index(ep: EndpointId) -> usize {
    (ep.conn.0 as usize) * 2 + ep.side.index()
}

/// Aggregate kernel statistics (diagnostics for tests and benches).
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelStats {
    /// Total syscalls executed.
    pub syscalls: u64,
    /// RT signals enqueued from readiness events.
    pub rt_signals: u64,
    /// RT signal queue overflows.
    pub rt_overflows: u64,
    /// Process wakeups from readiness events.
    pub wakeups: u64,
    /// Descriptor allocations refused at the per-process limit
    /// (`EMFILE`) — the fd-exhaustion failure mode, tallied
    /// per-mechanism rather than inferred from aborted connections.
    pub emfile: u64,
}

/// The simulated kernel of the server host.
#[derive(Clone)]
pub struct Kernel {
    host: simnet::HostId,
    cost: CostModel,
    cpu: Cpu,
    /// Dense, pid-indexed (pid 1 lives at index 0; processes are never
    /// reaped), so [`Kernel::advance`] surfaces `ProcRunnable` events in
    /// deterministic pid order by construction.
    procs: Vec<Process>,
    /// Endpoint-indexed owner + readiness mirror slots (see
    /// [`ep_index`]); paged so sparse/high endpoint indices don't pay
    /// dense-table memory.
    eps: PagedSlots<EpSlot>,
    /// High-water mark of simultaneously open endpoint slots — the
    /// denominator for bytes-per-connection accounting (by report time
    /// most connections have closed; the peak is what memory was sized
    /// for).
    eps_peak: usize,
    /// Listener-indexed owner/readiness slots (`ListenerId` is a dense
    /// sequential id).
    listeners: Vec<Option<ListenerSlot>>,
    accept_wake: AcceptWake,
    /// Rotates exclusive accept wakeups across sharers.
    accept_rr: usize,
    /// Scratch for herd/exclusive accept wakeups (reused, no per-event
    /// allocation).
    accept_scratch: Vec<(Pid, Fd)>,
    /// Descriptors whose readiness events should wake the owning process
    /// when it sleeps (the wait-queue watcher registry); parallel to
    /// `procs`, one paged bitset per process — the §3.2 backmapping
    /// lists, re-backed so elevated/sparse fd ranges stay cheap.
    watchers: Vec<PagedBits>,
    events_out: Vec<KernelEvent>,
    stats: KernelStats,
    /// Central metric registry every subsystem records into (syscalls
    /// here; `/dev/poll` scan and cache counters via [`Kernel::probe_mut`];
    /// server and TCP metrics folded in at report time).
    probe: MetricRegistry,
    /// Event trace shared by the kernel (`rtsig`, `tcp`, `sched`) and the
    /// `/dev/poll` device layer (`devpoll`).
    trace: Trace,
    /// Latency-anatomy span tracer (disabled by default; when off every
    /// instrumentation site is a single branch and the probe snapshot is
    /// byte-identical to an uninstrumented build).
    spans: SpanTracer,
}

impl Kernel {
    /// Creates a kernel for the given host with the given cost model.
    pub fn new(host: simnet::HostId, cost: CostModel) -> Kernel {
        Kernel {
            host,
            cost,
            cpu: Cpu::new(),
            procs: Vec::new(),
            eps: PagedSlots::new(),
            eps_peak: 0,
            listeners: Vec::new(),
            accept_wake: AcceptWake::Herd,
            accept_rr: 0,
            accept_scratch: Vec::new(),
            watchers: Vec::new(),
            events_out: Vec::new(),
            stats: KernelStats::default(),
            probe: MetricRegistry::new(),
            trace: Trace::new(4096),
            spans: SpanTracer::new(),
        }
    }

    /// The host this kernel runs on.
    pub fn host(&self) -> simnet::HostId {
        self.host
    }

    /// Sets the accept wakeup policy for shared listeners (§6).
    pub fn set_accept_wake(&mut self, policy: AcceptWake) {
        self.accept_wake = policy;
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// CPU accounting access.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Modeled resident heap bytes of the kernel's per-connection
    /// tables: per-process fd tables, endpoint readiness slots, and
    /// watcher (backmap) bitsets. Pages are never freed, so this is the
    /// high-water footprint.
    pub fn mem_bytes(&self) -> usize {
        let fds: usize = self.procs.iter().map(|p| p.fds.mem_bytes()).sum();
        let watch: usize = self.watchers.iter().map(PagedBits::heap_bytes).sum();
        fds + watch + self.eps.heap_bytes()
    }

    /// High-water mark of simultaneously open endpoint slots — the
    /// bytes-per-connection denominator.
    pub fn eps_peak(&self) -> usize {
        self.eps_peak
    }

    /// Folds the kernel's full semantic state into one FNV digest for
    /// world deduplication in `simcheck explore`.
    ///
    /// Included: every process (descriptor table, signal queues, run
    /// state), every endpoint readiness mirror, listener ownership and
    /// readiness, the accept-wake policy and rotor, the watcher sets,
    /// and undrained kernel events. Excluded: CPU/time accounting, the
    /// metric registry, the trace, and the span tracer — none of them
    /// feed back into syscall results, so worlds that differ only in
    /// observability state hash alike.
    pub fn state_fingerprint(&self) -> u64 {
        use simcore::fingerprint::Fnv;
        let mut h = Fnv::new();
        h.write_usize(self.host.0);
        h.write_len(self.procs.len());
        for p in &self.procs {
            p.fds.fingerprint_into(&mut h);
            p.signals.fingerprint_into(&mut h);
            match p.state {
                ProcState::Idle => h.write_u8(0),
                ProcState::Running { until, then } => {
                    h.write_u8(1);
                    h.write_u64(until.as_nanos());
                    match then {
                        AfterBatch::Yield => h.write_u8(0),
                        AfterBatch::Sleep { timeout } => {
                            h.write_u8(1);
                            h.write_u64(timeout.map_or(u64::MAX, |t| t.as_nanos()));
                        }
                    }
                }
                ProcState::Sleeping { timeout } => {
                    h.write_u8(2);
                    h.write_u64(timeout.map_or(u64::MAX, |t| t.as_nanos()));
                }
            }
        }
        h.write_len(self.eps.len());
        for (ix, s) in self.eps.iter() {
            h.write_usize(ix);
            h.write_u64(u64::from(s.pid));
            h.write_i64(i64::from(s.fd));
            h.write_bool(s.mirror.readable);
            h.write_bool(s.mirror.writable);
            h.write_bool(s.mirror.hup);
            h.write_bool(s.mirror.err);
        }
        h.write_len(self.listeners.iter().filter(|s| s.is_some()).count());
        for (ix, slot) in self.listeners.iter().enumerate() {
            let Some(s) = slot else { continue };
            h.write_usize(ix);
            h.write_len(s.owners.len());
            for &(pid, fd) in &s.owners {
                h.write_u64(u64::from(pid));
                h.write_i64(i64::from(fd));
            }
            h.write_bool(s.ready);
        }
        h.write_u8(match self.accept_wake {
            AcceptWake::Herd => 0,
            AcceptWake::Exclusive => 1,
        });
        h.write_usize(self.accept_rr);
        h.write_len(self.watchers.len());
        for set in &self.watchers {
            h.write_len(set.count());
            set.for_each_nonzero_word(|ix, word| {
                h.write_usize(ix);
                h.write_u64(word);
            });
        }
        h.write_len(self.events_out.len());
        h.finish()
    }

    /// The metric registry (read side: snapshots, assertions).
    pub fn probe(&self) -> &MetricRegistry {
        &self.probe
    }

    /// The metric registry (write side, for subsystems layered on the
    /// kernel such as the `/dev/poll` device and poll emulations).
    pub fn probe_mut(&mut self) -> &mut MetricRegistry {
        &mut self.probe
    }

    /// The event trace (read side).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The event trace (write side: enabling categories, recording from
    /// subsystems layered on the kernel).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The span tracer (read side: exporters, reports).
    pub fn spans(&self) -> &SpanTracer {
        &self.spans
    }

    /// The span tracer (write side: enabling, retention bound).
    pub fn spans_mut(&mut self) -> &mut SpanTracer {
        &mut self.spans
    }

    /// The batch's virtual now derived from the stored batch start —
    /// the clock latency spans are stamped with. Works even in syscalls
    /// that do not take a `now` parameter.
    pub fn span_now(&self, pid: Pid) -> SimTime {
        let p = self
            .proc_get(pid)
            .expect("invariant: pid was returned by spawn and never reaped");
        p.batch_start + p.batch_acc.unwrap_or(SimDuration::ZERO)
    }

    /// Opens a latency span at the batch's virtual now. One branch when
    /// tracing is disabled (`None`).
    pub fn span_open(&mut self, pid: Pid, phase: Phase) -> Option<SpanGuard> {
        if !self.spans.enabled() {
            return None;
        }
        let at = self.span_now(pid);
        self.spans.open(phase, pid as u64, at)
    }

    /// Closes a span opened by [`Kernel::span_open`], charging its
    /// exclusive time to the probe registry as `span_ns.<phase>`.
    pub fn span_close(&mut self, pid: Pid, guard: Option<SpanGuard>) {
        if let Some(guard) = guard {
            let at = self.span_now(pid);
            self.spans.close(guard, at, &mut self.probe);
        }
    }

    /// Records a span whose endpoints are both already known (cross-batch
    /// waits, softirq-side lock holds).
    pub fn span_complete(&mut self, phase: Phase, tid: u64, start: SimTime, end: SimTime) {
        self.spans
            .record_complete(phase, tid, start, end, &mut self.probe);
    }

    /// Records a leaf span covering the batch cost accumulated since
    /// `entry` (a [`Kernel::charge`] accumulator snapshot, the same shape
    /// the `syscall_ns.*` histograms use), nested under the innermost
    /// open span.
    pub fn span_leaf(&mut self, pid: Pid, phase: Phase, entry: SimDuration) {
        if !self.spans.enabled() {
            return;
        }
        let p = self
            .proc_get(pid)
            .expect("invariant: pid was returned by spawn and never reaped");
        let start = p.batch_start + entry;
        let end = p.batch_start + p.batch_acc.unwrap_or(entry);
        self.spans
            .leaf(phase, pid as u64, start, end, &mut self.probe);
    }

    /// Records a lock-hold span covering the batch cost accumulated
    /// since `from`. Like [`Kernel::span_leaf`] but bypasses the span
    /// stack: lock holds overlap the request-path phases rather than
    /// nesting inside them, so they must not eat into an enclosing
    /// span's exclusive time.
    pub fn span_hold(&mut self, pid: Pid, phase: Phase, from: SimDuration) {
        if !self.spans.enabled() {
            return;
        }
        let p = self
            .proc_get(pid)
            .expect("invariant: pid was returned by spawn and never reaped");
        let start = p.batch_start + from;
        let end = p.batch_start + p.batch_acc.unwrap_or(from);
        self.spans
            .record_complete(phase, pid as u64, start, end, &mut self.probe);
    }

    /// The batch cost accumulator right now (pairs with
    /// [`Kernel::span_leaf`] for sites outside the kernel, e.g. the
    /// `/dev/poll` device layer).
    pub fn batch_acc(&self, pid: Pid) -> SimDuration {
        self.proc_get(pid)
            .and_then(|p| p.batch_acc)
            .unwrap_or(SimDuration::ZERO)
    }

    // ------------------------------------------------------------------
    // Processes and scheduling.
    // ------------------------------------------------------------------

    /// Creates a process with the given descriptor limit and RT queue
    /// bound.
    pub fn spawn(&mut self, fd_limit: usize, rt_queue_max: usize) -> Pid {
        self.spawn_with_fd_base(fd_limit, rt_queue_max, 0)
    }

    /// Creates a process whose descriptor numbering starts at
    /// `first_fd` — the elevated-fd-offset lane proving readiness and
    /// notification semantics are independent of fd numerology.
    pub fn spawn_with_fd_base(
        &mut self,
        fd_limit: usize,
        rt_queue_max: usize,
        first_fd: usize,
    ) -> Pid {
        self.procs
            .push(Process::with_first_fd(fd_limit, rt_queue_max, first_fd));
        self.watchers.push(PagedBits::new());
        self.procs.len() as Pid
    }

    /// Creates a process with default limits (1024 descriptors, 1024 RT
    /// queue slots — the defaults the paper describes).
    pub fn spawn_default(&mut self) -> Pid {
        self.spawn(1024, DEFAULT_RT_QUEUE_MAX)
    }

    /// Index of `pid` in the dense process table (pids start at 1).
    fn proc_ix(pid: Pid) -> usize {
        (pid as usize).wrapping_sub(1)
    }

    fn proc_mut(&mut self, pid: Pid) -> &mut Process {
        self.procs
            .get_mut(Self::proc_ix(pid))
            .expect("invariant: pid was returned by spawn and never reaped")
    }

    fn proc_get(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(Self::proc_ix(pid))
    }

    fn proc_get_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.procs.get_mut(Self::proc_ix(pid))
    }

    /// Read-only access to a process (tests and diagnostics).
    pub fn process(&self, pid: Pid) -> &Process {
        self.proc_get(pid)
            .expect("invariant: pid was returned by spawn and never reaped")
    }

    /// Starts accumulating a batch for `pid`.
    ///
    /// # Panics
    ///
    /// Panics if a batch is already in progress for this process.
    pub fn begin_batch(&mut self, now: SimTime, pid: Pid) {
        let p = self.proc_mut(pid);
        assert!(p.batch_acc.is_none(), "nested batch for pid {pid}");
        p.batch_acc = Some(SimDuration::ZERO);
        p.batch_start = now;
        p.batch_count += 1;
        p.state = ProcState::Idle;
    }

    /// Adds `cost` to the in-progress batch.
    pub fn charge(&mut self, pid: Pid, cost: SimDuration) {
        let p = self.proc_mut(pid);
        let acc = p
            .batch_acc
            .as_mut()
            .expect("invariant: charge happens between begin_batch and end_batch");
        *acc += cost;
    }

    /// The batch's virtual now: start time plus cost accumulated so far.
    pub fn vnow(&self, now: SimTime, pid: Pid) -> SimTime {
        let p = self
            .proc_get(pid)
            .expect("invariant: pid was returned by spawn and never reaped");
        now + p.batch_acc.unwrap_or(SimDuration::ZERO)
    }

    /// Finishes the batch; the process yields and runs again as soon as
    /// the CPU completes the work. Returns the completion time.
    pub fn end_batch(&mut self, now: SimTime, pid: Pid) -> SimTime {
        self.finish_batch(now, pid, AfterBatch::Yield)
    }

    /// Finishes the batch; the process then sleeps until a wake event or
    /// the optional timeout (relative to the batch completion).
    pub fn end_batch_sleep(
        &mut self,
        now: SimTime,
        pid: Pid,
        timeout: Option<SimDuration>,
    ) -> SimTime {
        let done = {
            let p = self.proc_mut(pid);
            let work = p
                .batch_acc
                .take()
                .expect("invariant: end_batch_sleep closes a batch begin_batch opened");
            let done = self.cpu.run_process(now, work);
            let p = self.proc_mut(pid);
            p.state = ProcState::Running {
                until: done,
                then: AfterBatch::Sleep {
                    timeout: timeout.map(|t| done + t),
                },
            };
            done
        };
        done
    }

    fn finish_batch(&mut self, now: SimTime, pid: Pid, then: AfterBatch) -> SimTime {
        let p = self.proc_mut(pid);
        let work = p
            .batch_acc
            .take()
            .expect("invariant: finish_batch closes a batch begin_batch opened");
        let done = self.cpu.run_process(now, work);
        let p = self.proc_mut(pid);
        p.state = ProcState::Running { until: done, then };
        done
    }

    /// Wakes a sleeping process (readiness event, signal arrival).
    pub fn wake(&mut self, now: SimTime, pid: Pid) {
        let Some(p) = self.proc_get_mut(pid) else {
            return;
        };
        match p.state {
            ProcState::Sleeping { .. } => {
                p.state = ProcState::Idle;
                p.pending_wake = false;
                self.stats.wakeups += 1;
                self.probe.inc("kernel.wakeups");
                self.events_out.push(KernelEvent::ProcRunnable { pid });
                if self.trace.wants("sched") {
                    self.trace
                        .record(now, "sched", format!("wake pid {pid} (sleeping -> idle)"));
                }
            }
            ProcState::Running {
                then: AfterBatch::Sleep { .. },
                ..
            } => {
                // The batch that decided to sleep is still on the CPU;
                // cancel the sleep.
                p.pending_wake = true;
                self.stats.wakeups += 1;
                self.probe.inc("kernel.wakeups");
                if self.trace.wants("sched") {
                    self.trace
                        .record(now, "sched", format!("wake pid {pid} (sleep cancelled)"));
                }
            }
            _ => {}
        }
    }

    /// Earliest time the kernel needs attention.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.procs.iter().filter_map(|p| p.next_deadline()).min()
    }

    /// Whether `advance_into(now, …)` would emit events or transition
    /// any process — the quiescence test for driving loops, cheaper
    /// than an empty advance pass (short-circuits on the first due
    /// process).
    pub fn has_work_at(&self, now: SimTime) -> bool {
        !self.events_out.is_empty()
            || self
                .procs
                .iter()
                .any(|p| p.next_deadline().is_some_and(|t| t <= now))
    }

    /// Fires due process transitions and drains pending events.
    ///
    /// Convenience wrapper over [`Kernel::advance_into`] that allocates a
    /// fresh vector per call; hot callers should hold a scratch buffer
    /// and use `advance_into` directly.
    pub fn advance(&mut self, now: SimTime) -> Vec<KernelEvent> {
        let mut out = Vec::new();
        self.advance_into(now, &mut out);
        out
    }

    /// Fires due process transitions and appends pending events to `out`
    /// (which is *not* cleared — the caller owns the buffer).
    // #[hot_path] — simcheck bans per-call allocation in this function
    pub fn advance_into(&mut self, now: SimTime, out: &mut Vec<KernelEvent>) {
        for ix in 0..self.procs.len() {
            let pid = (ix + 1) as Pid;
            let p = &mut self.procs[ix];
            match p.state {
                ProcState::Running { until, then } if until <= now => match then {
                    AfterBatch::Yield => {
                        p.state = ProcState::Idle;
                        self.events_out.push(KernelEvent::ProcRunnable { pid });
                    }
                    AfterBatch::Sleep { timeout } => {
                        if p.pending_wake {
                            p.pending_wake = false;
                            p.state = ProcState::Idle;
                            self.events_out.push(KernelEvent::ProcRunnable { pid });
                        } else {
                            p.state = ProcState::Sleeping { timeout };
                            // The timeout may already be due.
                            if let Some(t) = timeout {
                                if t <= now {
                                    p.state = ProcState::Idle;
                                    self.events_out.push(KernelEvent::ProcRunnable { pid });
                                }
                            }
                        }
                    }
                },
                ProcState::Sleeping { timeout: Some(t) } if t <= now => {
                    p.state = ProcState::Idle;
                    self.events_out.push(KernelEvent::ProcRunnable { pid });
                }
                _ => {}
            }
        }
        out.append(&mut self.events_out);
    }

    /// Charges softirq-context CPU work (used by `/dev/poll` backmap
    /// marking, which runs in the driver's event path).
    pub fn charge_softirq(&mut self, now: SimTime, cost: SimDuration) {
        self.cpu.charge_softirq(now, cost);
    }

    // ------------------------------------------------------------------
    // Watcher (wait-queue) registry.
    // ------------------------------------------------------------------

    /// Registers `fd` so that its readiness events wake `pid`.
    ///
    /// Cost is *not* charged here; the caller (stock `poll()` or the
    /// `/dev/poll` device) charges per its own cost structure.
    pub fn watch(&mut self, pid: Pid, fd: Fd) {
        if fd < 0 {
            return;
        }
        if let Some(set) = self.watchers.get_mut(Self::proc_ix(pid)) {
            set.insert(fd as usize);
        }
    }

    /// Removes one watcher registration.
    pub fn unwatch(&mut self, pid: Pid, fd: Fd) {
        if fd < 0 {
            return;
        }
        if let Some(set) = self.watchers.get_mut(Self::proc_ix(pid)) {
            set.remove(fd as usize);
        }
    }

    /// Removes every watcher registration of `pid`. Returns how many
    /// were removed (so the caller can charge per-fd costs).
    pub fn unwatch_all(&mut self, pid: Pid) -> usize {
        self.watchers.get_mut(Self::proc_ix(pid)).map_or(0, |set| {
            let n = set.count();
            set.clear();
            n
        })
    }

    /// Number of active watcher registrations for `pid`.
    pub fn watch_count(&self, pid: Pid) -> usize {
        self.watchers
            .get(Self::proc_ix(pid))
            .map_or(0, PagedBits::count)
    }

    /// Whether `fd` is registered to wake `pid` (the backmapping-list
    /// membership question the `/dev/poll` invariant auditor asks after
    /// every `POLLREMOVE`).
    pub fn is_watched(&self, pid: Pid, fd: Fd) -> bool {
        fd >= 0
            && self
                .watchers
                .get(Self::proc_ix(pid))
                .is_some_and(|s| s.contains(fd as usize))
    }

    // ------------------------------------------------------------------
    // Readiness.
    // ------------------------------------------------------------------

    /// Current poll condition of `fd` as the kernel sees it.
    ///
    /// This is the "truth" that a device driver's poll callback would
    /// return; querying it is free — *charging* for the query is the
    /// poll implementation's job.
    pub fn readiness(&self, pid: Pid, fd: Fd) -> PollBits {
        let Some(p) = self.proc_get(pid) else {
            return PollBits::POLLNVAL;
        };
        let Ok(file) = p.fds.get(fd) else {
            return PollBits::POLLNVAL;
        };
        match file.kind {
            FileKind::Stream(ep) => self
                .ep_slot(ep)
                .map(|s| s.mirror.bits())
                // A fully closed/vanished connection reads as HUP.
                .unwrap_or(PollBits::POLLIN | PollBits::POLLHUP),
            FileKind::Listener(l) => {
                if self.listener_slot(l).is_some_and(|s| s.ready) {
                    PollBits::POLLIN
                } else {
                    PollBits::EMPTY
                }
            }
            FileKind::DevPoll(_) => PollBits::EMPTY,
        }
    }

    // ------------------------------------------------------------------
    // Dense slot plumbing.
    // ------------------------------------------------------------------

    fn ep_slot(&self, ep: EndpointId) -> Option<&EpSlot> {
        self.eps.get(ep_index(ep))
    }

    fn ep_slot_mut(&mut self, ep: EndpointId) -> Option<&mut EpSlot> {
        self.eps.get_mut(ep_index(ep))
    }

    fn ep_slot_insert(&mut self, ep: EndpointId, slot: EpSlot) {
        self.eps.insert(ep_index(ep), slot);
        self.eps_peak = self.eps_peak.max(self.eps.len());
    }

    fn ep_slot_remove(&mut self, ep: EndpointId) {
        self.eps.take(ep_index(ep));
    }

    fn listener_slot(&self, l: ListenerId) -> Option<&ListenerSlot> {
        self.listeners.get(l.0 as usize).and_then(|s| s.as_ref())
    }

    fn listener_slot_or_default(&mut self, l: ListenerId) -> &mut ListenerSlot {
        let ix = l.0 as usize;
        if ix >= self.listeners.len() {
            self.listeners.resize(ix + 1, None);
        }
        self.listeners[ix].get_or_insert_with(ListenerSlot::default)
    }

    /// Allocates a descriptor in `pid`'s table, tallying `EMFILE`
    /// refusals so fd exhaustion is observable per-mechanism rather
    /// than only through downstream connection aborts.
    fn fd_alloc(&mut self, pid: Pid, kind: FileKind) -> Result<Fd, Errno> {
        match self.proc_mut(pid).fds.alloc(kind) {
            Err(Errno::EMFILE) => {
                self.stats.emfile += 1;
                Err(Errno::EMFILE)
            }
            r => r,
        }
    }

    /// The endpoint behind a stream descriptor.
    pub fn endpoint_of(&self, pid: Pid, fd: Fd) -> Result<EndpointId, Errno> {
        match self.process(pid).fds.get(fd)?.kind {
            FileKind::Stream(ep) => Ok(ep),
            _ => Err(Errno::EINVAL),
        }
    }

    // ------------------------------------------------------------------
    // Network event intake.
    // ------------------------------------------------------------------

    /// Routes one network notification into the kernel.
    // #[hot_path] — simcheck bans per-call allocation in this function
    pub fn on_net(&mut self, now: SimTime, notify: &NetNotify) {
        if self.trace.wants("tcp") {
            match *notify {
                NetNotify::PeerClosed { ep } => {
                    self.trace.record(now, "tcp", format!("FIN {ep:?}"));
                }
                NetNotify::ConnReset { ep } => {
                    self.trace.record(now, "tcp", format!("RST {ep:?}"));
                }
                NetNotify::AcceptReady { listener } => {
                    self.trace
                        .record(now, "tcp", format!("accept-ready {listener:?}"));
                }
                _ => {}
            }
        }
        match *notify {
            NetNotify::SegmentArrived { host, wire_bytes } => {
                if host == self.host {
                    let c = self.cost.softirq_rx(wire_bytes);
                    self.cpu.charge_softirq(now, c);
                }
            }
            NetNotify::Readable { ep } => {
                if let Some(s) = self.ep_slot_mut(ep) {
                    s.mirror.readable = true;
                }
                self.fd_event(now, ep, PollBits::POLLIN);
            }
            NetNotify::Writable { ep } => {
                if let Some(s) = self.ep_slot_mut(ep) {
                    s.mirror.writable = true;
                }
                self.fd_event(now, ep, PollBits::POLLOUT);
            }
            NetNotify::PeerClosed { ep } => {
                if let Some(s) = self.ep_slot_mut(ep) {
                    s.mirror.hup = true;
                    s.mirror.readable = true;
                }
                self.fd_event(now, ep, PollBits::POLLHUP | PollBits::POLLIN);
            }
            NetNotify::ConnReset { ep } => {
                if let Some(s) = self.ep_slot_mut(ep) {
                    s.mirror.err = true;
                }
                self.fd_event(now, ep, PollBits::POLLERR);
            }
            NetNotify::AcceptReady { listener } => {
                let mut owners = std::mem::take(&mut self.accept_scratch);
                owners.clear();
                {
                    let slot = self.listener_slot_or_default(listener);
                    slot.ready = true;
                    owners.extend_from_slice(&slot.owners);
                }
                match self.accept_wake {
                    AcceptWake::Herd => {
                        // Stock 2.2: every sharer is notified and woken.
                        for &(pid, fd) in &owners {
                            self.raise_fd_event(now, pid, fd, PollBits::POLLIN);
                        }
                    }
                    AcceptWake::Exclusive => {
                        if !owners.is_empty() {
                            // Prefer a sleeping sharer (it needs the wake);
                            // round-robin among them for fairness.
                            let n = owners.len();
                            let start = self.accept_rr;
                            self.accept_rr = (self.accept_rr + 1) % n;
                            let pick = (0..n)
                                .map(|i| owners[(start + i) % n])
                                .find(|&(pid, _)| {
                                    self.proc_get(pid).is_some_and(|p| p.is_sleeping())
                                })
                                .unwrap_or(owners[start % n]);
                            self.raise_fd_event(now, pick.0, pick.1, PollBits::POLLIN);
                        }
                    }
                }
                self.accept_scratch = owners;
            }
            // Client-side notifications are not the server kernel's
            // business; full closes need no action (the fd, if still
            // open, keeps reporting HUP via the mirror).
            NetNotify::ConnClosed { ep } => {
                // Preserve a HUP indication for a still-open fd whose
                // mirror is about to lose its connection state.
                if let Some(s) = self.ep_slot_mut(ep) {
                    s.mirror.hup = true;
                }
            }
            NetNotify::ConnectDone { .. }
            | NetNotify::ConnectFailed { .. }
            | NetNotify::SynDropped { .. } => {}
        }
    }

    fn fd_event(&mut self, now: SimTime, ep: EndpointId, band: PollBits) {
        if let Some(&EpSlot { pid, fd, .. }) = self.ep_slot(ep) {
            self.raise_fd_event(now, pid, fd, band);
        }
    }

    /// Raises a descriptor event: queues an RT signal if one is
    /// assigned, wakes sleeping watchers, and surfaces the event for
    /// `/dev/poll` hint marking.
    fn raise_fd_event(&mut self, now: SimTime, pid: Pid, fd: Fd, band: PollBits) {
        self.events_out.push(KernelEvent::FdEvent { pid, fd, band });

        // F_SETSIG: queue an RT signal (kernel side, softirq context).
        let sig = self
            .proc_get(pid)
            .and_then(|p| p.fds.get(fd).ok())
            .and_then(|f| f.sig);
        if let Some(signo) = sig {
            let rt_cost = SimDuration::from_nanos(self.cost.rt_enqueue);
            let sigio_cost = SimDuration::from_nanos(self.cost.sigio_raise);
            let p = self.proc_mut(pid);
            let ok = p.signals.enqueue_rt(Siginfo { signo, fd, band });
            let depth = p.signals.queue_len() as u64;
            self.cpu.charge_softirq(now, rt_cost);
            if ok {
                self.stats.rt_signals += 1;
                self.probe.inc("rtsig.enqueued");
            } else {
                self.stats.rt_overflows += 1;
                self.probe.inc("rtsig.overflows");
                self.cpu.charge_softirq(now, sigio_cost);
            }
            self.probe.gauge_set("rtsig.queue_depth", depth);
            if self.trace.wants("rtsig") {
                let state = if ok { "queued" } else { "OVERFLOW -> SIGIO" };
                self.trace.record(
                    now,
                    "rtsig",
                    format!("sig {signo} fd {fd} {band} {state} (depth {depth})"),
                );
            }
            // A signal (RT or the overflow SIGIO) is deliverable: wake a
            // process blocked in sigwaitinfo.
            self.wake(now, pid);
        }

        // Wait-queue wakeup for poll-style sleepers.
        if self.is_watched(pid, fd) {
            self.wake(now, pid);
        }
    }

    // ------------------------------------------------------------------
    // Syscalls.
    // ------------------------------------------------------------------

    fn charge_syscall(&mut self, pid: Pid, extra: u64) {
        let c = SimDuration::from_nanos(self.cost.syscall + extra);
        self.charge(pid, c);
        let p = self.proc_mut(pid);
        p.syscall_count += 1;
        self.stats.syscalls += 1;
    }

    /// Counts a syscall entry and charges its base cost. Returns the
    /// batch accumulator at entry so [`Kernel::syscall_exit`] can observe
    /// the syscall's full simulated latency (base plus any per-byte or
    /// per-item charges added before the exit).
    fn syscall_enter(&mut self, pid: Pid, counter: &'static str, extra: u64) -> SimDuration {
        self.probe.inc(counter);
        let entry = self
            .proc_get(pid)
            .and_then(|p| p.batch_acc)
            .unwrap_or(SimDuration::ZERO);
        self.charge_syscall(pid, extra);
        entry
    }

    /// Observes the simulated latency accumulated since `entry` into the
    /// named histogram (happy-path exits only; error paths still count
    /// the entry).
    fn syscall_exit(&mut self, pid: Pid, entry: SimDuration, hist: &'static str) {
        let acc = self
            .proc_get(pid)
            .and_then(|p| p.batch_acc)
            .unwrap_or(entry);
        self.probe.observe(hist, (acc - entry).as_nanos());
    }

    /// `socket` + `bind` + `listen` in one step: opens a listening
    /// descriptor on this host.
    pub fn sys_listen(
        &mut self,
        net: &mut Network,
        _now: SimTime,
        pid: Pid,
        port: Port,
        backlog: usize,
    ) -> Result<Fd, Errno> {
        let t0 = self.syscall_enter(pid, "syscall.listen", self.cost.accept);
        let listener = net
            .listen(self.host, port, backlog)
            .map_err(|_| Errno::EADDRINUSE)?;
        let fd = self.fd_alloc(pid, FileKind::Listener(listener))?;
        let slot = self.listener_slot_or_default(listener);
        slot.owners.push((pid, fd));
        slot.ready = false;
        self.syscall_exit(pid, t0, "syscall_ns.listen");
        Ok(fd)
    }

    /// Attaches an existing listening socket to another process — the
    /// prefork pattern: one parent `listen()`s, the children inherit the
    /// descriptor and all `accept()` from it.
    pub fn sys_share_listener(
        &mut self,
        _now: SimTime,
        pid: Pid,
        listener: ListenerId,
    ) -> Result<Fd, Errno> {
        let t0 = self.syscall_enter(pid, "syscall.share_listener", self.cost.fcntl);
        if self.listener_slot(listener).is_none() {
            return Err(Errno::EBADF);
        }
        let fd = self.fd_alloc(pid, FileKind::Listener(listener))?;
        self.listener_slot_or_default(listener)
            .owners
            .push((pid, fd));
        self.syscall_exit(pid, t0, "syscall_ns.share_listener");
        Ok(fd)
    }

    /// The listener behind a listening descriptor.
    pub fn listener_of(&self, pid: Pid, fd: Fd) -> Result<ListenerId, Errno> {
        match self.process(pid).fds.get(fd)?.kind {
            FileKind::Listener(l) => Ok(l),
            _ => Err(Errno::EINVAL),
        }
    }

    /// `accept()`: pops one established connection, allocating a
    /// descriptor for it.
    pub fn sys_accept(
        &mut self,
        net: &mut Network,
        now: SimTime,
        pid: Pid,
        listen_fd: Fd,
    ) -> Result<Fd, Errno> {
        let t0 = self.syscall_enter(pid, "syscall.accept", self.cost.accept);
        let listener = match self.process(pid).fds.get(listen_fd)?.kind {
            FileKind::Listener(l) => l,
            _ => return Err(Errno::EINVAL),
        };
        let Some(ep) = net.accept(listener) else {
            self.listener_slot_or_default(listener).ready = false;
            return Err(Errno::EAGAIN);
        };
        if net.accept_queue_len(listener) == 0 {
            self.listener_slot_or_default(listener).ready = false;
        }
        let fd = match self.fd_alloc(pid, FileKind::Stream(ep)) {
            Ok(fd) => fd,
            Err(e) => {
                // Descriptor table full: the connection was already
                // dequeued, so refuse it outright rather than leak it.
                let vnow = self.vnow(now, pid);
                let _ = net.abort(vnow, ep);
                return Err(e);
            }
        };
        self.ep_slot_insert(
            ep,
            EpSlot {
                pid,
                fd,
                mirror: SockMirror {
                    readable: net.readable_bytes(ep) > 0 || net.peer_closed(ep),
                    writable: net.send_space(ep) > 0,
                    hup: net.peer_closed(ep),
                    err: false,
                },
            },
        );
        if self.spans.enabled() {
            // Accept-queue wait: from the softirq-side enqueue (three-way
            // handshake completion) to this accept() pop — a cross-batch
            // wait, so it is recorded standalone rather than nested.
            if let Some(queued) = net.accept_queued_at(ep) {
                let end = self.span_now(pid);
                self.span_complete(Phase::AcceptWait, pid as u64, queued, end);
            }
        }
        self.syscall_exit(pid, t0, "syscall_ns.accept");
        Ok(fd)
    }

    /// `read()`: drains up to `max` in-order bytes.
    ///
    /// Returns `Ok(empty)` at EOF, `EAGAIN` when nothing is available on
    /// a non-blocking stream.
    pub fn sys_read(
        &mut self,
        net: &mut Network,
        now: SimTime,
        pid: Pid,
        fd: Fd,
        max: usize,
    ) -> Result<Vec<u8>, Errno> {
        let mut buf = Vec::new();
        self.sys_read_into(net, now, pid, fd, max, &mut buf)?;
        Ok(buf)
    }

    /// `read()` into a caller-supplied buffer: appends up to `max` bytes
    /// to `buf` and returns how many arrived (`Ok(0)` means EOF).
    ///
    /// The allocation-free spelling of [`Kernel::sys_read`] for server
    /// hot paths — request bytes land directly in the connection's own
    /// buffer instead of bouncing through a fresh `Vec` per call.
    pub fn sys_read_into(
        &mut self,
        net: &mut Network,
        now: SimTime,
        pid: Pid,
        fd: Fd,
        max: usize,
        buf: &mut Vec<u8>,
    ) -> Result<usize, Errno> {
        let t0 = self.syscall_enter(pid, "syscall.read", self.cost.read_base);
        let ep = self.endpoint_of(pid, fd)?;
        if self.ep_slot(ep).is_some_and(|s| s.mirror.err) {
            return Err(Errno::ECONNRESET);
        }
        let vnow = self.vnow(now, pid);
        let n = net.recv_into(vnow, ep, max, buf).unwrap_or(0);
        if n > 0 {
            self.charge(pid, self.cost.copy(n));
        }
        // Level update: still readable only if bytes remain (EOF keeps
        // POLLIN so the application observes it).
        let still = net.readable_bytes(ep) > 0;
        let eof = net.peer_closed(ep) || !net.exists(ep.conn);
        if let Some(s) = self.ep_slot_mut(ep) {
            s.mirror.readable = still || eof;
            if eof {
                s.mirror.hup = true;
            }
        }
        self.span_leaf(pid, Phase::Read, t0);
        if n == 0 {
            if eof {
                self.syscall_exit(pid, t0, "syscall_ns.read");
                return Ok(0); // EOF.
            }
            return Err(Errno::EAGAIN);
        }
        self.syscall_exit(pid, t0, "syscall_ns.read");
        Ok(n)
    }

    /// `write()`: buffers up to the socket send-buffer size.
    ///
    /// Returns the number of bytes accepted; `EAGAIN` if none fit.
    pub fn sys_write(
        &mut self,
        net: &mut Network,
        now: SimTime,
        pid: Pid,
        fd: Fd,
        data: &[u8],
    ) -> Result<usize, Errno> {
        let t0 = self.syscall_enter(pid, "syscall.write", self.cost.write_base);
        let ep = self.endpoint_of(pid, fd)?;
        if self.ep_slot(ep).is_some_and(|s| s.mirror.err) {
            return Err(Errno::ECONNRESET);
        }
        let vnow = self.vnow(now, pid);
        let n = match net.send(vnow, ep, data) {
            Ok(n) => n,
            Err(_) => return Err(Errno::EPIPE),
        };
        if n > 0 {
            let mss = net.config().mss as usize;
            let segs = n.div_ceil(mss) as u64;
            self.charge(pid, self.cost.copy(n));
            self.charge(
                pid,
                SimDuration::from_nanos(self.cost.tx_per_segment * segs),
            );
        }
        if let Some(s) = self.ep_slot_mut(ep) {
            s.mirror.writable = net.send_space(ep) > 0;
        }
        self.span_leaf(pid, Phase::Write, t0);
        if n == 0 {
            return Err(Errno::EAGAIN);
        }
        self.syscall_exit(pid, t0, "syscall_ns.write");
        Ok(n)
    }

    /// `sendfile()`: transmits file bytes through the kernel without the
    /// user-space copy (§6 of the paper lists this as future work worth
    /// studying; Linux 2.2 had just grown the syscall).
    ///
    /// Semantically identical to `write()` here — the content store is
    /// in memory — but the per-byte cost uses the cheaper in-kernel
    /// path.
    pub fn sys_sendfile(
        &mut self,
        net: &mut Network,
        now: SimTime,
        pid: Pid,
        fd: Fd,
        data: &[u8],
    ) -> Result<usize, Errno> {
        let t0 = self.syscall_enter(pid, "syscall.sendfile", self.cost.write_base);
        let ep = self.endpoint_of(pid, fd)?;
        if self.ep_slot(ep).is_some_and(|s| s.mirror.err) {
            return Err(Errno::ECONNRESET);
        }
        let vnow = self.vnow(now, pid);
        let n = match net.send(vnow, ep, data) {
            Ok(n) => n,
            Err(_) => return Err(Errno::EPIPE),
        };
        if n > 0 {
            let mss = net.config().mss as usize;
            let segs = n.div_ceil(mss) as u64;
            self.charge(
                pid,
                SimDuration::from_nanos(self.cost.sendfile_per_byte * n as u64),
            );
            self.charge(
                pid,
                SimDuration::from_nanos(self.cost.tx_per_segment * segs),
            );
        }
        if let Some(s) = self.ep_slot_mut(ep) {
            s.mirror.writable = net.send_space(ep) > 0;
        }
        self.span_leaf(pid, Phase::Write, t0);
        if n == 0 {
            return Err(Errno::EAGAIN);
        }
        self.syscall_exit(pid, t0, "syscall_ns.sendfile");
        Ok(n)
    }

    /// `close()`: releases the descriptor; streams get a FIN.
    ///
    /// Any RT signals already queued for the descriptor remain queued —
    /// the stale-event behaviour §2 of the paper warns about.
    pub fn sys_close(
        &mut self,
        net: &mut Network,
        now: SimTime,
        pid: Pid,
        fd: Fd,
    ) -> Result<(), Errno> {
        let t0 = self.syscall_enter(pid, "syscall.close", self.cost.close);
        let vnow = self.vnow(now, pid);
        let file = self.proc_mut(pid).fds.close(fd)?;
        match file.kind {
            FileKind::Stream(ep) => {
                self.ep_slot_remove(ep);
                // Half-close; if the conn is already gone this is a no-op.
                let _ = net.close(vnow, ep);
            }
            FileKind::Listener(l) => {
                if let Some(slot) = self.listeners.get_mut(l.0 as usize) {
                    if let Some(s) = slot.as_mut() {
                        s.owners.retain(|&(p, f)| !(p == pid && f == fd));
                        if s.owners.is_empty() {
                            *slot = None;
                        }
                    }
                }
            }
            FileKind::DevPoll(_) => {}
        }
        self.unwatch(pid, fd);
        self.syscall_exit(pid, t0, "syscall_ns.close");
        Ok(())
    }

    /// `abort()`-style close (SO_LINGER 0): RST instead of FIN.
    pub fn sys_abort(
        &mut self,
        net: &mut Network,
        now: SimTime,
        pid: Pid,
        fd: Fd,
    ) -> Result<(), Errno> {
        let t0 = self.syscall_enter(pid, "syscall.abort", self.cost.close);
        let vnow = self.vnow(now, pid);
        let file = self.proc_mut(pid).fds.close(fd)?;
        if let FileKind::Stream(ep) = file.kind {
            self.ep_slot_remove(ep);
            let _ = net.abort(vnow, ep);
        }
        self.unwatch(pid, fd);
        self.syscall_exit(pid, t0, "syscall_ns.abort");
        Ok(())
    }

    /// `fcntl(fd, F_SETFL, O_NONBLOCK)`.
    pub fn sys_set_nonblock(&mut self, pid: Pid, fd: Fd) -> Result<(), Errno> {
        let t0 = self.syscall_enter(pid, "syscall.set_nonblock", self.cost.fcntl);
        self.proc_mut(pid).fds.get_mut(fd)?.nonblock = true;
        self.syscall_exit(pid, t0, "syscall_ns.set_nonblock");
        Ok(())
    }

    /// `fcntl(fd, F_SETSIG, signo)` + `F_SETOWN`: route readiness events
    /// for `fd` into the process's RT signal queue (§2).
    ///
    /// Pass `None` to clear. The signal number must be in the RT range.
    pub fn sys_set_sig(&mut self, pid: Pid, fd: Fd, signo: Option<u8>) -> Result<(), Errno> {
        // F_SETSIG and F_SETOWN are two fcntl calls in the real API.
        let t0 = self.syscall_enter(pid, "syscall.set_sig", self.cost.fcntl);
        self.charge_syscall(pid, self.cost.fcntl);
        if let Some(s) = signo {
            if !(SIGRTMIN..=SIGRTMAX).contains(&s) {
                return Err(Errno::EINVAL);
            }
        }
        self.proc_mut(pid).fds.get_mut(fd)?.sig = signo;
        self.span_leaf(pid, Phase::InterestReg, t0);
        self.syscall_exit(pid, t0, "syscall_ns.set_sig");
        Ok(())
    }

    /// `sigwaitinfo()`: dequeues the next pending signal, or `EAGAIN` if
    /// none (caller decides to sleep).
    pub fn sys_sigwaitinfo(&mut self, pid: Pid) -> Result<Siginfo, Errno> {
        let t0 = self.syscall_enter(pid, "syscall.sigwaitinfo", self.cost.rt_dequeue);
        let out = self.proc_mut(pid).signals.dequeue();
        let depth = self.process(pid).signals.queue_len() as u64;
        self.probe.gauge_set("rtsig.queue_depth", depth);
        match out {
            Some(info) => {
                self.probe.inc("rtsig.dequeued");
                self.span_leaf(pid, Phase::Delivery, t0);
                self.syscall_exit(pid, t0, "syscall_ns.sigwaitinfo");
                Ok(info)
            }
            None => Err(Errno::EAGAIN),
        }
    }

    /// The paper's proposed `sigtimedwait4()`: dequeues up to `max`
    /// signals in one syscall (§6).
    pub fn sys_sigtimedwait4(&mut self, pid: Pid, max: usize) -> Result<Vec<Siginfo>, Errno> {
        // One syscall; per-signal dequeue work still applies.
        let t0 = self.syscall_enter(pid, "syscall.sigtimedwait4", 0);
        let batch = self.proc_mut(pid).signals.dequeue_batch(max);
        let c = SimDuration::from_nanos(self.cost.rt_dequeue * batch.len() as u64);
        self.charge(pid, c);
        let depth = self.process(pid).signals.queue_len() as u64;
        self.probe.gauge_set("rtsig.queue_depth", depth);
        if batch.is_empty() {
            return Err(Errno::EAGAIN);
        }
        self.probe.add("rtsig.dequeued", batch.len() as u64);
        self.probe.observe("rtsig.batch_size", batch.len() as u64);
        self.span_leaf(pid, Phase::Delivery, t0);
        self.syscall_exit(pid, t0, "syscall_ns.sigtimedwait4");
        Ok(batch)
    }

    /// Flushes the RT queue (overflow recovery: handlers reset to
    /// `SIG_DFL`). Returns how many signals were discarded.
    pub fn sys_flush_rt(&mut self, pid: Pid) -> usize {
        let t0 = self.syscall_enter(pid, "syscall.flush_rt", 0);
        let n = self.proc_mut(pid).signals.flush_rt();
        self.probe.add("rtsig.flushed", n as u64);
        self.probe.gauge_set("rtsig.queue_depth", 0);
        self.syscall_exit(pid, t0, "syscall_ns.flush_rt");
        n
    }

    /// Charges arbitrary application-level work (request parsing, file
    /// lookup) into the current batch.
    pub fn charge_app(&mut self, pid: Pid, nanos: u64) {
        self.charge(pid, SimDuration::from_nanos(nanos));
    }

    /// Allocates a descriptor directly (used by the `/dev/poll` device
    /// layer, which manages its own object registry). No cost is
    /// charged — the caller accounts for the surrounding syscall.
    pub fn alloc_fd(&mut self, pid: Pid, kind: FileKind) -> Result<Fd, Errno> {
        self.fd_alloc(pid, kind)
    }

    /// Closes a descriptor with no socket side effects (used for
    /// `/dev/poll` descriptors). No cost is charged.
    pub fn close_fd_raw(&mut self, pid: Pid, fd: Fd) -> Result<(), Errno> {
        self.proc_mut(pid).fds.close(fd)?;
        self.unwatch(pid, fd);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;
    use simnet::{HostId, LinkConfig, SockAddr, TcpConfig};

    const CLIENT: HostId = HostId(0);
    const SERVER: HostId = HostId(1);

    fn setup() -> (Network, Kernel, Pid) {
        let net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
        let mut kernel = Kernel::new(SERVER, CostModel::k6_2_400mhz());
        let pid = kernel.spawn_default();
        (net, kernel, pid)
    }

    /// Pumps the network, feeding all notifications into the kernel, and
    /// returns the kernel events raised, until quiet or `horizon`.
    fn pump(net: &mut Network, kernel: &mut Kernel, horizon: SimTime) -> Vec<KernelEvent> {
        let mut out = Vec::new();
        loop {
            match net.next_deadline() {
                Some(t) if t <= horizon => {
                    for n in net.advance(t) {
                        kernel.on_net(t, &n);
                    }
                    out.extend(kernel.advance(t));
                }
                _ => break,
            }
        }
        for n in net.advance(horizon) {
            kernel.on_net(horizon, &n);
        }
        out.extend(kernel.advance(horizon));
        out
    }

    fn connect_one(
        net: &mut Network,
        kernel: &mut Kernel,
        pid: Pid,
        listen_fd: Fd,
    ) -> (Fd, simnet::ConnId) {
        let conn = net
            .connect(
                SimTime::ZERO,
                CLIENT,
                SockAddr::new(SERVER, 80),
                SimDuration::ZERO,
            )
            .unwrap();
        pump(net, kernel, SimTime::from_millis(10));
        kernel.begin_batch(SimTime::from_millis(10), pid);
        let fd = kernel
            .sys_accept(net, SimTime::from_millis(10), pid, listen_fd)
            .unwrap();
        kernel.end_batch(SimTime::from_millis(10), pid);
        (fd, conn)
    }

    #[test]
    fn listen_accept_read_write_close_lifecycle() {
        let (mut net, mut kernel, pid) = setup();
        kernel.begin_batch(SimTime::ZERO, pid);
        let lfd = kernel
            .sys_listen(&mut net, SimTime::ZERO, pid, 80, 128)
            .unwrap();
        kernel.end_batch(SimTime::ZERO, pid);

        let (fd, conn) = connect_one(&mut net, &mut kernel, pid, lfd);
        let client_ep = EndpointId::new(conn, simnet::Side::Client);

        // Client sends a request.
        let t = SimTime::from_millis(20);
        net.send(t, client_ep, b"GET / HTTP/1.0\r\n\r\n").unwrap();
        pump(&mut net, &mut kernel, SimTime::from_millis(30));
        assert!(kernel.readiness(pid, fd).contains(PollBits::POLLIN));

        let t = SimTime::from_millis(30);
        kernel.begin_batch(t, pid);
        let data = kernel.sys_read(&mut net, t, pid, fd, 4096).unwrap();
        assert_eq!(&data, b"GET / HTTP/1.0\r\n\r\n");
        // Drained: no longer readable.
        assert!(!kernel.readiness(pid, fd).contains(PollBits::POLLIN));
        let n = kernel
            .sys_write(&mut net, t, pid, fd, &[0u8; 6144])
            .unwrap();
        assert_eq!(n, 6144);
        kernel.sys_close(&mut net, t, pid, fd).unwrap();
        kernel.end_batch(t, pid);

        pump(&mut net, &mut kernel, SimTime::from_millis(100));
        let got = net
            .recv(SimTime::from_millis(100), client_ep, 10_000)
            .unwrap();
        assert_eq!(got.len(), 6144);
        assert!(net.peer_closed(client_ep));
    }

    #[test]
    fn closed_fd_slot_is_recycled_without_stale_state() {
        // The fd table is a dense `Vec<Option<File>>` that always hands
        // out the lowest free slot, so closing a descriptor and accepting
        // a fresh connection must yield the *same* fd number — with the
        // slot fully reinitialized (no readiness or buffered data leaking
        // from the previous occupant).
        let (mut net, mut kernel, pid) = setup();
        kernel.begin_batch(SimTime::ZERO, pid);
        let lfd = kernel
            .sys_listen(&mut net, SimTime::ZERO, pid, 80, 128)
            .unwrap();
        kernel.end_batch(SimTime::ZERO, pid);

        let (fd, conn) = connect_one(&mut net, &mut kernel, pid, lfd);
        let client_ep = EndpointId::new(conn, simnet::Side::Client);

        // Make the old occupant readable, then close it with the data
        // still buffered — the stale POLLIN must not survive the slot.
        let t = SimTime::from_millis(20);
        net.send(t, client_ep, b"stale bytes").unwrap();
        pump(&mut net, &mut kernel, SimTime::from_millis(30));
        assert!(kernel.readiness(pid, fd).contains(PollBits::POLLIN));
        let t = SimTime::from_millis(30);
        kernel.begin_batch(t, pid);
        kernel.sys_close(&mut net, t, pid, fd).unwrap();
        kernel.end_batch(t, pid);
        pump(&mut net, &mut kernel, SimTime::from_millis(40));

        net.connect(
            SimTime::from_millis(40),
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
        pump(&mut net, &mut kernel, SimTime::from_millis(50));
        let t = SimTime::from_millis(50);
        kernel.begin_batch(t, pid);
        let fd2 = kernel.sys_accept(&mut net, t, pid, lfd).unwrap();
        kernel.end_batch(t, pid);
        assert_eq!(fd2, fd, "lowest free slot must be recycled");
        assert!(
            !kernel.readiness(pid, fd2).contains(PollBits::POLLIN),
            "recycled slot leaked the previous connection's readiness"
        );
        let t = SimTime::from_millis(50);
        kernel.begin_batch(t, pid);
        assert_eq!(
            kernel.sys_read(&mut net, t, pid, fd2, 4096),
            Err(Errno::EAGAIN),
            "recycled slot leaked the previous connection's buffered data"
        );
        kernel.end_batch(t, pid);
    }

    #[test]
    fn read_empty_is_eagain_then_eof_after_fin() {
        let (mut net, mut kernel, pid) = setup();
        kernel.begin_batch(SimTime::ZERO, pid);
        let lfd = kernel
            .sys_listen(&mut net, SimTime::ZERO, pid, 80, 128)
            .unwrap();
        kernel.end_batch(SimTime::ZERO, pid);
        let (fd, conn) = connect_one(&mut net, &mut kernel, pid, lfd);
        let client_ep = EndpointId::new(conn, simnet::Side::Client);

        let t = SimTime::from_millis(20);
        kernel.begin_batch(t, pid);
        assert_eq!(
            kernel.sys_read(&mut net, t, pid, fd, 4096),
            Err(Errno::EAGAIN)
        );
        kernel.end_batch(t, pid);

        net.close(t, client_ep).unwrap();
        pump(&mut net, &mut kernel, SimTime::from_millis(40));
        assert!(kernel.readiness(pid, fd).contains(PollBits::POLLHUP));
        let t = SimTime::from_millis(40);
        kernel.begin_batch(t, pid);
        let data = kernel.sys_read(&mut net, t, pid, fd, 4096).unwrap();
        assert!(data.is_empty(), "EOF reads as empty");
        kernel.end_batch(t, pid);
    }

    #[test]
    fn batch_costs_delay_completion_and_count_syscalls() {
        let (mut net, mut kernel, pid) = setup();
        kernel.begin_batch(SimTime::ZERO, pid);
        let _ = kernel
            .sys_listen(&mut net, SimTime::ZERO, pid, 80, 128)
            .unwrap();
        let done = kernel.end_batch(SimTime::ZERO, pid);
        assert!(done > SimTime::ZERO, "syscall work takes CPU time");
        assert_eq!(kernel.process(pid).syscall_count, 1);
        // The process becomes runnable at `done`.
        assert_eq!(kernel.next_deadline(), Some(done));
        let evs = kernel.advance(done);
        assert!(evs.contains(&KernelEvent::ProcRunnable { pid }));
    }

    #[test]
    fn sleeping_process_wakes_on_readiness() {
        let (mut net, mut kernel, pid) = setup();
        kernel.begin_batch(SimTime::ZERO, pid);
        let lfd = kernel
            .sys_listen(&mut net, SimTime::ZERO, pid, 80, 128)
            .unwrap();
        kernel.end_batch(SimTime::ZERO, pid);
        let _ = kernel.advance(SimTime::from_millis(1));

        // Sleep watching the listener.
        kernel.begin_batch(SimTime::from_millis(1), pid);
        kernel.watch(pid, lfd);
        kernel.end_batch_sleep(SimTime::from_millis(1), pid, None);
        let _ = kernel.advance(SimTime::from_millis(2));
        assert!(kernel.process(pid).is_sleeping());

        // A connection arrives -> AcceptReady -> wake.
        net.connect(
            SimTime::from_millis(2),
            CLIENT,
            SockAddr::new(SERVER, 80),
            SimDuration::ZERO,
        )
        .unwrap();
        let evs = pump(&mut net, &mut kernel, SimTime::from_millis(10));
        assert!(evs
            .iter()
            .any(|e| matches!(e, KernelEvent::ProcRunnable { .. })));
        assert!(!kernel.process(pid).is_sleeping());
        assert_eq!(kernel.stats().wakeups, 1);
    }

    #[test]
    fn sleep_timeout_fires() {
        let (_net, mut kernel, pid) = setup();
        kernel.begin_batch(SimTime::ZERO, pid);
        kernel.end_batch_sleep(SimTime::ZERO, pid, Some(SimDuration::from_millis(5)));
        let _ = kernel.advance(SimTime::from_millis(1));
        assert!(kernel.process(pid).is_sleeping());
        let deadline = kernel.next_deadline().unwrap();
        assert_eq!(deadline, SimTime::from_millis(5));
        let evs = kernel.advance(deadline);
        assert!(evs.contains(&KernelEvent::ProcRunnable { pid }));
    }

    #[test]
    fn wake_racing_with_sleep_decision_cancels_sleep() {
        let (_net, mut kernel, pid) = setup();
        kernel.begin_batch(SimTime::ZERO, pid);
        kernel.charge(pid, SimDuration::from_micros(100));
        kernel.end_batch_sleep(SimTime::ZERO, pid, None);
        // Wake arrives while the batch is still on the CPU.
        kernel.wake(SimTime::from_micros(10), pid);
        let evs = kernel.advance(SimTime::from_micros(100));
        assert!(evs.contains(&KernelEvent::ProcRunnable { pid }));
        assert!(!kernel.process(pid).is_sleeping());
    }

    #[test]
    fn f_setsig_queues_rt_signals_on_events() {
        let (mut net, mut kernel, pid) = setup();
        kernel.begin_batch(SimTime::ZERO, pid);
        let lfd = kernel
            .sys_listen(&mut net, SimTime::ZERO, pid, 80, 128)
            .unwrap();
        kernel.end_batch(SimTime::ZERO, pid);
        let (fd, conn) = connect_one(&mut net, &mut kernel, pid, lfd);
        let t = SimTime::from_millis(20);
        kernel.begin_batch(t, pid);
        kernel.sys_set_sig(pid, fd, Some(SIGRTMIN)).unwrap();
        kernel.end_batch(t, pid);

        let client_ep = EndpointId::new(conn, simnet::Side::Client);
        net.send(t, client_ep, b"hello").unwrap();
        pump(&mut net, &mut kernel, SimTime::from_millis(40));

        let t = SimTime::from_millis(40);
        kernel.begin_batch(t, pid);
        let info = kernel.sys_sigwaitinfo(pid).unwrap();
        assert_eq!(info.signo, SIGRTMIN);
        assert_eq!(info.fd, fd);
        assert!(info.band.contains(PollBits::POLLIN));
        assert_eq!(kernel.sys_sigwaitinfo(pid), Err(Errno::EAGAIN));
        kernel.end_batch(t, pid);
        assert_eq!(kernel.stats().rt_signals, 1);
    }

    #[test]
    fn set_sig_rejects_non_rt_numbers() {
        let (mut net, mut kernel, pid) = setup();
        kernel.begin_batch(SimTime::ZERO, pid);
        let lfd = kernel
            .sys_listen(&mut net, SimTime::ZERO, pid, 80, 128)
            .unwrap();
        assert_eq!(kernel.sys_set_sig(pid, lfd, Some(5)), Err(Errno::EINVAL));
        kernel.end_batch(SimTime::ZERO, pid);
    }

    #[test]
    fn softirq_load_delays_batches() {
        let (mut net, mut kernel, pid) = setup();
        // Blast segments at the server host.
        for _ in 0..100 {
            kernel.on_net(
                SimTime::ZERO,
                &NetNotify::SegmentArrived {
                    host: SERVER,
                    wire_bytes: 1500,
                },
            );
        }
        kernel.begin_batch(SimTime::ZERO, pid);
        let _ = kernel.sys_listen(&mut net, SimTime::ZERO, pid, 80, 128);
        let done = kernel.end_batch(SimTime::ZERO, pid);
        // 100 segments at ~36us each queue ahead of the batch.
        assert!(
            done > SimTime::from_millis(3),
            "interrupt load must delay the process (done={done})"
        );
    }

    #[test]
    fn readiness_of_bad_fd_is_nval() {
        let (_net, kernel, pid) = setup();
        assert_eq!(kernel.readiness(pid, 42), PollBits::POLLNVAL);
        assert_eq!(kernel.readiness(pid, -1), PollBits::POLLNVAL);
    }

    #[test]
    fn rt_queue_overflow_raises_sigio_and_is_recoverable() {
        let (mut net, mut kernel, _default_pid) = setup();
        // Tiny queue to overflow quickly.
        let pid = kernel.spawn(1024, 2);
        kernel.begin_batch(SimTime::ZERO, pid);
        let lfd = kernel
            .sys_listen(&mut net, SimTime::ZERO, pid, 80, 128)
            .unwrap();
        kernel.end_batch(SimTime::ZERO, pid);
        let conn = net
            .connect(
                SimTime::ZERO,
                CLIENT,
                SockAddr::new(SERVER, 80),
                SimDuration::ZERO,
            )
            .unwrap();
        pump(&mut net, &mut kernel, SimTime::from_millis(10));
        let t = SimTime::from_millis(10);
        kernel.begin_batch(t, pid);
        let fd = kernel.sys_accept(&mut net, t, pid, lfd).unwrap();
        kernel.sys_set_sig(pid, fd, Some(SIGRTMIN)).unwrap();
        kernel.end_batch(t, pid);

        // Three separate data arrivals -> three events -> queue of 2
        // overflows on the third.
        let client_ep = EndpointId::new(conn, simnet::Side::Client);
        for i in 0..3u64 {
            let at = SimTime::from_millis(20 + i * 10);
            net.send(at, client_ep, b"x").unwrap();
            pump(&mut net, &mut kernel, at + SimDuration::from_millis(5));
        }
        assert_eq!(kernel.stats().rt_overflows, 1);
        assert!(kernel.process(pid).signals.sigio_pending());

        // Recovery: pick up SIGIO first, flush, then poll() would run.
        let t = SimTime::from_millis(60);
        kernel.begin_batch(t, pid);
        let first = kernel.sys_sigwaitinfo(pid).unwrap();
        assert_eq!(first.signo, crate::signal::SIGIO);
        let flushed = kernel.sys_flush_rt(pid);
        assert_eq!(flushed, 2);
        assert_eq!(kernel.sys_sigwaitinfo(pid), Err(Errno::EAGAIN));
        kernel.end_batch(t, pid);
    }

    #[test]
    fn sigtimedwait4_dequeues_in_one_syscall() {
        let (mut net, mut kernel, pid) = setup();
        kernel.begin_batch(SimTime::ZERO, pid);
        let lfd = kernel
            .sys_listen(&mut net, SimTime::ZERO, pid, 80, 128)
            .unwrap();
        kernel.end_batch(SimTime::ZERO, pid);
        let (fd, conn) = connect_one(&mut net, &mut kernel, pid, lfd);
        let t = SimTime::from_millis(20);
        kernel.begin_batch(t, pid);
        kernel.sys_set_sig(pid, fd, Some(SIGRTMIN)).unwrap();
        kernel.end_batch(t, pid);

        let client_ep = EndpointId::new(conn, simnet::Side::Client);
        for i in 0..4u64 {
            let at = SimTime::from_millis(30 + i * 5);
            net.send(at, client_ep, b"y").unwrap();
            pump(&mut net, &mut kernel, at + SimDuration::from_millis(4));
        }
        let before = kernel.process(pid).syscall_count;
        let t = SimTime::from_millis(60);
        kernel.begin_batch(t, pid);
        let batch = kernel.sys_sigtimedwait4(pid, 16).unwrap();
        kernel.end_batch(t, pid);
        assert!(
            batch.len() >= 2,
            "multiple events in one call: {}",
            batch.len()
        );
        assert_eq!(kernel.process(pid).syscall_count, before + 1);
    }

    #[test]
    fn fd_limit_produces_emfile() {
        let (mut net, mut kernel, _pid) = setup();
        let pid = kernel.spawn(1, 16);
        kernel.begin_batch(SimTime::ZERO, pid);
        let _l = kernel
            .sys_listen(&mut net, SimTime::ZERO, pid, 80, 128)
            .unwrap();
        // Table full (limit 1): next allocation fails.
        assert_eq!(
            kernel.sys_listen(&mut net, SimTime::ZERO, pid, 81, 128),
            Err(Errno::EMFILE)
        );
        kernel.end_batch(SimTime::ZERO, pid);
    }
}
