#![warn(missing_docs)]

//! `simkernel` — a discrete-event model of the Linux 2.2 kernel
//! machinery that *Scalable Network I/O in Linux* (Provos & Lever,
//! USENIX 2000) exercises: file descriptor tables, a socket layer over
//! [`simnet`], wait-queue wakeups, classic and POSIX real-time signals,
//! and a single calibrated CPU whose softirq work preempts application
//! progress.
//!
//! The actual event-notification mechanisms the paper studies — stock
//! `poll()`, the `/dev/poll` device, and the RT-signal event API — live
//! in the `devpoll` crate (`crates/core`), layered on the hooks exposed
//! here: [`kernel::Kernel::readiness`], the watcher registry, the charge
//! interface, and [`kernel::KernelEvent::FdEvent`] for driver hints.

pub mod cost;
pub mod cpu;
pub mod fd;
pub mod fdmap;
pub mod kernel;
pub mod poll_bits;
pub mod process;
pub mod signal;

pub use cost::CostModel;
pub use cpu::Cpu;
pub use fd::{Errno, Fd, FdTable, File, FileKind};
pub use fdmap::FdMap;
pub use kernel::{AcceptWake, Kernel, KernelEvent, KernelStats};
pub use poll_bits::PollBits;
pub use process::{AfterBatch, Pid, ProcState, Process};
pub use signal::{
    Siginfo, SignalState, DEFAULT_RT_QUEUE_MAX, GLIBC_PTHREAD_SIGNAL, SIGIO, SIGRTMAX, SIGRTMIN,
};
