//! POSIX signals: the classic SIGIO plus the queued real-time signals
//! the paper studies (§2).
//!
//! RT signals carry a payload (`siginfo`, Fig. 2 in the paper): the file
//! descriptor and a `band` of poll bits describing what happened. The
//! queue is bounded; when it overflows the kernel raises SIGIO and the
//! application must fall back to `poll()` to discover pending activity.
//! Pending signals dequeue lowest-signal-number-first, FIFO within one
//! number — the source of the paper's observation that "activity on
//! lower-numbered connections can cause longer delays for activity
//! reports on higher-numbered connections".

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::fd::Fd;
use crate::poll_bits::PollBits;

/// The classic I/O signal raised on RT-queue overflow.
pub const SIGIO: u8 = 29;
/// First real-time signal number *available to applications*.
///
/// The kernel's RT range began at 32, but glibc's LinuxThreads claimed
/// signal 32 for itself — the §6 portability hazard: "glibc's pthread
/// implementation uses signal 32. If an application starts using
/// pthreads after it has assigned signal 32 to a file descriptor via
/// fcntl(), application behavior is undetermined." Starting the usable
/// range at 33 models the safe convention.
pub const SIGRTMIN: u8 = 33;
/// The RT signal number glibc's LinuxThreads reserved (see [`SIGRTMIN`]).
pub const GLIBC_PTHREAD_SIGNAL: u8 = 32;
/// Last real-time signal number.
pub const SIGRTMAX: u8 = 63;
/// Default RT signal queue limit (the paper: "normally set high enough
/// (1024 by default)").
pub const DEFAULT_RT_QUEUE_MAX: usize = 1024;

/// The payload of one queued RT signal — the paper's simplified
/// `siginfo` struct (Fig. 2): `_fd` and `_band` carry the same
/// information as `pollfd.fd` / `pollfd.revents`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Siginfo {
    /// The signal number (`si_signo`).
    pub signo: u8,
    /// The descriptor the event refers to (`_sigpoll._fd`).
    pub fd: Fd,
    /// Poll bits describing the event (`_sigpoll._band`).
    pub band: PollBits,
}

/// Per-process signal state: the bounded RT queue plus the SIGIO flag.
#[derive(Debug, Clone)]
pub struct SignalState {
    /// Queued RT signals by signal number (dequeue order: lowest number
    /// first, FIFO within a number).
    queues: BTreeMap<u8, VecDeque<Siginfo>>,
    queued: usize,
    max_queued: usize,
    /// SIGIO pending (queue overflowed).
    sigio_pending: bool,
    /// Events lost to overflow (diagnostic).
    overflowed: u64,
    /// Total signals ever enqueued (diagnostic).
    enqueued: u64,
    /// High-water mark of the queue depth.
    high_water: usize,
}

impl SignalState {
    /// Folds the queue's semantic state into `h`: the pending-SIGIO
    /// flag plus every queued siginfo in dequeue order. Diagnostic
    /// tallies (overflow/enqueue counters, high-water mark) are
    /// excluded so equal queues dedup.
    pub fn fingerprint_into(&self, h: &mut simcore::fingerprint::Fnv) {
        h.write_bool(self.sigio_pending);
        h.write_usize(self.max_queued);
        h.write_len(self.queued);
        for (signo, q) in &self.queues {
            h.write_u8(*signo);
            h.write_len(q.len());
            for info in q {
                h.write_u8(info.signo);
                h.write_i64(i64::from(info.fd));
                h.write_u32(u32::from(info.band.0));
            }
        }
    }

    /// Creates signal state with the given RT queue limit.
    pub fn new(max_queued: usize) -> SignalState {
        SignalState {
            queues: BTreeMap::new(),
            queued: 0,
            max_queued,
            sigio_pending: false,
            overflowed: 0,
            enqueued: 0,
            high_water: 0,
        }
    }

    /// Attempts to queue an RT signal.
    ///
    /// Returns `true` on success; on a full queue the event is lost, the
    /// SIGIO flag is raised, and `false` is returned.
    pub fn enqueue_rt(&mut self, info: Siginfo) -> bool {
        debug_assert!(
            (SIGRTMIN..=SIGRTMAX).contains(&info.signo),
            "RT signal number out of range"
        );
        if self.queued >= self.max_queued {
            self.sigio_pending = true;
            self.overflowed += 1;
            return false;
        }
        self.queues.entry(info.signo).or_default().push_back(info);
        self.queued += 1;
        self.enqueued += 1;
        self.high_water = self.high_water.max(self.queued);
        true
    }

    /// Dequeues the next pending signal for `sigwaitinfo`.
    ///
    /// A pending SIGIO (overflow) is delivered before any RT signal,
    /// because classic signals rank ahead of the RT range.
    pub fn dequeue(&mut self) -> Option<Siginfo> {
        if self.sigio_pending {
            self.sigio_pending = false;
            return Some(Siginfo {
                signo: SIGIO,
                fd: -1,
                band: PollBits::EMPTY,
            });
        }
        let (&signo, q) = self.queues.iter_mut().next()?;
        let info = q.pop_front().expect("invariant: non-empty queues only");
        if q.is_empty() {
            self.queues.remove(&signo);
        }
        self.queued -= 1;
        Some(info)
    }

    /// Dequeues up to `max` signals at once — the paper's proposed
    /// `sigtimedwait4()` batch interface (§6).
    pub fn dequeue_batch(&mut self, max: usize) -> Vec<Siginfo> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.dequeue() {
                Some(s) => out.push(s),
                None => break,
            }
        }
        out
    }

    /// Discards every queued RT signal (the application reset its
    /// handlers to `SIG_DFL` during overflow recovery). Returns how many
    /// were flushed.
    pub fn flush_rt(&mut self) -> usize {
        let n = self.queued;
        self.queues.clear();
        self.queued = 0;
        n
    }

    /// Whether anything (SIGIO or RT) is deliverable.
    pub fn has_pending(&self) -> bool {
        self.sigio_pending || self.queued > 0
    }

    /// Current RT queue depth.
    pub fn queue_len(&self) -> usize {
        self.queued
    }

    /// The configured queue limit.
    pub fn queue_max(&self) -> usize {
        self.max_queued
    }

    /// Whether SIGIO is pending (overflow happened and was not yet
    /// picked up).
    pub fn sigio_pending(&self) -> bool {
        self.sigio_pending
    }

    /// Events lost to overflow so far.
    pub fn overflow_count(&self) -> u64 {
        self.overflowed
    }

    /// Total RT signals successfully enqueued.
    pub fn enqueued_count(&self) -> u64 {
        self.enqueued
    }

    /// Deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(signo: u8, fd: Fd) -> Siginfo {
        Siginfo {
            signo,
            fd,
            band: PollBits::POLLIN,
        }
    }

    #[test]
    fn fifo_within_one_signal_number() {
        let mut s = SignalState::new(16);
        s.enqueue_rt(info(SIGRTMIN, 3));
        s.enqueue_rt(info(SIGRTMIN, 4));
        s.enqueue_rt(info(SIGRTMIN, 5));
        assert_eq!(s.dequeue().unwrap().fd, 3);
        assert_eq!(s.dequeue().unwrap().fd, 4);
        assert_eq!(s.dequeue().unwrap().fd, 5);
        assert!(s.dequeue().is_none());
    }

    #[test]
    fn lower_signal_numbers_dequeue_first() {
        // The paper: activity on lower-numbered connections delays
        // reports for higher-numbered ones.
        let mut s = SignalState::new(16);
        s.enqueue_rt(info(SIGRTMIN + 5, 50));
        s.enqueue_rt(info(SIGRTMIN, 10));
        s.enqueue_rt(info(SIGRTMIN + 5, 51));
        s.enqueue_rt(info(SIGRTMIN, 11));
        let order: Vec<Fd> = std::iter::from_fn(|| s.dequeue()).map(|i| i.fd).collect();
        assert_eq!(order, vec![10, 11, 50, 51]);
    }

    #[test]
    fn overflow_raises_sigio_and_drops_event() {
        let mut s = SignalState::new(2);
        assert!(s.enqueue_rt(info(SIGRTMIN, 1)));
        assert!(s.enqueue_rt(info(SIGRTMIN, 2)));
        assert!(!s.enqueue_rt(info(SIGRTMIN, 3)));
        assert!(s.sigio_pending());
        assert_eq!(s.overflow_count(), 1);
        // SIGIO delivers before the queued RT signals.
        assert_eq!(s.dequeue().unwrap().signo, SIGIO);
        assert_eq!(s.dequeue().unwrap().fd, 1);
    }

    #[test]
    fn flush_discards_rt_but_not_sigio() {
        let mut s = SignalState::new(1);
        s.enqueue_rt(info(SIGRTMIN, 1));
        s.enqueue_rt(info(SIGRTMIN, 2)); // overflow
        assert_eq!(s.flush_rt(), 1);
        assert!(s.has_pending(), "SIGIO still pending");
        assert_eq!(s.dequeue().unwrap().signo, SIGIO);
        assert!(!s.has_pending());
    }

    #[test]
    fn dequeue_batch_takes_up_to_max() {
        let mut s = SignalState::new(16);
        for i in 0..5 {
            s.enqueue_rt(info(SIGRTMIN, i));
        }
        let batch = s.dequeue_batch(3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].fd, 0);
        assert_eq!(s.queue_len(), 2);
        let rest = s.dequeue_batch(100);
        assert_eq!(rest.len(), 2);
    }

    #[test]
    fn high_water_tracks_depth() {
        let mut s = SignalState::new(16);
        for i in 0..7 {
            s.enqueue_rt(info(SIGRTMIN, i));
        }
        s.dequeue();
        s.dequeue();
        assert_eq!(s.high_water(), 7);
        assert_eq!(s.queue_len(), 5);
        assert_eq!(s.enqueued_count(), 7);
    }

    #[test]
    fn application_rt_range_avoids_the_glibc_pthread_signal() {
        // The paper's §6 black-box-library hazard: signal 32 belongs to
        // LinuxThreads; the application-visible RT range must start
        // above it.
        assert_eq!(GLIBC_PTHREAD_SIGNAL, 32);
        const { assert!(SIGRTMIN > GLIBC_PTHREAD_SIGNAL) };
    }

    #[test]
    fn stale_events_survive_for_closed_fds() {
        // The paper §2: events queued before close remain on the queue
        // and must be processed or ignored by the application.
        let mut s = SignalState::new(16);
        s.enqueue_rt(info(SIGRTMIN, 9));
        // fd 9 closes here — the queue does not care.
        assert_eq!(s.dequeue().unwrap().fd, 9);
    }
}
