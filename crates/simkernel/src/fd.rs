//! Per-process file descriptor tables.

use simcore::paged::PagedSlots;
use simnet::{EndpointId, ListenerId};

/// A file descriptor number.
pub type Fd = i32;

/// Errors returned by kernel calls, modelled after errno.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Errno {
    /// Operation would block (`EAGAIN`/`EWOULDBLOCK`).
    EAGAIN,
    /// Bad file descriptor.
    EBADF,
    /// Per-process descriptor limit reached.
    EMFILE,
    /// Connection reset by peer.
    ECONNRESET,
    /// Broken pipe (write after the stream closed).
    EPIPE,
    /// Invalid argument.
    EINVAL,
    /// Address already in use.
    EADDRINUSE,
    /// Interrupted (used for signal-driven wakeups).
    EINTR,
}

/// What a descriptor refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A listening socket.
    Listener(ListenerId),
    /// A connected stream socket (one side of a connection).
    Stream(EndpointId),
    /// An open `/dev/poll` device instance, identified by a device-side
    /// handle managed by the `devpoll` crate.
    DevPoll(u64),
}

/// One open file description.
#[derive(Debug, Clone, Copy)]
pub struct File {
    /// What this descriptor is.
    pub kind: FileKind,
    /// `O_NONBLOCK`.
    pub nonblock: bool,
    /// RT signal assigned via `fcntl(fd, F_SETSIG, n)`, if any.
    pub sig: Option<u8>,
}

impl File {
    fn new(kind: FileKind) -> File {
        File {
            kind,
            nonblock: false,
            sig: None,
        }
    }
}

/// A per-process descriptor table with a configurable limit
/// (`RLIMIT_NOFILE`; the paper's httperf assumed 1024).
///
/// Backed by paged slots: a million-descriptor process pays only for
/// the fd-range pages it touches, and the lowest-free scan starts from
/// a hint instead of walking the whole table on every `alloc`.
#[derive(Debug, Clone)]
pub struct FdTable {
    files: PagedSlots<File>,
    limit: usize,
    /// Lower bound on the lowest free descriptor at or above
    /// `first_fd` (advanced on alloc, rewound on close).
    lowest_free: usize,
    /// Base offset: `alloc` never hands out descriptors below this.
    /// Zero in ordinary worlds; elevated in layout-independence tests
    /// that prove semantics don't depend on fd numerology.
    first_fd: usize,
}

impl FdTable {
    /// Folds the table's semantic state into `h`: every open
    /// descriptor in ascending order with its kind, nonblock flag, and
    /// RT-signal assignment.
    pub fn fingerprint_into(&self, h: &mut simcore::fingerprint::Fnv) {
        h.write_usize(self.limit);
        h.write_len(self.files.len());
        for (ix, f) in self.files.iter() {
            h.write_usize(ix);
            match f.kind {
                FileKind::Listener(l) => {
                    h.write_u8(0);
                    h.write_u64(u64::from(l.0));
                }
                FileKind::Stream(ep) => {
                    h.write_u8(1);
                    h.write_u64(u64::from(ep.conn.0));
                    h.write_bool(ep.side == simnet::Side::Server);
                }
                FileKind::DevPoll(dev) => {
                    h.write_u8(2);
                    h.write_u64(dev);
                }
            }
            h.write_bool(f.nonblock);
            h.write_u8(f.sig.map_or(0, |s| s.wrapping_add(1)));
        }
    }

    /// Creates a table with the given descriptor limit.
    pub fn new(limit: usize) -> FdTable {
        FdTable::with_first_fd(limit, 0)
    }

    /// Creates a table whose lowest descriptor is `first_fd` (the
    /// elevated-offset lane; `new` is `with_first_fd(limit, 0)`).
    pub fn with_first_fd(limit: usize, first_fd: usize) -> FdTable {
        FdTable {
            files: PagedSlots::new(),
            limit,
            lowest_free: first_fd,
            first_fd,
        }
    }

    /// Allocates the lowest free descriptor at or above the base
    /// offset for `kind`.
    ///
    /// Returns `EMFILE` when the limit is reached, like the real kernel.
    pub fn alloc(&mut self, kind: FileKind) -> Result<Fd, Errno> {
        if self.files.len() >= self.limit {
            return Err(Errno::EMFILE);
        }
        let ix = self.files.first_free_from(self.lowest_free);
        self.files.insert(ix, File::new(kind));
        self.lowest_free = ix + 1;
        Ok(ix as Fd)
    }

    /// Looks up an open descriptor.
    pub fn get(&self, fd: Fd) -> Result<&File, Errno> {
        if fd < 0 {
            return Err(Errno::EBADF);
        }
        self.files.get(fd as usize).ok_or(Errno::EBADF)
    }

    /// Looks up an open descriptor mutably.
    pub fn get_mut(&mut self, fd: Fd) -> Result<&mut File, Errno> {
        if fd < 0 {
            return Err(Errno::EBADF);
        }
        self.files.get_mut(fd as usize).ok_or(Errno::EBADF)
    }

    /// Closes a descriptor, returning what it referred to.
    pub fn close(&mut self, fd: Fd) -> Result<File, Errno> {
        if fd < 0 {
            return Err(Errno::EBADF);
        }
        let slot = self.files.take(fd as usize).ok_or(Errno::EBADF)?;
        self.lowest_free = self.lowest_free.min(fd as usize);
        Ok(slot)
    }

    /// Number of open descriptors.
    pub fn open_count(&self) -> usize {
        self.files.len()
    }

    /// The descriptor limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// The base descriptor offset (0 outside the elevated-fd lane).
    pub fn first_fd(&self) -> usize {
        self.first_fd
    }

    /// Heap bytes held by the table (fd pages plus page vectors).
    pub fn mem_bytes(&self) -> usize {
        self.files.heap_bytes()
    }

    /// Iterates over `(fd, file)` pairs of open descriptors.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, &File)> {
        self.files.iter().map(|(i, f)| (i as Fd, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::ConnId;
    use simnet::Side;

    fn stream(n: u32) -> FileKind {
        FileKind::Stream(EndpointId::new(ConnId(n), Side::Server))
    }

    #[test]
    fn allocates_lowest_free_fd() {
        let mut t = FdTable::new(16);
        let a = t.alloc(stream(0)).unwrap();
        let b = t.alloc(stream(1)).unwrap();
        let c = t.alloc(stream(2)).unwrap();
        assert_eq!((a, b, c), (0, 1, 2));
        t.close(b).unwrap();
        assert_eq!(t.alloc(stream(3)).unwrap(), 1, "reuses the hole");
    }

    #[test]
    fn enforces_limit() {
        let mut t = FdTable::new(2);
        t.alloc(stream(0)).unwrap();
        t.alloc(stream(1)).unwrap();
        assert_eq!(t.alloc(stream(2)), Err(Errno::EMFILE));
        t.close(0).unwrap();
        assert!(t.alloc(stream(3)).is_ok());
    }

    #[test]
    fn bad_fd_errors() {
        let mut t = FdTable::new(4);
        assert_eq!(t.get(0).unwrap_err(), Errno::EBADF);
        assert_eq!(t.get(-1).unwrap_err(), Errno::EBADF);
        assert_eq!(t.close(7).unwrap_err(), Errno::EBADF);
        let fd = t.alloc(stream(0)).unwrap();
        t.close(fd).unwrap();
        assert_eq!(t.close(fd).unwrap_err(), Errno::EBADF);
    }

    #[test]
    fn fcntl_state_sticks() {
        let mut t = FdTable::new(4);
        let fd = t.alloc(stream(0)).unwrap();
        t.get_mut(fd).unwrap().nonblock = true;
        t.get_mut(fd).unwrap().sig = Some(40);
        let f = t.get(fd).unwrap();
        assert!(f.nonblock);
        assert_eq!(f.sig, Some(40));
    }

    #[test]
    fn elevated_first_fd_offsets_allocation() {
        let mut t = FdTable::with_first_fd(4, 100_000);
        let a = t.alloc(stream(0)).unwrap();
        let b = t.alloc(stream(1)).unwrap();
        assert_eq!((a, b), (100_000, 100_001));
        t.close(a).unwrap();
        assert_eq!(t.alloc(stream(2)).unwrap(), 100_000, "reuses the hole");
        assert_eq!(t.open_count(), 2);
        assert_eq!(t.first_fd(), 100_000);
        // Only the pages around the offset are resident.
        assert!(t.mem_bytes() < 2 * 4096 * std::mem::size_of::<Option<File>>() + 4096);
    }

    #[test]
    fn sparse_high_fds_stay_paged() {
        let mut t = FdTable::new(usize::MAX);
        // Force a sparse far-out descriptor via offsetting close/alloc:
        // emulate by building a fresh offset table instead.
        let mut far = FdTable::with_first_fd(8, 9_000_000);
        let fd = far.alloc(stream(7)).unwrap();
        assert_eq!(fd, 9_000_000);
        assert!(far.get(fd).is_ok());
        assert_eq!(far.get(0).unwrap_err(), Errno::EBADF);
        // The low table never touched high pages.
        let low = t.alloc(stream(1)).unwrap();
        assert_eq!(low, 0);
    }

    #[test]
    fn iter_lists_open_fds() {
        let mut t = FdTable::new(8);
        let a = t.alloc(stream(0)).unwrap();
        let b = t.alloc(stream(1)).unwrap();
        t.close(a).unwrap();
        let fds: Vec<Fd> = t.iter().map(|(fd, _)| fd).collect();
        assert_eq!(fds, vec![b]);
        assert_eq!(t.open_count(), 1);
    }
}
