//! Per-process file descriptor tables.

use simnet::{EndpointId, ListenerId};

/// A file descriptor number.
pub type Fd = i32;

/// Errors returned by kernel calls, modelled after errno.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Errno {
    /// Operation would block (`EAGAIN`/`EWOULDBLOCK`).
    EAGAIN,
    /// Bad file descriptor.
    EBADF,
    /// Per-process descriptor limit reached.
    EMFILE,
    /// Connection reset by peer.
    ECONNRESET,
    /// Broken pipe (write after the stream closed).
    EPIPE,
    /// Invalid argument.
    EINVAL,
    /// Address already in use.
    EADDRINUSE,
    /// Interrupted (used for signal-driven wakeups).
    EINTR,
}

/// What a descriptor refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A listening socket.
    Listener(ListenerId),
    /// A connected stream socket (one side of a connection).
    Stream(EndpointId),
    /// An open `/dev/poll` device instance, identified by a device-side
    /// handle managed by the `devpoll` crate.
    DevPoll(u64),
}

/// One open file description.
#[derive(Debug, Clone, Copy)]
pub struct File {
    /// What this descriptor is.
    pub kind: FileKind,
    /// `O_NONBLOCK`.
    pub nonblock: bool,
    /// RT signal assigned via `fcntl(fd, F_SETSIG, n)`, if any.
    pub sig: Option<u8>,
}

impl File {
    fn new(kind: FileKind) -> File {
        File {
            kind,
            nonblock: false,
            sig: None,
        }
    }
}

/// A per-process descriptor table with a configurable limit
/// (`RLIMIT_NOFILE`; the paper's httperf assumed 1024).
#[derive(Debug, Clone)]
pub struct FdTable {
    files: Vec<Option<File>>,
    limit: usize,
    open: usize,
}

impl FdTable {
    /// Folds the table's semantic state into `h`: every open
    /// descriptor in ascending order with its kind, nonblock flag, and
    /// RT-signal assignment.
    pub fn fingerprint_into(&self, h: &mut simcore::fingerprint::Fnv) {
        h.write_usize(self.limit);
        h.write_len(self.open);
        for (ix, slot) in self.files.iter().enumerate() {
            let Some(f) = slot else { continue };
            h.write_usize(ix);
            match f.kind {
                FileKind::Listener(l) => {
                    h.write_u8(0);
                    h.write_u64(l.0);
                }
                FileKind::Stream(ep) => {
                    h.write_u8(1);
                    h.write_u64(ep.conn.0);
                    h.write_bool(ep.side == simnet::Side::Server);
                }
                FileKind::DevPoll(dev) => {
                    h.write_u8(2);
                    h.write_u64(dev);
                }
            }
            h.write_bool(f.nonblock);
            h.write_u8(f.sig.map_or(0, |s| s.wrapping_add(1)));
        }
    }

    /// Creates a table with the given descriptor limit.
    pub fn new(limit: usize) -> FdTable {
        FdTable {
            files: Vec::new(),
            limit,
            open: 0,
        }
    }

    /// Allocates the lowest free descriptor for `kind`.
    ///
    /// Returns `EMFILE` when the limit is reached, like the real kernel.
    pub fn alloc(&mut self, kind: FileKind) -> Result<Fd, Errno> {
        if self.open >= self.limit {
            return Err(Errno::EMFILE);
        }
        for (i, slot) in self.files.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(File::new(kind));
                self.open += 1;
                return Ok(i as Fd);
            }
        }
        if self.files.len() >= self.limit {
            return Err(Errno::EMFILE);
        }
        self.files.push(Some(File::new(kind)));
        self.open += 1;
        Ok((self.files.len() - 1) as Fd)
    }

    /// Looks up an open descriptor.
    pub fn get(&self, fd: Fd) -> Result<&File, Errno> {
        if fd < 0 {
            return Err(Errno::EBADF);
        }
        self.files
            .get(fd as usize)
            .and_then(|s| s.as_ref())
            .ok_or(Errno::EBADF)
    }

    /// Looks up an open descriptor mutably.
    pub fn get_mut(&mut self, fd: Fd) -> Result<&mut File, Errno> {
        if fd < 0 {
            return Err(Errno::EBADF);
        }
        self.files
            .get_mut(fd as usize)
            .and_then(|s| s.as_mut())
            .ok_or(Errno::EBADF)
    }

    /// Closes a descriptor, returning what it referred to.
    pub fn close(&mut self, fd: Fd) -> Result<File, Errno> {
        if fd < 0 {
            return Err(Errno::EBADF);
        }
        let slot = self
            .files
            .get_mut(fd as usize)
            .ok_or(Errno::EBADF)?
            .take()
            .ok_or(Errno::EBADF)?;
        self.open -= 1;
        Ok(slot)
    }

    /// Number of open descriptors.
    pub fn open_count(&self) -> usize {
        self.open
    }

    /// The descriptor limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Iterates over `(fd, file)` pairs of open descriptors.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, &File)> {
        self.files
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|f| (i as Fd, f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::ConnId;
    use simnet::Side;

    fn stream(n: u64) -> FileKind {
        FileKind::Stream(EndpointId::new(ConnId(n), Side::Server))
    }

    #[test]
    fn allocates_lowest_free_fd() {
        let mut t = FdTable::new(16);
        let a = t.alloc(stream(0)).unwrap();
        let b = t.alloc(stream(1)).unwrap();
        let c = t.alloc(stream(2)).unwrap();
        assert_eq!((a, b, c), (0, 1, 2));
        t.close(b).unwrap();
        assert_eq!(t.alloc(stream(3)).unwrap(), 1, "reuses the hole");
    }

    #[test]
    fn enforces_limit() {
        let mut t = FdTable::new(2);
        t.alloc(stream(0)).unwrap();
        t.alloc(stream(1)).unwrap();
        assert_eq!(t.alloc(stream(2)), Err(Errno::EMFILE));
        t.close(0).unwrap();
        assert!(t.alloc(stream(3)).is_ok());
    }

    #[test]
    fn bad_fd_errors() {
        let mut t = FdTable::new(4);
        assert_eq!(t.get(0).unwrap_err(), Errno::EBADF);
        assert_eq!(t.get(-1).unwrap_err(), Errno::EBADF);
        assert_eq!(t.close(7).unwrap_err(), Errno::EBADF);
        let fd = t.alloc(stream(0)).unwrap();
        t.close(fd).unwrap();
        assert_eq!(t.close(fd).unwrap_err(), Errno::EBADF);
    }

    #[test]
    fn fcntl_state_sticks() {
        let mut t = FdTable::new(4);
        let fd = t.alloc(stream(0)).unwrap();
        t.get_mut(fd).unwrap().nonblock = true;
        t.get_mut(fd).unwrap().sig = Some(40);
        let f = t.get(fd).unwrap();
        assert!(f.nonblock);
        assert_eq!(f.sig, Some(40));
    }

    #[test]
    fn iter_lists_open_fds() {
        let mut t = FdTable::new(8);
        let a = t.alloc(stream(0)).unwrap();
        let b = t.alloc(stream(1)).unwrap();
        t.close(a).unwrap();
        let fds: Vec<Fd> = t.iter().map(|(fd, _)| fd).collect();
        assert_eq!(fds, vec![b]);
        assert_eq!(t.open_count(), 1);
    }
}
