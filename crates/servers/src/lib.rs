#![warn(missing_docs)]

//! `servers` — the web servers under test in *Scalable Network I/O in
//! Linux* (Provos & Lever, USENIX 2000):
//!
//! * [`thttpd::Thttpd`] — a single-process event-driven server generic
//!   over its event backend: stock `poll()` (the paper's stock thttpd)
//!   or `/dev/poll` (the modified thttpd of §5.1);
//! * [`phhttpd::Phhttpd`] — the experimental RT-signal server of §2,
//!   including its overflow-recovery pathology (sibling handoff, full
//!   rebuild, no switch-back);
//! * [`hybrid::HybridServer`] — the hybrid the paper proposes in §4/§6
//!   but could not build without re-architecting phhttpd.
//!
//! Plus the shared substrate: HTTP parsing ([`http`]), the 6 KB CITI
//! document store ([`content`]), the per-connection state machine
//! ([`conn`]) and metrics ([`metrics`]).

pub mod conn;
pub mod content;
pub mod http;
pub mod hybrid;
pub mod metrics;
pub mod phhttpd;
pub mod prefork;
pub mod server;
pub mod thttpd;

pub use conn::{ConnPhase, ConnStatus, FinishKind, HttpConn};
pub use content::{ContentStore, DEFAULT_DOC_BYTES, DEFAULT_DOC_PATH};
pub use hybrid::{HybridConfig, HybridMode, HybridServer};
pub use metrics::ServerMetrics;
pub use phhttpd::{PhConfig, PhMode, Phhttpd};
pub use prefork::Prefork;
pub use server::{Server, ServerConfig, ServerCtx};
pub use thttpd::Thttpd;
