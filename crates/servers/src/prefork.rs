//! A prefork server: N single-threaded workers sharing one listening
//! socket, each running the thttpd event loop on its own `/dev/poll`
//! (or `poll()`) instance.
//!
//! This exists to study the paper's last §6 suggestion: "It may also
//! help to provide the option of waking only one thread, instead of all
//! of them." With [`simkernel::AcceptWake::Herd`] (stock Linux 2.2
//! behaviour) every worker sleeping on the shared listener wakes for
//! every incoming connection, scans its interest set, and all but one
//! find nothing — the *thundering herd*. With
//! [`simkernel::AcceptWake::Exclusive`] exactly one worker wakes.

use devpoll::EventBackend;
use simkernel::{Errno, Pid};

use crate::metrics::ServerMetrics;
use crate::server::{Server, ServerConfig, ServerCtx};
use crate::thttpd::Thttpd;

/// N thttpd workers behind one listener.
pub struct Prefork<B: EventBackend> {
    workers: Vec<Thttpd<B>>,
}

impl<B: EventBackend> Prefork<B> {
    /// Creates `n` workers, each with its own process and backend.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(
        ctx: &mut ServerCtx<'_>,
        mut make_backend: impl FnMut() -> B,
        config: ServerConfig,
        n: usize,
    ) -> Prefork<B> {
        assert!(n > 0, "need at least one worker");
        let workers = (0..n)
            .map(|_| Thttpd::new(ctx, make_backend(), config))
            .collect();
        Prefork { workers }
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Per-worker metrics (diagnostics: how evenly did accepts spread?).
    pub fn worker_metrics(&self) -> Vec<ServerMetrics> {
        self.workers.iter().map(|w| w.metrics()).collect()
    }
}

impl<B: EventBackend> Server for Prefork<B> {
    fn pid(&self) -> Pid {
        self.workers[0].pid()
    }

    fn name(&self) -> String {
        format!(
            "prefork{}/{}",
            self.workers.len(),
            self.workers[0].name().split('/').nth(1).unwrap_or("?")
        )
    }

    fn start(&mut self, ctx: &mut ServerCtx<'_>) -> Result<(), Errno> {
        // Worker 0 listens; the rest attach to the shared socket.
        self.workers[0].start(ctx)?;
        let listener = self.workers[0]
            .listener(ctx)
            .expect("invariant: worker 0 listened successfully");
        for w in &mut self.workers[1..] {
            w.start_attached(ctx, listener)?;
        }
        Ok(())
    }

    fn run_batch(&mut self, ctx: &mut ServerCtx<'_>) {
        // Only meaningful via run_batch_for; default to worker 0.
        let pid = self.workers[0].pid();
        self.run_batch_for(ctx, pid);
    }

    fn metrics(&self) -> ServerMetrics {
        let mut total = ServerMetrics::default();
        for w in &self.workers {
            let m = w.metrics();
            total.accepted += m.accepted;
            total.replies += m.replies;
            total.read_errors += m.read_errors;
            total.idle_closed += m.idle_closed;
            total.client_closed_early += m.client_closed_early;
            total.not_found += m.not_found;
            total.stale_events += m.stale_events;
            total.overflows += m.overflows;
            total.mode_switches += m.mode_switches;
            total.busy_batches += m.busy_batches;
        }
        total
    }

    fn open_conns(&self) -> usize {
        self.workers.iter().map(|w| w.open_conns()).sum()
    }

    fn handles(&self, pid: Pid) -> bool {
        self.workers.iter().any(|w| w.pid() == pid)
    }

    fn run_batch_for(&mut self, ctx: &mut ServerCtx<'_>, pid: Pid) {
        if let Some(w) = self.workers.iter_mut().find(|w| w.pid() == pid) {
            w.run_batch(ctx);
        }
    }
}
