//! The hybrid server the paper *imagines* but could not build (§4, §6):
//! RT signals for low latency under light load, `/dev/poll` for
//! throughput under heavy load, switching at an RT-queue-length
//! threshold — with the interest set maintained in the kernel
//! *concurrently* with RT signal activity, so switching costs almost
//! nothing ("RT signal queue processing should maintain its pollfd array
//! (or corresponding kernel state) concurrently with RT signal queue
//! activity. This would allow switching between polling and signal queue
//! mode with very little overhead.").

use devpoll::{DevPollBackend, EventBackend, RtEvent, RtSignalApi, WaitResult};
use simcore::span::Phase;
use simcore::time::SimTime;
use simkernel::{Errno, Fd, FdMap, PollBits};

use crate::conn::{ConnPhase, ConnStatus, FinishKind, HttpConn};
use crate::content::ContentStore;
use crate::metrics::ServerMetrics;
use crate::server::{Server, ServerConfig, ServerCtx};

/// Current event engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridMode {
    /// Low-latency signal pickup.
    Signals,
    /// High-throughput batch polling.
    Polling,
}

/// Hybrid-specific tunables.
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// Switch to polling when the RT queue length exceeds this fraction
    /// of its maximum.
    pub up_fraction: f64,
    /// Switch back to signals when a poll scan returns fewer events than
    /// this.
    pub down_events: usize,
}

impl Default for HybridConfig {
    fn default() -> HybridConfig {
        HybridConfig {
            up_fraction: 0.5,
            down_events: 4,
        }
    }
}

/// The hybrid server.
pub struct HybridServer {
    pid: simkernel::Pid,
    lfd: Fd,
    rtapi: RtSignalApi,
    backend: DevPollBackend,
    mode: HybridMode,
    conns: FdMap<HttpConn>,
    content: ContentStore,
    metrics: ServerMetrics,
    config: ServerConfig,
    hybrid: HybridConfig,
    last_scan: SimTime,
    /// Reused idle-sweep scratch (no per-scan allocation).
    idle_scratch: Vec<Fd>,
}

impl HybridServer {
    /// Creates the server (spawning its process).
    pub fn new(
        ctx: &mut ServerCtx<'_>,
        config: ServerConfig,
        hybrid: HybridConfig,
    ) -> HybridServer {
        let pid = ctx.kernel.spawn(config.fd_limit, config.rt_queue_max);
        HybridServer {
            pid,
            lfd: -1,
            rtapi: RtSignalApi::default(),
            backend: DevPollBackend::new(),
            mode: HybridMode::Signals,
            conns: FdMap::new(),
            content: ContentStore::citi_6k(),
            metrics: ServerMetrics::default(),
            config,
            hybrid,
            last_scan: SimTime::ZERO,
            idle_scratch: Vec::new(),
        }
    }

    /// Current mode.
    pub fn mode(&self) -> HybridMode {
        self.mode
    }

    fn accept_all(&mut self, ctx: &mut ServerCtx<'_>) {
        loop {
            match ctx.kernel.sys_accept(ctx.net, ctx.now, self.pid, self.lfd) {
                Ok(fd) => {
                    let cost = *ctx.kernel.cost_model();
                    ctx.kernel.charge_app(self.pid, cost.app_conn_setup);
                    self.metrics.accepted += 1;
                    // Register BOTH engines up front: the §6 proposal.
                    let _ = self.rtapi.register(ctx.kernel, self.pid, fd);
                    let _ = self.backend.set_interest(
                        ctx.kernel,
                        ctx.registry,
                        ctx.now,
                        self.pid,
                        fd,
                        PollBits::POLLIN,
                    );
                    let mut conn = if self.config.use_sendfile {
                        HttpConn::new_sendfile(fd, ctx.now)
                    } else {
                        HttpConn::new(fd, ctx.now)
                    };
                    let status = conn.on_readable(
                        ctx.kernel,
                        ctx.net,
                        ctx.now,
                        self.pid,
                        &self.content,
                        &mut self.metrics.not_found,
                    );
                    self.conns.insert(fd, conn);
                    self.apply_status(ctx, fd, status);
                }
                Err(Errno::EAGAIN) => break,
                Err(_) => break,
            }
        }
    }

    fn apply_status(&mut self, ctx: &mut ServerCtx<'_>, fd: Fd, status: ConnStatus) {
        match status {
            ConnStatus::WantRead => {}
            ConnStatus::WantWrite => {
                let _ = self.backend.set_interest(
                    ctx.kernel,
                    ctx.registry,
                    ctx.now,
                    self.pid,
                    fd,
                    PollBits::POLLOUT,
                );
            }
            ConnStatus::Finished(kind) => self.finish_conn(ctx, fd, kind),
        }
    }

    fn finish_conn(&mut self, ctx: &mut ServerCtx<'_>, fd: Fd, kind: FinishKind) {
        let _ = self
            .backend
            .remove_interest(ctx.kernel, ctx.registry, ctx.now, self.pid, fd);
        match kind {
            FinishKind::Replied => {
                let _ = ctx.kernel.sys_close(ctx.net, ctx.now, self.pid, fd);
                self.metrics.replies += 1;
            }
            FinishKind::ClientClosedEarly => {
                let _ = ctx.kernel.sys_close(ctx.net, ctx.now, self.pid, fd);
                self.metrics.client_closed_early += 1;
            }
            FinishKind::Error => {
                let _ = ctx.kernel.sys_abort(ctx.net, ctx.now, self.pid, fd);
                self.metrics.read_errors += 1;
            }
        }
        self.conns.remove(fd);
    }

    fn dispatch(&mut self, ctx: &mut ServerCtx<'_>, fd: Fd, band: PollBits) {
        if fd == self.lfd {
            self.accept_all(ctx);
            return;
        }
        let Some(conn) = self.conns.get_mut(fd) else {
            self.metrics.stale_events += 1;
            return;
        };
        if band.contains(PollBits::POLLERR) || band.contains(PollBits::POLLNVAL) {
            self.finish_conn(ctx, fd, FinishKind::Error);
            return;
        }
        let status = if conn.phase == ConnPhase::Writing && band.contains(PollBits::POLLOUT) {
            conn.on_writable(ctx.kernel, ctx.net, ctx.now, self.pid)
        } else if band.intersects(PollBits::POLLIN | PollBits::POLLHUP) {
            conn.on_readable(
                ctx.kernel,
                ctx.net,
                ctx.now,
                self.pid,
                &self.content,
                &mut self.metrics.not_found,
            )
        } else {
            return;
        };
        self.apply_status(ctx, fd, status);
    }

    fn maybe_scan_idle(&mut self, ctx: &mut ServerCtx<'_>) {
        if ctx.now.saturating_duration_since(self.last_scan) < self.config.scan_interval {
            return;
        }
        self.last_scan = ctx.now;
        let cost = *ctx.kernel.cost_model();
        ctx.kernel
            .charge_app(self.pid, cost.app_timer_scan * self.conns.len() as u64);
        if ctx.now.as_nanos() < self.config.idle_timeout.as_nanos() {
            return;
        }
        let cutoff = SimTime::from_nanos(ctx.now.as_nanos() - self.config.idle_timeout.as_nanos());
        let mut idle = std::mem::take(&mut self.idle_scratch);
        idle.clear();
        idle.extend(
            self.conns
                .iter()
                .filter(|(_, c)| c.idle_since(cutoff))
                .map(|(fd, _)| fd),
        );
        for &fd in &idle {
            self.finish_conn(ctx, fd, FinishKind::ClientClosedEarly);
            // Reclassify: that was an idle close, not a client close.
            self.metrics.client_closed_early -= 1;
            self.metrics.idle_closed += 1;
        }
        self.idle_scratch = idle;
    }

    fn queue_pressure(&self, ctx: &ServerCtx<'_>) -> f64 {
        let p = ctx.kernel.process(self.pid);
        p.signals.queue_len() as f64 / p.signals.queue_max() as f64
    }

    fn run_signals(&mut self, ctx: &mut ServerCtx<'_>) {
        let mut processed = 0usize;
        while processed < self.config.max_events {
            match self.rtapi.next_event(ctx.kernel, self.pid) {
                Ok(RtEvent::Io { fd, band }) => {
                    processed += 1;
                    let span = ctx.kernel.span_open(self.pid, Phase::Dispatch);
                    self.dispatch(ctx, fd, band);
                    ctx.kernel.span_close(self.pid, span);
                }
                Ok(RtEvent::Overflow) => {
                    // Threshold logic should prevent this, but handle it:
                    // flush and switch; the devpoll interest set has the
                    // full state, so nothing is lost.
                    self.metrics.overflows += 1;
                    let _ = self.rtapi.flush(ctx.kernel, self.pid);
                    self.switch_to(ctx, HybridMode::Polling);
                    ctx.kernel.end_batch(ctx.now, self.pid);
                    return;
                }
                Err(_) => break,
            }
        }
        // Load-triggered switch: the paper's crossover signal is the RT
        // queue length (§4).
        if self.queue_pressure(ctx) > self.hybrid.up_fraction {
            let _ = self.rtapi.flush(ctx.kernel, self.pid);
            self.switch_to(ctx, HybridMode::Polling);
            ctx.kernel.end_batch(ctx.now, self.pid);
            return;
        }
        if processed == 0 {
            ctx.kernel
                .end_batch_sleep(ctx.now, self.pid, Some(self.config.scan_interval));
        } else {
            self.metrics.busy_batches += 1;
            ctx.kernel
                .probe_mut()
                .observe("server.batch_events", processed as u64);
            ctx.kernel.end_batch(ctx.now, self.pid);
        }
    }

    fn run_polling(&mut self, ctx: &mut ServerCtx<'_>) {
        // Signals keep arriving while polling; discard them — the
        // devpoll hints carry the same information.
        let _ = self.rtapi.flush(ctx.kernel, self.pid);
        match self.backend.wait(
            ctx.kernel,
            ctx.registry,
            ctx.now,
            self.pid,
            self.config.max_events,
            -1,
        ) {
            Ok(WaitResult::WouldBlock) | Err(_) => {
                self.switch_to(ctx, HybridMode::Signals);
                ctx.kernel
                    .end_batch_sleep(ctx.now, self.pid, Some(self.config.scan_interval));
            }
            Ok(WaitResult::Events(evs)) => {
                self.metrics.busy_batches += 1;
                let n = evs.len();
                ctx.kernel
                    .probe_mut()
                    .observe("server.batch_events", n as u64);
                for ev in evs {
                    let span = ctx.kernel.span_open(self.pid, Phase::Dispatch);
                    self.dispatch(ctx, ev.fd, ev.revents);
                    ctx.kernel.span_close(self.pid, span);
                }
                if n < self.hybrid.down_events {
                    self.switch_to(ctx, HybridMode::Signals);
                }
                ctx.kernel.end_batch(ctx.now, self.pid);
            }
        }
    }

    fn switch_to(&mut self, _ctx: &mut ServerCtx<'_>, mode: HybridMode) {
        if self.mode != mode {
            self.mode = mode;
            self.metrics.mode_switches += 1;
        }
    }
}

impl Server for HybridServer {
    fn pid(&self) -> simkernel::Pid {
        self.pid
    }

    fn name(&self) -> String {
        "hybrid/rtsig+devpoll".to_string()
    }

    fn start(&mut self, ctx: &mut ServerCtx<'_>) -> Result<(), Errno> {
        ctx.kernel.begin_batch(ctx.now, self.pid);
        self.lfd = ctx.kernel.sys_listen(
            ctx.net,
            ctx.now,
            self.pid,
            self.config.port,
            self.config.backlog,
        )?;
        self.backend
            .init(ctx.kernel, ctx.registry, ctx.now, self.pid)?;
        self.backend.set_interest(
            ctx.kernel,
            ctx.registry,
            ctx.now,
            self.pid,
            self.lfd,
            PollBits::POLLIN,
        )?;
        self.rtapi.register(ctx.kernel, self.pid, self.lfd)?;
        ctx.kernel.end_batch(ctx.now, self.pid);
        self.last_scan = ctx.now;
        Ok(())
    }

    fn run_batch(&mut self, ctx: &mut ServerCtx<'_>) {
        ctx.kernel.begin_batch(ctx.now, self.pid);
        self.maybe_scan_idle(ctx);
        match self.mode {
            HybridMode::Signals => self.run_signals(ctx),
            HybridMode::Polling => self.run_polling(ctx),
        }
    }

    fn metrics(&self) -> ServerMetrics {
        self.metrics
    }

    fn open_conns(&self) -> usize {
        self.conns.len()
    }
}
