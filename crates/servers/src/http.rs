//! Minimal HTTP/1.0 request parsing and response generation — enough to
//! serve the paper's workload (static GETs of a 6 KB document, one
//! request per connection, `Connection: close` semantics).

/// A parsed HTTP request line, borrowing from the receive buffer.
///
/// The request is only ever inspected between the read that completed
/// it and the response lookup, so there is no reason to assemble owned
/// strings on that path: both fields point into the connection's own
/// `in_buf`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request<'a> {
    /// Method, e.g. `GET`.
    pub method: &'a str,
    /// Request path, e.g. `/index.html`.
    pub path: &'a str,
}

/// Outcome of trying to parse a request from buffered bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseOutcome<'a> {
    /// Headers not yet complete; read more.
    Incomplete,
    /// A full request (headers ended with a blank line).
    Complete(Request<'a>),
    /// The bytes do not look like HTTP.
    Malformed,
}

/// Maximum request size before the server gives up (stops buffering
/// garbage from a misbehaving client).
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Attempts to parse an HTTP/1.0 request from `buf`.
///
/// # Examples
///
/// ```
/// use servers::http::{parse_request, ParseOutcome};
///
/// let out = parse_request(b"GET /index.html HTTP/1.0\r\n\r\n");
/// match out {
///     ParseOutcome::Complete(req) => assert_eq!(req.path, "/index.html"),
///     other => panic!("{other:?}"),
/// }
/// ```
pub fn parse_request(buf: &[u8]) -> ParseOutcome<'_> {
    // Find the end of headers.
    let end = match find_header_end(buf) {
        Some(e) => e,
        None => {
            if buf.len() > MAX_REQUEST_BYTES {
                return ParseOutcome::Malformed;
            }
            return ParseOutcome::Incomplete;
        }
    };
    let head = &buf[..end];
    let text = match core::str::from_utf8(head) {
        Ok(t) => t,
        Err(_) => return ParseOutcome::Malformed,
    };
    let first = text.lines().next().unwrap_or("");
    let mut parts = first.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return ParseOutcome::Malformed;
    };
    if !matches!(method, "GET" | "HEAD" | "POST") {
        return ParseOutcome::Malformed;
    }
    ParseOutcome::Complete(Request { method, path })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Builds a `200 OK` response carrying `body`.
pub fn response_ok(body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.0 200 OK\r\nServer: simhttpd/0.1\r\nContent-Type: text/html\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Builds an error response with the given status line.
pub fn response_error(status: u16, reason: &str) -> Vec<u8> {
    let body = format!("<html><body><h1>{status} {reason}</h1></body></html>");
    let mut out = format!(
        "HTTP/1.0 {status} {reason}\r\nServer: simhttpd/0.1\r\nContent-Type: text/html\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_complete_get() {
        let out = parse_request(b"GET /index.html HTTP/1.0\r\nHost: x\r\n\r\n");
        assert_eq!(
            out,
            ParseOutcome::Complete(Request {
                method: "GET",
                path: "/index.html",
            })
        );
    }

    #[test]
    fn incomplete_until_blank_line() {
        assert_eq!(
            parse_request(b"GET / HTTP/1.0\r\n"),
            ParseOutcome::Incomplete
        );
        assert_eq!(
            parse_request(b"GET / HTTP/1.0\r\nHost:"),
            ParseOutcome::Incomplete
        );
        assert!(matches!(
            parse_request(b"GET / HTTP/1.0\r\n\r\n"),
            ParseOutcome::Complete(_)
        ));
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert_eq!(
            parse_request(b"FROB / HTTP/1.0\r\n\r\n"),
            ParseOutcome::Malformed
        );
        assert_eq!(parse_request(b"GET\r\n\r\n"), ParseOutcome::Malformed);
        assert_eq!(parse_request(b"\xff\xfe\r\n\r\n"), ParseOutcome::Malformed);
    }

    #[test]
    fn oversize_buffer_is_malformed() {
        let big = vec![b'a'; MAX_REQUEST_BYTES + 1];
        assert_eq!(parse_request(&big), ParseOutcome::Malformed);
    }

    #[test]
    fn response_ok_has_content_length() {
        let r = response_ok(b"hello");
        let text = String::from_utf8(r).unwrap();
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("hello"));
    }

    #[test]
    fn response_error_format() {
        let r = response_error(404, "Not Found");
        let text = String::from_utf8(r).unwrap();
        assert!(text.starts_with("HTTP/1.0 404 Not Found\r\n"));
        assert!(text.contains("<h1>404 Not Found</h1>"));
    }
}
