//! `thttpd` — a single-process event-driven web server, generic over its
//! event backend so the same code runs on stock `poll()` and on
//! `/dev/poll`, like the paper's stock vs. modified thttpd pair (§5.1).

use devpoll::{EventBackend, WaitResult};
use simcore::span::Phase;
use simcore::time::SimTime;
use simkernel::{Errno, Fd, FdMap, PollBits};

use crate::conn::{ConnPhase, ConnStatus, FinishKind, HttpConn};
use crate::content::ContentStore;
use crate::metrics::ServerMetrics;
use crate::server::{Server, ServerConfig, ServerCtx};

/// The thttpd-style server.
pub struct Thttpd<B: EventBackend> {
    pid: simkernel::Pid,
    lfd: Fd,
    backend: B,
    conns: FdMap<HttpConn>,
    content: ContentStore,
    metrics: ServerMetrics,
    config: ServerConfig,
    last_scan: SimTime,
    started: bool,
    /// Reused idle-sweep scratch (no per-scan allocation).
    idle_scratch: Vec<Fd>,
}

impl<B: EventBackend> Thttpd<B> {
    /// Creates the server (spawning its process) with the given backend.
    pub fn new(ctx: &mut ServerCtx<'_>, backend: B, config: ServerConfig) -> Thttpd<B> {
        let pid = ctx.kernel.spawn(config.fd_limit, config.rt_queue_max);
        Thttpd {
            pid,
            lfd: -1,
            backend,
            conns: FdMap::new(),
            content: ContentStore::citi_6k(),
            metrics: ServerMetrics::default(),
            config,
            last_scan: SimTime::ZERO,
            started: false,
            idle_scratch: Vec::new(),
        }
    }

    /// Replaces the content store (for non-default documents).
    pub fn set_content(&mut self, content: ContentStore) {
        self.content = content;
    }

    /// Backend access (diagnostics).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The listener id once started (for prefork sharing).
    pub fn listener(&self, ctx: &ServerCtx<'_>) -> Option<simnet::ListenerId> {
        ctx.kernel.listener_of(self.pid, self.lfd).ok()
    }

    /// Starts this instance as a prefork *worker*: instead of listening
    /// itself it attaches to an existing shared listener.
    pub fn start_attached(
        &mut self,
        ctx: &mut ServerCtx<'_>,
        listener: simnet::ListenerId,
    ) -> Result<(), Errno> {
        assert!(!self.started, "start called twice");
        ctx.kernel.begin_batch(ctx.now, self.pid);
        self.lfd = ctx.kernel.sys_share_listener(ctx.now, self.pid, listener)?;
        self.backend
            .init(ctx.kernel, ctx.registry, ctx.now, self.pid)?;
        self.backend.set_interest(
            ctx.kernel,
            ctx.registry,
            ctx.now,
            self.pid,
            self.lfd,
            PollBits::POLLIN,
        )?;
        ctx.kernel.end_batch(ctx.now, self.pid);
        self.started = true;
        self.last_scan = ctx.now;
        Ok(())
    }

    fn accept_all(&mut self, ctx: &mut ServerCtx<'_>) {
        loop {
            match ctx.kernel.sys_accept(ctx.net, ctx.now, self.pid, self.lfd) {
                Ok(fd) => {
                    let _ = ctx.kernel.sys_set_nonblock(self.pid, fd);
                    let cost = *ctx.kernel.cost_model();
                    ctx.kernel.charge_app(self.pid, cost.app_conn_setup);
                    let _ = self.backend.set_interest(
                        ctx.kernel,
                        ctx.registry,
                        ctx.now,
                        self.pid,
                        fd,
                        PollBits::POLLIN,
                    );
                    let conn = if self.config.use_sendfile {
                        HttpConn::new_sendfile(fd, ctx.now)
                    } else {
                        HttpConn::new(fd, ctx.now)
                    };
                    self.conns.insert(fd, conn);
                    self.metrics.accepted += 1;
                }
                Err(Errno::EAGAIN) => break,
                Err(_) => break, // EMFILE and friends: stop accepting.
            }
        }
    }

    fn finish_conn(&mut self, ctx: &mut ServerCtx<'_>, fd: Fd, kind: FinishKind) {
        let _ = self
            .backend
            .remove_interest(ctx.kernel, ctx.registry, ctx.now, self.pid, fd);
        match kind {
            FinishKind::Replied => {
                let _ = ctx.kernel.sys_close(ctx.net, ctx.now, self.pid, fd);
                self.metrics.replies += 1;
            }
            FinishKind::ClientClosedEarly => {
                let _ = ctx.kernel.sys_close(ctx.net, ctx.now, self.pid, fd);
                self.metrics.client_closed_early += 1;
            }
            FinishKind::Error => {
                let _ = ctx.kernel.sys_abort(ctx.net, ctx.now, self.pid, fd);
                self.metrics.read_errors += 1;
            }
        }
        self.conns.remove(fd);
    }

    fn dispatch(&mut self, ctx: &mut ServerCtx<'_>, fd: Fd, revents: PollBits) {
        if fd == self.lfd {
            self.accept_all(ctx);
            return;
        }
        let Some(conn) = self.conns.get_mut(fd) else {
            return; // Already closed this batch.
        };
        if revents.contains(PollBits::POLLERR) || revents.contains(PollBits::POLLNVAL) {
            self.finish_conn(ctx, fd, FinishKind::Error);
            return;
        }
        let status = if conn.phase == ConnPhase::Writing && revents.contains(PollBits::POLLOUT) {
            conn.on_writable(ctx.kernel, ctx.net, ctx.now, self.pid)
        } else if revents.intersects(PollBits::POLLIN | PollBits::POLLHUP) {
            conn.on_readable(
                ctx.kernel,
                ctx.net,
                ctx.now,
                self.pid,
                &self.content,
                &mut self.metrics.not_found,
            )
        } else {
            return;
        };
        match status {
            ConnStatus::WantRead => {}
            ConnStatus::WantWrite => {
                let _ = self.backend.set_interest(
                    ctx.kernel,
                    ctx.registry,
                    ctx.now,
                    self.pid,
                    fd,
                    PollBits::POLLOUT,
                );
            }
            ConnStatus::Finished(kind) => self.finish_conn(ctx, fd, kind),
        }
    }

    fn maybe_scan_idle(&mut self, ctx: &mut ServerCtx<'_>) {
        if ctx.now.saturating_duration_since(self.last_scan) < self.config.scan_interval {
            return;
        }
        self.last_scan = ctx.now;
        let cost = *ctx.kernel.cost_model();
        ctx.kernel
            .charge_app(self.pid, cost.app_timer_scan * self.conns.len() as u64);
        if ctx.now.as_nanos() < self.config.idle_timeout.as_nanos() {
            return; // Nothing can be idle-expired yet.
        }
        let cutoff = SimTime::from_nanos(ctx.now.as_nanos() - self.config.idle_timeout.as_nanos());
        let mut idle = std::mem::take(&mut self.idle_scratch);
        idle.clear();
        idle.extend(
            self.conns
                .iter()
                .filter(|(_, c)| c.idle_since(cutoff))
                .map(|(fd, _)| fd),
        );
        for &fd in &idle {
            let _ = self
                .backend
                .remove_interest(ctx.kernel, ctx.registry, ctx.now, self.pid, fd);
            let _ = ctx.kernel.sys_close(ctx.net, ctx.now, self.pid, fd);
            self.conns.remove(fd);
            self.metrics.idle_closed += 1;
        }
        self.idle_scratch = idle;
    }
}

impl<B: EventBackend> Server for Thttpd<B> {
    fn pid(&self) -> simkernel::Pid {
        self.pid
    }

    fn name(&self) -> String {
        format!("thttpd/{}", self.backend.name())
    }

    fn start(&mut self, ctx: &mut ServerCtx<'_>) -> Result<(), Errno> {
        assert!(!self.started, "start called twice");
        ctx.kernel.begin_batch(ctx.now, self.pid);
        self.lfd = ctx.kernel.sys_listen(
            ctx.net,
            ctx.now,
            self.pid,
            self.config.port,
            self.config.backlog,
        )?;
        self.backend
            .init(ctx.kernel, ctx.registry, ctx.now, self.pid)?;
        self.backend.set_interest(
            ctx.kernel,
            ctx.registry,
            ctx.now,
            self.pid,
            self.lfd,
            PollBits::POLLIN,
        )?;
        ctx.kernel.end_batch(ctx.now, self.pid);
        self.started = true;
        self.last_scan = ctx.now;
        Ok(())
    }

    fn run_batch(&mut self, ctx: &mut ServerCtx<'_>) {
        ctx.kernel.begin_batch(ctx.now, self.pid);
        self.maybe_scan_idle(ctx);
        match self.backend.wait(
            ctx.kernel,
            ctx.registry,
            ctx.now,
            self.pid,
            self.config.max_events,
            -1,
        ) {
            Ok(WaitResult::WouldBlock) | Err(_) => {
                ctx.kernel
                    .end_batch_sleep(ctx.now, self.pid, Some(self.config.scan_interval));
            }
            Ok(WaitResult::Events(evs)) => {
                self.metrics.busy_batches += 1;
                ctx.kernel
                    .probe_mut()
                    .observe("server.batch_events", evs.len() as u64);
                for ev in evs {
                    let span = ctx.kernel.span_open(self.pid, Phase::Dispatch);
                    self.dispatch(ctx, ev.fd, ev.revents);
                    ctx.kernel.span_close(self.pid, span);
                }
                ctx.kernel.end_batch(ctx.now, self.pid);
            }
        }
    }

    fn metrics(&self) -> ServerMetrics {
        self.metrics
    }

    fn open_conns(&self) -> usize {
        self.conns.len()
    }
}
