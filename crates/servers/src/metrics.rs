//! Server-side counters used by the benchmark reports and tests.

use simcore::probe::MetricRegistry;

/// Counters one server accumulates over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerMetrics {
    /// Connections accepted.
    pub accepted: u64,
    /// Complete HTTP responses sent (and connection closed cleanly).
    pub replies: u64,
    /// Connections dropped for read errors / resets.
    pub read_errors: u64,
    /// Connections closed by the idle-timeout scan.
    pub idle_closed: u64,
    /// Connections the client closed before sending a full request.
    pub client_closed_early: u64,
    /// Requests for unknown documents (404s served).
    pub not_found: u64,
    /// RT-signal events referring to already-closed descriptors
    /// (the paper's stale-event hazard, §2).
    pub stale_events: u64,
    /// RT signal queue overflows handled.
    pub overflows: u64,
    /// Event-model switches (hybrid server: signal mode <-> poll mode).
    pub mode_switches: u64,
    /// Batches in which the event wait returned work.
    pub busy_batches: u64,
}

impl ServerMetrics {
    /// All connections terminated for any reason.
    pub fn closed_total(&self) -> u64 {
        self.replies + self.read_errors + self.idle_closed + self.client_closed_early
    }

    /// Folds these counters into a probe registry under `server.*`
    /// names (called once at report time; `add` keeps it idempotent-ish
    /// for registries that fold exactly once, which the testbed does).
    pub fn fold_into(&self, probe: &mut MetricRegistry) {
        probe.add("server.accepted", self.accepted);
        probe.add("server.replies", self.replies);
        probe.add("server.read_errors", self.read_errors);
        probe.add("server.idle_closed", self.idle_closed);
        probe.add("server.client_closed_early", self.client_closed_early);
        probe.add("server.not_found", self.not_found);
        probe.add("server.stale_events", self.stale_events);
        probe.add("server.overflows", self.overflows);
        probe.add("server.mode_switches", self.mode_switches);
        probe.add("server.busy_batches", self.busy_batches);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_total_sums_components() {
        let m = ServerMetrics {
            replies: 5,
            read_errors: 2,
            idle_closed: 3,
            client_closed_early: 1,
            ..ServerMetrics::default()
        };
        assert_eq!(m.closed_total(), 11);
    }
}
