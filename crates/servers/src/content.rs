//! The static content store.
//!
//! "In our tests, we request a 6 Kbyte document, a typical `index.html`
//! file from the CITI web site" (§5). Documents live in memory (the
//! paper's server easily caches its working set); the *cost* of the
//! lookup is charged by the server via the cost model's
//! `app_open_file`.

use std::collections::HashMap;
use std::rc::Rc;

/// The paper's document size.
pub const DEFAULT_DOC_BYTES: usize = 6 * 1024;
/// The paper's document path.
pub const DEFAULT_DOC_PATH: &str = "/index.html";

/// An in-memory static content store.
///
/// Each document is kept twice: the raw body, and the fully rendered
/// `200 OK` response (headers + body). Responses are immutable for the
/// life of the store, so rendering them once at insertion time lets the
/// serving hot path hand out a shared `Rc` instead of formatting headers
/// and copying the body for every request.
#[derive(Debug, Clone)]
pub struct ContentStore {
    files: HashMap<String, Rc<Vec<u8>>>,
    responses: HashMap<String, Rc<Vec<u8>>>,
}

impl ContentStore {
    /// An empty store.
    pub fn new() -> ContentStore {
        ContentStore {
            files: HashMap::new(),
            responses: HashMap::new(),
        }
    }

    /// The benchmark store: one 6 KB `index.html`.
    pub fn citi_6k() -> ContentStore {
        let mut s = ContentStore::new();
        s.put(DEFAULT_DOC_PATH, make_document(DEFAULT_DOC_BYTES));
        s
    }

    /// A store with one document of each given size, at
    /// `/doc-<size>.html` — for document-size sensitivity benches
    /// ("a web server's static performance depends on the size
    /// distribution of requested documents", §5).
    pub fn size_sweep(sizes: &[usize]) -> ContentStore {
        let mut s = ContentStore::new();
        for &n in sizes {
            s.put(format!("/doc-{n}.html"), make_document(n));
        }
        s
    }

    /// Inserts a document (and pre-renders its `200 OK` response).
    pub fn put(&mut self, path: impl Into<String>, body: Vec<u8>) {
        let path = path.into();
        self.responses
            .insert(path.clone(), Rc::new(crate::http::response_ok(&body)));
        self.files.insert(path, Rc::new(body));
    }

    /// Looks a document up. `/` aliases the default document.
    pub fn get(&self, path: &str) -> Option<Rc<Vec<u8>>> {
        let path = if path == "/" { DEFAULT_DOC_PATH } else { path };
        self.files.get(path).cloned()
    }

    /// The pre-rendered `200 OK` response for a document. `/` aliases
    /// the default document.
    pub fn response_for(&self, path: &str) -> Option<Rc<Vec<u8>>> {
        let path = if path == "/" { DEFAULT_DOC_PATH } else { path };
        self.responses.get(path).cloned()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

impl Default for ContentStore {
    fn default() -> Self {
        ContentStore::citi_6k()
    }
}

/// Generates deterministic HTML-ish filler of exactly `bytes` bytes.
pub fn make_document(bytes: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes);
    out.extend_from_slice(b"<html><body>");
    let filler = b"Linux Scalability Project - CITI, University of Michigan. ";
    while out.len() < bytes.saturating_sub(14) {
        let room = bytes - 14 - out.len();
        out.extend_from_slice(&filler[..filler.len().min(room)]);
    }
    out.extend_from_slice(b"</body></html>");
    out.resize(bytes, b' ');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn citi_store_has_6k_index() {
        let s = ContentStore::citi_6k();
        let doc = s.get("/index.html").unwrap();
        assert_eq!(doc.len(), 6 * 1024);
        // Root aliases the index.
        assert_eq!(s.get("/").unwrap().len(), 6 * 1024);
        assert!(s.get("/missing.html").is_none());
    }

    #[test]
    fn make_document_exact_size() {
        for n in [20, 100, 6144, 65536] {
            assert_eq!(make_document(n).len(), n);
        }
    }

    #[test]
    fn size_sweep_paths() {
        let s = ContentStore::size_sweep(&[1024, 65536]);
        assert_eq!(s.get("/doc-1024.html").unwrap().len(), 1024);
        assert_eq!(s.get("/doc-65536.html").unwrap().len(), 65536);
        assert_eq!(s.len(), 2);
    }
}
