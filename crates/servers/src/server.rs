//! The common server interface the orchestrator drives.

use devpoll::DevPollRegistry;
use simcore::time::{SimDuration, SimTime};
use simkernel::{Errno, Kernel, Pid};
use simnet::{Network, Port};

use crate::metrics::ServerMetrics;

/// Everything a server batch may touch, borrowed for one step.
pub struct ServerCtx<'a> {
    /// The server host's kernel.
    pub kernel: &'a mut Kernel,
    /// The network fabric.
    pub net: &'a mut Network,
    /// The `/dev/poll` device registry.
    pub registry: &'a mut DevPollRegistry,
    /// Current simulated time.
    pub now: SimTime,
}

/// Tunables shared by all server architectures.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Listening port.
    pub port: Port,
    /// Listen backlog.
    pub backlog: usize,
    /// Events processed per wait call.
    pub max_events: usize,
    /// Connections idle longer than this are closed.
    pub idle_timeout: SimDuration,
    /// Cadence of the idle scan.
    pub scan_interval: SimDuration,
    /// `RLIMIT_NOFILE` for the server process.
    pub fd_limit: usize,
    /// RT signal queue bound (paper default 1024).
    pub rt_queue_max: usize,
    /// Serve response bodies through `sendfile()` (§6 future work).
    pub use_sendfile: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            port: 80,
            backlog: 128,
            max_events: 8,
            idle_timeout: SimDuration::from_secs(60),
            scan_interval: SimDuration::from_secs(1),
            fd_limit: 1024,
            rt_queue_max: simkernel::DEFAULT_RT_QUEUE_MAX,
            use_sendfile: false,
        }
    }
}

/// A web server under test.
pub trait Server {
    /// The server's process.
    fn pid(&self) -> Pid;

    /// Architecture name for reports ("thttpd/poll", "phhttpd", …).
    fn name(&self) -> String;

    /// One-time setup: listen, init the event backend. Runs inside its
    /// own batch.
    fn start(&mut self, ctx: &mut ServerCtx<'_>) -> Result<(), Errno>;

    /// Runs one batch (called whenever the kernel reports the process
    /// runnable). The implementation brackets itself with
    /// `begin_batch`/`end_batch*`.
    fn run_batch(&mut self, ctx: &mut ServerCtx<'_>);

    /// Counters so far.
    fn metrics(&self) -> ServerMetrics;

    /// Open HTTP connections right now.
    fn open_conns(&self) -> usize;

    /// Whether this server owns the given process (multi-process servers
    /// own several).
    fn handles(&self, pid: Pid) -> bool {
        pid == self.pid()
    }

    /// Runs one batch for a specific process. Single-process servers
    /// ignore `pid`.
    fn run_batch_for(&mut self, ctx: &mut ServerCtx<'_>, pid: Pid) {
        debug_assert!(self.handles(pid));
        self.run_batch(ctx);
    }
}
