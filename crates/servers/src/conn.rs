//! The per-connection HTTP state machine shared by every server
//! architecture (thttpd-style event loops, the RT-signal server, the
//! hybrid).

use std::rc::Rc;

use simcore::time::SimTime;
use simkernel::{Errno, Fd, Kernel, Pid};
use simnet::Network;

use crate::content::ContentStore;
use crate::http::{parse_request, response_error, ParseOutcome};

/// What a connection is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnPhase {
    /// Buffering the request.
    Reading,
    /// Draining the response.
    Writing,
}

/// Why a connection finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishKind {
    /// Response fully sent.
    Replied,
    /// Peer closed before sending a complete request.
    ClientClosedEarly,
    /// Reset / read / write error.
    Error,
}

/// Result of feeding an event to a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnStatus {
    /// Still waiting for readability.
    WantRead,
    /// Response not fully drained; wait for writability.
    WantWrite,
    /// Connection is done (caller removes interest and closes the fd).
    Finished(FinishKind),
}

/// Server-side per-connection state.
#[derive(Debug)]
pub struct HttpConn {
    /// The descriptor.
    pub fd: Fd,
    /// Current phase.
    pub phase: ConnPhase,
    /// Buffered request bytes.
    pub in_buf: Vec<u8>,
    /// Response bytes (headers + body). Shared with the content store's
    /// pre-rendered response cache on the 200 path, so starting a reply
    /// is a pointer bump rather than a header format plus body copy.
    pub out_buf: Rc<Vec<u8>>,
    /// How much of `out_buf` has been written.
    pub out_pos: usize,
    /// Time of the last I/O progress (for idle timeouts).
    pub last_activity: SimTime,
    /// When the connection was accepted.
    pub accepted_at: SimTime,
    /// Drain the response via `sendfile()` instead of `write()` (§6
    /// future work; saves the user-space copy).
    pub use_sendfile: bool,
}

impl HttpConn {
    /// A fresh connection in the reading phase.
    pub fn new(fd: Fd, now: SimTime) -> HttpConn {
        HttpConn {
            fd,
            phase: ConnPhase::Reading,
            in_buf: Vec::new(),
            out_buf: Rc::new(Vec::new()),
            out_pos: 0,
            last_activity: now,
            accepted_at: now,
            use_sendfile: false,
        }
    }

    /// A fresh connection that will respond via `sendfile()`.
    pub fn new_sendfile(fd: Fd, now: SimTime) -> HttpConn {
        HttpConn {
            use_sendfile: true,
            ..HttpConn::new(fd, now)
        }
    }

    /// Whether the connection has been idle since `cutoff`.
    pub fn idle_since(&self, cutoff: SimTime) -> bool {
        self.last_activity <= cutoff
    }

    /// Handles readability: reads, parses, and on a complete request
    /// builds the response and starts writing it.
    pub fn on_readable(
        &mut self,
        kernel: &mut Kernel,
        net: &mut Network,
        now: SimTime,
        pid: Pid,
        content: &ContentStore,
        not_found: &mut u64,
    ) -> ConnStatus {
        if self.phase == ConnPhase::Writing {
            // Readable while writing: either the client is pipelining
            // (ignored in HTTP/1.0) or it closed. Keep draining.
            return self.on_writable(kernel, net, now, pid);
        }
        loop {
            // Bytes land straight in `in_buf` and the parsed request
            // borrows from it — no per-read or per-parse allocation.
            match kernel.sys_read_into(net, now, pid, self.fd, 4096, &mut self.in_buf) {
                Ok(0) => {
                    return ConnStatus::Finished(FinishKind::ClientClosedEarly);
                }
                Ok(_) => {
                    self.last_activity = now;
                    match parse_request(&self.in_buf) {
                        ParseOutcome::Incomplete => continue,
                        ParseOutcome::Complete(req) => {
                            let cost = *kernel.cost_model();
                            kernel.charge_app(pid, cost.app_parse_request);
                            kernel.charge_app(pid, cost.app_open_file);
                            self.out_buf = match content.response_for(req.path) {
                                Some(resp) => resp,
                                None => {
                                    *not_found += 1;
                                    Rc::new(response_error(404, "Not Found"))
                                }
                            };
                            self.phase = ConnPhase::Writing;
                            return self.on_writable(kernel, net, now, pid);
                        }
                        ParseOutcome::Malformed => {
                            let cost = *kernel.cost_model();
                            kernel.charge_app(pid, cost.app_parse_request);
                            self.out_buf = Rc::new(response_error(400, "Bad Request"));
                            self.phase = ConnPhase::Writing;
                            return self.on_writable(kernel, net, now, pid);
                        }
                    }
                }
                Err(Errno::EAGAIN) => return ConnStatus::WantRead,
                Err(_) => return ConnStatus::Finished(FinishKind::Error),
            }
        }
    }

    /// Handles writability: drains the response.
    pub fn on_writable(
        &mut self,
        kernel: &mut Kernel,
        net: &mut Network,
        now: SimTime,
        pid: Pid,
    ) -> ConnStatus {
        debug_assert_eq!(self.phase, ConnPhase::Writing);
        while self.out_pos < self.out_buf.len() {
            let chunk = &self.out_buf[self.out_pos..];
            let wrote = if self.use_sendfile {
                kernel.sys_sendfile(net, now, pid, self.fd, chunk)
            } else {
                kernel.sys_write(net, now, pid, self.fd, chunk)
            };
            match wrote {
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity = now;
                }
                Err(Errno::EAGAIN) => return ConnStatus::WantWrite,
                Err(_) => return ConnStatus::Finished(FinishKind::Error),
            }
        }
        ConnStatus::Finished(FinishKind::Replied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;
    use simkernel::CostModel;
    use simnet::{EndpointId, HostId, LinkConfig, SockAddr, TcpConfig};

    const CLIENT: HostId = HostId(0);
    const SERVER: HostId = HostId(1);

    fn pump(net: &mut Network, kernel: &mut Kernel, horizon: SimTime) {
        loop {
            match net.next_deadline() {
                Some(t) if t <= horizon => {
                    for n in net.advance(t) {
                        kernel.on_net(t, &n);
                    }
                    let _ = kernel.advance(t);
                }
                _ => break,
            }
        }
        for n in net.advance(horizon) {
            kernel.on_net(horizon, &n);
        }
        let _ = kernel.advance(horizon);
    }

    #[test]
    fn serves_a_complete_request() {
        let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
        let mut kernel = Kernel::new(SERVER, CostModel::k6_2_400mhz());
        let pid = kernel.spawn_default();
        kernel.begin_batch(SimTime::ZERO, pid);
        let lfd = kernel
            .sys_listen(&mut net, SimTime::ZERO, pid, 80, 128)
            .unwrap();
        kernel.end_batch(SimTime::ZERO, pid);
        let conn_id = net
            .connect(
                SimTime::ZERO,
                CLIENT,
                SockAddr::new(SERVER, 80),
                SimDuration::ZERO,
            )
            .unwrap();
        pump(&mut net, &mut kernel, SimTime::from_millis(10));
        let t = SimTime::from_millis(10);
        kernel.begin_batch(t, pid);
        let fd = kernel.sys_accept(&mut net, t, pid, lfd).unwrap();
        kernel.end_batch(t, pid);

        let client_ep = EndpointId::new(conn_id, simnet::Side::Client);
        net.send(t, client_ep, b"GET /index.html HTTP/1.0\r\n\r\n")
            .unwrap();
        pump(&mut net, &mut kernel, SimTime::from_millis(20));

        let t = SimTime::from_millis(20);
        let content = ContentStore::citi_6k();
        let mut conn = HttpConn::new(fd, t);
        let mut nf = 0u64;
        kernel.begin_batch(t, pid);
        let status = conn.on_readable(&mut kernel, &mut net, t, pid, &content, &mut nf);
        // 6 KB + headers fit the 16 KB send buffer in one go.
        assert_eq!(status, ConnStatus::Finished(FinishKind::Replied));
        kernel.sys_close(&mut net, t, pid, fd).unwrap();
        kernel.end_batch(t, pid);
        assert_eq!(nf, 0);

        pump(&mut net, &mut kernel, SimTime::from_millis(120));
        let body = net
            .recv(SimTime::from_millis(120), client_ep, usize::MAX)
            .unwrap();
        let text = String::from_utf8_lossy(&body);
        assert!(text.starts_with("HTTP/1.0 200 OK"));
        assert!(text.contains("Content-Length: 6144"));
        assert!(net.peer_closed(client_ep), "HTTP/1.0: server closes");
    }

    #[test]
    fn missing_document_gets_404() {
        let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
        let mut kernel = Kernel::new(SERVER, CostModel::k6_2_400mhz());
        let pid = kernel.spawn_default();
        kernel.begin_batch(SimTime::ZERO, pid);
        let lfd = kernel
            .sys_listen(&mut net, SimTime::ZERO, pid, 80, 128)
            .unwrap();
        kernel.end_batch(SimTime::ZERO, pid);
        let conn_id = net
            .connect(
                SimTime::ZERO,
                CLIENT,
                SockAddr::new(SERVER, 80),
                SimDuration::ZERO,
            )
            .unwrap();
        pump(&mut net, &mut kernel, SimTime::from_millis(10));
        let t = SimTime::from_millis(10);
        kernel.begin_batch(t, pid);
        let fd = kernel.sys_accept(&mut net, t, pid, lfd).unwrap();
        kernel.end_batch(t, pid);
        let client_ep = EndpointId::new(conn_id, simnet::Side::Client);
        net.send(t, client_ep, b"GET /nope.html HTTP/1.0\r\n\r\n")
            .unwrap();
        pump(&mut net, &mut kernel, SimTime::from_millis(20));

        let t = SimTime::from_millis(20);
        let content = ContentStore::citi_6k();
        let mut conn = HttpConn::new(fd, t);
        let mut nf = 0u64;
        kernel.begin_batch(t, pid);
        let status = conn.on_readable(&mut kernel, &mut net, t, pid, &content, &mut nf);
        kernel.end_batch(t, pid);
        assert_eq!(status, ConnStatus::Finished(FinishKind::Replied));
        assert_eq!(nf, 1);
    }

    #[test]
    fn partial_request_wants_more_reading() {
        let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
        let mut kernel = Kernel::new(SERVER, CostModel::k6_2_400mhz());
        let pid = kernel.spawn_default();
        kernel.begin_batch(SimTime::ZERO, pid);
        let lfd = kernel
            .sys_listen(&mut net, SimTime::ZERO, pid, 80, 128)
            .unwrap();
        kernel.end_batch(SimTime::ZERO, pid);
        let conn_id = net
            .connect(
                SimTime::ZERO,
                CLIENT,
                SockAddr::new(SERVER, 80),
                SimDuration::ZERO,
            )
            .unwrap();
        pump(&mut net, &mut kernel, SimTime::from_millis(10));
        let t = SimTime::from_millis(10);
        kernel.begin_batch(t, pid);
        let fd = kernel.sys_accept(&mut net, t, pid, lfd).unwrap();
        kernel.end_batch(t, pid);
        let client_ep = EndpointId::new(conn_id, simnet::Side::Client);
        net.send(t, client_ep, b"GET /index.html HT").unwrap();
        pump(&mut net, &mut kernel, SimTime::from_millis(20));

        let t = SimTime::from_millis(20);
        let content = ContentStore::citi_6k();
        let mut conn = HttpConn::new(fd, t);
        let mut nf = 0u64;
        kernel.begin_batch(t, pid);
        let status = conn.on_readable(&mut kernel, &mut net, t, pid, &content, &mut nf);
        kernel.end_batch(t, pid);
        assert_eq!(status, ConnStatus::WantRead);
        assert_eq!(conn.phase, ConnPhase::Reading);
        assert!(!conn.in_buf.is_empty());
    }
}
