//! `phhttpd` — the experimental RT-signal web server (§2, §5.2).
//!
//! Faithful to the architecture the paper describes, including its
//! pathologies:
//!
//! * one `sigwaitinfo()` syscall per event;
//! * per-event bookkeeping that costs time linear in the number of open
//!   connections (the implementation weakness behind Figs. 12–13);
//! * stale events for already-closed descriptors that must be skipped;
//! * on queue overflow, connections are handed to the "poll sibling" one
//!   at a time over a UNIX domain socket and a `pollfd` array is rebuilt
//!   from scratch — and the server *never switches back* to signal mode
//!   ("Brown never implemented this logic", §6).

use devpoll::{EventBackend, RtEvent, RtSignalApi, StockPollBackend, WaitResult};
use simcore::span::Phase;
use simcore::time::SimTime;
use simkernel::{Errno, Fd, FdMap, PollBits};

use crate::conn::{ConnPhase, ConnStatus, FinishKind, HttpConn};
use crate::content::ContentStore;
use crate::metrics::ServerMetrics;
use crate::server::{Server, ServerConfig, ServerCtx};

/// Which event engine the server is currently running on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhMode {
    /// Normal operation: events picked up one at a time from the RT
    /// signal queue.
    Signals,
    /// After an overflow: everything was handed to the poll sibling,
    /// which rebuilds its `pollfd` array every scan. Permanent.
    Polling,
}

/// phhttpd-specific tunables.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhConfig {
    /// Use the proposed `sigtimedwait4()` to dequeue events in batches
    /// of this size instead of one `sigwaitinfo()` per event (§6).
    pub batch_dequeue: Option<usize>,
}

/// The RT-signal server.
pub struct Phhttpd {
    pid: simkernel::Pid,
    lfd: Fd,
    rtapi: RtSignalApi,
    mode: PhMode,
    poll_backend: StockPollBackend,
    conns: FdMap<HttpConn>,
    content: ContentStore,
    metrics: ServerMetrics,
    config: ServerConfig,
    ph: PhConfig,
    last_scan: SimTime,
    /// Reused idle-sweep scratch (no per-scan allocation).
    idle_scratch: Vec<Fd>,
}

impl Phhttpd {
    /// Creates the server (spawning its process).
    pub fn new(ctx: &mut ServerCtx<'_>, config: ServerConfig, ph: PhConfig) -> Phhttpd {
        let pid = ctx.kernel.spawn(config.fd_limit, config.rt_queue_max);
        Phhttpd {
            pid,
            lfd: -1,
            rtapi: RtSignalApi::default(),
            mode: PhMode::Signals,
            poll_backend: StockPollBackend::new(),
            conns: FdMap::new(),
            content: ContentStore::citi_6k(),
            metrics: ServerMetrics::default(),
            config,
            ph,
            last_scan: SimTime::ZERO,
            idle_scratch: Vec::new(),
        }
    }

    /// The current event mode.
    pub fn mode(&self) -> PhMode {
        self.mode
    }

    fn accept_all(&mut self, ctx: &mut ServerCtx<'_>) {
        loop {
            match ctx.kernel.sys_accept(ctx.net, ctx.now, self.pid, self.lfd) {
                Ok(fd) => {
                    let cost = *ctx.kernel.cost_model();
                    ctx.kernel.charge_app(self.pid, cost.app_conn_setup);
                    // Inserting into (and probing) the experimental
                    // server's linear connection table costs time
                    // proportional to its size — the same weakness the
                    // per-event dispatch pays.
                    ctx.kernel
                        .charge_app(self.pid, cost.app_event_lookup * self.conns.len() as u64);
                    self.metrics.accepted += 1;
                    match self.mode {
                        PhMode::Signals => {
                            // O_NONBLOCK + F_SETSIG + F_SETOWN: the
                            // per-connection syscall tax of the RT model.
                            let _ = self.rtapi.register(ctx.kernel, self.pid, fd);
                        }
                        PhMode::Polling => {
                            let _ = ctx.kernel.sys_set_nonblock(self.pid, fd);
                            let _ = self.poll_backend.set_interest(
                                ctx.kernel,
                                ctx.registry,
                                ctx.now,
                                self.pid,
                                fd,
                                PollBits::POLLIN,
                            );
                        }
                    }
                    let mut conn = if self.config.use_sendfile {
                        HttpConn::new_sendfile(fd, ctx.now)
                    } else {
                        HttpConn::new(fd, ctx.now)
                    };
                    // Data may have arrived before registration; a fresh
                    // read avoids a lost-edge deadlock.
                    let status = conn.on_readable(
                        ctx.kernel,
                        ctx.net,
                        ctx.now,
                        self.pid,
                        &self.content,
                        &mut self.metrics.not_found,
                    );
                    self.conns.insert(fd, conn);
                    self.apply_status(ctx, fd, status);
                }
                Err(Errno::EAGAIN) => break,
                Err(_) => break,
            }
        }
    }

    fn apply_status(&mut self, ctx: &mut ServerCtx<'_>, fd: Fd, status: ConnStatus) {
        match status {
            ConnStatus::WantRead | ConnStatus::WantWrite => {
                if self.mode == PhMode::Polling {
                    let ev = if status == ConnStatus::WantWrite {
                        PollBits::POLLOUT
                    } else {
                        PollBits::POLLIN
                    };
                    let _ = self.poll_backend.set_interest(
                        ctx.kernel,
                        ctx.registry,
                        ctx.now,
                        self.pid,
                        fd,
                        ev,
                    );
                }
                // In signal mode the next state change queues a signal.
            }
            ConnStatus::Finished(kind) => self.finish_conn(ctx, fd, kind),
        }
    }

    fn finish_conn(&mut self, ctx: &mut ServerCtx<'_>, fd: Fd, kind: FinishKind) {
        if self.mode == PhMode::Polling {
            let _ =
                self.poll_backend
                    .remove_interest(ctx.kernel, ctx.registry, ctx.now, self.pid, fd);
        }
        match kind {
            FinishKind::Replied => {
                let _ = ctx.kernel.sys_close(ctx.net, ctx.now, self.pid, fd);
                self.metrics.replies += 1;
            }
            FinishKind::ClientClosedEarly => {
                let _ = ctx.kernel.sys_close(ctx.net, ctx.now, self.pid, fd);
                self.metrics.client_closed_early += 1;
            }
            FinishKind::Error => {
                let _ = ctx.kernel.sys_abort(ctx.net, ctx.now, self.pid, fd);
                self.metrics.read_errors += 1;
            }
        }
        self.conns.remove(fd);
        // Events already queued for this fd remain on the RT queue and
        // will surface as stale events (§2).
    }

    fn dispatch(&mut self, ctx: &mut ServerCtx<'_>, fd: Fd, band: PollBits) {
        // The experimental server's per-event connection lookup walks a
        // linear structure: cost grows with the open-connection count.
        let cost = *ctx.kernel.cost_model();
        ctx.kernel
            .charge_app(self.pid, cost.app_event_lookup * self.conns.len() as u64);
        if fd == self.lfd {
            self.accept_all(ctx);
            return;
        }
        let Some(conn) = self.conns.get_mut(fd) else {
            self.metrics.stale_events += 1;
            return;
        };
        if band.contains(PollBits::POLLERR) {
            self.finish_conn(ctx, fd, FinishKind::Error);
            return;
        }
        let status = if conn.phase == ConnPhase::Writing && band.contains(PollBits::POLLOUT) {
            conn.on_writable(ctx.kernel, ctx.net, ctx.now, self.pid)
        } else if band.intersects(PollBits::POLLIN | PollBits::POLLHUP) {
            conn.on_readable(
                ctx.kernel,
                ctx.net,
                ctx.now,
                self.pid,
                &self.content,
                &mut self.metrics.not_found,
            )
        } else {
            return;
        };
        self.apply_status(ctx, fd, status);
    }

    /// RT queue overflow (§2, §6): flush the queue, hand every
    /// connection to the poll sibling one at a time over a UNIX domain
    /// socket, and rebuild the `pollfd` array from scratch. The server
    /// stays in polling mode for good.
    fn handle_overflow(&mut self, ctx: &mut ServerCtx<'_>) {
        self.metrics.overflows += 1;
        self.metrics.mode_switches += 1;
        let _ = self.rtapi.flush(ctx.kernel, self.pid);
        let cost = *ctx.kernel.cost_model();
        // Transfer: sendmsg + recvmsg per descriptor (including the
        // listener), plus re-registration bookkeeping.
        let per_conn = cost.syscall * 2 + cost.app_conn_setup;
        ctx.kernel
            .charge_app(self.pid, per_conn * (self.conns.len() as u64 + 1));
        self.mode = PhMode::Polling;
        // Rebuild the interest set from scratch.
        let _ = self.poll_backend.set_interest(
            ctx.kernel,
            ctx.registry,
            ctx.now,
            self.pid,
            self.lfd,
            PollBits::POLLIN,
        );
        // Field-level split borrow: walking `conns` while poking the
        // sibling's interest set needs no intermediate fd list.
        for (fd, c) in self.conns.iter() {
            let ev = if c.phase == ConnPhase::Writing {
                PollBits::POLLOUT
            } else {
                PollBits::POLLIN
            };
            let _ =
                self.poll_backend
                    .set_interest(ctx.kernel, ctx.registry, ctx.now, self.pid, fd, ev);
        }
    }

    fn maybe_scan_idle(&mut self, ctx: &mut ServerCtx<'_>) {
        if ctx.now.saturating_duration_since(self.last_scan) < self.config.scan_interval {
            return;
        }
        self.last_scan = ctx.now;
        let cost = *ctx.kernel.cost_model();
        ctx.kernel
            .charge_app(self.pid, cost.app_timer_scan * self.conns.len() as u64);
        if ctx.now.as_nanos() < self.config.idle_timeout.as_nanos() {
            return;
        }
        let cutoff = SimTime::from_nanos(ctx.now.as_nanos() - self.config.idle_timeout.as_nanos());
        let mut idle = std::mem::take(&mut self.idle_scratch);
        idle.clear();
        idle.extend(
            self.conns
                .iter()
                .filter(|(_, c)| c.idle_since(cutoff))
                .map(|(fd, _)| fd),
        );
        for &fd in &idle {
            if self.mode == PhMode::Polling {
                let _ = self.poll_backend.remove_interest(
                    ctx.kernel,
                    ctx.registry,
                    ctx.now,
                    self.pid,
                    fd,
                );
            }
            let _ = ctx.kernel.sys_close(ctx.net, ctx.now, self.pid, fd);
            self.conns.remove(fd);
            self.metrics.idle_closed += 1;
        }
        self.idle_scratch = idle;
    }

    fn run_signals_batch(&mut self, ctx: &mut ServerCtx<'_>) {
        let mut processed = 0usize;
        while processed < self.config.max_events {
            let events: Vec<RtEvent> = match self.ph.batch_dequeue {
                Some(batch) => {
                    let want = batch.min(self.config.max_events - processed);
                    match self.rtapi.next_events(ctx.kernel, self.pid, want) {
                        Ok(evs) => evs,
                        Err(_) => break,
                    }
                }
                None => match self.rtapi.next_event(ctx.kernel, self.pid) {
                    Ok(ev) => vec![ev],
                    Err(_) => break,
                },
            };
            for ev in events {
                processed += 1;
                match ev {
                    RtEvent::Io { fd, band } => {
                        let span = ctx.kernel.span_open(self.pid, Phase::Dispatch);
                        self.dispatch(ctx, fd, band);
                        ctx.kernel.span_close(self.pid, span);
                    }
                    RtEvent::Overflow => {
                        self.handle_overflow(ctx);
                        return; // `run_batch` closes the batch out.
                    }
                }
            }
        }
        if processed == 0 {
            ctx.kernel
                .end_batch_sleep(ctx.now, self.pid, Some(self.config.scan_interval));
        } else {
            self.metrics.busy_batches += 1;
            ctx.kernel
                .probe_mut()
                .observe("server.batch_events", processed as u64);
            ctx.kernel.end_batch(ctx.now, self.pid);
        }
    }

    fn run_polling_batch(&mut self, ctx: &mut ServerCtx<'_>) {
        match self.poll_backend.wait(
            ctx.kernel,
            ctx.registry,
            ctx.now,
            self.pid,
            self.config.max_events,
            -1,
        ) {
            Ok(WaitResult::WouldBlock) | Err(_) => {
                ctx.kernel
                    .end_batch_sleep(ctx.now, self.pid, Some(self.config.scan_interval));
            }
            Ok(WaitResult::Events(evs)) => {
                self.metrics.busy_batches += 1;
                ctx.kernel
                    .probe_mut()
                    .observe("server.batch_events", evs.len() as u64);
                for ev in evs {
                    let span = ctx.kernel.span_open(self.pid, Phase::Dispatch);
                    if ev.fd == self.lfd {
                        self.accept_all(ctx);
                    } else {
                        self.dispatch_poll(ctx, ev.fd, ev.revents);
                    }
                    ctx.kernel.span_close(self.pid, span);
                }
                ctx.kernel.end_batch(ctx.now, self.pid);
            }
        }
    }

    fn dispatch_poll(&mut self, ctx: &mut ServerCtx<'_>, fd: Fd, revents: PollBits) {
        let Some(conn) = self.conns.get_mut(fd) else {
            return;
        };
        if revents.contains(PollBits::POLLERR) || revents.contains(PollBits::POLLNVAL) {
            self.finish_conn(ctx, fd, FinishKind::Error);
            return;
        }
        let status = if conn.phase == ConnPhase::Writing && revents.contains(PollBits::POLLOUT) {
            conn.on_writable(ctx.kernel, ctx.net, ctx.now, self.pid)
        } else if revents.intersects(PollBits::POLLIN | PollBits::POLLHUP) {
            conn.on_readable(
                ctx.kernel,
                ctx.net,
                ctx.now,
                self.pid,
                &self.content,
                &mut self.metrics.not_found,
            )
        } else {
            return;
        };
        self.apply_status(ctx, fd, status);
    }
}

impl Server for Phhttpd {
    fn pid(&self) -> simkernel::Pid {
        self.pid
    }

    fn name(&self) -> String {
        match self.ph.batch_dequeue {
            Some(n) => format!("phhttpd/rtsig+batch{n}"),
            None => "phhttpd/rtsig".to_string(),
        }
    }

    fn start(&mut self, ctx: &mut ServerCtx<'_>) -> Result<(), Errno> {
        ctx.kernel.begin_batch(ctx.now, self.pid);
        self.lfd = ctx.kernel.sys_listen(
            ctx.net,
            ctx.now,
            self.pid,
            self.config.port,
            self.config.backlog,
        )?;
        self.rtapi.register(ctx.kernel, self.pid, self.lfd)?;
        ctx.kernel.end_batch(ctx.now, self.pid);
        self.last_scan = ctx.now;
        Ok(())
    }

    fn run_batch(&mut self, ctx: &mut ServerCtx<'_>) {
        ctx.kernel.begin_batch(ctx.now, self.pid);
        self.maybe_scan_idle(ctx);
        match self.mode {
            PhMode::Signals => {
                self.run_signals_batch(ctx);
                if self.mode == PhMode::Polling {
                    // Overflow happened mid-batch; close the batch out.
                    ctx.kernel.end_batch(ctx.now, self.pid);
                }
            }
            PhMode::Polling => self.run_polling_batch(ctx),
        }
    }

    fn metrics(&self) -> ServerMetrics {
        self.metrics
    }

    fn open_conns(&self) -> usize {
        self.conns.len()
    }
}
