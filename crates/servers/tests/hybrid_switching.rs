//! The hybrid server's mode machine: signal mode under light load,
//! polling past the queue-pressure threshold, and back once the burst
//! drains.

use devpoll::DevPollRegistry;
use servers::{HybridConfig, HybridMode, HybridServer, Server, ServerConfig, ServerCtx};
use simcore::time::{SimDuration, SimTime};
use simkernel::{CostModel, Kernel, KernelEvent};
use simnet::{ConnId, EndpointId, HostId, LinkConfig, Network, Side, SockAddr, TcpConfig};

const CLIENT: HostId = HostId(0);
const SERVER: HostId = HostId(1);

struct Rig {
    net: Network,
    kernel: Kernel,
    registry: DevPollRegistry,
    now: SimTime,
}

impl Rig {
    fn new() -> Rig {
        Rig {
            net: Network::new(TcpConfig::default(), LinkConfig::default(), 2),
            kernel: Kernel::new(SERVER, CostModel::k6_2_400mhz()),
            registry: DevPollRegistry::new(),
            now: SimTime::ZERO,
        }
    }

    fn run(&mut self, server: &mut dyn Server, until: SimTime) {
        loop {
            let next = match (self.net.next_deadline(), self.kernel.next_deadline()) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            if next > until {
                break;
            }
            self.now = next.max(self.now);
            loop {
                let notifies = self.net.advance(self.now);
                for n in &notifies {
                    self.kernel.on_net(self.now, n);
                }
                let events = self.kernel.advance(self.now);
                if notifies.is_empty() && events.is_empty() {
                    break;
                }
                for e in events {
                    match e {
                        KernelEvent::FdEvent { pid, fd, .. } => {
                            self.registry
                                .on_fd_event(&mut self.kernel, self.now, pid, fd);
                        }
                        KernelEvent::ProcRunnable { pid } if server.handles(pid) => {
                            let mut ctx = ServerCtx {
                                kernel: &mut self.kernel,
                                net: &mut self.net,
                                registry: &mut self.registry,
                                now: self.now,
                            };
                            server.run_batch_for(&mut ctx, pid);
                        }
                        KernelEvent::ProcRunnable { .. } => {}
                    }
                }
            }
        }
        self.now = until.max(self.now);
    }

    fn connect_and_request(&mut self, server: &mut dyn Server) -> ConnId {
        let conn = self
            .net
            .connect(
                self.now,
                CLIENT,
                SockAddr::new(SERVER, 80),
                SimDuration::ZERO,
            )
            .unwrap();
        self.run(server, self.now + SimDuration::from_millis(2));
        let ep = EndpointId::new(conn, Side::Client);
        let _ = self.net.send(self.now, ep, b"GET / HTTP/1.0\r\n\r\n");
        conn
    }
}

fn hybrid(rig: &mut Rig, queue_max: usize, up_fraction: f64) -> HybridServer {
    let config = ServerConfig {
        rt_queue_max: queue_max,
        ..ServerConfig::default()
    };
    let mut server = {
        let mut ctx = ServerCtx {
            kernel: &mut rig.kernel,
            net: &mut rig.net,
            registry: &mut rig.registry,
            now: rig.now,
        };
        HybridServer::new(
            &mut ctx,
            config,
            HybridConfig {
                up_fraction,
                down_events: 4,
            },
        )
    };
    let mut ctx = ServerCtx {
        kernel: &mut rig.kernel,
        net: &mut rig.net,
        registry: &mut rig.registry,
        now: rig.now,
    };
    server.start(&mut ctx).unwrap();
    server
}

#[test]
fn stays_in_signal_mode_at_light_load() {
    let mut rig = Rig::new();
    let mut server = hybrid(&mut rig, 1024, 0.5);
    for _ in 0..5 {
        rig.connect_and_request(&mut server);
        rig.run(&mut server, rig.now + SimDuration::from_millis(50));
    }
    assert_eq!(server.mode(), HybridMode::Signals);
    assert_eq!(server.metrics().replies, 5);
    assert_eq!(server.metrics().mode_switches, 0);
}

#[test]
fn burst_flips_to_polling_and_back() {
    let mut rig = Rig::new();
    // Tiny queue + low threshold: a burst of concurrent clients trips
    // the crossover.
    let mut server = hybrid(&mut rig, 8, 0.25);
    let mut conns = Vec::new();
    for _ in 0..20 {
        let conn = rig
            .net
            .connect(
                rig.now,
                CLIENT,
                SockAddr::new(SERVER, 80),
                SimDuration::ZERO,
            )
            .unwrap();
        conns.push(conn);
    }
    rig.run(&mut server, rig.now + SimDuration::from_millis(3));
    for &conn in &conns {
        let ep = EndpointId::new(conn, Side::Client);
        let _ = rig.net.send(rig.now, ep, b"GET / HTTP/1.0\r\n\r\n");
    }
    rig.run(&mut server, rig.now + SimDuration::from_millis(500));
    assert_eq!(server.metrics().replies, 20, "{:?}", server.metrics());
    assert!(
        server.metrics().mode_switches >= 2,
        "must have flipped to polling and back: {:?}",
        server.metrics()
    );
    // Quiet again: signal mode.
    assert_eq!(server.mode(), HybridMode::Signals);
    // Nothing was lost to the switches — the kernel interest set carried
    // the state across (§6's re-architecture).
    assert_eq!(server.open_conns(), 0);
}

#[test]
fn hybrid_never_counts_rt_losses_as_failures() {
    // Even if the RT queue overflows during the flip, the devpoll
    // interest set recovers every event: all clients get answers.
    let mut rig = Rig::new();
    let mut server = hybrid(&mut rig, 4, 0.9);
    let mut conns = Vec::new();
    for _ in 0..30 {
        conns.push(
            rig.net
                .connect(
                    rig.now,
                    CLIENT,
                    SockAddr::new(SERVER, 80),
                    SimDuration::ZERO,
                )
                .unwrap(),
        );
    }
    rig.run(&mut server, rig.now + SimDuration::from_millis(3));
    for &conn in &conns {
        let ep = EndpointId::new(conn, Side::Client);
        let _ = rig
            .net
            .send(rig.now, ep, b"GET /index.html HTTP/1.0\r\n\r\n");
    }
    rig.run(&mut server, rig.now + SimDuration::from_millis(800));
    assert_eq!(server.metrics().replies, 30, "{:?}", server.metrics());
}
