//! Behavioural tests of the server event loops, driven by a miniature
//! orchestrator with hand-rolled clients.

use devpoll::{DevPollBackend, DevPollRegistry, StockPollBackend};
use servers::{PhConfig, PhMode, Phhttpd, Prefork, Server, ServerConfig, ServerCtx, Thttpd};
use simcore::time::{SimDuration, SimTime};
use simkernel::{AcceptWake, CostModel, Kernel, KernelEvent};
use simnet::{ConnId, EndpointId, HostId, LinkConfig, Network, Side, SockAddr, TcpConfig};

const CLIENT: HostId = HostId(0);
const SERVER: HostId = HostId(1);

struct Rig {
    net: Network,
    kernel: Kernel,
    registry: DevPollRegistry,
    now: SimTime,
}

impl Rig {
    fn new() -> Rig {
        Rig {
            net: Network::new(TcpConfig::default(), LinkConfig::default(), 2),
            kernel: Kernel::new(SERVER, CostModel::k6_2_400mhz()),
            registry: DevPollRegistry::new(),
            now: SimTime::ZERO,
        }
    }

    fn ctx(&mut self) -> ServerCtx<'_> {
        ServerCtx {
            kernel: &mut self.kernel,
            net: &mut self.net,
            registry: &mut self.registry,
            now: self.now,
        }
    }

    /// Advances the whole world until `until`, running server batches.
    fn run(&mut self, server: &mut dyn Server, until: SimTime) {
        loop {
            let next = match (self.net.next_deadline(), self.kernel.next_deadline()) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            if next > until {
                break;
            }
            self.now = next.max(self.now);
            loop {
                let notifies = self.net.advance(self.now);
                for n in &notifies {
                    self.kernel.on_net(self.now, n);
                }
                let events = self.kernel.advance(self.now);
                if notifies.is_empty() && events.is_empty() {
                    break;
                }
                for e in events {
                    match e {
                        KernelEvent::FdEvent { pid, fd, .. } => {
                            self.registry
                                .on_fd_event(&mut self.kernel, self.now, pid, fd);
                        }
                        KernelEvent::ProcRunnable { pid } if server.handles(pid) => {
                            let mut ctx = ServerCtx {
                                kernel: &mut self.kernel,
                                net: &mut self.net,
                                registry: &mut self.registry,
                                now: self.now,
                            };
                            server.run_batch_for(&mut ctx, pid);
                        }
                        KernelEvent::ProcRunnable { .. } => {}
                    }
                }
            }
        }
        self.now = until.max(self.now);
    }

    fn connect(&mut self, extra_ms: u64) -> ConnId {
        self.net
            .connect(
                self.now,
                CLIENT,
                SockAddr::new(SERVER, 80),
                SimDuration::from_millis(extra_ms),
            )
            .expect("connect")
    }

    fn client_send(&mut self, conn: ConnId, data: &[u8]) {
        let ep = EndpointId::new(conn, Side::Client);
        let _ = self.net.send(self.now, ep, data);
    }

    fn client_recv(&mut self, conn: ConnId) -> Vec<u8> {
        let ep = EndpointId::new(conn, Side::Client);
        self.net.recv(self.now, ep, usize::MAX).unwrap_or_default()
    }
}

fn request_response(rig: &mut Rig, server: &mut dyn Server, path: &str) -> (ConnId, Vec<u8>) {
    let conn = rig.connect(0);
    let t0 = rig.now;
    rig.run(server, t0 + SimDuration::from_millis(10));
    rig.client_send(conn, format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes());
    rig.run(server, t0 + SimDuration::from_millis(150));
    let body = rig.client_recv(conn);
    (conn, body)
}

#[test]
fn thttpd_devpoll_serves_and_closes() {
    let mut rig = Rig::new();
    let mut server = {
        let mut ctx = rig.ctx();
        Thttpd::new(&mut ctx, DevPollBackend::new(), ServerConfig::default())
    };
    {
        let mut ctx = rig.ctx();
        server.start(&mut ctx).unwrap();
    }
    let (conn, body) = request_response(&mut rig, &mut server, "/index.html");
    let text = String::from_utf8_lossy(&body);
    assert!(text.starts_with("HTTP/1.0 200 OK"), "{text}");
    assert!(rig.net.peer_closed(EndpointId::new(conn, Side::Client)));
    assert_eq!(server.metrics().replies, 1);
    assert_eq!(server.open_conns(), 0, "connection table cleaned");
}

#[test]
fn thttpd_stock_serves_the_same() {
    let mut rig = Rig::new();
    let mut server = {
        let mut ctx = rig.ctx();
        Thttpd::new(&mut ctx, StockPollBackend::new(), ServerConfig::default())
    };
    {
        let mut ctx = rig.ctx();
        server.start(&mut ctx).unwrap();
    }
    let (_conn, body) = request_response(&mut rig, &mut server, "/");
    assert!(body.starts_with(b"HTTP/1.0 200 OK"));
}

#[test]
fn missing_document_is_404_and_counted() {
    let mut rig = Rig::new();
    let mut server = {
        let mut ctx = rig.ctx();
        Thttpd::new(&mut ctx, DevPollBackend::new(), ServerConfig::default())
    };
    {
        let mut ctx = rig.ctx();
        server.start(&mut ctx).unwrap();
    }
    let (_conn, body) = request_response(&mut rig, &mut server, "/nope.html");
    assert!(body.starts_with(b"HTTP/1.0 404"));
    assert_eq!(server.metrics().not_found, 1);
    assert_eq!(server.metrics().replies, 1, "404 still counts as a reply");
}

#[test]
fn malformed_request_gets_400() {
    let mut rig = Rig::new();
    let mut server = {
        let mut ctx = rig.ctx();
        Thttpd::new(&mut ctx, DevPollBackend::new(), ServerConfig::default())
    };
    {
        let mut ctx = rig.ctx();
        server.start(&mut ctx).unwrap();
    }
    let conn = rig.connect(0);
    rig.run(&mut server, SimTime::from_millis(10));
    rig.client_send(conn, b"BOGUS nonsense\r\n\r\n");
    rig.run(&mut server, SimTime::from_millis(120));
    let body = rig.client_recv(conn);
    assert!(String::from_utf8_lossy(&body).starts_with("HTTP/1.0 400"));
}

#[test]
fn idle_connections_are_closed_after_timeout() {
    let mut rig = Rig::new();
    let config = ServerConfig {
        idle_timeout: SimDuration::from_secs(2),
        ..ServerConfig::default()
    };
    let mut server = {
        let mut ctx = rig.ctx();
        Thttpd::new(&mut ctx, DevPollBackend::new(), config)
    };
    {
        let mut ctx = rig.ctx();
        server.start(&mut ctx).unwrap();
    }
    // A client that never sends anything.
    let conn = rig.connect(0);
    rig.run(&mut server, SimTime::from_millis(100));
    assert_eq!(server.open_conns(), 1);
    // After the idle timeout plus a scan interval, it's gone.
    rig.run(&mut server, SimTime::from_secs(4));
    assert_eq!(server.open_conns(), 0);
    assert_eq!(server.metrics().idle_closed, 1);
    // The client saw the server's FIN.
    assert!(rig.net.peer_closed(EndpointId::new(conn, Side::Client)) || !rig.net.exists(conn));
}

#[test]
fn client_abort_is_counted_as_error() {
    let mut rig = Rig::new();
    let mut server = {
        let mut ctx = rig.ctx();
        Thttpd::new(&mut ctx, DevPollBackend::new(), ServerConfig::default())
    };
    {
        let mut ctx = rig.ctx();
        server.start(&mut ctx).unwrap();
    }
    let conn = rig.connect(0);
    rig.run(&mut server, SimTime::from_millis(10));
    // Client resets without sending a request.
    let ep = EndpointId::new(conn, Side::Client);
    let now = rig.now;
    let _ = rig.net.abort(now, ep);
    rig.run(&mut server, SimTime::from_millis(100));
    assert_eq!(server.open_conns(), 0);
    assert_eq!(server.metrics().read_errors, 1);
}

#[test]
fn large_response_exercises_pollout_path() {
    // A 64 KB document exceeds the 16 KB send buffer: the server must
    // switch interest to POLLOUT and finish over several writes.
    let mut rig = Rig::new();
    let mut server = {
        let mut ctx = rig.ctx();
        Thttpd::new(&mut ctx, DevPollBackend::new(), ServerConfig::default())
    };
    server.set_content(servers::ContentStore::size_sweep(&[64 * 1024]));
    {
        let mut ctx = rig.ctx();
        server.start(&mut ctx).unwrap();
    }
    let conn = rig.connect(0);
    rig.run(&mut server, SimTime::from_millis(10));
    rig.client_send(conn, b"GET /doc-65536.html HTTP/1.0\r\n\r\n");
    // Drain the response incrementally (the client must read for acks to
    // free the server's buffer).
    let mut got = Vec::new();
    for step in 1..200u64 {
        rig.run(&mut server, SimTime::from_millis(10 + step * 5));
        got.extend(rig.client_recv(conn));
        if got.len() >= 64 * 1024 {
            break;
        }
    }
    assert!(
        got.len() > 64 * 1024,
        "full document plus headers, got {}",
        got.len()
    );
    assert_eq!(server.metrics().replies, 1);
}

#[test]
fn phhttpd_counts_stale_events() {
    // Queue a signal for a connection, then have the connection die
    // before the server picks the signal up: the pickup must be counted
    // stale, not crash.
    let mut rig = Rig::new();
    let mut server = {
        let mut ctx = rig.ctx();
        Phhttpd::new(&mut ctx, ServerConfig::default(), PhConfig::default())
    };
    {
        let mut ctx = rig.ctx();
        server.start(&mut ctx).unwrap();
    }
    let (_, body) = request_response(&mut rig, &mut server, "/index.html");
    assert!(body.starts_with(b"HTTP/1.0 200 OK"));
    assert_eq!(server.mode(), PhMode::Signals);
}

#[test]
fn phhttpd_overflow_switches_to_polling_forever() {
    let mut rig = Rig::new();
    let config = ServerConfig {
        rt_queue_max: 4, // Tiny queue: easy overflow.
        ..ServerConfig::default()
    };
    let mut server = {
        let mut ctx = rig.ctx();
        Phhttpd::new(&mut ctx, config, PhConfig::default())
    };
    {
        let mut ctx = rig.ctx();
        server.start(&mut ctx).unwrap();
    }
    // Ten concurrent clients: accept-ready events alone overflow the
    // 4-slot queue while the server's first batch is still in flight.
    let mut conns = Vec::new();
    for _ in 0..10 {
        conns.push(rig.connect(0));
    }
    for &c in &conns {
        rig.client_send(c, b"GET / HTTP/1.0\r\n\r\n");
    }
    rig.run(&mut server, SimTime::from_millis(300));
    assert_eq!(server.mode(), PhMode::Polling, "{:?}", server.metrics());
    assert!(server.metrics().overflows >= 1);
    // It still serves (via the poll sibling).
    let (_, body) = request_response(&mut rig, &mut server, "/index.html");
    assert!(body.starts_with(b"HTTP/1.0 200 OK"));
    assert_eq!(server.mode(), PhMode::Polling, "never switches back (§6)");
}

#[test]
fn prefork_workers_share_accepts() {
    let mut rig = Rig::new();
    rig.kernel.set_accept_wake(AcceptWake::Exclusive);
    let mut server = {
        let mut ctx = rig.ctx();
        Prefork::new(&mut ctx, DevPollBackend::new, ServerConfig::default(), 3)
    };
    {
        let mut ctx = rig.ctx();
        server.start(&mut ctx).unwrap();
    }
    let mut conns = Vec::new();
    for i in 0..12 {
        let c = rig.connect(0);
        rig.client_send(c, b"GET / HTTP/1.0\r\n\r\n");
        conns.push(c);
        // Spread arrivals so each accept is a separate event.
        rig.run(&mut server, rig.now + SimDuration::from_millis(5 + i));
    }
    rig.run(&mut server, rig.now + SimDuration::from_millis(300));
    let total = server.metrics();
    assert_eq!(total.replies, 12, "{total:?}");
    let per_worker = server.worker_metrics();
    let busy_workers = per_worker.iter().filter(|m| m.accepted > 0).count();
    assert!(
        busy_workers >= 2,
        "round-robin exclusive wakeups should spread accepts: {per_worker:?}"
    );
}

#[test]
fn sendfile_server_serves_identically() {
    let mut rig = Rig::new();
    let config = ServerConfig {
        use_sendfile: true,
        ..ServerConfig::default()
    };
    let mut server = {
        let mut ctx = rig.ctx();
        Thttpd::new(&mut ctx, DevPollBackend::new(), config)
    };
    {
        let mut ctx = rig.ctx();
        server.start(&mut ctx).unwrap();
    }
    let (_conn, body) = request_response(&mut rig, &mut server, "/index.html");
    let text = String::from_utf8_lossy(&body);
    assert!(text.starts_with("HTTP/1.0 200 OK"));
    assert!(text.contains("Content-Length: 6144"));
}
