//! `bench` — the benchmark harness reproducing the evaluation of
//! *Scalable Network I/O in Linux* (Provos & Lever, USENIX 2000).
//!
//! * [`figures`] — regenerates every table/figure of §5 (Figs. 4–14)
//!   plus the hybrid-server extension and the ablation studies listed in
//!   `DESIGN.md`.
//! * [`executor`] — the deterministic parallel sweep executor: every
//!   (server, inactive load, request rate) point is an independent
//!   simulation world, fanned out over a scoped worker pool
//!   (`--jobs N` / `BENCH_JOBS`, default machine parallelism) and
//!   merged in canonical order so output is byte-identical to `--jobs
//!   1`.
//! * [`baseline`] — the versioned `BENCH.json` perf record every
//!   `figures`/`verify_repro` invocation emits, and the comparator the
//!   `bench_gate` binary runs against the checked-in
//!   `BENCH_BASELINE.json`.
//! * `benches/` — Criterion microbenchmarks of the event-notification
//!   primitives (poll scaling, interest-table operations, hints, result
//!   copying, RT-queue operations).
//! * `src/bin/figures.rs` — the CLI: `cargo run --release -p bench --bin
//!   figures -- all`.
//! * `src/bin/bench_gate.rs` — the CI gate: `cargo run --release -p
//!   bench --bin bench_gate`.

pub mod baseline;
pub mod executor;
pub mod figures;

pub use baseline::{
    compare, config_fingerprint, group_runs, lane_diff_markdown, BenchReport, GateOutcome,
    GateTolerance, PointRecord, SweepRecord, BENCH_VERSION,
};
pub use executor::{effective_jobs, run_jobs, JOBS_ENV};
pub use figures::{FigureConfig, FigureRunner, SweepKey, PAPER_FIGURES};
