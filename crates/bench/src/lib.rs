//! `bench` — the benchmark harness reproducing the evaluation of
//! *Scalable Network I/O in Linux* (Provos & Lever, USENIX 2000).
//!
//! * [`figures`] — regenerates every table/figure of §5 (Figs. 4–14)
//!   plus the hybrid-server extension and the ablation studies listed in
//!   `DESIGN.md`.
//! * `benches/` — Criterion microbenchmarks of the event-notification
//!   primitives (poll scaling, interest-table operations, hints, result
//!   copying, RT-queue operations).
//! * `src/bin/figures.rs` — the CLI: `cargo run --release -p bench --bin
//!   figures -- all`.

pub mod figures;

pub use figures::{FigureConfig, FigureRunner, PAPER_FIGURES};
