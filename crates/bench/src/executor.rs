//! Deterministic parallel job execution for the benchmark harness.
//!
//! Every point of the paper's evaluation grid — one (server backend,
//! inactive load, request rate) tuple — is a fully independent
//! simulation world, so the sweep is embarrassingly parallel. This
//! module fans jobs out over a small scoped worker pool and hands the
//! results back **in input order**, so callers that merge in canonical
//! key order produce byte-identical output at any worker count.
//!
//! Worker count resolution (first hit wins):
//!
//! 1. an explicit `--jobs N` CLI value,
//! 2. the `BENCH_JOBS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! `jobs = 1` is the escape hatch: the items run serially on the caller
//! thread, exactly as the pre-executor harness did.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The environment variable consulted when no `--jobs` flag is given.
pub const JOBS_ENV: &str = "BENCH_JOBS";

/// Resolves the worker count: CLI flag, then [`JOBS_ENV`], then the
/// machine's available parallelism. Always at least 1.
pub fn effective_jobs(cli: Option<usize>) -> usize {
    if let Some(n) = cli {
        return n.max(1);
    }
    if let Some(n) = std::env::var(JOBS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` over every item on up to `jobs` worker threads and returns
/// the results **in item order**, independent of completion order.
///
/// Scheduling is a shared atomic cursor: workers claim the next
/// unclaimed index, so long and short jobs interleave without static
/// partitioning skew. With `jobs <= 1` (or a single item) everything
/// runs inline on the caller thread — no pool, no locks — which is the
/// byte-identical serial path.
///
/// A panic in any job propagates to the caller after the scope joins,
/// matching the serial path's fail-fast behaviour.
pub fn run_jobs<I, T, F>(jobs: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let gathered: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(items.len()));
    let workers = jobs.min(items.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                gathered
                    .lock()
                    .expect("invariant: a poisoned lock means a job already panicked")
                    .extend(local);
            });
        }
    });
    let mut out = gathered
        .into_inner()
        .expect("invariant: all workers joined before the scope returned");
    out.sort_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..97).collect();
        // Uneven work so completion order differs from input order.
        let f = |&x: &u64| {
            let mut acc = x;
            for _ in 0..((x % 7) * 1000) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        };
        let serial = run_jobs(1, &items, f);
        for jobs in [2, 4, 16, 200] {
            let parallel = run_jobs(jobs, &items, f);
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(run_jobs(8, &none, |&x| x).is_empty());
        assert_eq!(run_jobs(8, &[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn cli_flag_wins_and_floors_at_one() {
        assert_eq!(effective_jobs(Some(3)), 3);
        assert_eq!(effective_jobs(Some(0)), 1);
        // No CLI value: whatever the fallback chain yields, it is >= 1.
        assert!(effective_jobs(None) >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            run_jobs(4, &[1u32, 2, 3, 4, 5, 6], |&x| {
                assert!(x != 4, "boom");
                x
            })
        });
        assert!(caught.is_err());
    }
}
