//! Regeneration of every figure in the paper's evaluation (Figs. 4–14),
//! plus the extension experiments (hybrid server, ablations).
//!
//! Each paper figure maps to a [`simcore::series::Figure`] built from
//! benchmark sweeps; results are cached per (server, inactive-load) so
//! `all` runs the 3×3 grid once.

use std::collections::{BTreeMap, BTreeSet};

use devpoll::DevPollConfig;
use httperf::{run_one, RunParams, RunReport, ServerKind};
use simcore::series::{Figure, Series};
use simcore::span::Phase;
use simcore::time::SimDuration;

use crate::baseline::{config_fingerprint, BenchReport, PointRecord, SweepRecord, BENCH_VERSION};
use crate::executor::run_jobs;

/// Sweep settings shared by every figure.
#[derive(Debug, Clone)]
pub struct FigureConfig {
    /// Request rates swept (the paper: 500–1100).
    pub rates: Vec<f64>,
    /// Connections per run (the paper: 35 000).
    pub conns: u64,
    /// RNG seed base.
    pub seed: u64,
}

impl Default for FigureConfig {
    fn default() -> FigureConfig {
        FigureConfig {
            rates: (0..=12).map(|i| 500.0 + 50.0 * i as f64).collect(),
            conns: 35_000,
            seed: 42,
        }
    }
}

impl FigureConfig {
    /// A fast configuration for smoke runs.
    pub fn quick() -> FigureConfig {
        FigureConfig {
            rates: vec![500.0, 600.0, 700.0, 800.0, 900.0, 1000.0, 1100.0],
            conns: 8_000,
            seed: 42,
        }
    }
}

/// A sweep's cache identity: the server architecture and the inactive
/// load. Typed (not the old `(String, usize)` label key) so the cache
/// cannot alias two kinds with colliding labels and the executor can
/// hash job identity without string formatting.
pub type SweepKey = (ServerKind, usize);

/// Runs sweeps lazily and caches them per (server kind, inactive load).
///
/// With `jobs > 1` (see [`FigureRunner::with_jobs`]) the run points of
/// a sweep — and, via [`FigureRunner::prefetch`], of many sweeps — fan
/// out over a scoped worker pool; each point is an isolated simulation
/// world, and results are merged back in canonical (key, rate) order,
/// so every figure, probe dump and `BENCH.json` is byte-identical to
/// the `jobs = 1` serial path.
pub struct FigureRunner {
    config: FigureConfig,
    cache: BTreeMap<SweepKey, Vec<RunReport>>,
    /// Span-enabled sweeps, cached separately: enabling span tracing
    /// perturbs nothing but is a different measurement, so these never
    /// alias the plain cache (their `BENCH.json` labels get a `+spans`
    /// suffix).
    span_cache: BTreeMap<SweepKey, Vec<RunReport>>,
    /// Summed per-run wall time per sweep, ms (zeros without a clock).
    wall_ms: BTreeMap<SweepKey, f64>,
    /// Wall time of span-enabled sweeps, ms.
    span_wall_ms: BTreeMap<SweepKey, f64>,
    /// Worker threads for sweep execution.
    jobs: usize,
    /// Monotonic millisecond clock injected by the CLI driver; library
    /// code never reads the wall clock itself (simulation determinism
    /// lint), so without one all wall fields stay 0.
    clock: Option<fn() -> f64>,
    /// Logs one line per completed run when `true`.
    pub verbose: bool,
}

impl FigureRunner {
    /// Creates a serial runner.
    pub fn new(config: FigureConfig) -> FigureRunner {
        FigureRunner {
            config,
            cache: BTreeMap::new(),
            span_cache: BTreeMap::new(),
            wall_ms: BTreeMap::new(),
            span_wall_ms: BTreeMap::new(),
            jobs: 1,
            clock: None,
            verbose: true,
        }
    }

    /// Sets the worker count (floored at 1).
    pub fn with_jobs(mut self, jobs: usize) -> FigureRunner {
        self.jobs = jobs.max(1);
        self
    }

    /// Installs a monotonic millisecond clock for wall-time accounting
    /// in `BENCH.json`. CLI drivers pass one backed by
    /// `std::time::Instant`; tests leave it out for fully deterministic
    /// reports.
    pub fn with_clock(mut self, clock: fn() -> f64) -> FigureRunner {
        self.clock = Some(clock);
        self
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Every cached sweep in deterministic key order — used by the CLI
    /// to dump one probe-snapshot file per sweep after the figures are
    /// built. `BTreeMap` iteration is already key-ordered.
    pub fn cached_sweeps(&self) -> Vec<(&SweepKey, &Vec<RunReport>)> {
        self.cache.iter().collect()
    }

    /// Every cached span-enabled sweep in deterministic key order.
    pub fn span_cached_sweeps(&self) -> Vec<(&SweepKey, &Vec<RunReport>)> {
        self.span_cache.iter().collect()
    }

    /// Runs every not-yet-cached sweep in `keys` as one parallel batch:
    /// all (kind, inactive, rate) points of all missing sweeps share the
    /// worker pool, so a multi-sweep target like `all` keeps every
    /// worker busy across sweep boundaries instead of paying a join
    /// barrier per sweep.
    pub fn prefetch(&mut self, keys: &[SweepKey]) {
        let missing: Vec<SweepKey> = keys
            .iter()
            .copied()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .filter(|k| !self.cache.contains_key(k))
            .collect();
        if missing.is_empty() {
            return;
        }
        let mut points: Vec<(ServerKind, usize, f64)> = Vec::new();
        for &(kind, inactive) in &missing {
            for &rate in &self.config.rates {
                points.push((kind, inactive, rate));
            }
        }
        let results = self.run_points(&points, false);
        let per_key = self.config.rates.len();
        for (i, &key) in missing.iter().enumerate() {
            let batch = &results[i * per_key..(i + 1) * per_key];
            self.absorb_sweep(key, batch.to_vec());
        }
    }

    /// Like [`FigureRunner::prefetch`], for span-enabled sweeps.
    pub fn span_prefetch(&mut self, keys: &[SweepKey]) {
        let missing: Vec<SweepKey> = keys
            .iter()
            .copied()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .filter(|k| !self.span_cache.contains_key(k))
            .collect();
        if missing.is_empty() {
            return;
        }
        let mut points: Vec<(ServerKind, usize, f64)> = Vec::new();
        for &(kind, inactive) in &missing {
            for &rate in &self.config.rates {
                points.push((kind, inactive, rate));
            }
        }
        let results = self.run_points(&points, true);
        let per_key = self.config.rates.len();
        for (i, &key) in missing.iter().enumerate() {
            let batch = &results[i * per_key..(i + 1) * per_key];
            self.absorb_span_sweep(key, batch.to_vec());
        }
    }

    /// Runs every missing million-lane point (see [`million_params`])
    /// as one parallel batch. Each (mechanism, population) pair is a
    /// single run cached as a one-point sweep — the lane's x-axis is
    /// the population, not the rate — so the results fold into
    /// `BENCH.json` and the probe dumps like any other sweep. The
    /// population keys (10^4..10^6) cannot collide with the paper grid
    /// (1/251/501).
    pub fn million_prefetch(&mut self, cap: usize) {
        let missing: Vec<SweepKey> = million_grid(cap)
            .into_iter()
            .filter(|k| !self.cache.contains_key(k))
            .collect();
        if missing.is_empty() {
            return;
        }
        let seed = self.config.seed;
        let clock = self.clock;
        let tick = move || clock.map_or(0.0, |c| c());
        let results = run_jobs(self.jobs, &missing, move |&(kind, inactive)| {
            let started = tick();
            let mut report = run_one(million_params(seed, kind, inactive));
            let wall = tick() - started;
            let line = format!("  {}", report.summary_line());
            (report, wall, line)
        });
        for (&key, result) in missing.iter().zip(results) {
            self.absorb_sweep(key, vec![result]);
        }
    }

    /// The million-connection knee charts: reply rate, median latency
    /// and server bytes per connection, each against the held-open
    /// population (log-ish x: 10^4, 10^5, 10^6) per mechanism. Where
    /// the paper's Figs. 4–14 sweep the request rate at fixed load,
    /// these sweep the load at fixed rate — the axis along which
    /// `poll()`'s O(n) scans and the interest tables' footprint bend.
    pub fn million_figures(&mut self, cap: usize) -> Vec<Figure> {
        self.million_prefetch(cap);
        let mut rate_fig = Figure::new(
            "Reply rate vs held-open connections",
            "held-open (inactive) connections",
            "reply rate",
        );
        let mut lat_fig = Figure::new(
            "Median latency vs held-open connections",
            "held-open (inactive) connections",
            "median connection time in ms",
        );
        let mut mem_fig = Figure::new(
            "Server memory per connection",
            "held-open (inactive) connections",
            "server heap bytes per peak endpoint",
        );
        for kind in million_kinds() {
            let label = kind.label();
            let mut rate = Series::new(&label);
            let mut lat = Series::new(&label);
            let mut mem = Series::new(&label);
            for inactive in million_loads(cap) {
                let mut report = self.cache[&(kind, inactive)][0].clone();
                let x = inactive as f64;
                rate.push_err(x, report.rate.avg, report.rate.stddev);
                lat.push(x, report.median_latency_ms());
                if report.mem_eps_peak > 0 {
                    mem.push(
                        x,
                        report.mem_server_bytes as f64 / report.mem_eps_peak as f64,
                    );
                }
            }
            rate_fig.add(rate);
            lat_fig.add(lat);
            mem_fig.add(mem);
        }
        vec![rate_fig, lat_fig, mem_fig]
    }

    /// The span-enabled sweep for `kind` at `inactive`, cached. The
    /// reports carry `span_ns.*` histograms in their probe snapshots
    /// (records are not retained — histograms only).
    pub fn span_sweep(&mut self, kind: ServerKind, inactive: usize) -> &[RunReport] {
        let key = (kind, inactive);
        if !self.span_cache.contains_key(&key) {
            let points: Vec<(ServerKind, usize, f64)> = self
                .config
                .rates
                .iter()
                .map(|&rate| (kind, inactive, rate))
                .collect();
            let results = self.run_points(&points, true);
            self.absorb_span_sweep(key, results);
        }
        &self.span_cache[&key]
    }

    /// The sweep for `kind` at `inactive`, cached.
    pub fn sweep(&mut self, kind: ServerKind, inactive: usize) -> &[RunReport] {
        let key = (kind, inactive);
        if !self.cache.contains_key(&key) {
            let points: Vec<(ServerKind, usize, f64)> = self
                .config
                .rates
                .iter()
                .map(|&rate| (kind, inactive, rate))
                .collect();
            let results = self.run_points(&points, false);
            self.absorb_sweep(key, results);
        }
        &self.cache[&key]
    }

    /// Executes run points on the worker pool, returning
    /// `(report, wall_ms, summary_line)` per point in input order. With
    /// `spans` set, runs carry histogram-only span tracing (retention 0).
    fn run_points(
        &self,
        points: &[(ServerKind, usize, f64)],
        spans: bool,
    ) -> Vec<(RunReport, f64, String)> {
        let config = &self.config;
        let clock = self.clock;
        let tick = move || clock.map_or(0.0, |c| c());
        run_jobs(self.jobs, points, move |&(kind, inactive, rate)| {
            let mut params = RunParams::paper(kind, rate, inactive)
                .with_conns(config.conns)
                .with_seed(config.seed);
            if spans {
                params = params.with_span_retain(0);
            }
            let started = tick();
            let mut report = run_one(params);
            let wall = tick() - started;
            let line = format!("  {}", report.summary_line());
            (report, wall, line)
        })
    }

    /// Inserts one completed sweep, logging its (already rate-ordered)
    /// summary lines. Buffered-then-printed so stderr is identical at
    /// every worker count.
    fn absorb_sweep(&mut self, key: SweepKey, results: Vec<(RunReport, f64, String)>) {
        let mut reports = Vec::with_capacity(results.len());
        let mut wall = 0.0;
        for (report, run_wall, line) in results {
            if self.verbose {
                eprintln!("{line}");
            }
            wall += run_wall;
            reports.push(report);
        }
        self.wall_ms.insert(key, wall);
        self.cache.insert(key, reports);
    }

    /// [`FigureRunner::absorb_sweep`] for the span-enabled cache.
    fn absorb_span_sweep(&mut self, key: SweepKey, results: Vec<(RunReport, f64, String)>) {
        let mut reports = Vec::with_capacity(results.len());
        let mut wall = 0.0;
        for (report, run_wall, line) in results {
            if self.verbose {
                eprintln!("{line} [spans]");
            }
            wall += run_wall;
            reports.push(report);
        }
        self.span_wall_ms.insert(key, wall);
        self.span_cache.insert(key, reports);
    }

    /// Folds every cached sweep into a [`BenchReport`] (see
    /// `bench::baseline`). `total_wall_ms` is the caller-measured
    /// end-to-end harness time; per-sweep wall fields are the summed
    /// per-run times recorded during execution.
    pub fn bench_report(&mut self, tool: &str, total_wall_ms: f64) -> BenchReport {
        let mut sweeps = Vec::new();
        for (&(kind, inactive), reports) in &mut self.cache {
            let events = reports.iter().map(|r| r.events).sum();
            let sim_ms = reports.iter().map(|r| r.sim_secs * 1e3).sum();
            let mem_bytes = reports
                .iter()
                .map(|r| r.mem_server_bytes)
                .max()
                .unwrap_or(0);
            let eps_peak = reports.iter().map(|r| r.mem_eps_peak).max().unwrap_or(0);
            let points = reports.iter_mut().map(PointRecord::from_report).collect();
            sweeps.push(SweepRecord {
                server: kind.label(),
                inactive,
                wall_ms: self.wall_ms.get(&(kind, inactive)).copied().unwrap_or(0.0),
                events,
                sim_ms,
                mem_bytes,
                eps_peak,
                points,
            });
        }
        // Span-enabled sweeps ride along under a `+spans` label suffix:
        // distinct sweeps, so an anatomy run can never shadow (or be
        // gated against) the plain-run baselines.
        for (&(kind, inactive), reports) in &mut self.span_cache {
            let events = reports.iter().map(|r| r.events).sum();
            let sim_ms = reports.iter().map(|r| r.sim_secs * 1e3).sum();
            let mem_bytes = reports
                .iter()
                .map(|r| r.mem_server_bytes)
                .max()
                .unwrap_or(0);
            let eps_peak = reports.iter().map(|r| r.mem_eps_peak).max().unwrap_or(0);
            let points = reports.iter_mut().map(PointRecord::from_report).collect();
            sweeps.push(SweepRecord {
                server: format!("{}+spans", kind.label()),
                inactive,
                wall_ms: self
                    .span_wall_ms
                    .get(&(kind, inactive))
                    .copied()
                    .unwrap_or(0.0),
                events,
                sim_ms,
                mem_bytes,
                eps_peak,
                points,
            });
        }
        BenchReport {
            version: BENCH_VERSION,
            tool: tool.to_string(),
            seed: self.config.seed,
            config: config_fingerprint(&self.config),
            jobs: self.jobs,
            total_wall_ms,
            sweeps,
        }
    }

    /// Reply-rate figure (avg with stddev error bars, min, max) — the
    /// format of Figs. 4–9 and 11–13.
    pub fn reply_rate_figure(&mut self, title: &str, kind: ServerKind, inactive: usize) -> Figure {
        let reports = self.sweep(kind, inactive).to_vec();
        let mut fig = Figure::new(
            title,
            format!("targeted request rate with load {inactive}"),
            "reply rate",
        );
        let mut avg = Series::new("Average");
        let mut min = Series::new("Min");
        let mut max = Series::new("Max");
        for r in &reports {
            avg.push_err(r.target_rate, r.rate.avg, r.rate.stddev);
            min.push(r.target_rate, r.rate.min);
            max.push(r.target_rate, r.rate.max);
        }
        fig.add(avg);
        fig.add(min);
        fig.add(max);
        fig
    }

    /// Error-percentage figure (one panel of Fig. 10).
    pub fn error_figure(&mut self, title: &str, inactive: usize) -> Figure {
        let devpoll: Vec<(f64, f64)> = self
            .sweep(ServerKind::ThttpdDevPoll, inactive)
            .iter()
            .map(|r| (r.target_rate, r.error_percent()))
            .collect();
        let poll: Vec<(f64, f64)> = self
            .sweep(ServerKind::ThttpdPoll, inactive)
            .iter()
            .map(|r| (r.target_rate, r.error_percent()))
            .collect();
        let mut fig = Figure::new(
            title,
            format!("targeted request rate with load {inactive}"),
            "errors in percent",
        );
        let mut s1 = Series::new("using devpoll");
        for (x, y) in devpoll {
            s1.push(x, y);
        }
        let mut s2 = Series::new("normal poll");
        for (x, y) in poll {
            s2.push(x, y);
        }
        fig.add(s1);
        fig.add(s2);
        fig
    }

    /// Median-latency figure (Fig. 14).
    pub fn latency_figure(&mut self, title: &str, inactive: usize) -> Figure {
        let mut fig = Figure::new(
            title,
            format!("targeted request rate with load {inactive}"),
            "median connection time in ms",
        );
        for (label, kind) in [
            ("devpoll", ServerKind::ThttpdDevPoll),
            ("normal poll", ServerKind::ThttpdPoll),
            ("phhttpd", ServerKind::Phhttpd),
        ] {
            let pts: Vec<(f64, f64)> = self
                .sweep(kind, inactive)
                .to_vec()
                .iter_mut()
                .map(|r| (r.target_rate, r.median_latency_ms()))
                .collect();
            let mut s = Series::new(label);
            for (x, y) in pts {
                s.push(x, y);
            }
            fig.add(s);
        }
        fig
    }

    /// Latency anatomy (observability extension): for each mechanism, a
    /// stacked per-phase breakdown of where request time goes, across
    /// the request-rate sweep. Series are cumulative (each adds its
    /// phase's mean ns/reply on top of the previous), so plotting them
    /// as lines reads as a stacked area chart; the top series is the
    /// total attributed ns per reply.
    pub fn latency_anatomy_figure(&mut self, kind: ServerKind, inactive: usize) -> Figure {
        let reports = self.span_sweep(kind, inactive).to_vec();
        let mut fig = Figure::new(
            format!(
                "ANATOMY. Per-phase latency breakdown, {}, load {inactive} (stacked ns/reply)",
                kind.label()
            ),
            format!("targeted request rate with load {inactive}"),
            "cumulative mean ns per reply, by phase",
        );
        let mut stacked: Vec<f64> = vec![0.0; reports.len()];
        for phase in Phase::REQUEST_PATH {
            let mut s = Series::new(phase.name());
            for (i, r) in reports.iter().enumerate() {
                let total_ns = r
                    .probe
                    .histogram(phase.metric())
                    .map_or(0.0, |h| h.sum() as f64);
                let per_reply = if r.replies > 0 {
                    total_ns / r.replies as f64
                } else {
                    0.0
                };
                stacked[i] += per_reply;
                s.push(r.target_rate, stacked[i]);
            }
            fig.add(s);
        }
        fig
    }

    /// The full anatomy grid: one stacked figure per mechanism.
    pub fn latency_anatomy_figures(&mut self, inactive: usize) -> Vec<Figure> {
        self.span_prefetch(&anatomy_grid(inactive));
        anatomy_kinds()
            .iter()
            .map(|&kind| self.latency_anatomy_figure(kind, inactive))
            .collect()
    }

    /// Builds one paper figure by id (`"fig4"` … `"fig14"`).
    pub fn paper_figure(&mut self, id: &str) -> Vec<Figure> {
        match id {
            "fig4" => vec![self.reply_rate_figure(
                "FIGURE 4. Normal thttpd using normal poll(), 1 extra inactive connection",
                ServerKind::ThttpdPoll,
                1,
            )],
            "fig5" => vec![self.reply_rate_figure(
                "FIGURE 5. thttpd modified to use /dev/poll, 1 extra inactive connection",
                ServerKind::ThttpdDevPoll,
                1,
            )],
            "fig6" => vec![self.reply_rate_figure(
                "FIGURE 6. Normal thttpd using normal poll(), 251 extra inactive connections",
                ServerKind::ThttpdPoll,
                251,
            )],
            "fig7" => vec![self.reply_rate_figure(
                "FIGURE 7. thttpd modified to use /dev/poll, 251 extra inactive connections",
                ServerKind::ThttpdDevPoll,
                251,
            )],
            "fig8" => vec![self.reply_rate_figure(
                "FIGURE 8. Normal thttpd using normal poll(), 501 extra inactive connections",
                ServerKind::ThttpdPoll,
                501,
            )],
            "fig9" => vec![self.reply_rate_figure(
                "FIGURE 9. thttpd modified to use /dev/poll, 501 extra inactive connections",
                ServerKind::ThttpdDevPoll,
                501,
            )],
            "fig10" => vec![
                self.error_figure("FIGURE 10a. Error rate, 251 inactive connections", 251),
                self.error_figure("FIGURE 10b. Error rate, 501 inactive connections", 501),
            ],
            "fig11" => vec![self.reply_rate_figure(
                "FIGURE 11. phhttpd with 1 extra inactive connection",
                ServerKind::Phhttpd,
                1,
            )],
            "fig12" => vec![self.reply_rate_figure(
                "FIGURE 12. phhttpd with 251 extra inactive connections",
                ServerKind::Phhttpd,
                251,
            )],
            "fig13" => vec![self.reply_rate_figure(
                "FIGURE 13. phhttpd with 501 extra inactive connections",
                ServerKind::Phhttpd,
                501,
            )],
            "fig14" => vec![self.latency_figure(
                "FIGURE 14. Median latency, 251 extra inactive connections",
                251,
            )],
            other => panic!("unknown figure id {other:?}"),
        }
    }

    /// Extension: the hybrid server (the paper's §4 thought experiment)
    /// against its two constituents at the given load.
    pub fn hybrid_figure(&mut self, inactive: usize) -> Vec<Figure> {
        let mut rate_fig = Figure::new(
            format!("EXTENSION. Hybrid server vs constituents, load {inactive}"),
            format!("targeted request rate with load {inactive}"),
            "average reply rate",
        );
        let mut lat_fig = Figure::new(
            format!("EXTENSION. Hybrid server latency, load {inactive}"),
            format!("targeted request rate with load {inactive}"),
            "median connection time in ms",
        );
        for (label, kind) in [
            ("hybrid", ServerKind::Hybrid),
            ("devpoll", ServerKind::ThttpdDevPoll),
            ("phhttpd", ServerKind::Phhttpd),
        ] {
            let pts: Vec<(f64, f64, f64)> = self
                .sweep(kind, inactive)
                .to_vec()
                .iter_mut()
                .map(|r| (r.target_rate, r.rate.avg, r.median_latency_ms()))
                .collect();
            let mut s = Series::new(label);
            let mut l = Series::new(label);
            for (x, avg, med) in pts {
                s.push(x, avg);
                l.push(x, med);
            }
            rate_fig.add(s);
            lat_fig.add(l);
        }
        vec![rate_fig, lat_fig]
    }

    /// Ablation: `/dev/poll` without driver hints (§3.2).
    pub fn ablate_hints(&mut self, inactive: usize) -> Vec<Figure> {
        let no_hints = ServerKind::ThttpdDevPollWith {
            config: DevPollConfig {
                hints: false,
                ..DevPollConfig::default()
            },
            mmap: true,
            combined: false,
        };
        self.compare_two(
            format!("ABLATION. /dev/poll hints on vs off, load {inactive}"),
            ("hints on", ServerKind::ThttpdDevPoll),
            ("hints off", no_hints),
            inactive,
        )
    }

    /// Ablation: the mmap result area vs copy-out (§3.3).
    pub fn ablate_mmap(&mut self, inactive: usize) -> Vec<Figure> {
        let no_mmap = ServerKind::ThttpdDevPollWith {
            config: DevPollConfig::default(),
            mmap: false,
            combined: false,
        };
        self.compare_two(
            format!("ABLATION. /dev/poll mmap results vs copy-out, load {inactive}"),
            ("mmap", ServerKind::ThttpdDevPoll),
            ("copy-out", no_mmap),
            inactive,
        )
    }

    /// Ablation: the combined write+ioctl operation (§6 future work).
    pub fn ablate_combined(&mut self, inactive: usize) -> Vec<Figure> {
        let combined = ServerKind::ThttpdDevPollWith {
            config: DevPollConfig::default(),
            mmap: true,
            combined: true,
        };
        self.compare_two(
            format!("ABLATION. Separate write+ioctl vs combined op, load {inactive}"),
            ("separate", ServerKind::ThttpdDevPoll),
            ("combined", combined),
            inactive,
        )
    }

    /// Ablation: `sigtimedwait4()` batch dequeue for phhttpd (§6).
    pub fn ablate_batch(&mut self, inactive: usize) -> Vec<Figure> {
        self.compare_two(
            format!("ABLATION. sigwaitinfo vs sigtimedwait4 batching, load {inactive}"),
            ("one-at-a-time", ServerKind::Phhttpd),
            ("sigtimedwait4(16)", ServerKind::PhhttpdBatch(16)),
            inactive,
        )
    }

    /// Extension: the thundering herd (§6's "waking only one thread").
    /// Four prefork workers share the listener; herd wakeups vs
    /// exclusive wakeups.
    pub fn herd_figure(&mut self, inactive: usize) -> Vec<Figure> {
        use simkernel::AcceptWake;
        let mut lat_fig = Figure::new(
            format!("EXTENSION. Thundering herd: 4 prefork workers, load {inactive}"),
            format!("targeted request rate with load {inactive}"),
            "median connection time in ms",
        );
        let mut wake_fig = Figure::new(
            format!("EXTENSION. Kernel wakeups per reply, load {inactive}"),
            format!("targeted request rate with load {inactive}"),
            "wakeups / reply",
        );
        for (label, wake) in [
            ("herd (wake all)", AcceptWake::Herd),
            ("exclusive (wake one)", AcceptWake::Exclusive),
        ] {
            let kind = ServerKind::PreforkDevPoll { workers: 4, wake };
            let pts: Vec<(f64, f64, f64)> = self
                .sweep(kind, inactive)
                .to_vec()
                .iter_mut()
                .map(|r| {
                    let per_reply = if r.replies > 0 {
                        r.kernel_wakeups as f64 / r.replies as f64
                    } else {
                        0.0
                    };
                    (r.target_rate, r.median_latency_ms(), per_reply)
                })
                .collect();
            let mut l = Series::new(label);
            let mut w = Series::new(label);
            for (x, med, per) in pts {
                l.push(x, med);
                w.push(x, per);
            }
            lat_fig.add(l);
            wake_fig.add(w);
        }
        vec![lat_fig, wake_fig]
    }

    /// Extension: document-size sensitivity (§5: "A web server's static
    /// performance depends on the size distribution of requested
    /// documents. Larger documents cause sockets … to remain active over
    /// a longer time period … making the amortized cost of polling on a
    /// single file descriptor larger.").
    pub fn docsize_figure(&mut self, rate: f64, inactive: usize) -> Vec<Figure> {
        let sizes = [1024usize, 6 * 1024, 16 * 1024, 32 * 1024];
        let mut rate_fig = Figure::new(
            format!("EXTENSION. Document size sensitivity at {rate} req/s, load {inactive}"),
            "document size in KB",
            "average reply rate",
        );
        let mut lat_fig = Figure::new(
            format!("EXTENSION. Document size vs latency at {rate} req/s, load {inactive}"),
            "document size in KB",
            "median connection time in ms",
        );
        for (label, kind) in [
            ("normal poll", ServerKind::ThttpdPoll),
            ("devpoll", ServerKind::ThttpdDevPoll),
        ] {
            let mut s = Series::new(label);
            let mut l = Series::new(label);
            for &bytes in &sizes {
                let params = RunParams::paper(kind, rate, inactive)
                    .with_conns(self.config.conns)
                    .with_seed(self.config.seed)
                    .with_doc_bytes(bytes);
                let mut r = run_one(params);
                if self.verbose {
                    eprintln!("  doc={}KB {}", bytes / 1024, r.summary_line());
                }
                let med = r.median_latency_ms();
                s.push(bytes as f64 / 1024.0, r.rate.avg);
                l.push(bytes as f64 / 1024.0, med);
            }
            rate_fig.add(s);
            lat_fig.add(l);
        }
        vec![rate_fig, lat_fig]
    }

    /// Extension: `sendfile()` vs `write()` for the response body (§6
    /// future work). Uses a 16 KB document so the copy saving is
    /// visible.
    pub fn sendfile_figure(&mut self, inactive: usize) -> Vec<Figure> {
        let mut lat_fig = Figure::new(
            format!("EXTENSION. write() vs sendfile(), 16 KB document, load {inactive}"),
            format!("targeted request rate with load {inactive}"),
            "median connection time in ms",
        );
        let mut rate_fig = Figure::new(
            format!("EXTENSION. write() vs sendfile() throughput, load {inactive}"),
            format!("targeted request rate with load {inactive}"),
            "average reply rate",
        );
        for (label, kind) in [
            ("write()", ServerKind::ThttpdDevPoll),
            ("sendfile()", ServerKind::ThttpdDevPollSendfile),
        ] {
            let mut l = Series::new(label);
            let mut s = Series::new(label);
            for &rate in &[400.0, 500.0, 600.0, 650.0, 700.0] {
                let params = RunParams::paper(kind, rate, inactive)
                    .with_conns(self.config.conns)
                    .with_seed(self.config.seed)
                    .with_doc_bytes(16 * 1024);
                let mut r = run_one(params);
                if self.verbose {
                    eprintln!("  {}", r.summary_line());
                }
                let med = r.median_latency_ms();
                l.push(rate, med);
                s.push(rate, r.rate.avg);
            }
            lat_fig.add(l);
            rate_fig.add(s);
        }
        vec![rate_fig, lat_fig]
    }

    /// Extension: the pre-poll baseline. `select()` vs `poll()` vs
    /// `/dev/poll` under inactive load — one interface generation earlier
    /// than the paper's baseline.
    pub fn select_figure(&mut self, inactive: usize) -> Vec<Figure> {
        let mut rate_fig = Figure::new(
            format!("EXTENSION. select() vs poll() vs /dev/poll, load {inactive}"),
            format!("targeted request rate with load {inactive}"),
            "average reply rate",
        );
        let mut lat_fig = Figure::new(
            format!("EXTENSION. select() latency, load {inactive}"),
            format!("targeted request rate with load {inactive}"),
            "median connection time in ms",
        );
        for (label, kind) in [
            ("select", ServerKind::ThttpdSelect),
            ("normal poll", ServerKind::ThttpdPoll),
            ("devpoll", ServerKind::ThttpdDevPoll),
        ] {
            let pts: Vec<(f64, f64, f64)> = self
                .sweep(kind, inactive)
                .to_vec()
                .iter_mut()
                .map(|r| (r.target_rate, r.rate.avg, r.median_latency_ms()))
                .collect();
            let mut s = Series::new(label);
            let mut l = Series::new(label);
            for (x, avg, med) in pts {
                s.push(x, avg);
                l.push(x, med);
            }
            rate_fig.add(s);
            lat_fig.add(l);
        }
        vec![rate_fig, lat_fig]
    }

    /// Extension: random segment loss (fault injection). Lossy paths
    /// lengthen connection lifetimes (RTO stalls), which inflates the
    /// live descriptor set — compounding stock `poll()`'s scan costs
    /// while `/dev/poll` only pays per event.
    pub fn loss_figure(&mut self, rate: f64, inactive: usize) -> Vec<Figure> {
        let losses = [0.0f64, 0.01, 0.03, 0.05];
        let mut rate_fig = Figure::new(
            format!("EXTENSION. Random loss at {rate} req/s, load {inactive}"),
            "segment loss in percent",
            "average reply rate",
        );
        let mut lat_fig = Figure::new(
            format!("EXTENSION. Random loss vs latency at {rate} req/s, load {inactive}"),
            "segment loss in percent",
            "p90 connection time in ms",
        );
        for (label, kind) in [
            ("normal poll", ServerKind::ThttpdPoll),
            ("devpoll", ServerKind::ThttpdDevPoll),
        ] {
            let mut s = Series::new(label);
            let mut l = Series::new(label);
            for &loss in &losses {
                let params = RunParams::paper(kind, rate, inactive)
                    .with_conns(self.config.conns)
                    .with_seed(self.config.seed)
                    .with_loss(loss);
                let mut r = run_one(params);
                if self.verbose {
                    eprintln!("  loss={:.0}% {}", loss * 100.0, r.summary_line());
                }
                let p90 = r.latency_quantile_ms(0.9);
                s.push(loss * 100.0, r.rate.avg);
                l.push(loss * 100.0, p90);
            }
            rate_fig.add(s);
            lat_fig.add(l);
        }
        vec![rate_fig, lat_fig]
    }

    /// Extension: CPU-scaling sensitivity. Uniformly speed up the cost
    /// model and look for the rate where stock `poll()` at 501 inactive
    /// connections collapses; the devpoll/poll ordering should survive
    /// every speed until the 100 Mbit wire, not the event model, becomes
    /// the bottleneck.
    pub fn cpu_scaling_figure(&mut self, inactive: usize) -> Vec<Figure> {
        let mut fig = Figure::new(
            format!("EXTENSION. CPU scaling: avg reply rate at 900 req/s, load {inactive}"),
            "CPU speed multiplier over the K6-2",
            "average reply rate at 900 req/s offered",
        );
        for (label, kind) in [
            ("normal poll", ServerKind::ThttpdPoll),
            ("devpoll", ServerKind::ThttpdDevPoll),
        ] {
            let mut s = Series::new(label);
            for factor in [1.0f64, 2.0, 4.0, 8.0] {
                let mut params = RunParams::paper(kind, 900.0, inactive)
                    .with_conns(self.config.conns)
                    .with_seed(self.config.seed);
                params.cost = params.cost.scaled(factor);
                let mut r = run_one(params);
                if self.verbose {
                    eprintln!("  cpu x{factor} {}", r.summary_line());
                }
                s.push(factor, r.rate.avg);
            }
            fig.add(s);
        }
        vec![fig]
    }

    fn compare_two(
        &mut self,
        title: String,
        a: (&str, ServerKind),
        b: (&str, ServerKind),
        inactive: usize,
    ) -> Vec<Figure> {
        let mut rate_fig = Figure::new(
            title.clone(),
            format!("targeted request rate with load {inactive}"),
            "average reply rate",
        );
        let mut lat_fig = Figure::new(
            format!("{title} (latency)"),
            format!("targeted request rate with load {inactive}"),
            "median connection time in ms",
        );
        for (label, kind) in [a, b] {
            let pts: Vec<(f64, f64, f64)> = self
                .sweep(kind, inactive)
                .to_vec()
                .iter_mut()
                .map(|r| (r.target_rate, r.rate.avg, r.median_latency_ms()))
                .collect();
            let mut s = Series::new(label);
            let mut l = Series::new(label);
            for (x, avg, med) in pts {
                s.push(x, avg);
                l.push(x, med);
            }
            rate_fig.add(s);
            lat_fig.add(l);
        }
        vec![rate_fig, lat_fig]
    }
}

/// Every paper figure id, in order.
pub const PAPER_FIGURES: &[&str] = &[
    "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
];

/// The sweep grid behind `figures -- all`: three server architectures
/// crossed with the paper's three inactive loads (Figs. 4–14). Handing
/// this to [`FigureRunner::prefetch`] lets the executor fill the whole
/// grid in one parallel batch.
pub fn paper_grid() -> Vec<SweepKey> {
    let mut keys = Vec::new();
    for kind in [
        ServerKind::ThttpdPoll,
        ServerKind::ThttpdDevPoll,
        ServerKind::Phhttpd,
    ] {
        for inactive in [1usize, 251, 501] {
            keys.push((kind, inactive));
        }
    }
    keys
}

/// The mechanisms of the million-connection lane: the O(n) `poll()`
/// baseline against `/dev/poll` — the pair whose scaling gap the paper
/// projects and the lane extrapolates to 10^6 held-open connections.
pub fn million_kinds() -> [ServerKind; 2] {
    [ServerKind::ThttpdPoll, ServerKind::ThttpdDevPoll]
}

/// The full million-lane population. `MILLION_LOADS[..2]` (capping at
/// 100 000) is the CI smoke subset; nightly runs all three.
pub const MILLION_LOADS: [usize; 3] = [10_000, 100_000, 1_000_000];

/// The held-open populations the million lane sweeps, capped (the CI
/// smoke stops at 100 000; nightly runs the full 10^6).
pub fn million_loads(cap: usize) -> Vec<usize> {
    MILLION_LOADS
        .iter()
        .copied()
        .filter(|&n| n <= cap)
        .collect()
}

/// The sweep grid behind `figures -- million` / `million-smoke`.
pub fn million_grid(cap: usize) -> Vec<SweepKey> {
    let mut keys = Vec::new();
    for kind in million_kinds() {
        for inactive in million_loads(cap) {
            keys.push((kind, inactive));
        }
    }
    keys
}

/// One million-lane run: a modest request stream (the interesting axis
/// is the held-open population, not the rate) over `inactive` parked
/// connections, with every exhaustible resource raised out of the way —
/// client machines added per ~50k conns for ephemeral ports, descriptor
/// limits lifted on both sides, the server's idle reaper deferred past
/// the run — and the `mem.*` probes armed. The bootstrap spreads the
/// population across a warmup scaled to the server's measured accept
/// capacity (~4.5k accepts/simulated-second end to end); offering
/// connections faster than that livelocks the bootstrap behind SYN
/// retransmit waves.
pub fn million_params(seed: u64, kind: ServerKind, inactive: usize) -> RunParams {
    let hosts = inactive.div_ceil(50_000).max(1);
    let mut p = RunParams::paper(kind, 500.0, inactive)
        .with_conns(2_000)
        .with_seed(seed)
        .with_mem_probes()
        .with_client_hosts(hosts)
        .with_server_fd_limit(inactive + 4_096)
        .with_client_fd_limit(inactive + 65_536);
    p.load.warmup = SimDuration::from_millis((inactive as u64 / 4).max(2_500));
    p.server.idle_timeout = SimDuration::from_secs(600);
    // The stock backlog of 128 collapses under a bulk bootstrap: the
    // 3 s SYN retransmit timer turns every drop into synchronized retry
    // waves that admit ~128 connections each — the population never
    // establishes. Raised the way a real million-connection deployment
    // raises `somaxconn`.
    p.server.backlog = 4_096;
    p
}

/// The five mechanisms the latency-anatomy breakdown covers — the same
/// set the root CLI's `compare` subcommand sweeps.
pub fn anatomy_kinds() -> [ServerKind; 5] {
    [
        ServerKind::ThttpdSelect,
        ServerKind::ThttpdPoll,
        ServerKind::ThttpdDevPoll,
        ServerKind::Phhttpd,
        ServerKind::Hybrid,
    ]
}

/// The sweep grid behind `figures -- latency-anatomy`.
pub fn anatomy_grid(inactive: usize) -> Vec<SweepKey> {
    anatomy_kinds().iter().map(|&k| (k, inactive)).collect()
}

/// The cached sweeps behind `figures -- extensions` (the direct-run
/// figures — docsize, sendfile, loss — manage their own points and are
/// not prefetchable).
pub fn extensions_grid() -> Vec<SweepKey> {
    use simkernel::AcceptWake;
    let no_hints = ServerKind::ThttpdDevPollWith {
        config: DevPollConfig {
            hints: false,
            ..DevPollConfig::default()
        },
        mmap: true,
        combined: false,
    };
    let no_mmap = ServerKind::ThttpdDevPollWith {
        config: DevPollConfig::default(),
        mmap: false,
        combined: false,
    };
    let combined = ServerKind::ThttpdDevPollWith {
        config: DevPollConfig::default(),
        mmap: true,
        combined: true,
    };
    vec![
        (ServerKind::Hybrid, 251),
        (ServerKind::ThttpdDevPoll, 251),
        (ServerKind::Phhttpd, 251),
        (ServerKind::ThttpdDevPoll, 501),
        (no_hints, 501),
        (no_mmap, 501),
        (combined, 501),
        (ServerKind::PhhttpdBatch(16), 251),
        (
            ServerKind::PreforkDevPoll {
                workers: 4,
                wake: AcceptWake::Herd,
            },
            251,
        ),
        (
            ServerKind::PreforkDevPoll {
                workers: 4,
                wake: AcceptWake::Exclusive,
            },
            251,
        ),
        (ServerKind::ThttpdSelect, 251),
        (ServerKind::ThttpdPoll, 251),
    ]
}
