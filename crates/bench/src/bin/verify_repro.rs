//! Executable reproduction checklist: runs a compact grid and verifies
//! every shape claim from EXPERIMENTS.md, printing PASS/FAIL per claim.
//!
//! ```text
//! cargo run --release -p bench --bin verify_repro [--conns N] [--jobs N]
//! ```
//!
//! The grid's run points are independent simulation worlds, so they fan
//! out over the sweep executor (`--jobs` / `BENCH_JOBS`); checks are
//! evaluated afterwards in fixed order, so output is identical at any
//! worker count. Every invocation also writes a `BENCH.json` perf
//! record (see `bench::baseline`).
//!
//! Exit code 0 iff every claim holds.

use std::fmt::Write as _;

use bench::baseline::{group_runs, BenchReport, BENCH_VERSION};
use bench::{effective_jobs, run_jobs};
use httperf::{run_one, LoadConfig, RunParams, RunReport, ServerKind};
use simcore::probe::{fnv1a, Snapshot};
use simkernel::AcceptWake;

struct Checker {
    failures: u32,
    checks: u32,
}

impl Checker {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        self.checks += 1;
        if ok {
            println!("PASS  {name}  ({detail})");
        } else {
            self.failures += 1;
            println!("FAIL  {name}  ({detail})");
        }
    }

    /// Like [`Checker::check`], but on FAIL ships the run's kernel probe
    /// snapshot so the regression is diagnosable from the log alone.
    fn check_probe(&mut self, name: &str, ok: bool, detail: String, probe: &Snapshot) {
        self.check(name, ok, detail);
        if !ok {
            for line in probe.to_text().lines() {
                println!("      | {line}");
            }
            println!(
                "      | if backend readiness looks wrong, bisect with the differential \
                 oracle: `cargo run -p simcheck -- oracle` (then `--replay <seed>` for \
                 the minimal event script)"
            );
        }
    }
}

/// Milliseconds since the first call (monotonic, bin-only — library
/// code stays wall-clock-free).
fn now_ms() -> f64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e3
}

fn main() {
    let started = now_ms();
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let conns: u64 = flag("--conns")
        .and_then(|v| v.parse().ok())
        .unwrap_or(6_000);
    let jobs = effective_jobs(flag("--jobs").and_then(|v| v.parse().ok()));
    let bench_out = flag("--bench-out").cloned().unwrap_or("BENCH.json".into());

    let no_hints = ServerKind::ThttpdDevPollWith {
        config: devpoll::DevPollConfig {
            hints: false,
            ..devpoll::DevPollConfig::default()
        },
        mmap: true,
        combined: false,
    };
    // The claim grid. Indices are load-bearing: the checks below pick
    // their runs by position.
    let grid: Vec<(ServerKind, f64, usize)> = vec![
        (ServerKind::ThttpdPoll, 900.0, 1),       // 0: fig4
        (ServerKind::ThttpdDevPoll, 900.0, 1),    // 1: fig5
        (ServerKind::ThttpdPoll, 1000.0, 251),    // 2: fig6
        (ServerKind::ThttpdPoll, 800.0, 501),     // 3: fig8
        (ServerKind::ThttpdDevPoll, 1000.0, 251), // 4: fig7
        (ServerKind::ThttpdDevPoll, 1000.0, 501), // 5: fig9
        (ServerKind::ThttpdPoll, 1100.0, 501),    // 6: fig10
        (ServerKind::Phhttpd, 1000.0, 501),       // 7: fig13
        (ServerKind::ThttpdDevPoll, 700.0, 251),  // 8: fig14
        (ServerKind::ThttpdPoll, 700.0, 251),     // 9: fig14
        (ServerKind::Phhttpd, 700.0, 251),        // 10: fig14 pre-knee
        (ServerKind::Phhttpd, 1100.0, 251),       // 11: fig14 post-knee
        (ServerKind::Hybrid, 1100.0, 251),        // 12: extension
        (
            ServerKind::PreforkDevPoll {
                workers: 4,
                wake: AcceptWake::Herd,
            },
            500.0,
            251,
        ), // 13: herd
        (
            ServerKind::PreforkDevPoll {
                workers: 4,
                wake: AcceptWake::Exclusive,
            },
            500.0,
            251,
        ), // 14: herd
        (no_hints, 1000.0, 501),                  // 15: ablation
    ];

    println!("verify_repro: {conns} connections per point, {jobs} worker thread(s)\n");

    let mut results: Vec<(RunReport, f64)> = run_jobs(jobs, &grid, |&(kind, rate, inactive)| {
        let t0 = now_ms();
        let report = run_one(RunParams::paper(kind, rate, inactive).with_conns(conns));
        (report, now_ms() - t0)
    });

    let mut c = Checker {
        failures: 0,
        checks: 0,
    };

    // -------- Figs. 4/5: light load, both clean --------
    for i in [0usize, 1] {
        let r = &results[i].0;
        c.check_probe(
            &format!("fig4/5 {} clean at 900/1", r.server),
            r.rate.avg > 0.97 * 900.0 && r.error_percent() < 1.0,
            format!("avg {:.0}, err {:.1}%", r.rate.avg, r.error_percent()),
            &r.probe,
        );
    }

    // -------- Figs. 6/8: stock collapses under inactive load --------
    let stock_251 = &results[2].0;
    c.check_probe(
        "fig6 stock collapses at 1000/251",
        stock_251.rate.avg < 0.7 * 1000.0 && stock_251.error_percent() > 20.0,
        format!(
            "avg {:.0}, err {:.1}%",
            stock_251.rate.avg,
            stock_251.error_percent()
        ),
        &stock_251.probe,
    );
    let stock_501 = &results[3].0;
    c.check_probe(
        "fig8 stock collapses at 800/501",
        stock_501.rate.avg < 0.75 * 800.0 && stock_501.error_percent() > 20.0,
        format!(
            "avg {:.0}, err {:.1}%",
            stock_501.rate.avg,
            stock_501.error_percent()
        ),
        &stock_501.probe,
    );

    // -------- Figs. 7/9: devpoll unaffected --------
    for (i, rate, inactive) in [(4usize, 1000.0, 251usize), (5, 1000.0, 501)] {
        let r = &results[i].0;
        c.check_probe(
            &format!("fig7/9 devpoll clean at {rate:.0}/{inactive}"),
            r.rate.avg > 0.97 * rate && r.error_percent() < 1.0,
            format!("avg {:.0}, err {:.1}%", r.rate.avg, r.error_percent()),
            &r.probe,
        );
    }

    // -------- Fig. 10: error ordering --------
    let stock_1100 = &results[6].0;
    c.check_probe(
        "fig10 stock errors approach 60% at 1100/501",
        stock_1100.error_percent() > 40.0,
        format!("err {:.1}%", stock_1100.error_percent()),
        &stock_1100.probe,
    );

    // -------- Figs. 12/13: phhttpd knees --------
    let ph_501 = &results[7].0;
    c.check_probe(
        "fig13 phhttpd capped below target at 1000/501",
        ph_501.rate.avg < 0.95 * 1000.0,
        format!("avg {:.0}", ph_501.rate.avg),
        &ph_501.probe,
    );
    c.check_probe(
        "fig13 phhttpd overflow meltdown happened",
        ph_501.server_metrics.overflows >= 1,
        format!("overflows {}", ph_501.server_metrics.overflows),
        &ph_501.probe,
    );

    // -------- Fig. 14: latency ordering --------
    let d = results[8].0.median_latency_ms();
    let s = results[9].0.median_latency_ms();
    let stock_probe = results[9].0.probe.clone();
    c.check_probe(
        "fig14 normal poll well above devpoll pre-knee",
        s > 2.0 * d,
        format!("poll {s:.2} ms vs devpoll {d:.2} ms"),
        &stock_probe,
    );
    let pl = results[10].0.median_latency_ms();
    let ph = results[11].0.median_latency_ms();
    let ph_hi_probe = results[11].0.probe.clone();
    c.check_probe(
        "fig14 phhttpd latency jumps past the knee",
        ph > 5.0 * pl,
        format!("{pl:.2} -> {ph:.2} ms"),
        &ph_hi_probe,
    );

    // -------- Extensions --------
    let hybrid = &results[12].0;
    c.check_probe(
        "hybrid keeps devpoll-class throughput at 1100/251",
        hybrid.rate.avg > 0.97 * 1100.0 && hybrid.error_percent() < 1.0,
        format!("avg {:.0}", hybrid.rate.avg),
        &hybrid.probe,
    );
    let herd = &results[13].0;
    let excl = &results[14].0;
    c.check_probe(
        "thundering herd: exclusive wake cuts wakeups",
        herd.kernel_wakeups as f64 > 1.5 * excl.kernel_wakeups as f64,
        format!(
            "herd {} vs exclusive {}",
            herd.kernel_wakeups, excl.kernel_wakeups
        ),
        &herd.probe,
    );
    let no_hints_run = &results[15].0;
    c.check_probe(
        "ablation: hints are load-bearing (no-hints devpoll collapses)",
        no_hints_run.rate.avg < 0.7 * 1000.0,
        format!("avg {:.0}", no_hints_run.rate.avg),
        &no_hints_run.probe,
    );

    println!("\n{} checks, {} failures", c.checks, c.failures);

    // The perf record for the benchmark gate. The fingerprint covers
    // the claim grid and the connection count, so a grid change demands
    // an intentional baseline refresh.
    let fingerprint = {
        let mut text = String::new();
        for (kind, rate, inactive) in &grid {
            let _ = write!(text, "{}@{rate}/{inactive};", kind.label());
        }
        let _ = write!(text, "conns={conns}");
        format!("{:016x}", fnv1a(text.as_bytes()))
    };
    let report = BenchReport {
        version: BENCH_VERSION,
        tool: "verify_repro".into(),
        seed: LoadConfig::default().seed,
        config: fingerprint,
        jobs,
        total_wall_ms: now_ms() - started,
        sweeps: group_runs(results),
    };
    if let Err(e) = std::fs::write(&bench_out, report.to_json()) {
        eprintln!("warning: cannot write {bench_out}: {e}");
    } else {
        println!("[written {bench_out}]");
    }

    if c.failures > 0 {
        std::process::exit(1);
    }
}
