//! Executable reproduction checklist: runs a compact grid and verifies
//! every shape claim from EXPERIMENTS.md, printing PASS/FAIL per claim.
//!
//! ```text
//! cargo run --release -p bench --bin verify_repro [--conns N]
//! ```
//!
//! Exit code 0 iff every claim holds.

use httperf::{run_one, RunParams, RunReport, ServerKind};
use simcore::probe::Snapshot;
use simkernel::AcceptWake;

struct Checker {
    failures: u32,
    checks: u32,
}

impl Checker {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        self.checks += 1;
        if ok {
            println!("PASS  {name}  ({detail})");
        } else {
            self.failures += 1;
            println!("FAIL  {name}  ({detail})");
        }
    }

    /// Like [`Checker::check`], but on FAIL ships the run's kernel probe
    /// snapshot so the regression is diagnosable from the log alone.
    fn check_probe(&mut self, name: &str, ok: bool, detail: String, probe: &Snapshot) {
        self.check(name, ok, detail);
        if !ok {
            for line in probe.to_text().lines() {
                println!("      | {line}");
            }
            println!(
                "      | if backend readiness looks wrong, bisect with the differential \
                 oracle: `cargo run -p simcheck -- oracle` (then `--replay <seed>` for \
                 the minimal event script)"
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let conns: u64 = args
        .iter()
        .position(|a| a == "--conns")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(6_000);

    let point = |kind: ServerKind, rate: f64, inactive: usize| -> RunReport {
        run_one(RunParams::paper(kind, rate, inactive).with_conns(conns))
    };
    let mut c = Checker {
        failures: 0,
        checks: 0,
    };

    println!("verify_repro: {conns} connections per point\n");

    // -------- Figs. 4/5: light load, both clean --------
    for kind in [ServerKind::ThttpdPoll, ServerKind::ThttpdDevPoll] {
        let r = point(kind, 900.0, 1);
        c.check_probe(
            &format!("fig4/5 {} clean at 900/1", r.server),
            r.rate.avg > 0.97 * 900.0 && r.error_percent() < 1.0,
            format!("avg {:.0}, err {:.1}%", r.rate.avg, r.error_percent()),
            &r.probe,
        );
    }

    // -------- Figs. 6/8: stock collapses under inactive load --------
    let stock_251 = point(ServerKind::ThttpdPoll, 1000.0, 251);
    c.check_probe(
        "fig6 stock collapses at 1000/251",
        stock_251.rate.avg < 0.7 * 1000.0 && stock_251.error_percent() > 20.0,
        format!(
            "avg {:.0}, err {:.1}%",
            stock_251.rate.avg,
            stock_251.error_percent()
        ),
        &stock_251.probe,
    );
    let stock_501 = point(ServerKind::ThttpdPoll, 800.0, 501);
    c.check_probe(
        "fig8 stock collapses at 800/501",
        stock_501.rate.avg < 0.75 * 800.0 && stock_501.error_percent() > 20.0,
        format!(
            "avg {:.0}, err {:.1}%",
            stock_501.rate.avg,
            stock_501.error_percent()
        ),
        &stock_501.probe,
    );

    // -------- Figs. 7/9: devpoll unaffected --------
    for (rate, inactive) in [(1000.0, 251), (1000.0, 501)] {
        let r = point(ServerKind::ThttpdDevPoll, rate, inactive);
        c.check_probe(
            &format!("fig7/9 devpoll clean at {rate:.0}/{inactive}"),
            r.rate.avg > 0.97 * rate && r.error_percent() < 1.0,
            format!("avg {:.0}, err {:.1}%", r.rate.avg, r.error_percent()),
            &r.probe,
        );
    }

    // -------- Fig. 10: error ordering --------
    let stock_1100 = point(ServerKind::ThttpdPoll, 1100.0, 501);
    c.check_probe(
        "fig10 stock errors approach 60% at 1100/501",
        stock_1100.error_percent() > 40.0,
        format!("err {:.1}%", stock_1100.error_percent()),
        &stock_1100.probe,
    );

    // -------- Figs. 12/13: phhttpd knees --------
    let ph_501 = point(ServerKind::Phhttpd, 1000.0, 501);
    c.check_probe(
        "fig13 phhttpd capped below target at 1000/501",
        ph_501.rate.avg < 0.95 * 1000.0,
        format!("avg {:.0}", ph_501.rate.avg),
        &ph_501.probe,
    );
    c.check_probe(
        "fig13 phhttpd overflow meltdown happened",
        ph_501.server_metrics.overflows >= 1,
        format!("overflows {}", ph_501.server_metrics.overflows),
        &ph_501.probe,
    );

    // -------- Fig. 14: latency ordering --------
    let mut dev = point(ServerKind::ThttpdDevPoll, 700.0, 251);
    let mut stock = point(ServerKind::ThttpdPoll, 700.0, 251);
    let mut ph_lo = point(ServerKind::Phhttpd, 700.0, 251);
    let mut ph_hi = point(ServerKind::Phhttpd, 1100.0, 251);
    let (d, s) = (dev.median_latency_ms(), stock.median_latency_ms());
    c.check_probe(
        "fig14 normal poll well above devpoll pre-knee",
        s > 2.0 * d,
        format!("poll {s:.2} ms vs devpoll {d:.2} ms"),
        &stock.probe,
    );
    let (pl, ph) = (ph_lo.median_latency_ms(), ph_hi.median_latency_ms());
    c.check_probe(
        "fig14 phhttpd latency jumps past the knee",
        ph > 5.0 * pl,
        format!("{pl:.2} -> {ph:.2} ms"),
        &ph_hi.probe,
    );

    // -------- Extensions --------
    let hybrid = point(ServerKind::Hybrid, 1100.0, 251);
    c.check_probe(
        "hybrid keeps devpoll-class throughput at 1100/251",
        hybrid.rate.avg > 0.97 * 1100.0 && hybrid.error_percent() < 1.0,
        format!("avg {:.0}", hybrid.rate.avg),
        &hybrid.probe,
    );
    let herd = point(
        ServerKind::PreforkDevPoll {
            workers: 4,
            wake: AcceptWake::Herd,
        },
        500.0,
        251,
    );
    let excl = point(
        ServerKind::PreforkDevPoll {
            workers: 4,
            wake: AcceptWake::Exclusive,
        },
        500.0,
        251,
    );
    c.check_probe(
        "thundering herd: exclusive wake cuts wakeups",
        herd.kernel_wakeups as f64 > 1.5 * excl.kernel_wakeups as f64,
        format!(
            "herd {} vs exclusive {}",
            herd.kernel_wakeups, excl.kernel_wakeups
        ),
        &herd.probe,
    );
    let no_hints = point(
        ServerKind::ThttpdDevPollWith {
            config: devpoll::DevPollConfig {
                hints: false,
                ..devpoll::DevPollConfig::default()
            },
            mmap: true,
            combined: false,
        },
        1000.0,
        501,
    );
    c.check_probe(
        "ablation: hints are load-bearing (no-hints devpoll collapses)",
        no_hints.rate.avg < 0.7 * 1000.0,
        format!("avg {:.0}", no_hints.rate.avg),
        &no_hints.probe,
    );

    println!("\n{} checks, {} failures", c.checks, c.failures);
    if c.failures > 0 {
        std::process::exit(1);
    }
}
