//! The CI benchmark gate: compares a freshly emitted `BENCH.json`
//! against the checked-in `BENCH_BASELINE.json` and exits non-zero on
//! drift.
//!
//! ```text
//! bench_gate [--baseline FILE] [--current FILE] [--rate-tol F]
//!            [--err-tol F] [--latency-tol F] [--wall-factor F]
//!            [--throughput-factor F] [--mem-factor F] [--strict-digest]
//! ```
//!
//! Defaults: baseline `BENCH_BASELINE.json`, current `BENCH.json`,
//! tolerances from `bench::GateTolerance::default()` (10% reply rate,
//! 5 error points, 50% latency above a 1 ms floor), no wall gate, and
//! the throughput lane advisory (`--throughput-factor F` turns a
//! per-sweep events-per-second drop below `baseline / F` into a
//! failure; without it large drops are notes). `--mem-factor F` gates
//! the memory lane the same way: a sweep whose server bytes/connection
//! grow beyond `baseline * F` fails instead of noting.
//! Intentional perf/behaviour changes are shipped by refreshing the
//! baseline in the same commit — see EXPERIMENTS.md "Benchmark gate".
//!
//! When the gate goes red under GitHub Actions (`GITHUB_STEP_SUMMARY`
//! set), a per-sweep baseline-vs-current lane diff — reply rate, median
//! latency, events/s — is appended to the job summary.

use std::path::PathBuf;
use std::process::ExitCode;

use bench::{compare, lane_diff_markdown, BenchReport, GateTolerance};

fn main() -> ExitCode {
    let mut baseline_path = PathBuf::from("BENCH_BASELINE.json");
    let mut current_path = PathBuf::from("BENCH.json");
    let mut tol = GateTolerance::default();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--baseline" => baseline_path = PathBuf::from(val("--baseline")),
            "--current" => current_path = PathBuf::from(val("--current")),
            "--rate-tol" => tol.rate_rel = parse_f64("--rate-tol", &val("--rate-tol")),
            "--err-tol" => tol.err_abs = parse_f64("--err-tol", &val("--err-tol")),
            "--latency-tol" => tol.latency_rel = parse_f64("--latency-tol", &val("--latency-tol")),
            "--wall-factor" => {
                tol.wall_factor = Some(parse_f64("--wall-factor", &val("--wall-factor")))
            }
            "--throughput-factor" => {
                tol.throughput_factor = Some(parse_f64(
                    "--throughput-factor",
                    &val("--throughput-factor"),
                ))
            }
            "--mem-factor" => {
                tol.mem_factor = Some(parse_f64("--mem-factor", &val("--mem-factor")))
            }
            "--strict-digest" => tol.strict_digest = true,
            other => {
                eprintln!("unknown flag {other:?}; see src/bin/bench_gate.rs docs");
                return ExitCode::from(2);
            }
        }
    }

    let baseline = match load(&baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "bench_gate: cannot load baseline {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let current = match load(&current_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "bench_gate: cannot load current {}: {e}",
                current_path.display()
            );
            return ExitCode::from(2);
        }
    };

    println!(
        "bench_gate: {} ({} sweeps) vs baseline {} ({} sweeps)",
        current_path.display(),
        current.sweeps.len(),
        baseline_path.display(),
        baseline.sweeps.len()
    );
    for s in &current.sweeps {
        if let (Some(eps), Some(ratio)) = (s.events_per_wall_sec(), s.sim_per_wall()) {
            println!(
                "lane  {}/load {}: {:.0} events/s, {:.1} sim-s per wall-s",
                s.server, s.inactive, eps, ratio
            );
        }
        if let Some(bpc) = s.mem_bytes_per_conn() {
            println!(
                "mem   {}/load {}: {bpc:.1} B/conn ({} conns peak)",
                s.server, s.inactive, s.eps_peak
            );
        }
    }
    let outcome = compare(&baseline, &current, &tol);
    for note in &outcome.notes {
        println!("NOTE  {note}");
    }
    for violation in &outcome.violations {
        println!("FAIL  {violation}");
    }
    if outcome.ok() {
        println!(
            "bench_gate: OK — {} sweep(s) within tolerance ({} note(s))",
            baseline.sweeps.len(),
            outcome.notes.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "bench_gate: RED — {} violation(s). If this change is intentional, \
             refresh BENCH_BASELINE.json (see EXPERIMENTS.md).",
            outcome.violations.len()
        );
        // On a red gate inside GitHub Actions, append the per-sweep
        // baseline-vs-current lane diff (reply rate, latency, events/s)
        // to the job summary so the failing lane is visible without
        // downloading artifacts.
        if let Some(summary_path) = std::env::var_os("GITHUB_STEP_SUMMARY") {
            let md = lane_diff_markdown(&baseline, &current, &outcome);
            use std::io::Write as _;
            match std::fs::OpenOptions::new().append(true).open(&summary_path) {
                Ok(mut f) => {
                    if let Err(e) = f.write_all(md.as_bytes()) {
                        eprintln!("bench_gate: cannot write job summary: {e}");
                    }
                }
                Err(e) => eprintln!("bench_gate: cannot open job summary: {e}"),
            }
        }
        ExitCode::FAILURE
    }
}

fn load(path: &std::path::Path) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    BenchReport::from_json(&text)
}

fn parse_f64(flag: &str, value: &str) -> f64 {
    value
        .parse()
        .unwrap_or_else(|_| panic!("{flag} must be a number, got {value:?}"))
}
