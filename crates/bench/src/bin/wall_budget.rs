//! Nightly wall-time budget check: parses a `BENCH.json` and fails
//! when the summed per-sweep wall time exceeds the budget.
//!
//! ```text
//! wall_budget --budget-ms N [--report FILE]
//! ```
//!
//! The per-sweep `wall_ms` fields are summed per-run, so the check is
//! immune to `--jobs` overlap: it measures the work done, not how the
//! scheduler packed it. The step-level `timeout-minutes` in the
//! workflow is the hang backstop; this check is the graceful one that
//! still leaves `BENCH.json` and `PROFILE.txt` behind, and its output
//! names the sweeps that ate the budget (costliest first).
//!
//! Exit codes: 0 within budget, 1 over budget, 2 usage/parse error.

use std::path::PathBuf;
use std::process::ExitCode;

use bench::BenchReport;

fn main() -> ExitCode {
    let mut report_path = PathBuf::from("BENCH.json");
    let mut budget_ms: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--report" => report_path = PathBuf::from(val("--report")),
            "--budget-ms" => {
                budget_ms = Some(
                    val("--budget-ms")
                        .parse()
                        .expect("--budget-ms must be a number"),
                )
            }
            other => {
                eprintln!("unknown flag {other:?}; see src/bin/wall_budget.rs docs");
                return ExitCode::from(2);
            }
        }
    }
    let Some(budget_ms) = budget_ms else {
        eprintln!("wall_budget: --budget-ms is required");
        return ExitCode::from(2);
    };

    let report = match std::fs::read_to_string(&report_path)
        .map_err(|e| e.to_string())
        .and_then(|text| BenchReport::from_json(&text))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("wall_budget: cannot load {}: {e}", report_path.display());
            return ExitCode::from(2);
        }
    };

    let total: f64 = report.sweeps.iter().map(|s| s.wall_ms).sum();
    let mut rows: Vec<_> = report.sweeps.iter().collect();
    rows.sort_by(|a, b| b.wall_ms.total_cmp(&a.wall_ms));
    println!(
        "wall_budget: {} — {} sweeps, {:.1}s summed per-sweep wall \
         (harness end-to-end {:.1}s), budget {:.1}s",
        report_path.display(),
        report.sweeps.len(),
        total / 1e3,
        report.total_wall_ms / 1e3,
        budget_ms / 1e3,
    );
    for s in rows.iter().take(10) {
        println!(
            "  {:<28} load {:>5}  {:>9.1} ms  {:>12.0} events/s",
            s.server,
            s.inactive,
            s.wall_ms,
            s.events_per_wall_sec().unwrap_or(0.0),
        );
    }

    if total > budget_ms {
        println!(
            "wall_budget: OVER BUDGET by {:.1}s — the sweeps above say where \
             it went; see PROFILE.txt for the full flat profile",
            (total - budget_ms) / 1e3
        );
        ExitCode::FAILURE
    } else {
        println!(
            "wall_budget: OK — {:.0}% of budget used",
            100.0 * total / budget_ms
        );
        ExitCode::SUCCESS
    }
}
