//! CLI for regenerating the paper's figures.
//!
//! ```text
//! figures [--quick] [--conns N] [--jobs N] [--out DIR] [--bench-out FILE]
//!         [--profile] [--trace-export DIR] <target>...
//! targets: fig4 .. fig14 | all | hybrid | ablate-hints | ablate-mmap |
//!          ablate-combined | ablate-batch | extensions | latency-anatomy |
//!          million | million-smoke
//! ```
//!
//! `million` sweeps the held-open population 10^4 → 10^5 → 10^6 for
//! `poll()` and `/dev/poll` at a fixed request rate, charting the
//! reply-rate/latency knees and the server bytes-per-connection lane
//! (the nightly scaling check); `million-smoke` is the same lane capped
//! at 10^5 for the per-PR benchmark gate.
//!
//! `latency-anatomy` runs span-enabled sweeps of the five mechanisms
//! (select, poll, devpoll, phhttpd, hybrid) and emits one stacked
//! per-phase latency breakdown per mechanism; the span-enabled sweeps
//! land in `BENCH.json` under `<server>+spans` labels. `--trace-export
//! DIR` additionally runs one retained-record run per mechanism and
//! writes `trace-<server>.json` (Chrome trace, load in
//! `chrome://tracing` / Perfetto) and `trace-<server>.folded`
//! (flamegraph input) under DIR.
//!
//! `--profile` additionally writes `PROFILE.txt` under the output
//! directory: a per-sweep hot-spot table (wall time, simulation events,
//! events per wall-second, sim-time ratio) sorted by wall time — the
//! flat profile to read before reaching for a flamegraph (build with
//! `--profile profiling` for symbols; see EXPERIMENTS.md).
//!
//! Each figure is printed as an ASCII chart and written as CSV under the
//! output directory (default `target/figures/`). Sweeps fan out over
//! `--jobs` worker threads (default: `BENCH_JOBS`, then the machine's
//! parallelism); output is byte-identical at every worker count. Every
//! invocation also writes a `BENCH.json` perf record (see
//! `bench::baseline`) for the benchmark gate.

use std::fs;
use std::path::PathBuf;

use bench::figures::{anatomy_grid, anatomy_kinds, extensions_grid, paper_grid};
use bench::{effective_jobs, FigureConfig, FigureRunner, PAPER_FIGURES};
use simcore::series::Figure;

/// Milliseconds since the first call — the monotonic clock injected
/// into the (wall-clock-free) library for `BENCH.json` wall fields.
fn now_ms() -> f64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e3
}

fn main() {
    let started = now_ms();
    let mut config = FigureConfig::default();
    let mut out_dir = PathBuf::from("target/figures");
    let mut bench_out = PathBuf::from("BENCH.json");
    let mut jobs_flag: Option<usize> = None;
    let mut profile = false;
    let mut trace_export: Option<PathBuf> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => config = FigureConfig::quick(),
            "--conns" => {
                let v = args.next().expect("--conns needs a value");
                config.conns = v.parse().expect("--conns must be an integer");
            }
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                config.seed = v.parse().expect("--seed must be an integer");
            }
            "--jobs" => {
                let v = args.next().expect("--jobs needs a value");
                jobs_flag = Some(v.parse().expect("--jobs must be an integer"));
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().expect("--out needs a value"));
            }
            "--bench-out" => {
                bench_out = PathBuf::from(args.next().expect("--bench-out needs a value"));
            }
            "--profile" => profile = true,
            "--trace-export" => {
                trace_export = Some(PathBuf::from(
                    args.next().expect("--trace-export needs a value"),
                ));
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    let jobs = effective_jobs(jobs_flag);

    fs::create_dir_all(&out_dir).expect("create output dir");
    let (conns, seed) = (config.conns, config.seed);
    let mut runner = FigureRunner::new(config).with_jobs(jobs).with_clock(now_ms);
    if jobs > 1 {
        eprintln!("[executor: {jobs} worker threads]");
    }

    let emit = |name: &str, figs: Vec<Figure>| {
        for (i, fig) in figs.iter().enumerate() {
            let suffix = if figs.len() > 1 {
                format!("{}_{}", name, (b'a' + i as u8) as char)
            } else {
                name.to_string()
            };
            let csv_path = out_dir.join(format!("{suffix}.csv"));
            fs::write(&csv_path, fig.to_csv()).expect("write csv");
            println!("\n{}", fig.to_ascii(72, 18));
            println!("[written {}]", csv_path.display());
        }
    };

    for t in targets {
        match t.as_str() {
            "all" => {
                // Fill the full 3x3 grid as one parallel batch, then
                // build the figures from cache.
                runner.prefetch(&paper_grid());
                for id in PAPER_FIGURES {
                    eprintln!("== {id} ==");
                    let figs = runner.paper_figure(id);
                    emit(id, figs);
                }
            }
            "extensions" => {
                runner.prefetch(&extensions_grid());
                eprintln!("== hybrid ==");
                emit("hybrid", runner.hybrid_figure(251));
                eprintln!("== ablate-hints ==");
                emit("ablate_hints", runner.ablate_hints(501));
                eprintln!("== ablate-mmap ==");
                emit("ablate_mmap", runner.ablate_mmap(501));
                eprintln!("== ablate-combined ==");
                emit("ablate_combined", runner.ablate_combined(501));
                eprintln!("== ablate-batch ==");
                emit("ablate_batch", runner.ablate_batch(251));
                eprintln!("== herd ==");
                emit("herd", runner.herd_figure(251));
                eprintln!("== docsize ==");
                emit("docsize", runner.docsize_figure(500.0, 251));
                eprintln!("== sendfile ==");
                emit("sendfile", runner.sendfile_figure(1));
                eprintln!("== loss ==");
                emit("loss", runner.loss_figure(500.0, 251));
                eprintln!("== select ==");
                emit("select", runner.select_figure(251));
            }
            "hybrid" => emit("hybrid", runner.hybrid_figure(251)),
            "herd" => emit("herd", runner.herd_figure(251)),
            "docsize" => emit("docsize", runner.docsize_figure(500.0, 251)),
            "sendfile" => emit("sendfile", runner.sendfile_figure(1)),
            "loss" => emit("loss", runner.loss_figure(500.0, 251)),
            "select" => emit("select", runner.select_figure(251)),
            "cpu-scaling" => emit("cpu_scaling", runner.cpu_scaling_figure(501)),
            "latency-anatomy" => {
                runner.span_prefetch(&anatomy_grid(251));
                for kind in anatomy_kinds() {
                    eprintln!("== anatomy {} ==", kind.label());
                    let fig = runner.latency_anatomy_figure(kind, 251);
                    emit(&format!("anatomy_{}", sanitize(&kind.label())), vec![fig]);
                }
            }
            "million" => {
                eprintln!("== million ==");
                emit("million", runner.million_figures(1_000_000));
            }
            "million-smoke" => {
                eprintln!("== million-smoke ==");
                emit("million", runner.million_figures(100_000));
            }
            "ablate-hints" => emit("ablate_hints", runner.ablate_hints(501)),
            "ablate-mmap" => emit("ablate_mmap", runner.ablate_mmap(501)),
            "ablate-combined" => emit("ablate_combined", runner.ablate_combined(501)),
            "ablate-batch" => emit("ablate_batch", runner.ablate_batch(251)),
            id if PAPER_FIGURES.contains(&id) => {
                eprintln!("== {id} ==");
                let figs = runner.paper_figure(id);
                emit(id, figs);
            }
            other => {
                eprintln!("unknown target {other:?}");
                std::process::exit(2);
            }
        }
    }

    // Kernel probe snapshots for every sweep that ran: one text table
    // and one JSON-lines file per (server, inactive load), beside the
    // CSVs. These carry the mechanism counters (devpoll.driver_polls_
    // avoided, devpoll.cache_revalidations, rtsig.overflows, ...) that
    // explain the curves.
    let plain = runner.cached_sweeps();
    let spanned = runner.span_cached_sweeps();
    let dumps = plain
        .iter()
        .map(|&(k, r)| (k, r, false))
        .chain(spanned.iter().map(|&(k, r)| (k, r, true)));
    for (&(kind, inactive), reports, spans) in dumps {
        let label = if spans {
            format!("{}+spans", kind.label())
        } else {
            kind.label()
        };
        let base = format!("{}_load{}", sanitize(&label), inactive);
        let mut text = String::new();
        let mut jsonl = String::new();
        for r in reports {
            text.push_str(&format!(
                "## {} rate={} load={}\n",
                r.server, r.target_rate, r.inactive
            ));
            text.push_str(&r.probe.to_text());
            text.push('\n');
            let rate = format!("{}", r.target_rate);
            let load = format!("{inactive}");
            jsonl.push_str(&r.probe.to_json_lines_with(&[
                ("server", label.as_str()),
                ("rate", rate.as_str()),
                ("inactive", load.as_str()),
            ]));
        }
        let txt_path = out_dir.join(format!("{base}.probes.txt"));
        let jsonl_path = out_dir.join(format!("{base}.probes.jsonl"));
        fs::write(&txt_path, text).expect("write probe text");
        fs::write(&jsonl_path, jsonl).expect("write probe jsonl");
        println!("[written {}]", txt_path.display());
        println!("[written {}]", jsonl_path.display());
    }

    // Full span exports: one retained-record run per mechanism, at the
    // middle of the paper's rate range. Chrome-trace JSON for a
    // timeline viewer, folded stacks for a flamegraph.
    if let Some(dir) = &trace_export {
        fs::create_dir_all(dir).expect("create trace export dir");
        for kind in anatomy_kinds() {
            let params = httperf::RunParams::paper(kind, 700.0, 251)
                .with_conns(conns)
                .with_seed(seed)
                .with_spans();
            let r = httperf::run_one(params);
            let label = sanitize(&kind.label());
            let json_path = dir.join(format!("trace-{label}.json"));
            let folded_path = dir.join(format!("trace-{label}.folded"));
            fs::write(&json_path, &r.span_chrome).expect("write chrome trace");
            fs::write(&folded_path, &r.span_folded).expect("write folded stacks");
            println!("[written {}]", json_path.display());
            println!("[written {}]", folded_path.display());
        }
    }

    // The perf record for the benchmark gate.
    let report = runner.bench_report("figures", now_ms() - started);
    fs::write(&bench_out, report.to_json()).expect("write BENCH.json");
    println!("[written {}]", bench_out.display());

    // Throughput lane summary (and, with --profile, the flat profile
    // artifact): where the wall time went, per sweep.
    let total_events: u64 = report.sweeps.iter().map(|s| s.events).sum();
    if report.total_wall_ms > 0.0 && total_events > 0 {
        eprintln!(
            "[throughput: {} events in {:.1}s wall = {:.0} events/s]",
            total_events,
            report.total_wall_ms / 1e3,
            total_events as f64 / (report.total_wall_ms / 1e3)
        );
    }
    if profile {
        let mut rows: Vec<_> = report.sweeps.iter().collect();
        rows.sort_by(|a, b| b.wall_ms.total_cmp(&a.wall_ms));
        let mut text = String::from(
            "# figures flat profile: one row per sweep, hottest first\n\
             # (events/s is the simulator throughput lane; sim/wall is\n\
             # simulated seconds advanced per wall second)\n",
        );
        text.push_str(&format!(
            "{:<28} {:>6} {:>10} {:>12} {:>12} {:>9}\n",
            "sweep", "load", "wall_ms", "events", "events/s", "sim/wall"
        ));
        for s in rows {
            text.push_str(&format!(
                "{:<28} {:>6} {:>10.1} {:>12} {:>12.0} {:>9.1}\n",
                s.server,
                s.inactive,
                s.wall_ms,
                s.events,
                s.events_per_wall_sec().unwrap_or(0.0),
                s.sim_per_wall().unwrap_or(0.0),
            ));
        }
        text.push_str(&format!(
            "total {:>10.1} ms wall, {} events\n",
            report.total_wall_ms, total_events
        ));
        let path = out_dir.join("PROFILE.txt");
        fs::write(&path, text).expect("write profile");
        println!("[written {}]", path.display());
    }
}

/// Makes a sweep label safe for a file name (`devpoll(h=0,m=1,c=0)` →
/// `devpoll_h_0_m_1_c_0`).
fn sanitize(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
            out.push(c);
        } else if !out.ends_with('_') {
            out.push('_');
        }
    }
    out.trim_matches('_').to_string()
}
