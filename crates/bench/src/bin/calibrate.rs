//! Quick calibration sweep: prints avg/min/max reply rate, error %, and
//! median latency for each (server, rate, inactive) point so the cost
//! model can be tuned against the paper's Figs. 4–14.
//!
//! ```text
//! cargo run --release -p bench --bin calibrate [CONNS] [--jobs N]
//! ```
//!
//! Points fan out over the sweep executor; rows print in grid order
//! regardless of worker count.

use bench::{effective_jobs, run_jobs};
use httperf::{run_one, RunParams, ServerKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let conns: u64 = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000);
    let jobs = effective_jobs(
        args.iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok()),
    );
    let kinds = [
        ServerKind::ThttpdPoll,
        ServerKind::ThttpdDevPoll,
        ServerKind::Phhttpd,
    ];
    let loads = [1usize, 251, 501];
    let rates = [500.0, 600.0, 700.0, 800.0, 900.0, 1000.0, 1100.0];

    let mut grid = Vec::new();
    for kind in kinds {
        for &inactive in &loads {
            for &rate in &rates {
                grid.push((kind, inactive, rate));
            }
        }
    }
    let rows = run_jobs(jobs, &grid, |&(kind, inactive, rate)| {
        let params = RunParams::paper(kind, rate, inactive).with_conns(conns);
        run_one(params).summary_line()
    });
    for (i, row) in rows.iter().enumerate() {
        println!("{row}");
        if (i + 1) % rates.len() == 0 {
            println!();
        }
    }
}
