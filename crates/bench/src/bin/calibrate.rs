//! Quick calibration sweep: prints avg/min/max reply rate, error %, and
//! median latency for each (server, rate, inactive) point so the cost
//! model can be tuned against the paper's Figs. 4–14.

use httperf::{run_one, RunParams, ServerKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let conns: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4000);
    let kinds = [
        ServerKind::ThttpdPoll,
        ServerKind::ThttpdDevPoll,
        ServerKind::Phhttpd,
    ];
    let loads = [1usize, 251, 501];
    let rates = [500.0, 600.0, 700.0, 800.0, 900.0, 1000.0, 1100.0];
    for kind in kinds {
        for &inactive in &loads {
            for &rate in &rates {
                let params = RunParams::paper(kind, rate, inactive).with_conns(conns);
                let mut r = run_one(params);
                println!("{}", r.summary_line());
            }
            println!();
        }
    }
}
