//! Simulated-cost microbenchmark tables: what one event-collection call
//! costs the simulated 400 MHz K6-2, per mechanism and interest-set
//! size. These are the microscopic numbers behind the macroscopic
//! figures — the per-call costs §3 of the paper argues about.

use devpoll::{sys_poll, DevPollConfig, DevPollRegistry, DvPoll, PollFd};
use simcore::time::{SimDuration, SimTime};
use simkernel::{CostModel, Fd, Kernel, Pid, PollBits};
use simnet::{HostId, LinkConfig, Network, SockAddr, TcpConfig};

struct World {
    net: Network,
    kernel: Kernel,
    registry: DevPollRegistry,
    pid: Pid,
    fds: Vec<Fd>,
}

fn world_with_conns(n: usize) -> World {
    let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
    let mut kernel = Kernel::new(HostId(1), CostModel::k6_2_400mhz());
    let pid = kernel.spawn(n + 16, 1024);
    kernel.begin_batch(SimTime::ZERO, pid);
    let lfd = kernel
        .sys_listen(&mut net, SimTime::ZERO, pid, 80, 8192)
        .unwrap();
    kernel.end_batch(SimTime::ZERO, pid);
    let mut fds = Vec::new();
    let mut now = SimTime::ZERO;
    for i in 0..n {
        let at = SimTime::from_micros(i as u64 * 50);
        net.connect(
            at.max(now),
            HostId(0),
            SockAddr::new(HostId(1), 80),
            SimDuration::ZERO,
        )
        .unwrap();
        while let Some(t) = net.next_deadline() {
            now = t;
            for ntf in net.advance(t) {
                kernel.on_net(t, &ntf);
            }
            let _ = kernel.advance(t);
        }
        kernel.begin_batch(now, pid);
        let _ = kernel.sys_accept(&mut net, now, pid, lfd).unwrap();
        kernel.end_batch(now, pid);
    }
    // Collect the stream fds.
    for (fd, file) in kernel.process(pid).fds.iter() {
        if matches!(file.kind, simkernel::FileKind::Stream(_)) {
            fds.push(fd);
        }
    }
    World {
        net,
        kernel,
        registry: DevPollRegistry::new(),
        pid,
        fds,
    }
}

/// Runs `f` inside a batch and returns the simulated cost it charged.
fn charged(w: &mut World, f: impl FnOnce(&mut World)) -> SimDuration {
    let now = SimTime::from_secs(100);
    w.kernel.begin_batch(now, w.pid);
    f(w);
    let cost = w
        .kernel
        .process(w.pid)
        .batch_acc
        .expect("batch in progress");
    w.kernel.end_batch(now, w.pid);
    cost
}

fn main() {
    println!("Simulated per-call costs on the K6-2 cost model (microseconds)");
    println!();
    println!(
        "{:<10} {:>14} {:>16} {:>16} {:>14}",
        "interests", "stock poll()", "DP_POLL (hints)", "DP_POLL (none)", "DP_POLL 1-hint"
    );
    for n in [16usize, 64, 256, 501, 1024] {
        let mut w = world_with_conns(n);

        // Stock poll over everything.
        let mut pollfds: Vec<PollFd> = w
            .fds
            .iter()
            .map(|&fd| PollFd::new(fd, PollBits::POLLIN))
            .collect();
        let stock = charged(&mut w, |w| {
            let _ = sys_poll(
                &mut w.kernel,
                SimTime::from_secs(100),
                w.pid,
                &mut pollfds,
                0,
            );
        });

        // /dev/poll with hints: steady state, nothing hinted.
        let now = SimTime::from_secs(100);
        w.kernel.begin_batch(now, w.pid);
        let dp_hints = w
            .registry
            .open(&mut w.kernel, now, w.pid, DevPollConfig::default())
            .unwrap();
        let dp_none = w
            .registry
            .open(
                &mut w.kernel,
                now,
                w.pid,
                DevPollConfig {
                    hints: false,
                    ..DevPollConfig::default()
                },
            )
            .unwrap();
        let entries: Vec<PollFd> = w
            .fds
            .iter()
            .map(|&fd| PollFd::new(fd, PollBits::POLLIN))
            .collect();
        w.registry
            .write(&mut w.kernel, now, w.pid, dp_hints, &entries)
            .unwrap();
        w.registry
            .write(&mut w.kernel, now, w.pid, dp_none, &entries)
            .unwrap();
        // Settle fresh-interest hints.
        let _ = w.registry.dp_poll(
            &mut w.kernel,
            now,
            w.pid,
            dp_hints,
            DvPoll::into_user_buffer(64, 0),
        );
        w.kernel.end_batch(now, w.pid);

        let hints = charged(&mut w, |w| {
            let _ = w.registry.dp_poll(
                &mut w.kernel,
                SimTime::from_secs(100),
                w.pid,
                dp_hints,
                DvPoll::into_user_buffer(64, 0),
            );
        });
        let none = charged(&mut w, |w| {
            let _ = w.registry.dp_poll(
                &mut w.kernel,
                SimTime::from_secs(100),
                w.pid,
                dp_none,
                DvPoll::into_user_buffer(64, 0),
            );
        });

        // One hint marked: the incremental revalidation cost.
        let fd0 = w.fds[0];
        let one = charged(&mut w, |w| {
            w.registry
                .on_fd_event(&mut w.kernel, SimTime::from_secs(100), w.pid, fd0);
            let _ = w.registry.dp_poll(
                &mut w.kernel,
                SimTime::from_secs(100),
                w.pid,
                dp_hints,
                DvPoll::into_user_buffer(64, 0),
            );
        });

        println!(
            "{:<10} {:>12.1}us {:>14.1}us {:>14.1}us {:>12.1}us",
            n,
            stock.as_nanos() as f64 / 1e3,
            hints.as_nanos() as f64 / 1e3,
            none.as_nanos() as f64 / 1e3,
            one.as_nanos() as f64 / 1e3,
        );
    }

    println!();
    println!("Result delivery: copy-out vs shared mmap (64 ready results)");
    {
        let n = 256;
        let mut w = world_with_conns(n);
        let now = SimTime::from_secs(100);
        w.kernel.begin_batch(now, w.pid);
        let dpfd = w
            .registry
            .open(&mut w.kernel, now, w.pid, DevPollConfig::default())
            .unwrap();
        let entries: Vec<PollFd> = w
            .fds
            .iter()
            .map(|&fd| PollFd::new(fd, PollBits::POLLIN))
            .collect();
        w.registry
            .write(&mut w.kernel, now, w.pid, dpfd, &entries)
            .unwrap();
        w.registry
            .dp_alloc_mmap(&mut w.kernel, now, w.pid, dpfd, 512)
            .unwrap();
        w.kernel.end_batch(now, w.pid);
        // Make 64 fds ready by feeding data.
        let mut ready_eps = Vec::new();
        for &fd in w.fds.iter().take(64) {
            let ep = w.kernel.endpoint_of(w.pid, fd).unwrap();
            ready_eps.push(ep.peer());
        }
        let t = now;
        for ep in &ready_eps {
            let _ = w.net.send(t, *ep, b"x");
        }
        while let Some(next) = w.net.next_deadline() {
            for ntf in w.net.advance(next) {
                w.kernel.on_net(next, &ntf);
            }
            for e in w.kernel.advance(next) {
                if let simkernel::KernelEvent::FdEvent { pid, fd, .. } = e {
                    w.registry.on_fd_event(&mut w.kernel, next, pid, fd);
                }
            }
        }
        let copyout = charged(&mut w, |w| {
            let _ = w.registry.dp_poll(
                &mut w.kernel,
                SimTime::from_secs(100),
                w.pid,
                dpfd,
                DvPoll::into_user_buffer(64, 0),
            );
        });
        // All 64 are cached-ready now, so a second scan revalidates them;
        // compare mmap delivery.
        let mmap = charged(&mut w, |w| {
            let _ = w.registry.dp_poll(
                &mut w.kernel,
                SimTime::from_secs(100),
                w.pid,
                dpfd,
                DvPoll::into_mmap(64, 0),
            );
        });
        println!(
            "  user-buffer copy-out: {:>8.1}us",
            copyout.as_nanos() as f64 / 1e3
        );
        println!(
            "  shared mmap area:     {:>8.1}us",
            mmap.as_nanos() as f64 / 1e3
        );
    }

    println!();
    println!("Interest update + poll: separate write()+ioctl() vs combined (§6)");
    {
        let n = 64;
        let mut w = world_with_conns(n);
        let now = SimTime::from_secs(100);
        w.kernel.begin_batch(now, w.pid);
        let dpfd = w
            .registry
            .open(&mut w.kernel, now, w.pid, DevPollConfig::default())
            .unwrap();
        w.kernel.end_batch(now, w.pid);
        let upd = [PollFd::new(w.fds[0], PollBits::POLLIN)];
        let separate = charged(&mut w, |w| {
            let _ = w
                .registry
                .write(&mut w.kernel, SimTime::from_secs(100), w.pid, dpfd, &upd);
            let _ = w.registry.dp_poll(
                &mut w.kernel,
                SimTime::from_secs(100),
                w.pid,
                dpfd,
                DvPoll::into_user_buffer(8, 0),
            );
        });
        let combined = charged(&mut w, |w| {
            let _ = w.registry.write_combined(
                &mut w.kernel,
                SimTime::from_secs(100),
                w.pid,
                dpfd,
                &upd,
            );
            let _ = w.registry.dp_poll(
                &mut w.kernel,
                SimTime::from_secs(100),
                w.pid,
                dpfd,
                DvPoll::into_user_buffer(8, 0),
            );
        });
        println!("  separate: {:>8.1}us", separate.as_nanos() as f64 / 1e3);
        println!("  combined: {:>8.1}us", combined.as_nanos() as f64 / 1e3);
    }

    wall_microbench();
}

/// Wall-clock microbenchmarks of the simulator's two hottest loops:
/// engine event dispatch and the `DP_POLL` interest scan. Unlike the
/// simulated cost tables above, these measure *this machine's* real
/// time — the criterion-shim style numbers behind the BENCH.json
/// throughput lane. (Binary drivers are exempt from the wallclock
/// lint; library code never reads the clock.)
fn wall_microbench() {
    use simcore::engine::{BoxedEvent, Engine, Event};
    use std::time::Instant;

    /// Typed payload: the arena dispatch path, no per-event allocation.
    enum Tick {
        Add,
    }
    impl Event<u64> for Tick {
        fn fire(self, state: &mut u64, _e: &mut Engine<u64, Self>) {
            match self {
                Tick::Add => *state += 1,
            }
        }
    }

    /// Median ns-per-unit over 5 samples; `f` runs the workload once
    /// and returns how many units it dispatched.
    fn per_unit_ns(mut f: impl FnMut() -> u64) -> f64 {
        let _ = f(); // warm-up
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                let units = f().max(1);
                start.elapsed().as_nanos() as f64 / units as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    }

    println!();
    println!("Wall-clock microbenchmarks (real time on this machine, median of 5)");

    const N: u64 = 200_000;
    let typed = per_unit_ns(|| {
        let mut e: Engine<u64, Tick> = Engine::new();
        let mut acc = 0u64;
        for i in 0..N {
            e.schedule_at(SimTime::from_nanos(i % 977), Tick::Add);
        }
        e.run(&mut acc);
        acc
    });
    let boxed = per_unit_ns(|| {
        let mut e: Engine<u64> = Engine::new();
        let mut acc = 0u64;
        for i in 0..N {
            e.schedule_at(
                SimTime::from_nanos(i % 977),
                BoxedEvent::new(|s: &mut u64, _e| *s += 1),
            );
        }
        e.run(&mut acc);
        acc
    });
    println!("  engine dispatch, typed arena:  {typed:>7.1} ns/event");
    println!("  engine dispatch, boxed:        {boxed:>7.1} ns/event");

    /// Chain payload: each event schedules a same-instant follow-up,
    /// exercising the batch-dispatch due-now lane (follow-ups at `now`
    /// bypass the heap entirely).
    enum Chain {
        Hop(u32),
    }
    impl Event<u64> for Chain {
        fn fire(self, state: &mut u64, e: &mut Engine<u64, Self>) {
            let Chain::Hop(left) = self;
            *state += 1;
            if left > 0 {
                e.schedule_at(e.now(), Chain::Hop(left - 1));
            }
        }
    }
    let burst = per_unit_ns(|| {
        let mut e: Engine<u64, Chain> = Engine::new();
        let mut acc = 0u64;
        // 2_000 roots, each chaining 99 same-instant follow-ups.
        for i in 0..2_000u64 {
            e.schedule_at(SimTime::from_nanos(i % 977), Chain::Hop(99));
        }
        e.run(&mut acc);
        acc
    });
    println!("  engine dispatch, same-instant chain: {burst:>7.1} ns/event");

    for (label, hints) in [("hints", true), ("full scan", false)] {
        let mut w = world_with_conns(501);
        let now = SimTime::from_secs(100);
        w.kernel.begin_batch(now, w.pid);
        let dpfd = w
            .registry
            .open(
                &mut w.kernel,
                now,
                w.pid,
                DevPollConfig {
                    hints,
                    ..DevPollConfig::default()
                },
            )
            .unwrap();
        let entries: Vec<PollFd> = w
            .fds
            .iter()
            .map(|&fd| PollFd::new(fd, PollBits::POLLIN))
            .collect();
        w.registry
            .write(&mut w.kernel, now, w.pid, dpfd, &entries)
            .unwrap();
        // Settle fresh-interest hints.
        let _ = w.registry.dp_poll(
            &mut w.kernel,
            now,
            w.pid,
            dpfd,
            DvPoll::into_user_buffer(64, 0),
        );
        w.kernel.end_batch(now, w.pid);
        let calls = 2_000u64;
        let ns = per_unit_ns(|| {
            for _ in 0..calls {
                w.kernel.begin_batch(now, w.pid);
                let _ = w.registry.dp_poll(
                    &mut w.kernel,
                    now,
                    w.pid,
                    dpfd,
                    DvPoll::into_user_buffer(64, 0),
                );
                w.kernel.end_batch(now, w.pid);
            }
            calls
        });
        println!("  DP_POLL scan (501 fds, {label:<9}): {ns:>7.1} ns/call");
    }
}
