//! The perf baseline: a versioned, machine-readable `BENCH.json`
//! emitted by every `figures` / `verify_repro` invocation, plus the
//! comparator behind the `bench_gate` binary.
//!
//! A report records, per sweep, the shape metrics the paper plots
//! (reply-rate summary, error percentage, latency quantiles) and a
//! stable probe-snapshot digest per point, alongside the volatile
//! wall-clock fields. The comparator checks a current report against
//! the checked-in `BENCH_BASELINE.json`:
//!
//! * identity fields (tool, seed, config fingerprint) must match — a
//!   mismatch means the baseline needs an intentional refresh, not a
//!   tolerance;
//! * shape metrics must sit within tolerances ([`GateTolerance`]);
//! * wall-clock may only regress within a factor (opt-in, because
//!   absolute wall time is machine-dependent);
//! * probe digests are compared strictly only with
//!   [`GateTolerance::strict_digest`] — any intentional behaviour
//!   change alters digests, so by default a mismatch is a note.
//!
//! No serde: the schema is small and closed, so emission is `format!`
//! and parsing is the minimal recursive-descent parser below.

use std::fmt::Write as _;

use crate::figures::FigureConfig;
use httperf::RunReport;
use simcore::probe::fnv1a;

/// Schema version stamped into every report.
///
/// v2 added the throughput lane: per-sweep `events` (simulation events
/// dispatched) and `sim_ms` (summed simulated time), from which the
/// gate derives events-per-wall-second and sim-time-per-wall-second.
/// v3 added the memory lane: per-sweep `mem_bytes` (peak server-side
/// heap across the sweep's points) and `eps_peak` (peak simultaneous
/// kernel endpoints), from which the gate derives bytes-per-connection.
/// Older documents still parse (the lane fields default to zero); the
/// comparator turns the version skew into a baseline-refresh hint
/// rather than a parse error.
pub const BENCH_VERSION: u64 = 3;

/// One benchmark point: the shape metrics of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// Targeted request rate.
    pub rate: f64,
    /// Reply-rate summary (avg/stddev/min/max over one-second windows).
    pub avg: f64,
    /// Standard deviation of the window rates.
    pub stddev: f64,
    /// Smallest window rate.
    pub min: f64,
    /// Largest window rate.
    pub max: f64,
    /// Errors as a percentage of attempted connections.
    pub error_percent: f64,
    /// Median connection time, milliseconds.
    pub median_ms: f64,
    /// p90 connection time, milliseconds.
    pub p90_ms: f64,
    /// Successful replies.
    pub replies: u64,
    /// Connections attempted.
    pub attempted: u64,
    /// Stable hex digest of the run's probe snapshot.
    pub probe_digest: String,
}

impl PointRecord {
    /// Extracts the record from a finished run.
    pub fn from_report(r: &mut RunReport) -> PointRecord {
        PointRecord {
            rate: r.target_rate,
            avg: r.rate.avg,
            stddev: r.rate.stddev,
            min: r.rate.min,
            max: r.rate.max,
            error_percent: r.error_percent(),
            median_ms: r.median_latency_ms(),
            p90_ms: r.latency_quantile_ms(0.9),
            replies: r.replies,
            attempted: r.attempted,
            probe_digest: r.probe_digest_hex(),
        }
    }
}

/// One sweep: every point of one (server, inactive load) curve, in
/// rate order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Server label (`ServerKind::label`).
    pub server: String,
    /// Inactive connection population.
    pub inactive: usize,
    /// Summed per-run wall time of the sweep's points, milliseconds.
    /// Volatile: excluded from determinism comparisons.
    pub wall_ms: f64,
    /// Summed simulation events dispatched across the sweep's points
    /// (schema v2; zero when parsed from a v1 document). Deterministic.
    pub events: u64,
    /// Summed simulated run time across the sweep's points,
    /// milliseconds (schema v2; zero for v1 documents). Deterministic.
    pub sim_ms: f64,
    /// Peak end-of-run server-side heap bytes across the sweep's points
    /// (schema v3; zero for older documents). Deterministic.
    pub mem_bytes: u64,
    /// Peak simultaneously-open kernel endpoints across the sweep's
    /// points (schema v3; zero for older documents). Deterministic.
    pub eps_peak: u64,
    /// Points in ascending rate order.
    pub points: Vec<PointRecord>,
}

impl SweepRecord {
    /// Server-side heap bytes per peak connection — the memory lane's
    /// headline number. `None` without endpoint data.
    pub fn mem_bytes_per_conn(&self) -> Option<f64> {
        (self.eps_peak > 0 && self.mem_bytes > 0)
            .then(|| self.mem_bytes as f64 / self.eps_peak as f64)
    }

    /// Simulation events dispatched per wall-clock second — the
    /// throughput lane's headline number. `None` without wall data.
    pub fn events_per_wall_sec(&self) -> Option<f64> {
        (self.wall_ms > 0.0 && self.events > 0).then(|| self.events as f64 / (self.wall_ms / 1e3))
    }

    /// Simulated milliseconds advanced per wall-clock millisecond.
    /// `None` without wall data.
    pub fn sim_per_wall(&self) -> Option<f64> {
        (self.wall_ms > 0.0 && self.sim_ms > 0.0).then(|| self.sim_ms / self.wall_ms)
    }
}

/// A whole `BENCH.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`BENCH_VERSION`]).
    pub version: u64,
    /// Producing tool (`"figures"`, `"verify_repro"`).
    pub tool: String,
    /// RNG seed of every run in the report.
    pub seed: u64,
    /// Fingerprint of the sweep configuration (rates, conns, seed).
    pub config: String,
    /// Worker count the harness ran with (informational).
    pub jobs: usize,
    /// End-to-end harness wall time, milliseconds. Volatile.
    pub total_wall_ms: f64,
    /// Sweeps in canonical (server, inactive) order.
    pub sweeps: Vec<SweepRecord>,
}

/// Stable fingerprint of a sweep configuration. Two invocations with
/// the same rates/conns/seed — and therefore comparable shape metrics —
/// fingerprint identically.
pub fn config_fingerprint(config: &FigureConfig) -> String {
    let mut text = String::new();
    for r in &config.rates {
        let _ = write!(text, "{r},");
    }
    let _ = write!(text, "conns={};seed={}", config.conns, config.seed);
    format!("{:016x}", fnv1a(text.as_bytes()))
}

impl BenchReport {
    /// A copy with every volatile (wall-clock) field zeroed — the form
    /// determinism tests compare byte-for-byte.
    pub fn normalized(&self) -> BenchReport {
        let mut out = self.clone();
        out.total_wall_ms = 0.0;
        out.jobs = 0;
        for s in &mut out.sweeps {
            s.wall_ms = 0.0;
        }
        out
    }

    /// Renders the document (pretty-printed, stable field order, one
    /// point object per line).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench_version\": {},", self.version);
        let _ = writeln!(out, "  \"tool\": \"{}\",", self.tool);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"config\": \"{}\",", self.config);
        let _ = writeln!(out, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(out, "  \"total_wall_ms\": {},", self.total_wall_ms);
        let _ = writeln!(out, "  \"sweeps\": [");
        for (i, s) in self.sweeps.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"server\": \"{}\",", s.server);
            let _ = writeln!(out, "      \"inactive\": {},", s.inactive);
            let _ = writeln!(out, "      \"wall_ms\": {},", s.wall_ms);
            let _ = writeln!(out, "      \"events\": {},", s.events);
            let _ = writeln!(out, "      \"sim_ms\": {},", s.sim_ms);
            let _ = writeln!(out, "      \"mem_bytes\": {},", s.mem_bytes);
            let _ = writeln!(out, "      \"eps_peak\": {},", s.eps_peak);
            let _ = writeln!(out, "      \"points\": [");
            for (j, p) in s.points.iter().enumerate() {
                let comma = if j + 1 < s.points.len() { "," } else { "" };
                let _ = writeln!(out, "        {}{comma}", point_json(p));
            }
            let _ = writeln!(out, "      ]");
            let comma = if i + 1 < self.sweeps.len() { "," } else { "" };
            let _ = writeln!(out, "    }}{comma}");
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a document emitted by [`BenchReport::to_json`] (or any
    /// JSON matching the schema).
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let value = Json::parse(text)?;
        let version = value.field_u64("bench_version")?;
        if version > BENCH_VERSION {
            return Err(format!(
                "bench_version {version} is newer than this gate understands ({BENCH_VERSION})"
            ));
        }
        let mut sweeps = Vec::new();
        for sv in value.field_array("sweeps")? {
            let mut points = Vec::new();
            for pv in sv.field_array("points")? {
                points.push(PointRecord {
                    rate: pv.field_f64("rate")?,
                    avg: pv.field_f64("avg")?,
                    stddev: pv.field_f64("stddev")?,
                    min: pv.field_f64("min")?,
                    max: pv.field_f64("max")?,
                    error_percent: pv.field_f64("error_percent")?,
                    median_ms: pv.field_f64("median_ms")?,
                    p90_ms: pv.field_f64("p90_ms")?,
                    replies: pv.field_u64("replies")?,
                    attempted: pv.field_u64("attempted")?,
                    probe_digest: pv.field_str("probe_digest")?.to_string(),
                });
            }
            sweeps.push(SweepRecord {
                server: sv.field_str("server")?.to_string(),
                inactive: sv.field_u64("inactive")? as usize,
                wall_ms: sv.field_f64("wall_ms")?,
                // Throughput-lane fields arrived in schema v2; a v1
                // document simply lacks them.
                events: match sv.get("events") {
                    Some(_) => sv.field_u64("events")?,
                    None => 0,
                },
                sim_ms: match sv.get("sim_ms") {
                    Some(_) => sv.field_f64("sim_ms")?,
                    None => 0.0,
                },
                // Memory-lane fields arrived in schema v3; older
                // documents simply lack them.
                mem_bytes: match sv.get("mem_bytes") {
                    Some(_) => sv.field_u64("mem_bytes")?,
                    None => 0,
                },
                eps_peak: match sv.get("eps_peak") {
                    Some(_) => sv.field_u64("eps_peak")?,
                    None => 0,
                },
                points,
            });
        }
        Ok(BenchReport {
            version,
            tool: value.field_str("tool")?.to_string(),
            seed: value.field_u64("seed")?,
            config: value.field_str("config")?.to_string(),
            jobs: value.field_u64("jobs")? as usize,
            total_wall_ms: value.field_f64("total_wall_ms")?,
            sweeps,
        })
    }
}

fn point_json(p: &PointRecord) -> String {
    format!(
        "{{\"rate\":{},\"avg\":{},\"stddev\":{},\"min\":{},\"max\":{},\
         \"error_percent\":{},\"median_ms\":{},\"p90_ms\":{},\
         \"replies\":{},\"attempted\":{},\"probe_digest\":\"{}\"}}",
        p.rate,
        p.avg,
        p.stddev,
        p.min,
        p.max,
        p.error_percent,
        p.median_ms,
        p.p90_ms,
        p.replies,
        p.attempted,
        p.probe_digest,
    )
}

/// Groups finished runs (with their per-run wall times) into
/// [`SweepRecord`]s in canonical (server, inactive) order, points
/// sorted by rate — the folding `verify_repro` uses, where the run grid
/// is scattered rather than a clean rate sweep.
pub fn group_runs(mut runs: Vec<(RunReport, f64)>) -> Vec<SweepRecord> {
    runs.sort_by(|(a, _), (b, _)| {
        (a.server.as_str(), a.inactive)
            .cmp(&(b.server.as_str(), b.inactive))
            .then(a.target_rate.total_cmp(&b.target_rate))
    });
    let mut sweeps: Vec<SweepRecord> = Vec::new();
    for (mut report, wall) in runs {
        let point = PointRecord::from_report(&mut report);
        match sweeps.last_mut() {
            Some(s) if s.server == report.server && s.inactive == report.inactive => {
                s.wall_ms += wall;
                s.events += report.events;
                s.sim_ms += report.sim_secs * 1e3;
                s.mem_bytes = s.mem_bytes.max(report.mem_server_bytes);
                s.eps_peak = s.eps_peak.max(report.mem_eps_peak);
                s.points.push(point);
            }
            _ => sweeps.push(SweepRecord {
                server: report.server.clone(),
                inactive: report.inactive,
                wall_ms: wall,
                events: report.events,
                sim_ms: report.sim_secs * 1e3,
                mem_bytes: report.mem_server_bytes,
                eps_peak: report.mem_eps_peak,
                points: vec![point],
            }),
        }
    }
    sweeps
}

// ---------------------------------------------------------------------
// Gate comparison
// ---------------------------------------------------------------------

/// Drift tolerances for the benchmark gate.
#[derive(Debug, Clone)]
pub struct GateTolerance {
    /// Relative tolerance on average reply rate.
    pub rate_rel: f64,
    /// Absolute tolerance on error percentage (points).
    pub err_abs: f64,
    /// Relative tolerance on median/p90 latency (with a floor, below
    /// which sub-millisecond jitter is ignored).
    pub latency_rel: f64,
    /// Latency floor, milliseconds: differences where both sides sit
    /// under this are never violations.
    pub latency_floor_ms: f64,
    /// Fail when `current.total_wall_ms > factor * baseline`. `None`
    /// disables the wall gate (wall time is machine-dependent).
    pub wall_factor: Option<f64>,
    /// Throughput lane: fail when a sweep's events-per-wall-second
    /// drops below `baseline / factor`. `None` keeps the lane advisory
    /// (regressions beyond the same soft 1.5x slack surface as notes) —
    /// wall-clock throughput is machine-dependent, so the hard gate is
    /// opt-in like `wall_factor`.
    pub throughput_factor: Option<f64>,
    /// Memory lane: fail when a sweep's bytes-per-connection exceeds
    /// `factor * baseline`. `None` keeps the lane advisory (growth
    /// beyond the same soft 1.5x slack surfaces as a note). Unlike the
    /// wall lanes this number is deterministic, but per-connection cost
    /// legitimately moves with intentional state additions, so the hard
    /// gate is still opt-in.
    pub mem_factor: Option<f64>,
    /// Treat probe-digest mismatches as violations instead of notes.
    pub strict_digest: bool,
}

/// Slack applied to the advisory (no `throughput_factor`) lane before a
/// regression is worth a note.
const THROUGHPUT_NOTE_SLACK: f64 = 1.5;

impl Default for GateTolerance {
    fn default() -> GateTolerance {
        GateTolerance {
            rate_rel: 0.10,
            err_abs: 5.0,
            latency_rel: 0.50,
            latency_floor_ms: 1.0,
            wall_factor: None,
            throughput_factor: None,
            mem_factor: None,
            strict_digest: false,
        }
    }
}

/// The comparator's verdict.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// Failures: any entry makes the gate red.
    pub violations: Vec<String>,
    /// Informational drift (e.g. digest changes under the default
    /// tolerance).
    pub notes: Vec<String>,
}

impl GateOutcome {
    /// Green?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn rel_diff(current: f64, base: f64) -> f64 {
    (current - base).abs() / base.abs().max(1.0)
}

/// Compares a current report against the baseline.
pub fn compare(baseline: &BenchReport, current: &BenchReport, tol: &GateTolerance) -> GateOutcome {
    let mut out = GateOutcome::default();
    let refresh_hint = "refresh BENCH_BASELINE.json intentionally (see EXPERIMENTS.md)";

    if baseline.tool != current.tool {
        out.violations.push(format!(
            "tool mismatch: baseline {:?} vs current {:?} — {refresh_hint}",
            baseline.tool, current.tool
        ));
    }
    if baseline.seed != current.seed {
        out.violations.push(format!(
            "seed mismatch: baseline {} vs current {} — {refresh_hint}",
            baseline.seed, current.seed
        ));
    }
    if baseline.config != current.config {
        out.violations.push(format!(
            "config fingerprint mismatch: baseline {} vs current {} — the sweep \
             grid changed; {refresh_hint}",
            baseline.config, current.config
        ));
    }
    if baseline.version != current.version {
        // An old-schema baseline still parses (missing lane fields are
        // zero), so this is a refresh prompt, not a parse error.
        out.violations.push(format!(
            "schema version mismatch: baseline v{} vs current v{} — {refresh_hint}",
            baseline.version, current.version
        ));
    }
    if !out.violations.is_empty() {
        // Identity mismatches make metric comparison meaningless.
        return out;
    }

    for base_sweep in &baseline.sweeps {
        let Some(cur_sweep) = current
            .sweeps
            .iter()
            .find(|s| s.server == base_sweep.server && s.inactive == base_sweep.inactive)
        else {
            out.violations.push(format!(
                "sweep {}/load {} present in baseline but missing from current report",
                base_sweep.server, base_sweep.inactive
            ));
            continue;
        };
        compare_sweep(base_sweep, cur_sweep, tol, &mut out);
    }
    for cur_sweep in &current.sweeps {
        if !baseline
            .sweeps
            .iter()
            .any(|s| s.server == cur_sweep.server && s.inactive == cur_sweep.inactive)
        {
            out.notes.push(format!(
                "sweep {}/load {} is new (absent from baseline)",
                cur_sweep.server, cur_sweep.inactive
            ));
        }
    }

    if let Some(factor) = tol.wall_factor {
        if baseline.total_wall_ms > 0.0 && current.total_wall_ms > factor * baseline.total_wall_ms {
            out.violations.push(format!(
                "wall-clock regression: {:.0} ms vs baseline {:.0} ms (limit {factor}x)",
                current.total_wall_ms, baseline.total_wall_ms
            ));
        }
    }
    out
}

fn compare_sweep(
    base: &SweepRecord,
    cur: &SweepRecord,
    tol: &GateTolerance,
    out: &mut GateOutcome,
) {
    let ctx = format!("{}/load {}", base.server, base.inactive);
    // Throughput lane: events dispatched per wall-second. Wall-clock
    // dependent, so only comparable when both sides carry wall data.
    if let (Some(base_eps), Some(cur_eps)) = (base.events_per_wall_sec(), cur.events_per_wall_sec())
    {
        let lane = format!(
            "{ctx}: throughput {:.0} events/s vs baseline {:.0} events/s",
            cur_eps, base_eps
        );
        match tol.throughput_factor {
            Some(factor) if cur_eps * factor < base_eps => {
                out.violations
                    .push(format!("{lane} (limit {factor}x slowdown)"));
            }
            None if cur_eps * THROUGHPUT_NOTE_SLACK < base_eps => {
                out.notes.push(lane);
            }
            _ => {}
        }
    }
    // Memory lane: server-side bytes per peak connection. Deterministic,
    // so comparable whenever both sides carry endpoint data.
    if let (Some(base_bpc), Some(cur_bpc)) = (base.mem_bytes_per_conn(), cur.mem_bytes_per_conn()) {
        let lane = format!(
            "{ctx}: memory {:.1} bytes/conn vs baseline {:.1} bytes/conn",
            cur_bpc, base_bpc
        );
        match tol.mem_factor {
            Some(factor) if cur_bpc > factor * base_bpc => {
                out.violations.push(format!("{lane} (limit {factor}x)"));
            }
            None if cur_bpc > THROUGHPUT_NOTE_SLACK * base_bpc => {
                out.notes.push(lane);
            }
            _ => {}
        }
    }
    if base.points.len() != cur.points.len() {
        out.violations.push(format!(
            "{ctx}: point count changed ({} -> {})",
            base.points.len(),
            cur.points.len()
        ));
        return;
    }
    for (bp, cp) in base.points.iter().zip(&cur.points) {
        if bp.rate != cp.rate {
            out.violations.push(format!(
                "{ctx}: rate grid changed ({} -> {})",
                bp.rate, cp.rate
            ));
            continue;
        }
        let at = format!("{ctx} rate {}", bp.rate);
        if rel_diff(cp.avg, bp.avg) > tol.rate_rel {
            out.violations.push(format!(
                "{at}: avg reply rate {:.1} drifted from baseline {:.1} (> {:.0}%)",
                cp.avg,
                bp.avg,
                tol.rate_rel * 100.0
            ));
        }
        if (cp.error_percent - bp.error_percent).abs() > tol.err_abs {
            out.violations.push(format!(
                "{at}: error rate {:.1}% drifted from baseline {:.1}% (> {} points)",
                cp.error_percent, bp.error_percent, tol.err_abs
            ));
        }
        for (name, c, b) in [
            ("median latency", cp.median_ms, bp.median_ms),
            ("p90 latency", cp.p90_ms, bp.p90_ms),
        ] {
            let floored = c.max(b) >= tol.latency_floor_ms;
            if floored && rel_diff(c, b) > tol.latency_rel {
                out.violations.push(format!(
                    "{at}: {name} {c:.2} ms drifted from baseline {b:.2} ms (> {:.0}%)",
                    tol.latency_rel * 100.0
                ));
            }
        }
        if bp.probe_digest != cp.probe_digest {
            let msg = format!(
                "{at}: probe digest {} differs from baseline {}",
                cp.probe_digest, bp.probe_digest
            );
            if tol.strict_digest {
                out.violations.push(msg);
            } else {
                out.notes.push(msg);
            }
        }
    }
}

/// Mean of a point metric over a sweep (0.0 when empty).
fn sweep_mean(s: &SweepRecord, metric: impl Fn(&PointRecord) -> f64) -> f64 {
    if s.points.is_empty() {
        return 0.0;
    }
    s.points.iter().map(metric).sum::<f64>() / s.points.len() as f64
}

/// Renders a per-sweep baseline-vs-current lane diff as a GitHub
/// markdown table, followed by the gate's violations and notes. This is
/// what `bench_gate` appends to the CI job summary when the gate goes
/// red, so a failure shows *which* lane moved (reply rate, latency,
/// events/s) without downloading artifacts.
pub fn lane_diff_markdown(
    baseline: &BenchReport,
    current: &BenchReport,
    outcome: &GateOutcome,
) -> String {
    let mut out = String::from("## Bench gate: baseline vs current lanes\n\n");
    let _ = writeln!(
        out,
        "| sweep | load | replies/s (base → cur) | median ms (base → cur) | events/s (base → cur) | B/conn (base → cur) |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|");
    for b in &baseline.sweeps {
        let cur = current
            .sweeps
            .iter()
            .find(|s| s.server == b.server && s.inactive == b.inactive);
        let base_rate = sweep_mean(b, |p| p.avg);
        let base_lat = sweep_mean(b, |p| p.median_ms);
        let base_eps = b
            .events_per_wall_sec()
            .map_or("—".to_string(), |e| format!("{e:.0}"));
        let base_bpc = b
            .mem_bytes_per_conn()
            .map_or("—".to_string(), |m| format!("{m:.0}"));
        match cur {
            Some(c) => {
                let cur_eps = c
                    .events_per_wall_sec()
                    .map_or("—".to_string(), |e| format!("{e:.0}"));
                let cur_bpc = c
                    .mem_bytes_per_conn()
                    .map_or("—".to_string(), |m| format!("{m:.0}"));
                let _ = writeln!(
                    out,
                    "| {} | {} | {:.1} → {:.1} | {:.2} → {:.2} | {} → {} | {} → {} |",
                    b.server,
                    b.inactive,
                    base_rate,
                    sweep_mean(c, |p| p.avg),
                    base_lat,
                    sweep_mean(c, |p| p.median_ms),
                    base_eps,
                    cur_eps,
                    base_bpc,
                    cur_bpc,
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "| {} | {} | {base_rate:.1} → missing | {base_lat:.2} → missing | {base_eps} → missing | {base_bpc} → missing |",
                    b.server, b.inactive,
                );
            }
        }
    }
    if !outcome.violations.is_empty() {
        out.push_str("\n### Violations\n\n");
        for v in &outcome.violations {
            let _ = writeln!(out, "- ❌ {v}");
        }
    }
    if !outcome.notes.is_empty() {
        out.push_str("\n### Notes\n\n");
        for n in &outcome.notes {
            let _ = writeln!(out, "- {n}");
        }
    }
    out
}

// ---------------------------------------------------------------------
// Minimal JSON parsing (the schema above only)
// ---------------------------------------------------------------------

/// A parsed JSON value. Numbers are kept as `f64`; the schema never
/// stores integers above 2^53.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn field(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    fn field_f64(&self, key: &str) -> Result<f64, String> {
        match self.field(key)? {
            Json::Num(n) => Ok(*n),
            other => Err(format!("field {key:?} is not a number: {other:?}")),
        }
    }

    fn field_u64(&self, key: &str) -> Result<u64, String> {
        let n = self.field_f64(key)?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(format!("field {key:?} is not a non-negative integer: {n}"));
        }
        Ok(n as u64)
    }

    fn field_str(&self, key: &str) -> Result<&str, String> {
        match self.field(key)? {
            Json::Str(s) => Ok(s),
            other => Err(format!("field {key:?} is not a string: {other:?}")),
        }
    }

    fn field_array(&self, key: &str) -> Result<&[Json], String> {
        match self.field(key)? {
            Json::Arr(items) => Ok(items),
            other => Err(format!("field {key:?} is not an array: {other:?}")),
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            want as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let ch_len = match b {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = bytes
                    .get(*pos..*pos + ch_len)
                    .ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' (found {other:?})")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            other => return Err(format!("expected ',' or '}}' (found {other:?})")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            version: BENCH_VERSION,
            tool: "figures".into(),
            seed: 42,
            config: "deadbeefdeadbeef".into(),
            jobs: 4,
            total_wall_ms: 1234.5,
            sweeps: vec![SweepRecord {
                server: "poll".into(),
                inactive: 251,
                wall_ms: 600.25,
                events: 1_200_000,
                sim_ms: 90_000.0,
                mem_bytes: 1_048_576,
                eps_peak: 16_384,
                points: vec![PointRecord {
                    rate: 700.0,
                    avg: 699.5,
                    stddev: 2.25,
                    min: 690.0,
                    max: 705.0,
                    error_percent: 0.5,
                    median_ms: 13.75,
                    p90_ms: 21.5,
                    replies: 5960,
                    attempted: 6000,
                    probe_digest: "0123456789abcdef".into(),
                }],
            }],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let report = sample_report();
        let parsed = BenchReport::from_json(&report.to_json()).expect("roundtrip parses");
        assert_eq!(parsed, report);
        // And the rendered form itself is a fixed point.
        assert_eq!(parsed.to_json(), report.to_json());
    }

    #[test]
    fn normalization_zeroes_only_volatile_fields() {
        let report = sample_report();
        let norm = report.normalized();
        assert_eq!(norm.total_wall_ms, 0.0);
        assert_eq!(norm.jobs, 0);
        assert_eq!(norm.sweeps[0].wall_ms, 0.0);
        assert_eq!(norm.sweeps[0].points, report.sweeps[0].points);
    }

    #[test]
    fn gate_green_on_identical_reports() {
        let report = sample_report();
        let outcome = compare(&report, &report, &GateTolerance::default());
        assert!(outcome.ok(), "{:?}", outcome.violations);
        assert!(outcome.notes.is_empty());
    }

    #[test]
    fn gate_red_on_rate_drift_and_missing_sweep() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.sweeps[0].points[0].avg *= 0.8; // 20% > 10% tolerance
        let outcome = compare(&base, &cur, &GateTolerance::default());
        assert_eq!(outcome.violations.len(), 1);
        assert!(outcome.violations[0].contains("avg reply rate"));

        let mut empty = base.clone();
        empty.sweeps.clear();
        let outcome = compare(&base, &empty, &GateTolerance::default());
        assert!(outcome
            .violations
            .iter()
            .any(|v| v.contains("missing from current")));
    }

    #[test]
    fn gate_identity_mismatch_short_circuits() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.seed = 7;
        cur.sweeps[0].points[0].avg = 0.0; // would violate, but identity wins
        let outcome = compare(&base, &cur, &GateTolerance::default());
        assert_eq!(outcome.violations.len(), 1);
        assert!(outcome.violations[0].contains("seed mismatch"));
    }

    #[test]
    fn gate_digest_strictness_and_wall_factor() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.sweeps[0].points[0].probe_digest = "ffffffffffffffff".into();
        cur.total_wall_ms = base.total_wall_ms * 20.0;

        let default_tol = GateTolerance::default();
        let outcome = compare(&base, &cur, &default_tol);
        assert!(outcome.ok());
        assert_eq!(outcome.notes.len(), 1);

        let strict = GateTolerance {
            strict_digest: true,
            wall_factor: Some(10.0),
            ..GateTolerance::default()
        };
        let outcome = compare(&base, &cur, &strict);
        assert_eq!(outcome.violations.len(), 2);
    }

    #[test]
    fn latency_floor_suppresses_submillisecond_jitter() {
        let base = sample_report();
        let mut cur = base.clone();
        // Both sides under the 1 ms floor: a 3x relative change is noise.
        let mut b2 = base.clone();
        b2.sweeps[0].points[0].median_ms = 0.2;
        b2.sweeps[0].points[0].p90_ms = 0.3;
        cur.sweeps[0].points[0].median_ms = 0.6;
        cur.sweeps[0].points[0].p90_ms = 0.9;
        assert!(compare(&b2, &cur, &GateTolerance::default()).ok());
    }

    #[test]
    fn config_fingerprint_tracks_the_grid() {
        let quick = FigureConfig::quick();
        let full = FigureConfig::default();
        assert_ne!(config_fingerprint(&quick), config_fingerprint(&full));
        assert_eq!(config_fingerprint(&quick), config_fingerprint(&quick));
        let mut reseeded = FigureConfig::quick();
        reseeded.seed = 43;
        assert_ne!(config_fingerprint(&quick), config_fingerprint(&reseeded));
    }

    #[test]
    fn v1_documents_parse_with_zero_lane_fields_and_hint_at_refresh() {
        // A checked-in v1 baseline (no events/sim_ms) must keep
        // parsing; the comparator then prompts a refresh instead of the
        // gate erroring out.
        let mut v1 = sample_report();
        v1.version = 1;
        let mut text = v1.to_json();
        text = text
            .lines()
            .filter(|l| !l.contains("\"events\"") && !l.contains("\"sim_ms\""))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = BenchReport::from_json(&text).expect("v1 document parses");
        assert_eq!(parsed.version, 1);
        assert_eq!(parsed.sweeps[0].events, 0);
        assert_eq!(parsed.sweeps[0].sim_ms, 0.0);
        assert_eq!(parsed.sweeps[0].events_per_wall_sec(), None);

        let outcome = compare(&parsed, &sample_report(), &GateTolerance::default());
        assert!(outcome
            .violations
            .iter()
            .any(|v| v.contains("schema version mismatch") && v.contains("refresh")));
    }

    #[test]
    fn v2_documents_parse_with_zero_mem_fields_and_hint_at_refresh() {
        // A checked-in v2 baseline (no mem_bytes/eps_peak) must keep
        // parsing; the comparator then prompts a refresh instead of the
        // gate erroring out.
        let mut v2 = sample_report();
        v2.version = 2;
        let mut text = v2.to_json();
        text = text
            .lines()
            .filter(|l| !l.contains("\"mem_bytes\"") && !l.contains("\"eps_peak\""))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = BenchReport::from_json(&text).expect("v2 document parses");
        assert_eq!(parsed.version, 2);
        assert_eq!(parsed.sweeps[0].mem_bytes, 0);
        assert_eq!(parsed.sweeps[0].eps_peak, 0);
        assert_eq!(parsed.sweeps[0].mem_bytes_per_conn(), None);

        let outcome = compare(&parsed, &sample_report(), &GateTolerance::default());
        assert!(outcome
            .violations
            .iter()
            .any(|v| v.contains("schema version mismatch") && v.contains("refresh")));
    }

    #[test]
    fn mem_lane_notes_by_default_and_gates_on_opt_in() {
        let base = sample_report();
        let mut cur = base.clone();
        // Same peak connections, twice the bytes: a per-connection
        // memory regression.
        cur.sweeps[0].mem_bytes = base.sweeps[0].mem_bytes * 2;

        let outcome = compare(&base, &cur, &GateTolerance::default());
        assert!(outcome.ok());
        assert!(outcome.notes.iter().any(|n| n.contains("bytes/conn")));

        let gated = GateTolerance {
            mem_factor: Some(1.25),
            ..GateTolerance::default()
        };
        let outcome = compare(&base, &cur, &gated);
        assert_eq!(outcome.violations.len(), 1);
        assert!(outcome.violations[0].contains("bytes/conn"));

        // Mild growth: green under the gate, quiet under the slack.
        let mut mild = base.clone();
        mild.sweeps[0].mem_bytes = base.sweeps[0].mem_bytes + base.sweeps[0].mem_bytes / 10;
        assert!(compare(&base, &mild, &gated).ok());
        assert!(compare(&base, &mild, &GateTolerance::default())
            .notes
            .is_empty());
    }

    #[test]
    fn throughput_lane_notes_by_default_and_gates_on_opt_in() {
        let base = sample_report();
        let mut cur = base.clone();
        // Same work, 4x the wall time: a real throughput regression.
        cur.sweeps[0].wall_ms = base.sweeps[0].wall_ms * 4.0;

        let outcome = compare(&base, &cur, &GateTolerance::default());
        assert!(outcome.ok());
        assert!(outcome.notes.iter().any(|n| n.contains("throughput")));

        let gated = GateTolerance {
            throughput_factor: Some(2.0),
            ..GateTolerance::default()
        };
        let outcome = compare(&base, &cur, &gated);
        assert_eq!(outcome.violations.len(), 1);
        assert!(outcome.violations[0].contains("throughput"));

        // Within the opt-in factor: green, and quiet under the 1.5x
        // advisory slack too.
        let mut mild = base.clone();
        mild.sweeps[0].wall_ms = base.sweeps[0].wall_ms * 1.2;
        assert!(compare(&base, &mild, &gated).ok());
        assert!(compare(&base, &mild, &GateTolerance::default())
            .notes
            .is_empty());
    }

    #[test]
    fn lane_diff_lists_every_sweep_and_failure() {
        let base = sample_report();
        let mut cur = base.clone();
        cur.sweeps[0].points[0].avg *= 0.8;
        cur.sweeps[0].wall_ms = base.sweeps[0].wall_ms * 4.0;
        cur.sweeps.push(SweepRecord {
            server: "extra".into(),
            inactive: 1,
            wall_ms: 1.0,
            events: 10,
            sim_ms: 1.0,
            mem_bytes: 0,
            eps_peak: 0,
            points: vec![],
        });
        let tol = GateTolerance {
            throughput_factor: Some(2.0),
            ..GateTolerance::default()
        };
        let outcome = compare(&base, &cur, &tol);
        assert!(!outcome.ok());
        let md = lane_diff_markdown(&base, &cur, &outcome);
        // One table row per baseline sweep, lanes rendered base → cur.
        assert!(md.contains("| poll | 251 |"));
        assert!(md.contains("699.5 → 559.6"));
        assert!(md.contains("### Violations"));
        assert!(md.contains("throughput"));
        assert!(md.contains("### Notes"));
        assert!(md.contains("absent from baseline"));

        // A sweep missing from the current report still gets a row.
        let empty = BenchReport {
            sweeps: vec![],
            ..base.clone()
        };
        let outcome = compare(&base, &empty, &GateTolerance::default());
        let md = lane_diff_markdown(&base, &empty, &outcome);
        assert!(md.contains("→ missing"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(BenchReport::from_json("{\"bench_version\": 999}").is_err());
    }
}
