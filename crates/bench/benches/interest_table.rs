//! Criterion microbenchmarks of the `/dev/poll` interest-set hash table
//! (§3.1): insert/lookup/remove throughput and the doubling policy,
//! against `HashMap` as a reference point.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use devpoll::InterestTable;
use simkernel::PollBits;
use std::collections::HashMap;

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("interest_insert");
    for n in [64usize, 512, 4096] {
        g.bench_with_input(BenchmarkId::new("interest_table", n), &n, |b, &n| {
            b.iter(|| {
                let mut t = InterestTable::new();
                for fd in 0..n as i32 {
                    t.set(black_box(fd), PollBits::POLLIN, false);
                }
                black_box(t.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("hashmap_reference", n), &n, |b, &n| {
            b.iter(|| {
                let mut t: HashMap<i32, PollBits> = HashMap::new();
                for fd in 0..n as i32 {
                    t.insert(black_box(fd), PollBits::POLLIN);
                }
                black_box(t.len())
            })
        });
    }
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("interest_lookup");
    for n in [64usize, 512, 4096] {
        let mut t = InterestTable::new();
        for fd in 0..n as i32 {
            t.set(fd, PollBits::POLLIN, false);
        }
        g.bench_with_input(BenchmarkId::new("hit", n), &n, |b, &n| {
            b.iter(|| {
                let mut acc = 0u32;
                for fd in 0..n as i32 {
                    if t.get(black_box(fd)).is_some() {
                        acc += 1;
                    }
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_churn(c: &mut Criterion) {
    // The benchmark workload: one add + one remove per connection, over
    // a standing population (the inactive connections stay put).
    let mut g = c.benchmark_group("interest_churn");
    for standing in [0usize, 501] {
        let mut t = InterestTable::new();
        for fd in 0..standing as i32 {
            t.set(fd, PollBits::POLLIN, false);
        }
        g.bench_with_input(
            BenchmarkId::new("add_remove", standing),
            &standing,
            |b, &standing| {
                let mut fd = standing as i32;
                b.iter(|| {
                    fd += 1;
                    t.set(black_box(fd), PollBits::POLLIN, false);
                    t.remove(black_box(fd));
                })
            },
        );
    }
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    // Iterating the whole set (a no-hints DP_POLL scan) vs touching only
    // hinted entries.
    let mut g = c.benchmark_group("interest_scan");
    for n in [512usize, 4096] {
        let mut t = InterestTable::new();
        for fd in 0..n as i32 {
            t.set(fd, PollBits::POLLIN, false);
        }
        for e in t.iter_mut() {
            e.hinted = false;
        }
        // Mark 1% hinted.
        for fd in (0..n as i32).step_by(100) {
            t.mark_hint(fd);
        }
        g.bench_with_input(BenchmarkId::new("full", n), &n, |b, _| {
            b.iter(|| {
                let ready = t.iter().filter(|e| !e.cached.is_empty()).count();
                black_box(ready)
            })
        });
        g.bench_with_input(BenchmarkId::new("hinted_only", n), &n, |b, _| {
            b.iter(|| {
                let ready = t
                    .iter()
                    .filter(|e| e.hinted || !e.cached.is_empty())
                    .count();
                black_box(ready)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_insert, bench_lookup, bench_churn, bench_scan);
criterion_main!(benches);
