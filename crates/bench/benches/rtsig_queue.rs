//! Criterion benchmarks of the RT signal queue (§2): enqueue/dequeue
//! throughput, the signal-number-ordered dequeue, batch pickup
//! (`sigtimedwait4`, §6) and overflow flushing.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use simkernel::{PollBits, Siginfo, SignalState, SIGRTMIN};

fn info(signo: u8, fd: i32) -> Siginfo {
    Siginfo {
        signo,
        fd,
        band: PollBits::POLLIN,
    }
}

fn bench_enqueue_dequeue(c: &mut Criterion) {
    let mut g = c.benchmark_group("rt_queue");
    g.bench_function("enqueue_dequeue_single_signo", |b| {
        let mut s = SignalState::new(1024);
        b.iter(|| {
            s.enqueue_rt(info(SIGRTMIN, black_box(7)));
            black_box(s.dequeue())
        })
    });
    g.bench_function("enqueue_dequeue_spread_signos", |b| {
        let mut s = SignalState::new(1024);
        let mut fd = 0i32;
        b.iter(|| {
            fd = (fd + 1) % 31;
            s.enqueue_rt(info(SIGRTMIN + fd as u8, fd));
            black_box(s.dequeue())
        })
    });
    g.finish();
}

fn bench_batch_dequeue(c: &mut Criterion) {
    let mut g = c.benchmark_group("rt_batch");
    for batch in [1usize, 16, 64] {
        g.bench_with_input(
            BenchmarkId::new("dequeue_batch", batch),
            &batch,
            |b, &batch| {
                let mut s = SignalState::new(1024);
                b.iter(|| {
                    for i in 0..batch {
                        s.enqueue_rt(info(SIGRTMIN, i as i32));
                    }
                    black_box(s.dequeue_batch(batch).len())
                })
            },
        );
    }
    g.finish();
}

fn bench_overflow_flush(c: &mut Criterion) {
    let mut g = c.benchmark_group("rt_overflow");
    for depth in [256usize, 1024] {
        g.bench_with_input(BenchmarkId::new("flush", depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut s = SignalState::new(depth);
                for i in 0..depth + 10 {
                    s.enqueue_rt(info(SIGRTMIN, i as i32));
                }
                black_box(s.flush_rt())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_enqueue_dequeue,
    bench_batch_dequeue,
    bench_overflow_flush
);
criterion_main!(benches);
