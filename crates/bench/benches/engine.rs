//! Criterion benchmarks of the simulation substrate itself: event-engine
//! scheduling throughput and network segment processing rate. These
//! bound how fast the reproduction harness can run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use simcore::engine::{BoxedEvent, Engine, Event};
use simcore::time::{SimDuration, SimTime};
use simnet::{EndpointId, HostId, LinkConfig, Network, Side, SockAddr, TcpConfig};

/// Typed payload: the arena dispatch path, no per-event allocation.
enum Tick {
    Add,
}

impl Event<u64> for Tick {
    fn fire(self, state: &mut u64, _e: &mut Engine<u64, Self>) {
        match self {
            Tick::Add => *state += 1,
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    for n in [1_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::new("schedule_run_boxed", n), &n, |b, &n| {
            b.iter(|| {
                let mut e: Engine<u64> = Engine::new();
                let mut acc = 0u64;
                for i in 0..n as u64 {
                    e.schedule_at(
                        SimTime::from_nanos(i % 977),
                        BoxedEvent::new(|s: &mut u64, _e| *s += 1),
                    );
                }
                e.run(&mut acc);
                black_box(acc)
            })
        });
        g.bench_with_input(BenchmarkId::new("schedule_run_typed", n), &n, |b, &n| {
            b.iter(|| {
                let mut e: Engine<u64, Tick> = Engine::new();
                let mut acc = 0u64;
                for i in 0..n as u64 {
                    e.schedule_at(SimTime::from_nanos(i % 977), Tick::Add);
                }
                e.run(&mut acc);
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_network_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("network");
    g.sample_size(20);
    g.bench_function("transfer_1mb", |b| {
        b.iter(|| {
            let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
            let l = net.listen(HostId(1), 80, 16).unwrap();
            let conn = net
                .connect(
                    SimTime::ZERO,
                    HostId(0),
                    SockAddr::new(HostId(1), 80),
                    SimDuration::ZERO,
                )
                .unwrap();
            let client = EndpointId::new(conn, Side::Client);
            let payload = vec![0u8; 8192];
            let mut sent = 0usize;
            let mut got = 0usize;
            let mut server = None;
            let mut t = SimTime::ZERO;
            while got < 1_000_000 {
                if server.is_none() {
                    server = net.accept(l);
                }
                if let Some(ep) = server {
                    if sent < 1_000_000 {
                        sent += net.send(t, ep, &payload).unwrap_or(0);
                    }
                }
                match net.next_deadline() {
                    Some(next) => {
                        t = next;
                        let _ = net.advance(t);
                        got += net
                            .recv(t, client, usize::MAX)
                            .map(|v| v.len())
                            .unwrap_or(0);
                    }
                    None => break,
                }
            }
            black_box(got)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine, bench_network_transfer);
criterion_main!(benches);
