//! Criterion benchmarks of the three event-notification paths end to
//! end against the simulated kernel: what does one "collect events" call
//! cost (in wall time of the simulator, which tracks the amount of work
//! the model performs) as the interest set grows?
//!
//! The *simulated* cost tables live in `src/bin/micro.rs`; these
//! benches cover the real computational complexity of the
//! implementation itself.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use devpoll::{sys_poll, DevPollConfig, DevPollRegistry, DvPoll, PollFd};
use simcore::time::{SimDuration, SimTime};
use simkernel::{CostModel, Kernel, PollBits};
use simnet::{HostId, LinkConfig, Network, SockAddr, TcpConfig};

struct World {
    /// Kept alive so endpoints stay valid.
    _net: Network,
    kernel: Kernel,
    registry: DevPollRegistry,
    pid: simkernel::Pid,
    fds: Vec<simkernel::Fd>,
}

/// Builds a server with `n` accepted, idle connections.
fn world_with_conns(n: usize) -> World {
    let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
    let mut kernel = Kernel::new(HostId(1), CostModel::k6_2_400mhz());
    let pid = kernel.spawn(n + 16, 1024);
    kernel.begin_batch(SimTime::ZERO, pid);
    let lfd = kernel
        .sys_listen(&mut net, SimTime::ZERO, pid, 80, 4096)
        .unwrap();
    kernel.end_batch(SimTime::ZERO, pid);
    let mut fds = Vec::new();
    let mut now = SimTime::ZERO;
    for _ in 0..n {
        net.connect(
            now,
            HostId(0),
            SockAddr::new(HostId(1), 80),
            SimDuration::ZERO,
        )
        .unwrap();
        // Drain the handshake.
        while let Some(t) = net.next_deadline() {
            now = t;
            for ntf in net.advance(t) {
                kernel.on_net(t, &ntf);
            }
            let _ = kernel.advance(t);
            if net.next_deadline().is_none() {
                break;
            }
        }
        kernel.begin_batch(now, pid);
        let fd = kernel.sys_accept(&mut net, now, pid, lfd).unwrap();
        kernel.end_batch(now, pid);
        fds.push(fd);
    }
    World {
        _net: net,
        kernel,
        registry: DevPollRegistry::new(),
        pid,
        fds,
    }
}

fn bench_stock_poll(c: &mut Criterion) {
    let mut g = c.benchmark_group("stock_poll_scan");
    for n in [16usize, 128, 1024] {
        let mut w = world_with_conns(n);
        let mut fds: Vec<PollFd> = w
            .fds
            .iter()
            .map(|&fd| PollFd::new(fd, PollBits::POLLIN))
            .collect();
        let now = SimTime::from_secs(10);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                w.kernel.begin_batch(now, w.pid);
                let out = sys_poll(&mut w.kernel, now, w.pid, &mut fds, 0);
                w.kernel.end_batch(now, w.pid);
                black_box(out)
            })
        });
    }
    g.finish();
}

fn bench_devpoll_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("devpoll_scan");
    for (label, hints) in [("hints", true), ("no_hints", false)] {
        for n in [128usize, 1024] {
            let mut w = world_with_conns(n);
            let now = SimTime::from_secs(10);
            w.kernel.begin_batch(now, w.pid);
            let dpfd = w
                .registry
                .open(
                    &mut w.kernel,
                    now,
                    w.pid,
                    DevPollConfig {
                        hints,
                        ..DevPollConfig::default()
                    },
                )
                .unwrap();
            let entries: Vec<PollFd> = w
                .fds
                .iter()
                .map(|&fd| PollFd::new(fd, PollBits::POLLIN))
                .collect();
            w.registry
                .write(&mut w.kernel, now, w.pid, dpfd, &entries)
                .unwrap();
            // Settle the fresh-interest hints with one scan.
            let _ = w.registry.dp_poll(
                &mut w.kernel,
                now,
                w.pid,
                dpfd,
                DvPoll::into_user_buffer(64, 0),
            );
            w.kernel.end_batch(now, w.pid);
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    w.kernel.begin_batch(now, w.pid);
                    let out = w.registry.dp_poll(
                        &mut w.kernel,
                        now,
                        w.pid,
                        dpfd,
                        DvPoll::into_user_buffer(64, 0),
                    );
                    w.kernel.end_batch(now, w.pid);
                    black_box(out.unwrap().0)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_stock_poll, bench_devpoll_scan);
criterion_main!(benches);
