//! Parallel-vs-serial determinism: the sweep executor must produce
//! byte-identical figures, probe dumps and (wall-clock fields aside)
//! `BENCH.json` at every worker count. Run points are independent
//! simulation worlds merged in canonical key order, so `--jobs N` is an
//! execution detail, never an observable one.

use bench::{FigureConfig, FigureRunner};
use httperf::ServerKind;

fn tiny_config() -> FigureConfig {
    FigureConfig {
        rates: vec![500.0, 700.0, 900.0],
        conns: 500,
        seed: 42,
    }
}

/// Renders everything observable about a runner's cached sweeps: the
/// figure CSVs, the per-sweep probe JSON lines, and the normalized
/// bench report.
fn observable_output(runner: &mut FigureRunner) -> String {
    let mut out = String::new();
    out.push_str(
        &runner
            .reply_rate_figure("t", ServerKind::ThttpdPoll, 1)
            .to_csv(),
    );
    out.push_str(
        &runner
            .reply_rate_figure("t", ServerKind::ThttpdPoll, 251)
            .to_csv(),
    );
    out.push_str(
        &runner
            .reply_rate_figure("t", ServerKind::ThttpdDevPoll, 251)
            .to_csv(),
    );
    out.push_str(&runner.latency_figure("t", 251).to_csv());
    for (&(kind, inactive), reports) in runner.cached_sweeps() {
        let label = kind.label();
        for r in reports {
            let rate = format!("{}", r.target_rate);
            let load = format!("{inactive}");
            out.push_str(&r.probe.to_json_lines_with(&[
                ("server", label.as_str()),
                ("rate", rate.as_str()),
                ("inactive", load.as_str()),
            ]));
        }
    }
    out.push_str(&runner.bench_report("figures", 123.0).normalized().to_json());
    out
}

#[test]
fn jobs_1_and_jobs_4_are_byte_identical() {
    let mut serial = FigureRunner::new(tiny_config());
    serial.verbose = false;
    let serial_out = observable_output(&mut serial);

    let mut parallel = FigureRunner::new(tiny_config()).with_jobs(4);
    parallel.verbose = false;
    let parallel_out = observable_output(&mut parallel);

    assert_eq!(
        serial_out, parallel_out,
        "parallel execution changed observable output"
    );
}

#[test]
fn prefetch_and_on_demand_sweeps_agree() {
    // `figures -- all` prefetches the whole grid as one batch; demand
    // paths fill sweep by sweep. Same worlds, same cache.
    let keys = [
        (ServerKind::ThttpdPoll, 251),
        (ServerKind::ThttpdDevPoll, 251),
        (ServerKind::Phhttpd, 251),
    ];
    let mut prefetched = FigureRunner::new(tiny_config()).with_jobs(3);
    prefetched.verbose = false;
    prefetched.prefetch(&keys);
    // A second prefetch of cached keys is a no-op.
    prefetched.prefetch(&keys);

    let mut on_demand = FigureRunner::new(tiny_config());
    on_demand.verbose = false;
    for &(kind, inactive) in &keys {
        on_demand.sweep(kind, inactive);
    }

    assert_eq!(
        prefetched
            .bench_report("figures", 0.0)
            .normalized()
            .to_json(),
        on_demand
            .bench_report("figures", 0.0)
            .normalized()
            .to_json(),
    );
}

/// FNV-1a over the rendered output — cheap, dependency-free, and enough
/// to pin the bytes.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Byte-identity against the pre-overhaul golden digest. The hot-path
/// rework (slab event arena, dense fd tables, pooled segments, scratch
/// reuse) is purely mechanical: every figure CSV and probe JSON line
/// must come out bit-for-bit the same as before it. The digest covers
/// the figure CSVs and probe dumps but not `BENCH.json`, whose schema
/// grew new fields (`events`, `sim_ms`) in the same change.
///
/// Throughput round 2 (batch event dispatch, incremental DP_POLL result
/// diffs via the dirty set, `ByteQueue` socket buffers, borrowed HTTP
/// parsing, pre-rendered responses) is held to the same constants: the
/// digest below is unchanged from before that round, so a pass proves
/// those optimisations never altered a single observable byte.
///
/// If this fails you changed simulation *behavior*, not just its speed.
/// Only refresh the constants for a change that intends new output.
///
/// Workspace-level test runs unify features and switch on
/// `devpoll/simcheck`, whose runtime auditor adds an `audit.checks`
/// probe counter; those lines are filtered out below so the digest is
/// identical with and without the auditor.
#[test]
fn figures_and_probes_match_pre_overhaul_golden() {
    const GOLDEN_FNV: u64 = 0x16bf8231f958586c;
    const GOLDEN_LEN: usize = 54283;

    let mut runner = FigureRunner::new(tiny_config());
    runner.verbose = false;
    let mut out = String::new();
    out.push_str(
        &runner
            .reply_rate_figure("t", ServerKind::ThttpdPoll, 1)
            .to_csv(),
    );
    out.push_str(
        &runner
            .reply_rate_figure("t", ServerKind::ThttpdPoll, 251)
            .to_csv(),
    );
    out.push_str(
        &runner
            .reply_rate_figure("t", ServerKind::ThttpdDevPoll, 251)
            .to_csv(),
    );
    out.push_str(&runner.latency_figure("t", 251).to_csv());
    for (&(kind, inactive), reports) in runner.cached_sweeps() {
        let label = kind.label();
        for r in reports {
            let rate = format!("{}", r.target_rate);
            let load = format!("{inactive}");
            let lines = r.probe.to_json_lines_with(&[
                ("server", label.as_str()),
                ("rate", rate.as_str()),
                ("inactive", load.as_str()),
            ]);
            for line in lines.lines().filter(|l| !l.contains("\"audit.")) {
                out.push_str(line);
                out.push('\n');
            }
        }
    }

    assert_eq!(out.len(), GOLDEN_LEN, "golden output length changed");
    assert_eq!(
        fnv1a(&out),
        GOLDEN_FNV,
        "golden output digest changed — simulation behavior drifted"
    );
}

#[test]
fn bench_report_roundtrips_through_json() {
    let mut runner = FigureRunner::new(FigureConfig {
        rates: vec![500.0, 700.0],
        conns: 300,
        seed: 7,
    });
    runner.verbose = false;
    runner.sweep(ServerKind::ThttpdDevPoll, 1);
    let report = runner.bench_report("figures", 42.5);
    let parsed = bench::BenchReport::from_json(&report.to_json()).expect("roundtrip parses");
    assert_eq!(parsed, report);
    assert_eq!(report.seed, 7);
    assert_eq!(report.sweeps.len(), 1);
    assert_eq!(report.sweeps[0].points.len(), 2);
    // Without an injected clock every wall field is already zero (the
    // deterministic library never reads the wall clock itself).
    assert_eq!(report.sweeps[0].wall_ms, 0.0);
}
