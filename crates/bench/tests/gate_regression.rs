//! End-to-end benchmark-gate check: `compare` must stay green when a
//! report is compared against itself and go red when the simulated CPU
//! regresses — here injected by scaling the cost model down (every
//! syscall and copy gets ~3x more expensive).

use bench::{compare, group_runs, BenchReport, GateTolerance, BENCH_VERSION};
use httperf::{run_one, RunParams, ServerKind};

fn one_point_report(slow_factor: Option<f64>) -> BenchReport {
    let mut params = RunParams::paper(ServerKind::ThttpdPoll, 700.0, 251).with_conns(1_200);
    if let Some(factor) = slow_factor {
        params.cost = params.cost.scaled(factor);
    }
    let report = run_one(params);
    BenchReport {
        version: BENCH_VERSION,
        tool: "figures".to_string(),
        seed: 42,
        config: "test".to_string(),
        jobs: 1,
        total_wall_ms: 0.0,
        sweeps: group_runs(vec![(report, 0.0)]),
    }
}

#[test]
fn gate_is_green_against_itself_and_red_on_slowed_cpu() {
    let baseline = one_point_report(None);
    let tol = GateTolerance::default();

    let self_check = compare(&baseline, &baseline, &tol);
    assert!(
        self_check.ok(),
        "self-comparison must be green, got: {:?}",
        self_check.violations
    );

    // CPU three times slower: poll()'s O(interest set) scan dominates
    // and the reply rate collapses well past the 10% tolerance.
    let regressed = one_point_report(Some(0.3));
    let gate = compare(&baseline, &regressed, &tol);
    assert!(
        !gate.ok(),
        "slowed cost model must trip the gate; baseline avg {:.1}, regressed avg {:.1}",
        baseline.sweeps[0].points[0].avg,
        regressed.sweeps[0].points[0].avg
    );
}
