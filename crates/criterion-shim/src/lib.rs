#![warn(missing_docs)]

//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, so the workspace's `[[bench]]` targets build and run in a
//! fully offline environment.
//!
//! Only the API surface the `bench` crate actually uses is provided:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros. Timing is a
//! simple calibrated median-of-samples wall-clock measurement — good
//! enough for the relative comparisons these benches exist for, with no
//! statistics machinery or plotting.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Names one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness state.
#[derive(Debug, Default)]
pub struct Criterion {
    /// Substring filter from the command line, if any.
    filter: Option<String>,
}

impl Criterion {
    /// Applies a substring filter from `std::env::args` (the argument
    /// `cargo bench -- <filter>` forwards).
    pub fn configure_from_args(mut self) -> Criterion {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        let name = id.to_string();
        run_one(&name, self.filter.as_deref(), 10, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().name);
        run_one(&full, self.criterion.filter.as_deref(), self.sample_size, f);
        self
    }

    /// Runs a benchmark over one input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (formatting parity with criterion).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, filter: Option<&str>, samples: usize, mut f: F) {
    if let Some(filt) = filter {
        if !name.contains(filt) {
            return;
        }
    }
    // Calibrate the iteration count so one sample takes ~5 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!("{name:<48} median {median:>12.1} ns/iter  (min {min:.1}, max {max:.1}, {iters} iters x {samples} samples)");
}

/// Bundles benchmark functions into one group function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 10).name, "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).name, "7");
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut n = 0u64;
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        b.iter(|| n += 1);
        assert_eq!(n, 5);
    }
}
