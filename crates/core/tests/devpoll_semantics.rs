//! Regression tests for the `/dev/poll` semantics the paper calls out
//! explicitly (§3.1):
//!
//! * writing a `pollfd` with new `events` **replaces** the prior
//!   interest — the documented divergence from Solaris, which ORs;
//! * `POLLREMOVE` of an absent fd is a harmless no-op;
//! * the interest hash table doubles exactly when the average bucket
//!   size reaches two and is never shrunk — observed through the
//!   `devpoll.interest.*` probe gauges, so the observability layer is
//!   exercised alongside the mechanism.

use devpoll::{DevPollConfig, DevPollRegistry, PollFd};
use simcore::time::SimTime;
use simkernel::{CostModel, Kernel, Pid, PollBits};
use simnet::HostId;

fn setup(config: DevPollConfig) -> (Kernel, DevPollRegistry, Pid, simkernel::Fd) {
    let mut kernel = Kernel::new(HostId(1), CostModel::k6_2_400mhz());
    let pid = kernel.spawn_default();
    let mut registry = DevPollRegistry::new();
    kernel.begin_batch(SimTime::ZERO, pid);
    let dpfd = registry
        .open(&mut kernel, SimTime::ZERO, pid, config)
        .expect("open /dev/poll");
    (kernel, registry, pid, dpfd)
}

fn write_one(
    kernel: &mut Kernel,
    registry: &mut DevPollRegistry,
    pid: Pid,
    dpfd: simkernel::Fd,
    entry: PollFd,
) {
    registry
        .write(kernel, SimTime::ZERO, pid, dpfd, &[entry])
        .expect("write interest");
}

#[test]
fn new_events_replace_prior_interest() {
    let (mut kernel, mut registry, pid, dpfd) = setup(DevPollConfig::default());
    write_one(
        &mut kernel,
        &mut registry,
        pid,
        dpfd,
        PollFd::new(7, PollBits::POLLIN),
    );
    write_one(
        &mut kernel,
        &mut registry,
        pid,
        dpfd,
        PollFd::new(7, PollBits::POLLOUT),
    );
    let dev = registry.device(&kernel, pid, dpfd).unwrap();
    let entry = dev.interest().get(7).expect("interest present");
    assert_eq!(
        entry.events,
        PollBits::POLLOUT,
        "a written events field must replace, not OR into, prior interest"
    );
    kernel.end_batch(SimTime::ZERO, pid);
}

#[test]
fn solaris_or_semantics_only_when_configured() {
    let config = DevPollConfig {
        or_semantics: true,
        ..DevPollConfig::default()
    };
    let (mut kernel, mut registry, pid, dpfd) = setup(config);
    write_one(
        &mut kernel,
        &mut registry,
        pid,
        dpfd,
        PollFd::new(7, PollBits::POLLIN),
    );
    write_one(
        &mut kernel,
        &mut registry,
        pid,
        dpfd,
        PollFd::new(7, PollBits::POLLOUT),
    );
    let dev = registry.device(&kernel, pid, dpfd).unwrap();
    assert_eq!(
        dev.interest().get(7).unwrap().events,
        PollBits::POLLIN | PollBits::POLLOUT,
        "Solaris compatibility mode ORs interest bits"
    );
    kernel.end_batch(SimTime::ZERO, pid);
}

#[test]
fn pollremove_of_absent_fd_is_a_harmless_noop() {
    let (mut kernel, mut registry, pid, dpfd) = setup(DevPollConfig::default());
    write_one(
        &mut kernel,
        &mut registry,
        pid,
        dpfd,
        PollFd::new(3, PollBits::POLLIN),
    );

    // Removing an fd that was never added must succeed and change
    // nothing.
    let n = registry
        .write(&mut kernel, SimTime::ZERO, pid, dpfd, &[PollFd::remove(99)])
        .expect("POLLREMOVE of absent fd must not error");
    assert_eq!(n, 1, "the entry is still counted as processed");
    let dev = registry.device(&kernel, pid, dpfd).unwrap();
    assert_eq!(dev.interest().len(), 1, "existing interest untouched");
    assert!(dev.interest().get(3).is_some());
    assert!(dev.interest().get(99).is_none());

    // And doing it twice in a row is equally harmless.
    registry
        .write(&mut kernel, SimTime::ZERO, pid, dpfd, &[PollFd::remove(99)])
        .expect("repeated POLLREMOVE of absent fd");
    kernel.end_batch(SimTime::ZERO, pid);
}

#[test]
fn table_doubles_at_average_bucket_size_two_and_never_shrinks() {
    let (mut kernel, mut registry, pid, dpfd) = setup(DevPollConfig::default());

    // One fd per write so the gauges advance entry by entry.
    for fd in 0..16 {
        write_one(
            &mut kernel,
            &mut registry,
            pid,
            dpfd,
            PollFd::new(fd, PollBits::POLLIN),
        );
        let buckets = kernel.probe().gauge("devpoll.interest.buckets").value;
        if fd < 15 {
            assert_eq!(
                buckets,
                8,
                "no resize before average bucket size reaches 2 (len {})",
                fd + 1
            );
        } else {
            assert_eq!(buckets, 16, "16 entries in 8 buckets doubles the table");
        }
    }
    for fd in 16..32 {
        write_one(
            &mut kernel,
            &mut registry,
            pid,
            dpfd,
            PollFd::new(fd, PollBits::POLLIN),
        );
    }
    assert_eq!(kernel.probe().gauge("devpoll.interest.buckets").value, 32);
    assert_eq!(kernel.probe().gauge("devpoll.interest.len").value, 32);
    assert_eq!(
        kernel.probe().counter("devpoll.interest.resizes"),
        2,
        "exactly two doublings for 32 entries from 8 initial buckets"
    );

    // Mass POLLREMOVE: the table is never shrunk.
    let removes: Vec<PollFd> = (0..32).map(PollFd::remove).collect();
    registry
        .write(&mut kernel, SimTime::ZERO, pid, dpfd, &removes)
        .expect("mass POLLREMOVE");
    assert_eq!(kernel.probe().gauge("devpoll.interest.len").value, 0);
    assert_eq!(
        kernel.probe().gauge("devpoll.interest.buckets").value,
        32,
        "the hash table is never shrunk (§3.1)"
    );
    assert_eq!(kernel.probe().counter("devpoll.interest.resizes"), 2);
    // The high-water marks remember the peak.
    assert_eq!(kernel.probe().gauge("devpoll.interest.len").high_water, 32);
    kernel.end_batch(SimTime::ZERO, pid);
}
