//! End-to-end tests of the `/dev/poll` device against the simulated
//! kernel and network.

use devpoll::{DevPollConfig, DevPollRegistry, DvPoll, PollFd, PollOutcome};
use simcore::time::{SimDuration, SimTime};
use simkernel::{CostModel, Errno, Fd, Kernel, Pid, PollBits};
use simnet::{EndpointId, HostId, LinkConfig, Network, SockAddr, TcpConfig};

const CLIENT: HostId = HostId(0);
const SERVER: HostId = HostId(1);

struct World {
    net: Network,
    kernel: Kernel,
    registry: DevPollRegistry,
    pid: Pid,
    lfd: Fd,
}

fn pump(w: &mut World, horizon: SimTime) {
    loop {
        match w.net.next_deadline() {
            Some(t) if t <= horizon => {
                for n in w.net.advance(t) {
                    w.kernel.on_net(t, &n);
                }
                for e in w.kernel.advance(t) {
                    if let simkernel::KernelEvent::FdEvent { pid, fd, .. } = e {
                        w.registry.on_fd_event(&mut w.kernel, t, pid, fd);
                    }
                }
            }
            _ => break,
        }
    }
    for n in w.net.advance(horizon) {
        w.kernel.on_net(horizon, &n);
    }
    for e in w.kernel.advance(horizon) {
        if let simkernel::KernelEvent::FdEvent { pid, fd, .. } = e {
            w.registry.on_fd_event(&mut w.kernel, horizon, pid, fd);
        }
    }
}

fn world() -> World {
    let mut net = Network::new(TcpConfig::default(), LinkConfig::default(), 2);
    let mut kernel = Kernel::new(SERVER, CostModel::k6_2_400mhz());
    let pid = kernel.spawn_default();
    kernel.begin_batch(SimTime::ZERO, pid);
    let lfd = kernel
        .sys_listen(&mut net, SimTime::ZERO, pid, 80, 128)
        .unwrap();
    kernel.end_batch(SimTime::ZERO, pid);
    World {
        net,
        kernel,
        registry: DevPollRegistry::new(),
        pid,
        lfd,
    }
}

/// Connects a client and accepts it; returns (server fd, client ep).
fn connect_one(w: &mut World, at: SimTime) -> (Fd, EndpointId) {
    let conn = w
        .net
        .connect(at, CLIENT, SockAddr::new(SERVER, 80), SimDuration::ZERO)
        .unwrap();
    pump(w, at + SimDuration::from_millis(10));
    let t = at + SimDuration::from_millis(10);
    w.kernel.begin_batch(t, w.pid);
    let fd = w.kernel.sys_accept(&mut w.net, t, w.pid, w.lfd).unwrap();
    w.kernel.end_batch(t, w.pid);
    pump(w, t + SimDuration::from_millis(1));
    (fd, EndpointId::new(conn, simnet::Side::Client))
}

fn open_dp(w: &mut World, config: DevPollConfig) -> Fd {
    let t = SimTime::ZERO;
    w.kernel.begin_batch(t, w.pid);
    let dpfd = w.registry.open(&mut w.kernel, t, w.pid, config).unwrap();
    w.kernel.end_batch(t, w.pid);
    dpfd
}

#[test]
fn interest_add_scan_and_remove() {
    let mut w = world();
    let dpfd = open_dp(&mut w, DevPollConfig::default());
    let (fd, client_ep) = connect_one(&mut w, SimTime::ZERO);

    let t = SimTime::from_millis(20);
    w.kernel.begin_batch(t, w.pid);
    w.registry
        .write(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            &[PollFd::new(fd, PollBits::POLLIN)],
        )
        .unwrap();
    // Nothing ready yet.
    let (out, res) = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            DvPoll::into_user_buffer(64, 0),
        )
        .unwrap();
    assert_eq!(out, PollOutcome::Ready(0));
    assert!(res.is_empty());
    w.kernel.end_batch(t, w.pid);

    // Data arrives.
    w.net.send(t, client_ep, b"ping").unwrap();
    pump(&mut w, t + SimDuration::from_millis(10));

    let t = t + SimDuration::from_millis(10);
    w.kernel.begin_batch(t, w.pid);
    let (out, res) = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            DvPoll::into_user_buffer(64, 0),
        )
        .unwrap();
    assert_eq!(out, PollOutcome::Ready(1));
    assert_eq!(res.len(), 1);
    assert_eq!(res[0].fd, fd);
    assert!(res[0].revents.contains(PollBits::POLLIN));

    // POLLREMOVE drops the interest: later scans report nothing.
    w.registry
        .write(&mut w.kernel, t, w.pid, dpfd, &[PollFd::remove(fd)])
        .unwrap();
    let (out, res) = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            DvPoll::into_user_buffer(64, 0),
        )
        .unwrap();
    assert_eq!(out, PollOutcome::Ready(0));
    assert!(res.is_empty());
    w.kernel.end_batch(t, w.pid);
}

#[test]
fn hints_avoid_driver_polls_for_idle_descriptors() {
    let mut w = world();
    let dpfd = open_dp(&mut w, DevPollConfig::default());

    // 50 idle connections in the interest set.
    let mut fds = Vec::new();
    for i in 0..50u64 {
        let (fd, _c) = connect_one(&mut w, SimTime::from_millis(i * 2));
        fds.push(fd);
    }
    let t = SimTime::from_millis(200);
    w.kernel.begin_batch(t, w.pid);
    let entries: Vec<PollFd> = fds
        .iter()
        .map(|&fd| PollFd::new(fd, PollBits::POLLIN))
        .collect();
    w.registry
        .write(&mut w.kernel, t, w.pid, dpfd, &entries)
        .unwrap();

    // First scan: every (fresh) interest is hinted, all pay a callback.
    let _ = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            DvPoll::into_user_buffer(64, 0),
        )
        .unwrap();
    let s1 = w.registry.device(&w.kernel, w.pid, dpfd).unwrap().stats();
    assert_eq!(s1.driver_polls, 50);

    // Second scan: nothing changed, nothing hinted, all avoided.
    let _ = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            DvPoll::into_user_buffer(64, 0),
        )
        .unwrap();
    let s2 = w.registry.device(&w.kernel, w.pid, dpfd).unwrap().stats();
    assert_eq!(s2.driver_polls, 50, "no further callbacks");
    assert_eq!(s2.driver_polls_avoided, 50);
    w.kernel.end_batch(t, w.pid);
}

#[test]
fn hint_marks_trigger_revalidation_of_exactly_the_active_fd() {
    let mut w = world();
    let dpfd = open_dp(&mut w, DevPollConfig::default());
    let (fd_a, ep_a) = connect_one(&mut w, SimTime::ZERO);
    let (fd_b, _ep_b) = connect_one(&mut w, SimTime::from_millis(5));

    let t = SimTime::from_millis(30);
    w.kernel.begin_batch(t, w.pid);
    w.registry
        .write(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            &[
                PollFd::new(fd_a, PollBits::POLLIN),
                PollFd::new(fd_b, PollBits::POLLIN),
            ],
        )
        .unwrap();
    let _ = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            DvPoll::into_user_buffer(64, 0),
        )
        .unwrap();
    w.kernel.end_batch(t, w.pid);
    let base = w.registry.device(&w.kernel, w.pid, dpfd).unwrap().stats();
    assert_eq!(base.driver_polls, 2);

    // Activity on A only.
    w.net.send(t, ep_a, b"x").unwrap();
    pump(&mut w, t + SimDuration::from_millis(10));
    let hints = w
        .registry
        .device(&w.kernel, w.pid, dpfd)
        .unwrap()
        .stats()
        .hints_marked;
    assert!(hints >= 1, "driver marked a hint");

    let t = t + SimDuration::from_millis(10);
    w.kernel.begin_batch(t, w.pid);
    let (out, res) = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            DvPoll::into_user_buffer(64, 0),
        )
        .unwrap();
    w.kernel.end_batch(t, w.pid);
    assert_eq!(out, PollOutcome::Ready(1));
    assert_eq!(res[0].fd, fd_a);
    let s = w.registry.device(&w.kernel, w.pid, dpfd).unwrap().stats();
    assert_eq!(s.driver_polls, 3, "only the hinted fd was revalidated");
}

#[test]
fn cached_ready_results_are_revalidated_each_scan() {
    // §3.2: "a cached result indicating readiness has to be reevaluated
    // each time."
    let mut w = world();
    let dpfd = open_dp(&mut w, DevPollConfig::default());
    let (fd, ep) = connect_one(&mut w, SimTime::ZERO);
    w.net.send(SimTime::from_millis(15), ep, b"abc").unwrap();
    pump(&mut w, SimTime::from_millis(25));

    let t = SimTime::from_millis(30);
    w.kernel.begin_batch(t, w.pid);
    w.registry
        .write(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            &[PollFd::new(fd, PollBits::POLLIN)],
        )
        .unwrap();
    let (_, res) = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            DvPoll::into_user_buffer(64, 0),
        )
        .unwrap();
    assert_eq!(res.len(), 1);
    let polls_after_first = w
        .registry
        .device(&w.kernel, w.pid, dpfd)
        .unwrap()
        .stats()
        .driver_polls;

    // Scan again without new events: the ready result must be
    // revalidated (one more driver poll) and still reported.
    let (_, res) = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            DvPoll::into_user_buffer(64, 0),
        )
        .unwrap();
    assert_eq!(res.len(), 1, "still readable, still reported");
    let polls_after_second = w
        .registry
        .device(&w.kernel, w.pid, dpfd)
        .unwrap()
        .stats()
        .driver_polls;
    assert_eq!(polls_after_second, polls_after_first + 1);

    // Drain the data: the next scan revalidates once more, finds the fd
    // idle, and then stops paying for it.
    let _ = w.kernel.sys_read(&mut w.net, t, w.pid, fd, 4096).unwrap();
    let (_, res) = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            DvPoll::into_user_buffer(64, 0),
        )
        .unwrap();
    assert!(res.is_empty());
    let (_, res) = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            DvPoll::into_user_buffer(64, 0),
        )
        .unwrap();
    assert!(res.is_empty());
    let polls_final = w
        .registry
        .device(&w.kernel, w.pid, dpfd)
        .unwrap()
        .stats()
        .driver_polls;
    assert_eq!(
        polls_final,
        polls_after_second + 1,
        "idle fd dropped from scans"
    );
    w.kernel.end_batch(t, w.pid);
}

#[test]
fn mmap_results_require_alloc_and_are_cheaper() {
    let mut w = world();
    let dpfd = open_dp(&mut w, DevPollConfig::default());
    let (fd, ep) = connect_one(&mut w, SimTime::ZERO);

    let t = SimTime::from_millis(20);
    w.kernel.begin_batch(t, w.pid);
    // NULL dp_fds without a mapping is EINVAL.
    assert_eq!(
        w.registry
            .dp_poll(&mut w.kernel, t, w.pid, dpfd, DvPoll::into_mmap(64, 0))
            .unwrap_err(),
        Errno::EINVAL
    );
    w.registry
        .dp_alloc_mmap(&mut w.kernel, t, w.pid, dpfd, 64)
        .unwrap();
    assert!(w
        .registry
        .device(&w.kernel, w.pid, dpfd)
        .unwrap()
        .has_mmap());
    w.registry
        .write(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            &[PollFd::new(fd, PollBits::POLLIN)],
        )
        .unwrap();
    w.kernel.end_batch(t, w.pid);

    w.net.send(t, ep, b"data").unwrap();
    pump(&mut w, t + SimDuration::from_millis(10));

    let t = t + SimDuration::from_millis(10);
    w.kernel.begin_batch(t, w.pid);
    let (out, res) = w
        .registry
        .dp_poll(&mut w.kernel, t, w.pid, dpfd, DvPoll::into_mmap(64, 0))
        .unwrap();
    assert_eq!(out, PollOutcome::Ready(1));
    assert_eq!(res.len(), 1);
    let s = w.registry.device(&w.kernel, w.pid, dpfd).unwrap().stats();
    assert_eq!(s.mmap_results, 1);
    // munmap: back to user-buffer mode only.
    w.registry.munmap(&mut w.kernel, t, w.pid, dpfd).unwrap();
    assert_eq!(
        w.registry
            .dp_poll(&mut w.kernel, t, w.pid, dpfd, DvPoll::into_mmap(64, 0))
            .unwrap_err(),
        Errno::EINVAL
    );
    w.kernel.end_batch(t, w.pid);
}

#[test]
fn multiple_independent_interest_sets() {
    // "A process may open /dev/poll more than once to build multiple
    // independent interest sets."
    let mut w = world();
    let dp1 = open_dp(&mut w, DevPollConfig::default());
    let dp2 = open_dp(&mut w, DevPollConfig::default());
    let (fd_a, ep_a) = connect_one(&mut w, SimTime::ZERO);
    let (fd_b, ep_b) = connect_one(&mut w, SimTime::from_millis(5));

    let t = SimTime::from_millis(30);
    w.kernel.begin_batch(t, w.pid);
    w.registry
        .write(
            &mut w.kernel,
            t,
            w.pid,
            dp1,
            &[PollFd::new(fd_a, PollBits::POLLIN)],
        )
        .unwrap();
    w.registry
        .write(
            &mut w.kernel,
            t,
            w.pid,
            dp2,
            &[PollFd::new(fd_b, PollBits::POLLIN)],
        )
        .unwrap();
    w.kernel.end_batch(t, w.pid);

    w.net.send(t, ep_a, b"a").unwrap();
    w.net.send(t, ep_b, b"b").unwrap();
    pump(&mut w, t + SimDuration::from_millis(10));

    let t = t + SimDuration::from_millis(10);
    w.kernel.begin_batch(t, w.pid);
    let (_, r1) = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dp1,
            DvPoll::into_user_buffer(64, 0),
        )
        .unwrap();
    let (_, r2) = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dp2,
            DvPoll::into_user_buffer(64, 0),
        )
        .unwrap();
    w.kernel.end_batch(t, w.pid);
    assert_eq!(r1.iter().map(|p| p.fd).collect::<Vec<_>>(), vec![fd_a]);
    assert_eq!(r2.iter().map(|p| p.fd).collect::<Vec<_>>(), vec![fd_b]);
}

#[test]
fn devpoll_fd_on_wrong_calls_is_einval() {
    let mut w = world();
    let (fd, _ep) = connect_one(&mut w, SimTime::ZERO);
    let t = SimTime::from_millis(20);
    w.kernel.begin_batch(t, w.pid);
    // Stream fd is not a devpoll fd.
    assert_eq!(
        w.registry
            .dp_poll(&mut w.kernel, t, w.pid, fd, DvPoll::into_user_buffer(4, 0))
            .unwrap_err(),
        Errno::EINVAL
    );
    assert_eq!(
        w.registry
            .write(&mut w.kernel, t, w.pid, fd, &[])
            .unwrap_err(),
        Errno::EINVAL
    );
    w.kernel.end_batch(t, w.pid);
}

#[test]
fn close_releases_device_and_fd() {
    let mut w = world();
    let dpfd = open_dp(&mut w, DevPollConfig::default());
    let t = SimTime::from_millis(1);
    w.kernel.begin_batch(t, w.pid);
    w.registry.close(&mut w.kernel, t, w.pid, dpfd).unwrap();
    assert_eq!(
        w.registry
            .dp_poll(
                &mut w.kernel,
                t,
                w.pid,
                dpfd,
                DvPoll::into_user_buffer(4, 0)
            )
            .unwrap_err(),
        Errno::EBADF
    );
    // The fd slot is reusable.
    let dp2 = w
        .registry
        .open(&mut w.kernel, t, w.pid, DevPollConfig::default())
        .unwrap();
    assert_eq!(dp2, dpfd);
    w.kernel.end_batch(t, w.pid);
}

#[test]
fn result_cap_respects_dp_nfds() {
    let mut w = world();
    let dpfd = open_dp(&mut w, DevPollConfig::default());
    let mut eps = Vec::new();
    for i in 0..10u64 {
        let (fd, ep) = connect_one(&mut w, SimTime::from_millis(i * 2));
        eps.push((fd, ep));
    }
    let t = SimTime::from_millis(60);
    w.kernel.begin_batch(t, w.pid);
    let entries: Vec<PollFd> = eps
        .iter()
        .map(|&(fd, _)| PollFd::new(fd, PollBits::POLLIN))
        .collect();
    w.registry
        .write(&mut w.kernel, t, w.pid, dpfd, &entries)
        .unwrap();
    w.kernel.end_batch(t, w.pid);
    for &(_, ep) in &eps {
        w.net.send(t, ep, b"z").unwrap();
    }
    pump(&mut w, t + SimDuration::from_millis(10));

    let t = t + SimDuration::from_millis(10);
    w.kernel.begin_batch(t, w.pid);
    let (out, res) = w
        .registry
        .dp_poll(
            &mut w.kernel,
            t,
            w.pid,
            dpfd,
            DvPoll::into_user_buffer(4, 0),
        )
        .unwrap();
    w.kernel.end_batch(t, w.pid);
    assert_eq!(out, PollOutcome::Ready(4));
    assert_eq!(res.len(), 4);
}

#[test]
fn no_hints_config_scans_everything() {
    let mut w = world();
    let dpfd = open_dp(
        &mut w,
        DevPollConfig {
            hints: false,
            ..DevPollConfig::default()
        },
    );
    let mut entries = Vec::new();
    for i in 0..20u64 {
        let (fd, _ep) = connect_one(&mut w, SimTime::from_millis(i * 2));
        entries.push(PollFd::new(fd, PollBits::POLLIN));
    }
    let t = SimTime::from_millis(80);
    w.kernel.begin_batch(t, w.pid);
    w.registry
        .write(&mut w.kernel, t, w.pid, dpfd, &entries)
        .unwrap();
    for _ in 0..3 {
        let _ = w
            .registry
            .dp_poll(
                &mut w.kernel,
                t,
                w.pid,
                dpfd,
                DvPoll::into_user_buffer(64, 0),
            )
            .unwrap();
    }
    w.kernel.end_batch(t, w.pid);
    let s = w.registry.device(&w.kernel, w.pid, dpfd).unwrap().stats();
    assert_eq!(s.driver_polls, 60, "every scan pays for every interest");
    assert_eq!(s.driver_polls_avoided, 0);
}
