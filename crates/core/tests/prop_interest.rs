//! Property test: the doubling hash table behaves exactly like a
//! reference map under arbitrary operation sequences, and its growth
//! policy invariants hold.

use std::collections::HashMap;

use devpoll::InterestTable;
use proptest::prelude::*;
use simkernel::PollBits;

#[derive(Debug, Clone)]
enum Op {
    Set(i32, u16, bool),
    Remove(i32),
    MarkHint(i32),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0i32..200, 1u16..0x40, any::<bool>()).prop_map(|(fd, ev, or)| Op::Set(fd, ev, or)),
            (0i32..200).prop_map(Op::Remove),
            (0i32..200).prop_map(Op::MarkHint),
        ],
        0..400,
    )
}

proptest! {
    #[test]
    fn matches_reference_map(ops in ops()) {
        let mut table = InterestTable::new();
        let mut model: HashMap<i32, u16> = HashMap::new();
        for op in ops {
            match op {
                Op::Set(fd, ev, or) => {
                    table.set(fd, PollBits(ev), or);
                    let e = model.entry(fd).or_insert(0);
                    *e = if or { *e | ev } else { ev };
                }
                Op::Remove(fd) => {
                    let was = table.remove(fd);
                    prop_assert_eq!(was, model.remove(&fd).is_some());
                }
                Op::MarkHint(fd) => {
                    let marked = table.mark_hint(fd);
                    prop_assert_eq!(marked, model.contains_key(&fd));
                }
            }
            // Size and membership agree at every step.
            prop_assert_eq!(table.len(), model.len());
        }
        for (&fd, &ev) in &model {
            let e = table.get(fd);
            prop_assert!(e.is_some(), "fd {} missing", fd);
            prop_assert_eq!(e.unwrap().events, PollBits(ev));
        }
        let visited = table.iter().count();
        prop_assert_eq!(visited, model.len());
        // The doubling policy: average bucket size never exceeds two
        // after an insert settles, and bucket count is a power of two.
        prop_assert!(table.bucket_count().is_power_of_two());
        prop_assert!(table.len() <= table.bucket_count() * 2);
    }
}
